"""Result records returned by every IM algorithm in the library."""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class IMResult:
    """Outcome of an influence-maximization run.

    Attributes
    ----------
    seeds:
        The selected size-k seed set, in selection order.
    influence:
        The algorithm's own estimate of I(seeds) (RIS coverage estimate for
        sampling algorithms, Monte Carlo mean for greedy baselines).
    samples:
        Total RR sets generated, including verification samples — the
        paper's "number of RR sets" columns (Table 3).
    optimization_samples / verification_samples:
        Breakdown of ``samples`` into the max-coverage pool R and the
        Estimate-Inf pool R' (SSA) or verify half (D-SSA).
    iterations:
        Stop-and-Stare iterations (doublings) performed; 1 for one-shot
        algorithms.
    stopped_by:
        Which rule ended the run: ``"conditions"`` (C1+C2 / D1+D2),
        ``"cap"`` (N_max reached), or ``"theta"`` (fixed-threshold
        algorithms).
    elapsed_seconds:
        Wall-clock runtime measured by the algorithm itself.
    memory_bytes:
        Analytic memory model: retained RR-set bytes + graph bytes.
    extras:
        Algorithm-specific diagnostics (epsilon trajectories, KPT
        estimates, ...).
    """

    algorithm: str
    seeds: list[int]
    influence: float
    samples: int
    optimization_samples: int = 0
    verification_samples: int = 0
    iterations: int = 1
    stopped_by: str = "conditions"
    elapsed_seconds: float = 0.0
    memory_bytes: int = 0
    extras: dict = field(default_factory=dict)

    @property
    def k(self) -> int:
        """Seed budget actually returned."""
        return len(self.seeds)

    def summary(self) -> str:
        """One-line human-readable summary for logs and examples."""
        return (
            f"{self.algorithm}: k={self.k} influence≈{self.influence:.1f} "
            f"samples={self.samples} iterations={self.iterations} "
            f"time={self.elapsed_seconds:.3f}s stop={self.stopped_by}"
        )
