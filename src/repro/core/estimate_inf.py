"""Influence estimation with a stopping rule (Algorithm 3, Estimate-Inf).

Based on the Stopping-Rule algorithm of Dagum, Karp, Luby & Ross (2000):
generate RR sets until the number of *successes* (sets hit by S) reaches
``Λ₂ = 1 + (1+ε')·Υ(ε', δ')``, then return ``Γ·Λ₂/T``.  One crucial twist
from the paper: a cap ``T_max``.  Early SSA candidates can have tiny
influence, which would need Ω(n) samples to verify; the cap (proportional
to |R|) aborts those verifications cheaply, keeping SSA near-linear.

The returned estimate satisfies the one-sided guarantee of Lemma 3:
``Pr[Ic(S) ≤ (1+ε') I(S)] ≥ 1 - δ'``.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.exceptions import ParameterError
from repro.sampling.base import RRSampler
from repro.utils.mathstats import upsilon


@dataclass(frozen=True)
class InfluenceEstimate:
    """Result of one Estimate-Inf invocation.

    ``influence`` is ``None`` when the sample cap was hit before Λ₂
    successes accumulated (the paper's ``-1`` sentinel); ``samples_used``
    counts RR sets generated either way so callers can account for them.
    """

    influence: float | None
    samples_used: int
    successes: int

    @property
    def capped(self) -> bool:
        """True when the estimator aborted at T_max."""
        return self.influence is None


def required_successes(epsilon: float, delta: float) -> float:
    """``Λ₂ = 1 + (1 + ε')·Υ(ε', δ')`` (Alg. 3 line 1)."""
    return 1.0 + (1.0 + epsilon) * upsilon(epsilon, delta)


def estimate_influence(
    sampler: RRSampler,
    seeds: Sequence[int],
    epsilon: float,
    delta: float,
    max_samples: int,
) -> InfluenceEstimate:
    """Run Estimate-Inf for seed set ``seeds`` (Algorithm 3).

    Samples come from ``sampler`` — callers choose whether that stream is
    independent of the optimization samples (SSA uses an independent
    sampler; the stopping-rule guarantee needs fresh randomness).
    """
    if epsilon <= 0:
        raise ParameterError(f"epsilon must be positive, got {epsilon}")
    if not 0 < delta < 1:
        raise ParameterError(f"delta must be in (0, 1), got {delta}")
    if max_samples < 1:
        raise ParameterError(f"max_samples must be at least 1, got {max_samples}")

    lambda_2 = required_successes(epsilon, delta)
    n = sampler.graph.n
    seed_mask = np.zeros(n, dtype=bool)
    seed_arr = np.asarray(list(seeds), dtype=np.int64)
    if seed_arr.size == 0:
        raise ParameterError("seed set must be non-empty")
    if seed_arr.min() < 0 or seed_arr.max() >= n:
        raise ParameterError("seed id out of range")
    seed_mask[seed_arr] = True

    successes = 0
    for t in range(1, max_samples + 1):
        rr = sampler.sample()
        if seed_mask[rr].any():
            successes += 1
            if successes >= lambda_2:
                return InfluenceEstimate(
                    influence=sampler.scale * lambda_2 / t,
                    samples_used=t,
                    successes=successes,
                )
    return InfluenceEstimate(influence=None, samples_used=max_samples, successes=successes)
