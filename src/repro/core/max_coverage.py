"""Greedy maximum coverage over RR sets (Algorithm 2).

Standard (1 - 1/e)-approximate greedy: repeatedly take the node covering
the most not-yet-covered RR sets.  Implemented with the classic linear-time
counting scheme: per-node coverage counts are maintained incrementally —
when a set becomes covered, the counts of *all* its members drop by one —
so the total work is O(Σ|R_j| + n·k) rather than O(n · k · Σ|R_j|).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ParameterError
from repro.sampling.rr_collection import RRCollection


@dataclass(frozen=True)
class MaxCoverageResult:
    """Outcome of greedy max-coverage on a range of RR sets.

    ``coverage`` is Cov_R(S); ``marginal_coverage[i]`` is the number of
    newly covered sets when the i-th seed was added (non-increasing by
    submodularity — a property test pins this).
    """

    seeds: list[int]
    coverage: int
    num_sets: int
    marginal_coverage: list[int] = field(default_factory=list)

    def influence_estimate(self, scale: float) -> float:
        """``Î(S) = Γ · Cov(S) / |R|`` (Lemma 1 rearranged)."""
        if self.num_sets == 0:
            raise ParameterError("no RR sets behind this coverage result")
        return scale * self.coverage / self.num_sets


def _concat_ranges(starts: np.ndarray, stops: np.ndarray) -> np.ndarray:
    """Concatenate integer ranges [starts[i], stops[i]) without a Python loop."""
    lengths = stops - starts
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    boundaries = np.cumsum(lengths)[:-1]
    out[boundaries] = starts[1:] - stops[:-1] + 1
    return np.cumsum(out)


def max_coverage(
    collection: RRCollection,
    k: int,
    *,
    start: int = 0,
    end: int | None = None,
) -> MaxCoverageResult:
    """Greedily pick ``k`` nodes maximizing RR-set coverage in [start, end).

    If coverage saturates before k picks (every set already covered), the
    remaining seeds are filled with the lowest-index unchosen nodes — the
    paper's algorithms always return exactly k seeds.
    """
    n = collection.n
    if not 1 <= k <= n:
        raise ParameterError(f"k must satisfy 1 <= k <= n={n}, got {k}")
    flat, offsets = collection.flat_view(start, end)
    num_sets = len(offsets) - 1

    counts = np.bincount(flat, minlength=n).astype(np.int64)
    chosen = np.zeros(n, dtype=bool)
    covered = np.zeros(num_sets, dtype=bool)

    # Inverted index: for node v, entry_positions[node_starts[v]:node_starts[v+1]]
    # are positions of v's occurrences in `flat`; set_of_entry maps a flat
    # position to its owning RR-set id.
    order = np.argsort(flat, kind="stable") if flat.size else np.zeros(0, dtype=np.int64)
    sorted_nodes = flat[order] if flat.size else flat
    node_starts = np.searchsorted(sorted_nodes, np.arange(n + 1))
    set_of_entry = (
        np.repeat(np.arange(num_sets, dtype=np.int64), np.diff(offsets))
        if num_sets
        else np.zeros(0, dtype=np.int64)
    )

    seeds: list[int] = []
    marginals: list[int] = []
    total_covered = 0

    for _ in range(k):
        best = int(np.argmax(counts))
        if counts[best] <= 0:
            break  # coverage exhausted; fill below
        seeds.append(best)
        chosen[best] = True

        positions = order[node_starts[best] : node_starts[best + 1]]
        containing = set_of_entry[positions]
        newly = containing[~covered[containing]]
        marginals.append(int(newly.size))
        total_covered += int(newly.size)
        covered[newly] = True
        if newly.size:
            touched = flat[_concat_ranges(offsets[newly], offsets[newly + 1])]
            np.subtract.at(counts, touched, 1)
        counts[best] = -1  # never re-pick

    if len(seeds) < k:
        for v in range(n):
            if not chosen[v]:
                seeds.append(v)
                chosen[v] = True
                marginals.append(0)
                if len(seeds) == k:
                    break

    return MaxCoverageResult(
        seeds=seeds,
        coverage=total_covered,
        num_sets=num_sets,
        marginal_coverage=marginals,
    )
