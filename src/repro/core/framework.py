"""The unified RIS framework's two-step skeleton (Section 3.2).

Every RIS-based IM algorithm reduces to: (1) generate ``θ`` RR sets, (2)
greedy max-coverage.  The Stop-and-Stare algorithms wrap this skeleton in
stopping rules; TIM/TIM+/IMM compute an explicit θ first and then call it
once.  Exposing it directly also gives the library a "static RIS" baseline
for users who already know a sample budget.
"""

from __future__ import annotations

from repro.core.max_coverage import MaxCoverageResult, max_coverage
from repro.core.result import IMResult
from repro.exceptions import ParameterError
from repro.sampling.base import RRSampler
from repro.sampling.rr_collection import RRCollection
from repro.utils.timer import Timer


def ris_two_step(
    sampler: RRSampler,
    k: int,
    theta: int,
    *,
    collection: RRCollection | None = None,
) -> tuple[MaxCoverageResult, RRCollection]:
    """Generate RR sets up to ``theta`` total, then solve max-coverage.

    An existing ``collection`` is topped up rather than regenerated, which
    is how the doubling algorithms reuse earlier samples.
    """
    if theta < 1:
        raise ParameterError(f"theta must be at least 1, got {theta}")
    if collection is None:
        collection = RRCollection(sampler.graph.n)
    deficit = theta - len(collection)
    if deficit > 0:
        collection.extend(sampler.sample_batch(deficit))
    cover = max_coverage(collection, k, start=0, end=theta)
    return cover, collection


def static_ris(
    sampler: RRSampler,
    k: int,
    theta: int,
) -> IMResult:
    """One-shot RIS with a caller-chosen sample budget (no guarantees).

    Useful as a baseline and for exploratory analysis; the approximation
    guarantee only holds when ``theta`` exceeds an RIS threshold
    (Definition 4), which depends on the unknown OPT_k.
    """
    with Timer() as timer:
        cover, collection = ris_two_step(sampler, k, theta)
    return IMResult(
        algorithm="static-RIS",
        seeds=cover.seeds,
        influence=cover.influence_estimate(sampler.scale),
        samples=theta,
        optimization_samples=theta,
        iterations=1,
        stopped_by="theta",
        elapsed_seconds=timer.elapsed,
        memory_bytes=collection.memory_bytes() + sampler.graph.memory_bytes(),
        extras={"coverage": cover.coverage},
    )
