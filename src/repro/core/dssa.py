"""D-SSA — the Dynamic Stop-and-Stare Algorithm (Algorithm 4).

D-SSA removes SSA's fixed ε-split.  It works on a *single* stream of RR
sets ``R₁, R₂, ...``; at iteration t the first ``Λ·2^(t-1)`` sets (R_t)
feed max-coverage, and the next ``Λ·2^(t-1)`` sets (R^c_t) verify the
candidate.  Because ``R_{t+1} = R_t ∪ R^c_t``, verification samples are
*reused* for optimization next round — the inefficiency the paper calls
out in SSA (Section 5.2 "SSA Limitation") is gone.

Stopping requires both conditions of Section 6:

* **D1** ``Cov_{R^c_t}(Ŝ_k) ≥ Λ₁ = 1 + (1+ε)·Υ(ε, δ/3t_max)`` — the
  verify half carries enough signal for an (ε, ·)-estimate of I(Ŝ_k);
* **D2** ``ε_t = (ε₁+ε₂+ε₁ε₂)(1-1/e-ε) + (1-1/e)·ε₃ ≤ ε`` with the
  precision parameters *measured from the data* (Alg. 4 lines 11–13).

Theorem 5: ``(1-1/e-ε)``-approximation w.h.p.; Theorem 6: sample count
within a constant factor of the type-2 minimum threshold — the strongest
possible guarantee inside the RIS framework.

The algorithm body (:func:`dssa_on_context`) runs on an engine-provided
:class:`~repro.engine.context.SamplingContext` and only ever consumes a
*prefix* of the session's RR stream, so warm
:class:`~repro.engine.engine.InfluenceEngine` queries reuse the cached
pool byte-identically; :func:`dssa` is the one-shot wrapper over a
throwaway context.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.max_coverage import max_coverage
from repro.core.result import IMResult
from repro.core.thresholds import max_iterations, sample_cap
from repro.diffusion.models import DiffusionModel
from repro.engine.context import SamplingContext
from repro.engine.registry import register_algorithm
from repro.graph.digraph import CSRGraph
from repro.sampling.backends import ExecutionBackend
from repro.sampling.roots import UniformRoots, WeightedRoots
from repro.utils.mathstats import upsilon
from repro.utils.timer import Timer
from repro.utils.validation import check_delta, check_epsilon, check_k

_E_FACTOR = 1.0 - 1.0 / math.e


def dssa_on_context(
    ctx: SamplingContext,
    k: int,
    *,
    epsilon: float = 0.1,
    delta: float | None = None,
    max_samples: int | None = None,
) -> IMResult:
    """Algorithm 4 against a (possibly warm) sampling context.

    Consumes the stream prefix ``[0, need)`` where ``need`` doubles per
    iteration — already-cached sets are served without resampling, and
    the reported ``samples`` is the query's own demand (what a cold run
    would have generated), not the session's lifetime count.
    """
    graph = ctx.graph
    n = graph.n
    check_k(k, n)
    check_epsilon(epsilon)
    delta = check_delta(delta if delta is not None else 1.0 / max(n, 2))
    if epsilon >= _E_FACTOR:
        # ε₃'s formula contains √(1-1/e-ε); beyond this the guarantee is vacuous.
        raise ValueError(f"epsilon must be below 1-1/e ≈ {_E_FACTOR:.4f} for D-SSA")

    n_max = sample_cap(n, k, epsilon, delta)
    if max_samples is not None:
        n_max = min(n_max, float(max_samples))
    t_max = max_iterations(n, k, epsilon, delta)
    per_iter_delta = delta / (3.0 * t_max)
    lambda_base = int(math.ceil(upsilon(epsilon, per_iter_delta)))
    lambda_1 = 1.0 + (1.0 + epsilon) * upsilon(epsilon, per_iter_delta)
    scale = ctx.scale

    with Timer() as timer:
        cover = None
        influence_hat = 0.0
        iterations = 0
        need = 0
        stopped_by = "cap"
        epsilon_trace: list[dict] = []

        while True:
            iterations += 1
            half = lambda_base * (2 ** (iterations - 1))
            need = 2 * half
            stream = ctx.require(need)

            cover = max_coverage(stream, k, start=0, end=half)
            influence_hat = cover.influence_estimate(scale)

            verify_cov = stream.coverage(cover.seeds, start=half, end=need)
            record = {
                "iteration": iterations,
                "find_half": half,
                "coverage": cover.coverage,
                "verify_coverage": verify_cov,
                "influence_hat": influence_hat,
            }

            if verify_cov >= lambda_1:  # condition D1
                influence_check = scale * verify_cov / half
                # Dynamic precision parameters (Alg. 4 lines 11-13).  The
                # 2^(t-1) factor follows the paper's normalization (the
                # Λ part of |R_t| is folded into the Υ(ε, ·) term).
                e1 = influence_hat / influence_check - 1.0
                e2 = epsilon * math.sqrt(
                    scale * (1.0 + epsilon) / (2 ** (iterations - 1) * influence_check)
                )
                e3 = epsilon * math.sqrt(
                    scale
                    * (1.0 + epsilon)
                    * (1.0 - 1.0 / math.e - epsilon)
                    / ((1.0 + epsilon / 3.0) * 2 ** (iterations - 1) * influence_check)
                )
                eps_t = (e1 + e2 + e1 * e2) * (1.0 - 1.0 / math.e - epsilon) + _E_FACTOR * e3
                record.update(
                    {
                        "influence_check": influence_check,
                        "epsilon_1": e1,
                        "epsilon_2": e2,
                        "epsilon_3": e3,
                        "epsilon_t": eps_t,
                    }
                )
                if eps_t <= epsilon:  # condition D2
                    stopped_by = "conditions"
                    epsilon_trace.append(record)
                    break
            epsilon_trace.append(record)

            if need >= n_max:
                stopped_by = "cap"
                break

    return IMResult(
        algorithm="D-SSA",
        seeds=cover.seeds,
        influence=influence_hat,
        samples=need,
        optimization_samples=need,
        verification_samples=0,  # verify half is reused, not extra
        iterations=iterations,
        stopped_by=stopped_by,
        elapsed_seconds=timer.elapsed,
        memory_bytes=ctx.pool.memory_bytes(end=need) + graph.memory_bytes(),
        extras={
            "lambda_1": lambda_1,
            "n_max": n_max,
            "t_max": t_max,
            "trace": epsilon_trace,
        },
    )


@register_algorithm(
    "D-SSA",
    aliases=("dssa",),
    description="Dynamic Stop-and-Stare (Alg. 4): one stream, data-driven epsilons",
    engine_func=dssa_on_context,
    stream="direct",
    needs_rr_sets=True,
    supports_backend=True,
    supports_horizon=True,
    accepts=(
        "epsilon",
        "delta",
        "model",
        "seed",
        "roots",
        "max_samples",
        "horizon",
        "backend",
        "workers",
        "kernel",
    ),
)
def dssa(
    graph: CSRGraph,
    k: int,
    *,
    epsilon: float = 0.1,
    delta: float | None = None,
    model: "str | DiffusionModel" = "IC",
    seed: int | np.random.Generator | None = None,
    roots: "UniformRoots | WeightedRoots | None" = None,
    max_samples: int | None = None,
    horizon: int | None = None,
    backend: "str | ExecutionBackend | None" = None,
    workers: int | None = None,
    kernel=None,
) -> IMResult:
    """Run D-SSA and return a ``(1-1/e-ε)``-approximate seed set w.h.p.

    Same surface as :func:`repro.core.ssa.ssa` minus the ε-split — D-SSA
    derives ε₁, ε₂, ε₃ from the observed estimates each iteration.
    ``horizon`` switches to the time-critical objective (activations
    within T rounds).  ``backend``/``workers`` parallelize RR-set
    generation (D-SSA consumes a single merged stream, so the guarantees
    are untouched — the merge only needs i.i.d. sets).

    One-shot convenience over a throwaway single-query session; to
    answer several queries against one warm backend and RR pool, use
    :class:`~repro.engine.engine.InfluenceEngine` (byte-identical
    results at equal seeds).
    """
    ctx = SamplingContext(
        graph,
        model,
        seed=seed,
        roots=roots,
        horizon=horizon,
        backend=backend,
        workers=workers,
        kernel=kernel,
    )
    try:
        return dssa_on_context(
            ctx, k, epsilon=epsilon, delta=delta, max_samples=max_samples
        )
    finally:
        ctx.close()
