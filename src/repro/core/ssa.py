"""SSA — the Stop-and-Stare Algorithm (Algorithm 1).

SSA interleaves two sample pools:

* ``R`` — the optimization pool, doubled every iteration, fed to greedy
  max-coverage to get a candidate seed set ``Ŝ_k``;
* an **independent** verification stream consumed by Estimate-Inf
  (Algorithm 3) whenever the candidate passes the coverage precondition.

Stopping requires both conditions of Section 4.1:

* **C1** ``Cov_R(Ŝ_k) ≥ Λ₁ = (1+ε₁)(1+ε₂)·Υ(ε₃, δ/3i_max)`` — enough
  coverage that the optimum's influence is estimated within ε₃;
* **C2** ``Î(Ŝ_k) ≤ (1+ε₁)·Ic(Ŝ_k)`` — the optimization-pool estimate
  agrees with the independent error-bounded estimate.

If neither fires before the pool reaches ``N_max``, the cap itself
guarantees the approximation (Lemma 4).  Theorem 2: the returned set is a
``(1-1/e-ε)``-approximation with probability ≥ 1-δ; Theorem 3: the sample
count is within a constant factor of a type-1 minimum threshold.

The body (:func:`ssa_on_context`) runs on a *split-stream*
:class:`~repro.engine.context.SamplingContext`: the optimization pool is
a cacheable prefix of the session's main stream, while the verification
stream is re-derived per query exactly as a cold run derives it
(``spawn_rngs(seed, 2)[1]``), so warm engine queries stay byte-identical
to :func:`ssa` at equal seeds.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.estimate_inf import estimate_influence
from repro.core.max_coverage import max_coverage
from repro.core.result import IMResult
from repro.core.thresholds import (
    EpsilonSplit,
    default_epsilon_split,
    max_iterations,
    sample_cap,
)
from repro.diffusion.models import DiffusionModel
from repro.engine.context import SamplingContext
from repro.engine.registry import register_algorithm
from repro.graph.digraph import CSRGraph
from repro.sampling.backends import ExecutionBackend
from repro.sampling.roots import UniformRoots, WeightedRoots
from repro.utils.mathstats import upsilon
from repro.utils.timer import Timer
from repro.utils.validation import check_delta, check_epsilon, check_k


def ssa_on_context(
    ctx: SamplingContext,
    k: int,
    *,
    epsilon: float = 0.1,
    delta: float | None = None,
    max_samples: int | None = None,
    split: EpsilonSplit | None = None,
) -> IMResult:
    """Algorithm 1 against a (possibly warm) split-stream context.

    The optimization pool is the stream prefix ``[0, used)`` with
    ``used`` doubling per iteration; verification samples come from the
    per-query verifier and are never pooled (they are candidate-
    dependent, hence not reusable).
    """
    graph = ctx.graph
    n = graph.n
    check_k(k, n)
    check_epsilon(epsilon)
    delta = check_delta(delta if delta is not None else 1.0 / max(n, 2))
    split = split if split is not None else default_epsilon_split(epsilon)
    split.validate(epsilon, tolerance=1e-6)
    e1, e2, e3 = split.epsilon_1, split.epsilon_2, split.epsilon_3

    n_max = sample_cap(n, k, epsilon, delta)
    if max_samples is not None:
        n_max = min(n_max, float(max_samples))
    i_max = max_iterations(n, k, epsilon, delta)
    per_iter_delta = delta / (3.0 * i_max)
    lambda_base = upsilon(epsilon, per_iter_delta)
    lambda_1 = (1.0 + e1) * (1.0 + e2) * upsilon(e3, per_iter_delta)

    verifier = ctx.fresh_verifier()
    scale = ctx.scale

    with Timer() as timer:
        # The first iteration doubles to 2·⌈Λ⌉ and requires that prefix in
        # one batch; materializing the ⌈Λ⌉ prefix here would be the same
        # stream (batch-invariant) with one extra backend fan-out.
        used = int(math.ceil(lambda_base))

        cover = None
        iterations = 0
        stopped_by = "cap"
        epsilon_trace: list[dict] = []

        while True:
            iterations += 1
            used *= 2  # double R
            pool = ctx.require(used)
            cover = max_coverage(pool, k, start=0, end=used)
            influence_hat = cover.influence_estimate(scale)

            record = {
                "iteration": iterations,
                "pool": used,
                "coverage": cover.coverage,
                "influence_hat": influence_hat,
            }

            if cover.coverage >= lambda_1:  # condition C1
                t_max = int(
                    math.ceil(2.0 * used * (1.0 + e2) / (1.0 - e2) * (e3 * e3) / (e2 * e2))
                )
                check = estimate_influence(verifier, cover.seeds, e2, per_iter_delta, t_max)
                record["verify_samples"] = check.samples_used
                record["influence_check"] = check.influence
                if check.influence is not None and influence_hat <= (1.0 + e1) * check.influence:
                    stopped_by = "conditions"  # C2 met
                    epsilon_trace.append(record)
                    break
            epsilon_trace.append(record)

            if used >= n_max:
                stopped_by = "cap"
                break

    return IMResult(
        algorithm="SSA",
        seeds=cover.seeds,
        influence=cover.influence_estimate(scale),
        samples=used + verifier.sets_generated,
        optimization_samples=used,
        verification_samples=verifier.sets_generated,
        iterations=iterations,
        stopped_by=stopped_by,
        elapsed_seconds=timer.elapsed,
        memory_bytes=ctx.pool.memory_bytes(end=used) + graph.memory_bytes(),
        extras={
            "epsilon_split": (e1, e2, e3),
            "lambda_1": lambda_1,
            "n_max": n_max,
            "i_max": i_max,
            "trace": epsilon_trace,
        },
    )


@register_algorithm(
    "SSA",
    aliases=("ssa",),
    description="Stop-and-Stare (Alg. 1): doubling pool + independent verification",
    engine_func=ssa_on_context,
    stream="split",
    needs_rr_sets=True,
    supports_backend=True,
    supports_horizon=True,
    accepts=(
        "epsilon",
        "delta",
        "model",
        "seed",
        "roots",
        "max_samples",
        "horizon",
        "backend",
        "workers",
        "kernel",
        "split",
    ),
)
def ssa(
    graph: CSRGraph,
    k: int,
    *,
    epsilon: float = 0.1,
    delta: float | None = None,
    model: "str | DiffusionModel" = "IC",
    seed: int | np.random.Generator | None = None,
    split: EpsilonSplit | None = None,
    roots: "UniformRoots | WeightedRoots | None" = None,
    max_samples: int | None = None,
    horizon: int | None = None,
    backend: "str | ExecutionBackend | None" = None,
    workers: int | None = None,
    kernel=None,
) -> IMResult:
    """Run SSA and return a ``(1-1/e-ε)``-approximate seed set w.h.p.

    Parameters
    ----------
    graph:
        Weighted influence graph.
    k:
        Seed budget.
    epsilon, delta:
        Approximation and failure parameters; ``delta`` defaults to the
        paper's ``1/n``.
    model:
        ``"IC"`` or ``"LT"``.
    seed:
        RNG seed; two independent child streams are spawned for the
        optimization and verification pools.
    split:
        Optional explicit (ε₁, ε₂, ε₃); defaults to Section 4.2's
        recommendation.  Must satisfy Eq. 18.
    roots:
        Optional root distribution — pass a
        :class:`~repro.sampling.roots.WeightedRoots` to solve the TVM
        objective instead of plain IM.
    max_samples:
        Optional hard override of the ``N_max`` cap (testing/budgeting).
    horizon:
        Optional time-critical cap T: the objective becomes the expected
        number of activations within T rounds (RR sets are truncated to
        T reverse hops, the exact dual of T-round cascades).
    backend, workers:
        Parallel execution of the optimization pool's sampling: backend
        name (``"serial"``, ``"thread"``, ``"process"``) and worker
        count.  Defaults keep the single-stream behaviour; the
        verification stream stays serial (its batches are small).

    One-shot convenience over a throwaway single-query session; use
    :class:`~repro.engine.engine.InfluenceEngine` to answer many
    queries against one warm backend and RR pool.
    """
    ctx = SamplingContext(
        graph,
        model,
        seed=seed,
        split_verify=True,
        roots=roots,
        horizon=horizon,
        backend=backend,
        workers=workers,
        kernel=kernel,
    )
    try:
        return ssa_on_context(
            ctx, k, epsilon=epsilon, delta=delta, max_samples=max_samples, split=split
        )
    finally:
        ctx.close()
