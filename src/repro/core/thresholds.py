"""RIS thresholds, sample caps, and ε-parameter splits.

This module is the quantitative backbone of Sections 3–6:

* :func:`upsilon_ln` — Υ with the log term supplied directly, so huge
  union bounds like ``ln C(n, k)`` never materialize ``1/δ`` as a float.
* :func:`sample_cap` — the nominal cap
  ``N_max = 8 (1-1/e)/(2+2ε/3) · Υ(ε, δ/6/C(n,k)) · n/k`` used by both
  SSA (Alg. 1 line 2) and D-SSA (Alg. 4 line 1).
* :func:`max_iterations` — ``i_max = ceil(log2(2 N_max / Υ(ε, δ/3)))``.
* :func:`default_epsilon_split` — the recommended (ε₁, ε₂, ε₃) of
  Section 4.2, solving constraint Eq. 18 with equality.
* :func:`tim_threshold` / :func:`imm_threshold` — the *published* RIS
  thresholds of Eqs. 12 and 14, kept for analytical comparison (they need
  OPT_k, which is exactly the intractable quantity SSA avoids).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.exceptions import ParameterError
from repro.utils.mathstats import binomial_coefficient_ln, upsilon
from repro.utils.validation import check_delta, check_epsilon, check_k

_E_FACTOR = 1.0 - 1.0 / math.e  # (1 - 1/e), the submodularity constant


def upsilon_ln(epsilon: float, ln_inverse_delta: float) -> float:
    """Υ(ε, δ) with ``ln(1/δ)`` supplied directly.

    ``Υ = (2 + 2ε/3) · ln(1/δ) / ε²``; supplying the log term keeps union
    bounds like ``δ / (6 C(n,k))`` exact for billion-node inputs where
    ``C(n, k)`` overflows floats.
    """
    if epsilon <= 0:
        raise ParameterError(f"epsilon must be positive, got {epsilon}")
    if ln_inverse_delta <= 0:
        raise ParameterError(f"ln(1/delta) must be positive, got {ln_inverse_delta}")
    return (2.0 + 2.0 * epsilon / 3.0) * ln_inverse_delta / (epsilon * epsilon)


def sample_cap(n: int, k: int, epsilon: float, delta: float) -> float:
    """``N_max`` of Alg. 1 line 2 / Alg. 4 line 1.

    ``N_max = 8 · (1-1/e)/(2+2ε/3) · Υ(ε, δ/6/C(n,k)) · n/k``.

    This cap guarantees the approximation even if the stopping conditions
    never fire (Lemmas 4 and 9); it is hit only in pathological runs.
    """
    check_epsilon(epsilon)
    check_delta(delta)
    check_k(k, n)
    ln_term = math.log(6.0 / delta) + binomial_coefficient_ln(n, k)
    ups = upsilon_ln(epsilon, ln_term)
    return 8.0 * _E_FACTOR / (2.0 + 2.0 * epsilon / 3.0) * ups * n / k


def max_iterations(n: int, k: int, epsilon: float, delta: float) -> int:
    """``i_max = ceil(log2(2 N_max / Υ(ε, δ/3)))`` (Alg. 1 line 2).

    Also ``t_max`` for D-SSA (Alg. 4 line 2); Lemma 10 shows it is
    O(log n).
    """
    n_max = sample_cap(n, k, epsilon, delta)
    base = upsilon(epsilon, delta / 3.0)
    return max(1, math.ceil(math.log2(2.0 * n_max / base)))


@dataclass(frozen=True)
class EpsilonSplit:
    """The (ε₁, ε₂, ε₃) precision split used by SSA.

    ε₁ bounds the gap between the coverage estimate and the verification
    estimate (condition C2), ε₂ the verification estimator's error
    (Alg. 3), and ε₃ the error on the optimum's estimate through R
    (condition C1).  Validity (Eq. 18):
    ``(1-1/e) (ε₁+ε₂+ε₁ε₂+ε₃) / ((1+ε₁)(1+ε₂)) ≤ ε``.
    """

    epsilon_1: float
    epsilon_2: float
    epsilon_3: float

    def combined(self) -> float:
        """The effective ε implied by this split (LHS of Eq. 18)."""
        e1, e2, e3 = self.epsilon_1, self.epsilon_2, self.epsilon_3
        return _E_FACTOR * (e1 + e2 + e1 * e2 + e3) / ((1.0 + e1) * (1.0 + e2))

    def validate(self, epsilon: float, *, tolerance: float = 1e-9) -> None:
        """Raise unless the split satisfies Eq. 18 for the target ε."""
        for name, value in (
            ("epsilon_1", self.epsilon_1),
            ("epsilon_2", self.epsilon_2),
            ("epsilon_3", self.epsilon_3),
        ):
            if value <= 0:
                raise ParameterError(f"{name} must be positive, got {value}")
        if self.epsilon_2 >= 1.0 or self.epsilon_3 >= 1.0:
            raise ParameterError("epsilon_2 and epsilon_3 must be below 1")
        if self.combined() > epsilon + tolerance:
            raise ParameterError(
                f"epsilon split {self} violates Eq. 18: combined "
                f"{self.combined():.6f} > epsilon {epsilon}"
            )


def default_epsilon_split(epsilon: float) -> EpsilonSplit:
    """The recommended split of Section 4.2 (Eqs. 19–20).

    ``ε₂ = ε₃ = ε / (2 (1-1/e))`` and ε₁ chosen so Eq. 18 holds with
    equality: ``ε₁ = ε·ε₂ / ((1+ε₂)(1-1/e-ε))``.  For ε = 0.1 this gives
    ε₂ = ε₃ ≈ 2/25 and ε₁ ≈ 1/73, matching the paper's quoted example
    (1/78, 2/25) up to its rounding.
    """
    check_epsilon(epsilon)
    if epsilon >= _E_FACTOR:
        raise ParameterError(
            f"epsilon must be below 1 - 1/e ≈ {_E_FACTOR:.4f} for a valid split, got {epsilon}"
        )
    e2 = epsilon / (2.0 * _E_FACTOR)
    e3 = e2
    e1 = epsilon * e2 / ((1.0 + e2) * (_E_FACTOR - epsilon))
    split = EpsilonSplit(e1, e2, e3)
    split.validate(epsilon, tolerance=1e-9)
    return split


def tim_threshold(n: int, k: int, epsilon: float, delta: float, opt_k: float) -> float:
    """The TIM/TIM+ RIS threshold of Eq. 12.

    ``N = (8 + 2ε) n (ln(2/δ) + ln C(n,k)) / (ε² OPT_k)``.  Requires the
    (intractable) optimum — TIM replaces it with the KPT estimate in
    practice, which is why its sample count overshoots.
    """
    check_epsilon(epsilon)
    check_delta(delta)
    check_k(k, n)
    if opt_k <= 0:
        raise ParameterError(f"opt_k must be positive, got {opt_k}")
    log_term = math.log(2.0 / delta) + binomial_coefficient_ln(n, k)
    return (8.0 + 2.0 * epsilon) * n * log_term / (epsilon * epsilon * opt_k)


def imm_threshold(n: int, k: int, epsilon: float, delta: float, opt_k: float) -> float:
    """The IMM RIS threshold, simplified form of Eq. 14.

    ``N = 4 (1-1/e) n (2 ln(2/δ) + ln C(n,k)) / (ε² OPT_k)`` — about half
    of TIM's but still carrying the ``ln C(n,k)`` union-bound term.
    """
    check_epsilon(epsilon)
    check_delta(delta)
    check_k(k, n)
    if opt_k <= 0:
        raise ParameterError(f"opt_k must be positive, got {opt_k}")
    log_term = 2.0 * math.log(2.0 / delta) + binomial_coefficient_ln(n, k)
    return 4.0 * _E_FACTOR * n * log_term / (epsilon * epsilon * opt_k)


def imm_theta_exact(n: int, k: int, epsilon: float, delta: float, opt_k: float) -> float:
    """IMM's un-simplified θ (Eq. 13): ``2n((1-1/e)α + β)² / (ε² OPT_k)``."""
    check_epsilon(epsilon)
    check_delta(delta)
    check_k(k, n)
    if opt_k <= 0:
        raise ParameterError(f"opt_k must be positive, got {opt_k}")
    alpha = math.sqrt(math.log(2.0 / delta))
    beta = math.sqrt(_E_FACTOR * (math.log(2.0 / delta) + binomial_coefficient_ln(n, k)))
    return 2.0 * n * (_E_FACTOR * alpha + beta) ** 2 / (epsilon * epsilon * opt_k)
