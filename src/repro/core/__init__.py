"""The paper's primary contribution: Stop-and-Stare sampling algorithms.

Public entry points:

* :func:`repro.core.ssa.ssa` — Algorithm 1 (fixed ε-split, type-1 optimal)
* :func:`repro.core.dssa.dssa` — Algorithm 4 (dynamic ε, type-2 optimal)
* :func:`repro.core.max_coverage.max_coverage` — Algorithm 2
* :func:`repro.core.estimate_inf.estimate_influence` — Algorithm 3
* :mod:`repro.core.thresholds` — Υ, N_max, ε-splits, and the published
  RIS thresholds (TIM / IMM) used for comparison.
"""

from repro.core.result import IMResult
from repro.core.thresholds import (
    EpsilonSplit,
    default_epsilon_split,
    imm_threshold,
    max_iterations,
    sample_cap,
    tim_threshold,
    upsilon_ln,
)
from repro.core.max_coverage import MaxCoverageResult, max_coverage
from repro.core.estimate_inf import InfluenceEstimate, estimate_influence
from repro.core.ssa import ssa
from repro.core.dssa import dssa
from repro.core.framework import ris_two_step

__all__ = [
    "IMResult",
    "EpsilonSplit",
    "default_epsilon_split",
    "upsilon_ln",
    "sample_cap",
    "max_iterations",
    "tim_threshold",
    "imm_threshold",
    "max_coverage",
    "MaxCoverageResult",
    "estimate_influence",
    "InfluenceEstimate",
    "ssa",
    "dssa",
    "ris_two_step",
]
