"""Cross-session pool persistence: spill RR pools to disk, reattach later.

A session pool is the byte-exact prefix of a pure RR stream identified by
``(graph, model, stream derivation, horizon, seed, sampler shape)``.
That makes spilling sound: save the sets plus the sampler's stream
position, and any later process that builds the *same* stream can serve
the saved prefix as cache and continue sampling from set ``count``
onward as if it had never restarted.

Files are self-describing ``.npz`` archives: the flat int32 entries, the
int64 offsets, and a JSON header holding the identity stamp and the
sampler state.  Identity is content-addressed — the file name is a
digest of the stamp — so reattachment never needs session names and a
stale file for a different seed/graph can never be picked up by
accident.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.exceptions import ReproError

_FORMAT_VERSION = 1


class PoolStoreError(ReproError):
    """Raised when a spilled pool cannot be written or read."""


def graph_signature(graph) -> str:
    """Content fingerprint of a CSR graph (structure + weights)."""
    digest = hashlib.sha1()
    digest.update(f"{graph.n}:{graph.m}:".encode())
    for arr in (graph.out_indptr, graph.out_indices, graph.out_weights):
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()[:16]


def make_stamp(
    graph,
    *,
    model: str,
    stream: str,
    horizon: int | None,
    seed,
    sampler,
    roots=None,
) -> dict | None:
    """Identity stamp for a context's RR stream, or ``None`` if unspillable.

    Unspillable streams: non-replayable (non-int) seeds, and non-uniform
    root distributions (their benefit vectors are not fingerprinted).
    """
    from repro.sampling.roots import UniformRoots
    from repro.sampling.sharded import ShardedSampler

    if roots is not None and not isinstance(roots, UniformRoots):
        return None
    if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
        return None
    from repro.sampling.kernels import DEFAULT_STREAM_ID

    if isinstance(sampler, ShardedSampler):
        kind, workers = "sharded", int(sampler.workers)
    else:
        kind, workers = "plain", 1
    stamp = {
        "graph_sig": graph_signature(graph),
        "model": str(model),
        "stream": str(stream),
        "horizon": None if horizon is None else int(horizon),
        "seed": int(seed),
        "sampler_kind": kind,
        "workers": workers,
    }
    # Kernel stream identity: a spilled pool is only the prefix of
    # streams with the same draw order, so a kernel switch must look
    # like a different pool, never a reattachable one.  The default
    # (scalar) stream omits the field so its stamps — hence content
    # addresses — stay byte-identical to pre-kernel releases: pools
    # spilled before kernels existed keep reattaching.
    if sampler.stream_id != DEFAULT_STREAM_ID:
        stamp["stream_id"] = sampler.stream_id
    return stamp


def stamp_digest(stamp: dict) -> str:
    """Content address of a stamp (stable across key order)."""
    payload = json.dumps(stamp, sort_keys=True).encode()
    return hashlib.sha1(payload).hexdigest()[:20]


class PoolStore:
    """Directory of spilled pools, addressed by stream-identity stamps."""

    def __init__(self, directory: "str | os.PathLike") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, stamp: dict) -> Path:
        return self.directory / f"pool-{stamp_digest(stamp)}.npz"

    # ------------------------------------------------------------------
    # Spill
    # ------------------------------------------------------------------
    def save(self, stamp: dict, collection, sampler_state: dict) -> Path:
        """Write one pool: sets + stamp + sampler stream position.

        ``collection`` is any object with ``flat_view()`` (an
        :class:`~repro.sampling.rr_collection.RRCollection` or snapshot).
        Writes are atomic (temp file + rename) so a crash mid-spill can
        not leave a half-readable pool behind.
        """
        flat, offsets = collection.flat_view()
        header = {
            "format_version": _FORMAT_VERSION,
            "stamp": stamp,
            "count": len(offsets) - 1,
            "sampler_state": sampler_state,
        }
        header_bytes = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
        path = self.path_for(stamp)
        tmp = path.with_suffix(".tmp.npz")
        try:
            with open(tmp, "wb") as handle:
                np.savez(
                    handle,
                    header=header_bytes,
                    flat=np.ascontiguousarray(flat, dtype=np.int32),
                    offsets=np.ascontiguousarray(offsets, dtype=np.int64),
                )
            os.replace(tmp, path)
        except OSError as exc:
            raise PoolStoreError(f"cannot spill pool to {path}: {exc}") from exc
        finally:
            tmp.unlink(missing_ok=True)
        return path

    # ------------------------------------------------------------------
    # Reattach
    # ------------------------------------------------------------------
    def load(self, stamp: dict) -> "tuple[list[np.ndarray], dict] | None":
        """Load the pool matching ``stamp``: ``(rr_sets, sampler_state)``.

        Returns ``None`` when no file exists for the stamp.  A file whose
        embedded stamp disagrees with the requested one (hash collision,
        tampering, format drift) raises instead of silently serving the
        wrong stream.
        """
        path = self.path_for(stamp)
        if not path.exists():
            return None
        try:
            with np.load(path) as archive:
                header = json.loads(bytes(archive["header"]).decode())
                flat = archive["flat"]
                offsets = archive["offsets"]
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            raise PoolStoreError(f"cannot read spilled pool {path}: {exc}") from exc
        if header.get("format_version") != _FORMAT_VERSION:
            raise PoolStoreError(
                f"{path} has format_version {header.get('format_version')!r}; "
                f"this library reads {_FORMAT_VERSION}"
            )
        if header.get("stamp") != stamp:
            raise PoolStoreError(f"{path} holds a different stream than requested")
        count = int(header["count"])
        if len(offsets) != count + 1:
            raise PoolStoreError(f"{path} is corrupt: offsets do not match count")
        sets = [flat[offsets[i] : offsets[i + 1]] for i in range(count)]
        return sets, header["sampler_state"]

    def files(self) -> "list[Path]":
        """All spilled pools currently on disk."""
        return sorted(self.directory.glob("pool-*.npz"))
