"""Cross-session pool persistence: spill RR pools to disk, reattach later.

A session pool is the byte-exact prefix of a pure RR stream identified
by ``(graph, model, stream derivation, horizon, seed, stream_id)`` —
note there is **no worker count** in the identity: seed-pure streams are
worker-invariant, so a pool spilled at W=4 reattaches and continues at
W=16.  That makes spilling sound: save the sets plus the sampler's
stream position (for seed-pure streams, a single cursor integer), and
any later process that builds the *same* stream can serve the saved
prefix as cache and continue sampling from set ``count`` onward as if it
had never restarted.

Files are self-describing ``.npz`` archives: the flat int32 entries, the
int64 offsets, and a JSON header holding the identity stamp and the
sampler state.  Identity is content-addressed — the file name is a
digest of the stamp — so reattachment never needs session names and a
stale file for a different seed/graph can never be picked up by
accident.

**Legacy spills.**  Files stamped by the v1 (``(seed, workers)``-derived)
streams carry ``workers``/``sampler_kind`` in their stamps, so their
content addresses can never match a current stamp: looking one up is a
clean cache miss, never silent mixing.  Their *sets* remain readable
through :meth:`PoolStore.load_file` (read-only — a legacy stream cannot
be continued by a seed-pure sampler).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from repro.exceptions import ReproError

_FORMAT_VERSION = 1


class PoolStoreError(ReproError):
    """Raised when a spilled pool cannot be written or read."""


def graph_signature(graph) -> str:
    """Content fingerprint of a CSR graph (structure + weights).

    Delegates to :meth:`CSRGraph.fingerprint` when available so the graph
    caches the digest (it is rehashed on every stamp otherwise); the
    fallback keeps duck-typed graph stand-ins working.
    """
    fingerprint = getattr(graph, "fingerprint", None)
    if callable(fingerprint):
        return fingerprint()
    digest = hashlib.sha1()
    digest.update(f"{graph.n}:{graph.m}:".encode())
    for arr in (graph.out_indptr, graph.out_indices, graph.out_weights):
        digest.update(np.ascontiguousarray(arr).tobytes())
    return digest.hexdigest()[:16]


def make_stamp(
    graph,
    *,
    model: str,
    stream: str,
    horizon: int | None,
    seed,
    sampler,
    roots=None,
    graph_version=None,
) -> dict | None:
    """Identity stamp for a context's RR stream, or ``None`` if unspillable.

    Unspillable streams: non-replayable (non-int) seeds, and non-uniform
    root distributions (their benefit vectors are not fingerprinted).

    ``graph_version`` is the mutation-lineage counter of a
    :class:`~repro.dynamic.MutableGraphView` (``None`` means "static
    graph", equivalent to version 0).  It is embedded only when nonzero,
    so every pre-dynamic-graphs spill keeps its content address and
    reattaches cleanly at version 0; for mutated graphs the version keys
    the stamp *in addition to* ``graph_sig``, pinning the spill to one
    lineage position.
    """
    from repro.sampling.roots import UniformRoots

    if roots is not None and not isinstance(roots, UniformRoots):
        return None
    if not isinstance(seed, (int, np.integer)) or isinstance(seed, bool):
        return None
    # No sampler shape in the identity: seed-pure streams are identical
    # for any worker count and backend, so one spill serves them all.
    # The stream_id (kernel draw order + derivation version) is always
    # embedded — v2 stamps must never collide with legacy ones, whose
    # extra workers/sampler_kind keys change the digest anyway.
    stamp = {
        "graph_sig": graph_signature(graph),
        "model": str(model),
        "stream": str(stream),
        "horizon": None if horizon is None else int(horizon),
        "seed": int(seed),
        "stream_id": sampler.stream_id,
    }
    if graph_version:
        stamp["graph_version"] = int(graph_version)
    return stamp


def stamp_digest(stamp: dict) -> str:
    """Content address of a stamp (stable across key order)."""
    payload = json.dumps(stamp, sort_keys=True).encode()
    return hashlib.sha1(payload).hexdigest()[:20]


class PoolStore:
    """Directory of spilled pools, addressed by stream-identity stamps."""

    def __init__(self, directory: "str | os.PathLike") -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)

    def path_for(self, stamp: dict) -> Path:
        return self.directory / f"pool-{stamp_digest(stamp)}.npz"

    # ------------------------------------------------------------------
    # Spill
    # ------------------------------------------------------------------
    def save(self, stamp: dict, collection, sampler_state: dict) -> Path:
        """Write one pool: sets + stamp + sampler stream position.

        ``collection`` is any object with ``flat_view()`` (an
        :class:`~repro.sampling.rr_collection.RRCollection` or snapshot).
        Writes are atomic (temp file + rename) so a crash mid-spill can
        not leave a half-readable pool behind.  A file already holding a
        *longer* prefix of the same stream is left alone: prefixes of a
        pure stream only ever extend each other, so keeping the longest
        one preserves the most warmup (suffix eviction spills the full
        pool before truncating in memory and relies on this).
        """
        flat, offsets = collection.flat_view()
        existing = self._peek_count(self.path_for(stamp))
        if existing is not None and existing >= len(offsets) - 1:
            return self.path_for(stamp)
        header = {
            "format_version": _FORMAT_VERSION,
            "stamp": stamp,
            "count": len(offsets) - 1,
            "sampler_state": sampler_state,
        }
        header_bytes = np.frombuffer(json.dumps(header).encode(), dtype=np.uint8)
        path = self.path_for(stamp)
        tmp = path.with_suffix(".tmp.npz")
        try:
            with open(tmp, "wb") as handle:
                np.savez(
                    handle,
                    header=header_bytes,
                    flat=np.ascontiguousarray(flat, dtype=np.int32),
                    offsets=np.ascontiguousarray(offsets, dtype=np.int64),
                )
            os.replace(tmp, path)
        except OSError as exc:
            raise PoolStoreError(f"cannot spill pool to {path}: {exc}") from exc
        finally:
            tmp.unlink(missing_ok=True)
        return path

    def _peek_count(self, path: Path) -> int | None:
        """Set count of an existing spill, or ``None`` if absent/unreadable."""
        if not path.exists():
            return None
        try:
            with np.load(path) as archive:
                header = json.loads(bytes(archive["header"]).decode())
            return int(header["count"])
        except (OSError, ValueError, KeyError, json.JSONDecodeError):
            return None  # unreadable: let save() overwrite it

    # ------------------------------------------------------------------
    # Reattach
    # ------------------------------------------------------------------
    def load(self, stamp: dict) -> "tuple[list[np.ndarray], dict] | None":
        """Load the pool matching ``stamp``: ``(rr_sets, sampler_state)``.

        Returns ``None`` when no file exists for the stamp.  A file whose
        embedded stamp disagrees with the requested one (hash collision,
        tampering, format drift) raises instead of silently serving the
        wrong stream.
        """
        path = self.path_for(stamp)
        if not path.exists():
            return None
        try:
            with np.load(path) as archive:
                header = json.loads(bytes(archive["header"]).decode())
                flat = archive["flat"]
                offsets = archive["offsets"]
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            raise PoolStoreError(f"cannot read spilled pool {path}: {exc}") from exc
        if header.get("format_version") != _FORMAT_VERSION:
            raise PoolStoreError(
                f"{path} has format_version {header.get('format_version')!r}; "
                f"this library reads {_FORMAT_VERSION}"
            )
        if header.get("stamp") != stamp:
            raise PoolStoreError(f"{path} holds a different stream than requested")
        count = int(header["count"])
        if len(offsets) != count + 1:
            raise PoolStoreError(f"{path} is corrupt: offsets do not match count")
        sets = [flat[offsets[i] : offsets[i + 1]] for i in range(count)]
        return sets, header["sampler_state"]

    def load_file(self, path: "str | os.PathLike") -> dict:
        """Read one spill file by path, without stamp matching — read-only.

        The migration / inspection entry point: legacy (v1-stream) spills
        have stamps no current sampler can produce, so they are
        unreachable through :meth:`load`; this reads any structurally
        valid file and returns ``{"stamp", "sets", "sampler_state",
        "count"}``.  The sets are plain arrays (usable as a frozen
        RR collection); the sampler state is returned verbatim and a
        legacy state will be *refused* by
        :meth:`~repro.sampling.base.RRSampler.load_state_dict` — a v1
        stream cannot be continued, only read.
        """
        path = Path(path)
        try:
            with np.load(path) as archive:
                header = json.loads(bytes(archive["header"]).decode())
                flat = archive["flat"]
                offsets = archive["offsets"]
        except (OSError, ValueError, KeyError, json.JSONDecodeError) as exc:
            raise PoolStoreError(f"cannot read spilled pool {path}: {exc}") from exc
        if header.get("format_version") != _FORMAT_VERSION:
            raise PoolStoreError(
                f"{path} has format_version {header.get('format_version')!r}; "
                f"this library reads {_FORMAT_VERSION}"
            )
        count = int(header["count"])
        if len(offsets) != count + 1:
            raise PoolStoreError(f"{path} is corrupt: offsets do not match count")
        return {
            "stamp": header.get("stamp", {}),
            "sets": [flat[offsets[i] : offsets[i + 1]] for i in range(count)],
            "sampler_state": header["sampler_state"],
            "count": count,
        }

    def files(self) -> "list[Path]":
        """All spilled pools currently on disk."""
        return sorted(self.directory.glob("pool-*.npz"))
