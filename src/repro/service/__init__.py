"""Concurrent multi-user serving for influence maximization.

This package turns the session-oriented engine (PR 2) into a *server*:
many users, one conditioned sample pool, bounded memory, durable warmup.

* :class:`~repro.service.pool.PoolManager` — thread-safe shared RR
  pools: per-query immutable prefix snapshots (readers never block
  samplers), a global byte budget with LRU eviction of idle pools,
  per-session byte quotas (a hot tenant sheds its *own* pools first),
  and transparent spill/reattach through
  :class:`~repro.service.store.PoolStore`;
* :class:`~repro.service.admission.AdmissionController` — cost-model
  admission: a query's RR-set bill is estimated from theta bounds +
  observed mean set size + pool occupancy *before* any sampling, and
  unaffordable queries are rejected (or briefly queued) with a
  structured ``over_budget`` error carrying the estimate;
* :class:`~repro.service.service.InfluenceService` — a registry of
  named :class:`~repro.engine.engine.InfluenceEngine` sessions sharing
  one pool manager, with a future-based :meth:`submit` query surface
  and a name-based op vocabulary for transports;
* :class:`~repro.service.server.InfluenceServer` /
  :class:`~repro.service.client.ServiceClient` — asyncio
  newline-delimited JSON over TCP with per-connection pipelining
  (``repro serve`` / ``repro query --connect``), typed versioned frames
  (:mod:`repro.service.protocol`), machine-readable error codes
  (:mod:`repro.service.errors`), and Prometheus text exposition
  (:func:`~repro.service.metrics.prometheus_text`,
  ``repro serve --metrics-port``).

The load-bearing guarantee everywhere: the RR stream is a pure function
of the seed alone (worker count and backend are runtime throughput
knobs — see the ``resize`` op), so *any* interleaving of concurrent
queries — and any spill/truncate/evict/reattach history, at any worker
count — returns byte-identical answers to a sequential cold run at the
same seed.
"""

from repro.service.admission import AdmissionController, CostEstimate, estimate_cost
from repro.service.client import ServiceClient
from repro.service.errors import (
    ERROR_CODES,
    InternalServiceError,
    OverBudgetError,
    ServiceError,
    UnknownSessionError,
)
from repro.service.metrics import LatencyHistogram, MetricsRegistry, prometheus_text
from repro.service.pool import PoolKey, PoolManager, QueryView
from repro.service.protocol import (
    PROTO_VERSION,
    ErrorResponse,
    OkResponse,
    Request,
    result_to_dict,
    summarize_result,
)
from repro.service.server import InfluenceServer, serve
from repro.service.service import OPERATIONS, InfluenceService
from repro.service.store import PoolStore, graph_signature, make_stamp

__all__ = [
    "InfluenceService",
    "InfluenceServer",
    "ServiceClient",
    "ServiceError",
    "UnknownSessionError",
    "OverBudgetError",
    "InternalServiceError",
    "ERROR_CODES",
    "AdmissionController",
    "CostEstimate",
    "estimate_cost",
    "PoolManager",
    "PoolKey",
    "QueryView",
    "PoolStore",
    "OPERATIONS",
    "PROTO_VERSION",
    "Request",
    "OkResponse",
    "ErrorResponse",
    "serve",
    "result_to_dict",
    "summarize_result",
    "make_stamp",
    "graph_signature",
    "LatencyHistogram",
    "MetricsRegistry",
    "prometheus_text",
]
