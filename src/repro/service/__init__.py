"""Concurrent multi-user serving for influence maximization.

This package turns the session-oriented engine (PR 2) into a *server*:
many users, one conditioned sample pool, bounded memory, durable warmup.

* :class:`~repro.service.pool.PoolManager` — thread-safe shared RR
  pools: per-query immutable prefix snapshots (readers never block
  samplers), a global byte budget with LRU eviction of idle pools, and
  transparent spill/reattach through
  :class:`~repro.service.store.PoolStore`;
* :class:`~repro.service.service.InfluenceService` — a registry of
  named :class:`~repro.engine.engine.InfluenceEngine` sessions sharing
  one pool manager, with a future-based :meth:`submit` query surface
  and a name-based op vocabulary for transports;
* :class:`~repro.service.server.InfluenceServer` /
  :class:`~repro.service.client.ServiceClient` — newline-delimited JSON
  over TCP (``repro serve`` / ``repro query --connect``).

The load-bearing guarantee everywhere: the RR stream is a pure function
of the seed alone (worker count and backend are runtime throughput
knobs — see the ``resize`` op), so *any* interleaving of concurrent
queries — and any spill/truncate/evict/reattach history, at any worker
count — returns byte-identical answers to a sequential cold run at the
same seed.
"""

from repro.service.client import ServiceClient
from repro.service.metrics import LatencyHistogram, MetricsRegistry
from repro.service.pool import PoolKey, PoolManager, QueryView
from repro.service.protocol import result_to_dict, summarize_result
from repro.service.server import InfluenceServer, serve
from repro.service.service import OPERATIONS, InfluenceService, ServiceError
from repro.service.store import PoolStore, graph_signature, make_stamp

__all__ = [
    "InfluenceService",
    "InfluenceServer",
    "ServiceClient",
    "ServiceError",
    "PoolManager",
    "PoolKey",
    "QueryView",
    "PoolStore",
    "OPERATIONS",
    "serve",
    "result_to_dict",
    "summarize_result",
    "make_stamp",
    "graph_signature",
    "LatencyHistogram",
    "MetricsRegistry",
]
