"""Service observability: per-operation latency histograms.

Fixed log-scale buckets (Prometheus-style ``le`` upper bounds in
seconds) keep recording O(1), lock-cheap, and mergeable; quantiles are
estimated from the bucket counts, which is exactly the fidelity a
serving dashboard needs — the raw samples are never retained.

The :class:`MetricsRegistry` is owned by
:class:`~repro.service.service.InfluenceService`, which times every
``call`` op through it and exposes the snapshot over the NDJSON
protocol as the ``metrics`` operation (``repro query``'s ``stats``
output renders the same numbers).
"""

from __future__ import annotations

import threading

#: histogram upper bounds, seconds; one overflow bucket (+inf) follows.
BUCKET_BOUNDS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class LatencyHistogram:
    """One operation's latency distribution, thread-safe."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self._count = 0
        self._total = 0.0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        slot = len(BUCKET_BOUNDS)
        for i, bound in enumerate(BUCKET_BOUNDS):
            if seconds <= bound:
                slot = i
                break
        with self._lock:
            self._counts[slot] += 1
            self._count += 1
            self._total += seconds
            if seconds > self._max:
                self._max = seconds

    def _capture(self) -> tuple:
        """One consistent (counts, count, total, max) under one lock hold."""
        with self._lock:
            return list(self._counts), self._count, self._total, self._max

    @staticmethod
    def _quantile_from(counts: list, count: int, maximum: float, q: float) -> float:
        if count == 0:
            return 0.0
        rank = q * count
        seen = 0
        for i, bucket in enumerate(counts):
            seen += bucket
            if seen >= rank:
                # the bucket's upper bound, clamped by the exact max so a
                # sub-millisecond op never reports p50 > max
                bound = BUCKET_BOUNDS[i] if i < len(BUCKET_BOUNDS) else maximum
                return min(bound, maximum)
        return maximum

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th observation); 0.0 when empty."""
        counts, count, _total, maximum = self._capture()
        return self._quantile_from(counts, count, maximum, q)

    def snapshot(self) -> dict:
        # One capture for the whole snapshot: quantiles, mean, max and
        # buckets all describe the same instant even under concurrent
        # observe() calls (re-acquiring per quantile would let p50 count
        # observations that max/mean missed).
        counts, count, total, maximum = self._capture()
        mean = total / count if count else 0.0
        return {
            "count": count,
            "total_seconds": total,
            "mean_seconds": mean,
            "max_seconds": maximum,
            "p50_seconds": self._quantile_from(counts, count, maximum, 0.50),
            "p90_seconds": self._quantile_from(counts, count, maximum, 0.90),
            "p99_seconds": self._quantile_from(counts, count, maximum, 0.99),
            "buckets": [
                {"le": bound, "count": counts[i]}
                for i, bound in enumerate(BUCKET_BOUNDS)
            ]
            + [{"le": "inf", "count": counts[-1]}],
        }


class MetricsRegistry:
    """Per-operation latency histograms, created on first observation."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._histograms: dict[str, LatencyHistogram] = {}

    def observe(self, op: str, seconds: float) -> None:
        with self._lock:
            histogram = self._histograms.get(op)
            if histogram is None:
                histogram = self._histograms[op] = LatencyHistogram()
        histogram.observe(seconds)

    def snapshot(self) -> dict:
        """``{op: histogram snapshot}`` for every op observed so far."""
        with self._lock:
            histograms = dict(self._histograms)
        return {op: histogram.snapshot() for op, histogram in sorted(histograms.items())}
