"""Service observability: latency histograms + Prometheus exposition.

Fixed log-scale buckets (Prometheus-style ``le`` upper bounds in
seconds) keep recording O(1), lock-cheap, and mergeable; quantiles are
estimated from the bucket counts, which is exactly the fidelity a
serving dashboard needs — the raw samples are never retained.

The :class:`MetricsRegistry` is owned by
:class:`~repro.service.service.InfluenceService`, which times every
``call`` op through it and exposes the snapshot over the NDJSON
protocol as the ``metrics`` operation (``repro query``'s ``stats``
output renders the same numbers).

:func:`prometheus_text` renders the whole serving tier — latency
histograms, pool-byte gauges, per-tenant occupancy, admission
accept/reject/queue counters — in Prometheus text exposition format
0.0.4, served by the asyncio server's ``metrics_text`` op and plain
``GET /metrics`` scrapes on ``repro serve --metrics-port``.
"""

from __future__ import annotations

import threading

#: histogram upper bounds, seconds; one overflow bucket (+inf) follows.
BUCKET_BOUNDS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
    0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class LatencyHistogram:
    """One operation's latency distribution, thread-safe."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counts = [0] * (len(BUCKET_BOUNDS) + 1)
        self._count = 0
        self._total = 0.0
        self._max = 0.0

    def observe(self, seconds: float) -> None:
        seconds = float(seconds)
        slot = len(BUCKET_BOUNDS)
        for i, bound in enumerate(BUCKET_BOUNDS):
            if seconds <= bound:
                slot = i
                break
        with self._lock:
            self._counts[slot] += 1
            self._count += 1
            self._total += seconds
            if seconds > self._max:
                self._max = seconds

    def _capture(self) -> tuple:
        """One consistent (counts, count, total, max) under one lock hold."""
        with self._lock:
            return list(self._counts), self._count, self._total, self._max

    @staticmethod
    def _quantile_from(counts: list, count: int, maximum: float, q: float) -> float:
        if count == 0:
            return 0.0
        rank = q * count
        seen = 0
        for i, bucket in enumerate(counts):
            seen += bucket
            if seen >= rank:
                # the bucket's upper bound, clamped by the exact max so a
                # sub-millisecond op never reports p50 > max
                bound = BUCKET_BOUNDS[i] if i < len(BUCKET_BOUNDS) else maximum
                return min(bound, maximum)
        return maximum

    def quantile(self, q: float) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket
        holding the q-th observation); 0.0 when empty."""
        counts, count, _total, maximum = self._capture()
        return self._quantile_from(counts, count, maximum, q)

    def snapshot(self) -> dict:
        # One capture for the whole snapshot: quantiles, mean, max and
        # buckets all describe the same instant even under concurrent
        # observe() calls (re-acquiring per quantile would let p50 count
        # observations that max/mean missed).
        counts, count, total, maximum = self._capture()
        mean = total / count if count else 0.0
        return {
            "count": count,
            "total_seconds": total,
            "mean_seconds": mean,
            "max_seconds": maximum,
            "p50_seconds": self._quantile_from(counts, count, maximum, 0.50),
            "p90_seconds": self._quantile_from(counts, count, maximum, 0.90),
            "p99_seconds": self._quantile_from(counts, count, maximum, 0.99),
            "buckets": [
                {"le": bound, "count": counts[i]}
                for i, bound in enumerate(BUCKET_BOUNDS)
            ]
            + [{"le": "inf", "count": counts[-1]}],
        }


class MetricsRegistry:
    """Per-operation latency histograms, created on first observation."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._histograms: dict[str, LatencyHistogram] = {}

    def observe(self, op: str, seconds: float) -> None:
        with self._lock:
            histogram = self._histograms.get(op)
            if histogram is None:
                histogram = self._histograms[op] = LatencyHistogram()
        histogram.observe(seconds)

    def snapshot(self) -> dict:
        """``{op: histogram snapshot}`` for every op observed so far."""
        with self._lock:
            histograms = dict(self._histograms)
        return {op: histogram.snapshot() for op, histogram in sorted(histograms.items())}


# ----------------------------------------------------------------------
# Prometheus text exposition (format 0.0.4)
# ----------------------------------------------------------------------
def _escape_label(value: str) -> str:
    return (
        str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
    )


def _labels(**labels) -> str:
    inner = ",".join(f'{k}="{_escape_label(v)}"' for k, v in labels.items())
    return "{" + inner + "}" if inner else ""


def _num(value) -> str:
    if isinstance(value, float) and not value.is_integer():
        return repr(value)
    return str(int(value))


class _Exposition:
    """Accumulates families in exposition order with HELP/TYPE headers."""

    def __init__(self) -> None:
        self.lines: list[str] = []

    def family(self, name: str, kind: str, help_text: str) -> None:
        self.lines.append(f"# HELP {name} {help_text}")
        self.lines.append(f"# TYPE {name} {kind}")

    def sample(self, name: str, value, **labels) -> None:
        self.lines.append(f"{name}{_labels(**labels)} {_num(value)}")

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"


def prometheus_text(service, *, connections: "int | None" = None) -> str:
    """Render one scrape of the serving tier in Prometheus text format.

    Families: global/per-tenant pool-byte gauges, per-tenant occupancy
    (pools/sets/in-flight), quota and admission-reservation gauges,
    admission decision counters, eviction/truncation counters, and
    per-op request counts + latency histograms (cumulative buckets, as
    the format requires).  ``connections`` adds the asyncio server's
    open-connection gauge when serving over TCP.
    """
    exp = _Exposition()
    pools = service.pools
    usage = pools.namespace_usage()
    admission = service.admission
    decisions = admission.counters()
    tenants = sorted(set(usage) | set(decisions))

    exp.family("repro_pool_bytes", "gauge", "Retained RR-set bytes across all pools.")
    exp.sample("repro_pool_bytes", pools.total_bytes())
    if pools.budget_bytes is not None:
        exp.family(
            "repro_pool_budget_bytes", "gauge", "Global byte budget over all pools."
        )
        exp.sample("repro_pool_budget_bytes", pools.budget_bytes)

    exp.family(
        "repro_session_pool_bytes", "gauge", "Retained RR-set bytes per session."
    )
    for ns in tenants:
        exp.sample("repro_session_pool_bytes", usage.get(ns, {}).get("bytes", 0), session=ns)
    exp.family(
        "repro_session_pool_sets", "gauge", "Pooled RR sets per session."
    )
    for ns in tenants:
        exp.sample("repro_session_pool_sets", usage.get(ns, {}).get("sets", 0), session=ns)
    exp.family("repro_session_pools", "gauge", "Open pools per session.")
    for ns in tenants:
        exp.sample("repro_session_pools", usage.get(ns, {}).get("pools", 0), session=ns)
    exp.family(
        "repro_session_inflight_queries", "gauge",
        "Queries currently holding pool snapshots, per session.",
    )
    for ns in tenants:
        exp.sample(
            "repro_session_inflight_queries",
            usage.get(ns, {}).get("inflight", 0),
            session=ns,
        )

    quotas = {ns: row["quota"] for ns, row in usage.items() if row.get("quota")}
    if quotas:
        exp.family(
            "repro_session_quota_bytes", "gauge", "Per-session byte quota."
        )
        for ns in sorted(quotas):
            exp.sample("repro_session_quota_bytes", quotas[ns], session=ns)
    exp.family(
        "repro_session_reserved_bytes", "gauge",
        "Bytes reserved by admitted in-flight queries, per session.",
    )
    for ns in tenants:
        exp.sample(
            "repro_session_reserved_bytes", admission.reserved_for(ns), session=ns
        )

    exp.family(
        "repro_admission_decisions_total", "counter",
        "Admission controller decisions by session and outcome.",
    )
    for ns in tenants:
        outcomes = decisions.get(ns, {})
        for outcome in ("accepted", "rejected", "queued"):
            exp.sample(
                "repro_admission_decisions_total",
                outcomes.get(outcome, 0),
                session=ns,
                outcome=outcome,
            )

    exp.family(
        "repro_pool_evictions_total", "counter",
        "Whole-pool evictions under byte pressure, per session.",
    )
    for ns in tenants:
        exp.sample("repro_pool_evictions_total", pools.evictions_for(ns), session=ns)
    exp.family(
        "repro_pool_truncations_total", "counter",
        "Suffix truncations under byte pressure, per session.",
    )
    for ns in tenants:
        exp.sample("repro_pool_truncations_total", pools.truncations_for(ns), session=ns)

    latencies = service.metrics.snapshot()
    exp.family("repro_requests_total", "counter", "Completed requests per operation.")
    for op, snap in latencies.items():
        exp.sample("repro_requests_total", snap["count"], op=op)
    exp.family(
        "repro_request_latency_seconds", "histogram",
        "Request latency per operation.",
    )
    for op, snap in latencies.items():
        cumulative = 0
        for bucket in snap["buckets"]:
            cumulative += bucket["count"]
            le = "+Inf" if bucket["le"] == "inf" else repr(float(bucket["le"]))
            exp.sample(
                "repro_request_latency_seconds_bucket", cumulative, op=op, le=le
            )
        exp.sample("repro_request_latency_seconds_sum", snap["total_seconds"], op=op)
        exp.sample("repro_request_latency_seconds_count", snap["count"], op=op)

    if connections is not None:
        exp.family(
            "repro_connections_open", "gauge", "Open client connections."
        )
        exp.sample("repro_connections_open", connections)
    return exp.text()
