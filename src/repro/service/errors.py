"""Service errors with stable, machine-readable codes.

Every error a transport can put on the wire carries a ``code`` drawn
from a small closed vocabulary (:data:`ERROR_CODES`), so clients branch
on ``error.code`` instead of string-matching messages:

``bad_request``
    The request itself is wrong — unknown op, malformed params, invalid
    algorithm parameters.  Retrying unchanged will fail again.
``no_such_session``
    The named session does not exist on this server.
``over_budget``
    The admission controller predicted the query's RR-set bill would
    blow the session's byte quota; the structured cost estimate rides
    along in ``details`` (see :mod:`repro.service.admission`).
``internal``
    An unexpected server-side failure; the request may be retried.

:class:`ServiceError` lives here (re-exported by
:mod:`repro.service.service` for compatibility) so the protocol, client,
service, and admission layers can share one hierarchy without import
cycles.
"""

from __future__ import annotations

from repro.exceptions import ReproError

#: the closed error-code vocabulary, pinned by tests and docs/PROTOCOL.md.
ERROR_CODES = ("bad_request", "no_such_session", "over_budget", "internal")


class ServiceError(ReproError):
    """Raised for unknown operations and service misuse (``bad_request``)."""

    code = "bad_request"

    @property
    def details(self) -> "dict | None":
        """Optional structured payload serialized into the wire error."""
        return None


class UnknownSessionError(ServiceError):
    """The named session is not open on this service."""

    code = "no_such_session"


class OverBudgetError(ServiceError):
    """Admission control rejected a query whose predicted bill blows the quota.

    Carries the :class:`~repro.service.admission.CostEstimate` (as a
    plain dict) that justified the rejection, so callers can shrink the
    query — lower ``k``, coarser ``epsilon``, fewer ``samples`` — or ask
    for a bigger quota.
    """

    code = "over_budget"

    def __init__(self, message: str, *, estimate: "dict | None" = None) -> None:
        super().__init__(message)
        self.estimate = dict(estimate) if estimate else None

    @property
    def details(self) -> "dict | None":
        return self.estimate


class InternalServiceError(ServiceError):
    """Server-side failure that is not the client's fault."""

    code = "internal"


#: wire code -> exception class raised by :class:`ServiceClient`.
_CODE_CLASSES = {
    "bad_request": ServiceError,
    "no_such_session": UnknownSessionError,
    "over_budget": OverBudgetError,
    "internal": InternalServiceError,
}


def error_code(exc: BaseException) -> str:
    """The stable wire code for one exception.

    Library errors (and the argument errors the service validates with)
    are the client's fault — ``bad_request`` — unless the exception
    class pins a more specific code; anything else is ``internal``.
    """
    code = getattr(exc, "code", None)
    if code in ERROR_CODES:
        return code
    if isinstance(exc, (ReproError, ValueError, KeyError, TypeError)):
        return "bad_request"
    return "internal"


def error_details(exc: BaseException) -> "dict | None":
    """The structured payload one exception contributes to the wire error."""
    details = getattr(exc, "details", None)
    return dict(details) if isinstance(details, dict) else None


def exception_from_wire(error: dict) -> ServiceError:
    """Rebuild the typed client-side exception for one wire error dict.

    Unknown codes (a newer server) degrade to plain :class:`ServiceError`
    — the message still names the server-side type.
    """
    code = error.get("code")
    message = (
        f"{error.get('type', 'ServiceError')}: {error.get('message', 'unknown error')}"
    )
    cls = _CODE_CLASSES.get(code, ServiceError)
    if cls is OverBudgetError:
        return OverBudgetError(message, estimate=error.get("details"))
    exc = cls(message)
    return exc
