"""Wire protocol for the influence service: typed, versioned NDJSON.

One request per line, one response per line, over any byte stream (the
asyncio TCP server, a pipe, a test harness).  Frames are JSON objects;
the typed view of each frame is a dataclass — :class:`Request`,
:class:`OkResponse`, :class:`ErrorResponse` — with ``to_wire`` /
``from_wire`` converters, so transports never build ad-hoc dicts:

.. code-block:: json

    {"id": 7, "op": "maximize", "session": "default", "params": {"k": 10}, "proto": 1}
    {"id": 7, "ok": true, "result": {"algorithm": "D-SSA", "seeds": [3, 1]}, "proto": 1}
    {"id": 8, "ok": false, "error": {"type": "ServiceError", "code": "bad_request",
                                     "message": "..."}}

**Versioning.**  ``proto`` declares the protocol revision a client
speaks; the current revision is :data:`PROTO_VERSION`.  A request
*without* ``proto`` is an implicit version-0 client (the pre-typed dict
protocol) and keeps working unchanged: v0 responses carry the same
``id``/``ok``/``result``/``error.type``/``error.message`` fields they
always did — everything newer (``error.code``, ``error.details``,
echoed ``proto``) is additive.  Clients may open with a ``hello`` frame
to learn the server's revision and op vocabulary before issuing
queries.

Requests are independent per connection: the server answers each as it
completes, so responses to pipelined requests may arrive **out of
order** — match on ``id``, not arrival order.

Numbers are plain JSON numbers and seed lists are plain JSON arrays, so
byte-identity of served answers is checkable from any client language.
``IMResult.extras`` (per-iteration traces) stays server-side — it is
diagnostics, unbounded in size, and not part of the answer.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

import numpy as np

from repro.core.result import IMResult
from repro.exceptions import ReproError
from repro.service.errors import error_code, error_details

#: the protocol revision this build speaks; negotiated via ``hello``.
PROTO_VERSION = 1


class ProtocolError(ReproError):
    """Raised on malformed protocol messages (wire code ``bad_request``)."""

    code = "bad_request"


def to_jsonable(value):
    """Recursively coerce numpy scalars/arrays into plain JSON types."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [to_jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    return value


# ----------------------------------------------------------------------
# Typed frames
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class Request:
    """One decoded request frame.

    ``proto`` is the client's declared protocol revision; ``None`` means
    an implicit version-0 client, whose responses must stay shaped
    exactly as the pre-typed protocol shaped them.
    """

    op: str
    id: object = None
    session: str = "default"
    params: dict = field(default_factory=dict)
    proto: "int | None" = None

    @classmethod
    def from_wire(cls, message: dict) -> "Request":
        """Validate one decoded frame into a typed request."""
        op = message.get("op")
        if not isinstance(op, str):
            raise ProtocolError("request needs a string 'op' field")
        params = message.get("params", {})
        if params is None:
            params = {}
        if not isinstance(params, dict):
            raise ProtocolError("'params' must be a JSON object")
        session = message.get("session", "default")
        if not isinstance(session, str):
            raise ProtocolError("'session' must be a string")
        proto = message.get("proto")
        if proto is not None:
            if not isinstance(proto, int) or isinstance(proto, bool):
                raise ProtocolError("'proto' must be an integer protocol revision")
            if proto > PROTO_VERSION:
                raise ProtocolError(
                    f"client speaks protocol revision {proto}, this server "
                    f"speaks up to {PROTO_VERSION}"
                )
        return cls(
            op=op,
            id=message.get("id"),
            session=session,
            params=dict(params),
            proto=proto,
        )

    def to_wire(self) -> dict:
        message = {"id": self.id, "op": self.op, "session": self.session,
                   "params": self.params}
        if self.proto is not None:
            message["proto"] = self.proto
        return message


@dataclass(frozen=True)
class OkResponse:
    """A successful response to one request."""

    id: object
    result: object
    proto: "int | None" = None

    @property
    def ok(self) -> bool:
        return True

    def to_wire(self) -> dict:
        message = {"id": self.id, "ok": True, "result": to_jsonable(self.result)}
        if self.proto is not None:
            message["proto"] = PROTO_VERSION
        return message


@dataclass(frozen=True)
class ErrorResponse:
    """A failed response: stable ``code``, exception type, message.

    ``details`` carries optional structured context — for
    ``over_budget`` it is the admission controller's cost estimate.
    """

    id: object
    code: str
    error_type: str
    message: str
    details: "dict | None" = None
    proto: "int | None" = None

    @property
    def ok(self) -> bool:
        return False

    @classmethod
    def from_exception(
        cls, request_id, exc: BaseException, *, proto: "int | None" = None,
        code: "str | None" = None,
    ) -> "ErrorResponse":
        return cls(
            id=request_id,
            code=code if code is not None else error_code(exc),
            error_type=type(exc).__name__,
            message=str(exc),
            details=error_details(exc),
            proto=proto,
        )

    def to_wire(self) -> dict:
        error = {"type": self.error_type, "message": self.message, "code": self.code}
        if self.details is not None:
            error["details"] = to_jsonable(self.details)
        message = {"id": self.id, "ok": False, "error": error}
        if self.proto is not None:
            message["proto"] = PROTO_VERSION
        return message


def hello_payload(operations=()) -> dict:
    """The server's side of ``hello`` version negotiation."""
    return {
        "proto": PROTO_VERSION,
        "server": "repro-im",
        "ops": list(operations),
    }


# ----------------------------------------------------------------------
# Result flattening / line codec
# ----------------------------------------------------------------------
def result_to_dict(result: IMResult) -> dict:
    """Flatten one :class:`IMResult` for the wire (``extras`` excluded)."""
    return to_jsonable(
        {
            "algorithm": result.algorithm,
            "k": result.k,
            "seeds": list(result.seeds),
            "influence": result.influence,
            "samples": result.samples,
            "optimization_samples": result.optimization_samples,
            "verification_samples": result.verification_samples,
            "iterations": result.iterations,
            "stopped_by": result.stopped_by,
            "elapsed_seconds": result.elapsed_seconds,
            "memory_bytes": result.memory_bytes,
        }
    )


def summarize_result(payload: dict) -> str:
    """One-line summary of a wire result (mirrors ``IMResult.summary``)."""
    return (
        f"{payload['algorithm']}: k={payload['k']} "
        f"influence≈{payload['influence']:.1f} samples={payload['samples']} "
        f"iterations={payload['iterations']} "
        f"time={payload['elapsed_seconds']:.3f}s stop={payload['stopped_by']}"
    )


def encode_line(message) -> bytes:
    """Serialize one protocol frame (typed or dict) to a JSON line."""
    if hasattr(message, "to_wire"):
        message = message.to_wire()
    return (json.dumps(to_jsonable(message), separators=(",", ":")) + "\n").encode()


def decode_line(line: "bytes | str") -> dict:
    """Parse one protocol line; raises :class:`ProtocolError` when malformed."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty protocol line")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"protocol messages are JSON objects, got {type(message).__name__}")
    return message


def error_response(request_id, exc: BaseException) -> dict:
    """Build the error response dict for one failed request (v0 helper)."""
    return ErrorResponse.from_exception(request_id, exc).to_wire()


def ok_response(request_id, result) -> dict:
    """Build the success response dict for one request (v0 helper)."""
    return OkResponse(request_id, result).to_wire()
