"""Wire protocol for the influence service: newline-delimited JSON.

One request per line, one response per line, over any byte stream (the
TCP server, a pipe, a test harness).  Requests name an operation, a
session, and a parameter dict; responses carry either a result or a
typed error:

.. code-block:: json

    {"id": 7, "op": "maximize", "session": "default", "params": {"k": 10}}
    {"id": 7, "ok": true, "result": {"algorithm": "D-SSA", "seeds": [3, 1], ...}}
    {"id": 8, "ok": false, "error": {"type": "ParameterError", "message": "..."}}

Numbers are plain JSON numbers and seed lists are plain JSON arrays, so
byte-identity of served answers is checkable from any client language.
``IMResult.extras`` (per-iteration traces) stays server-side — it is
diagnostics, unbounded in size, and not part of the answer.
"""

from __future__ import annotations

import json

import numpy as np

from repro.core.result import IMResult
from repro.exceptions import ReproError


class ProtocolError(ReproError):
    """Raised on malformed protocol messages."""


def to_jsonable(value):
    """Recursively coerce numpy scalars/arrays into plain JSON types."""
    if isinstance(value, (np.integer,)):
        return int(value)
    if isinstance(value, (np.floating,)):
        return float(value)
    if isinstance(value, np.ndarray):
        return [to_jsonable(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): to_jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [to_jsonable(v) for v in value]
    return value


def result_to_dict(result: IMResult) -> dict:
    """Flatten one :class:`IMResult` for the wire (``extras`` excluded)."""
    return to_jsonable(
        {
            "algorithm": result.algorithm,
            "k": result.k,
            "seeds": list(result.seeds),
            "influence": result.influence,
            "samples": result.samples,
            "optimization_samples": result.optimization_samples,
            "verification_samples": result.verification_samples,
            "iterations": result.iterations,
            "stopped_by": result.stopped_by,
            "elapsed_seconds": result.elapsed_seconds,
            "memory_bytes": result.memory_bytes,
        }
    )


def summarize_result(payload: dict) -> str:
    """One-line summary of a wire result (mirrors ``IMResult.summary``)."""
    return (
        f"{payload['algorithm']}: k={payload['k']} "
        f"influence≈{payload['influence']:.1f} samples={payload['samples']} "
        f"iterations={payload['iterations']} "
        f"time={payload['elapsed_seconds']:.3f}s stop={payload['stopped_by']}"
    )


def encode_line(message: dict) -> bytes:
    """Serialize one protocol message to a newline-terminated JSON line."""
    return (json.dumps(to_jsonable(message), separators=(",", ":")) + "\n").encode()


def decode_line(line: "bytes | str") -> dict:
    """Parse one protocol line; raises :class:`ProtocolError` when malformed."""
    if isinstance(line, bytes):
        line = line.decode("utf-8", errors="replace")
    line = line.strip()
    if not line:
        raise ProtocolError("empty protocol line")
    try:
        message = json.loads(line)
    except json.JSONDecodeError as exc:
        raise ProtocolError(f"malformed JSON: {exc}") from exc
    if not isinstance(message, dict):
        raise ProtocolError(f"protocol messages are JSON objects, got {type(message).__name__}")
    return message


def error_response(request_id, exc: BaseException) -> dict:
    """Build the error response for one failed request."""
    return {
        "id": request_id,
        "ok": False,
        "error": {"type": type(exc).__name__, "message": str(exc)},
    }


def ok_response(request_id, result) -> dict:
    return {"id": request_id, "ok": True, "result": to_jsonable(result)}
