"""Client for the influence service's TCP protocol.

Blocking, line-oriented, dependency-free — the shape a user's first
integration takes, and what the ``repro query --connect`` REPL uses.
Each :meth:`ServiceClient.call` sends one request line and waits for its
response line; concurrency comes from using one client per thread, or
from :meth:`ServiceClient.call_pipelined`, which rides the asyncio
server's per-connection pipelining (many requests in flight on one
socket, responses matched by ``id`` in any order).

Server-side failures surface as **typed exceptions keyed on the wire
error code** (see :mod:`repro.service.errors`): ``over_budget`` raises
:class:`~repro.service.errors.OverBudgetError` with the admission cost
estimate attached, ``no_such_session`` raises
:class:`~repro.service.errors.UnknownSessionError`, and so on — no
string-matching of messages required.
"""

from __future__ import annotations

import socket

from repro.service.errors import ServiceError, exception_from_wire
from repro.service.protocol import (
    PROTO_VERSION,
    ProtocolError,
    decode_line,
    encode_line,
)


class ServiceClient:
    """Synchronous NDJSON-over-TCP client (protocol revision 1).

    >>> with ServiceClient("127.0.0.1", 8642) as client:   # doctest: +SKIP
    ...     answer = client.call("maximize", k=10, epsilon=0.2)
    ...     answer["seeds"]
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float | None = None,
        connect_timeout: float = 10.0,
    ) -> None:
        try:
            self._sock = socket.create_connection((host, port), timeout=connect_timeout)
            # Queries may legitimately run long (cold pools on big graphs);
            # reads block unless the caller opts into a response deadline.
            self._sock.settimeout(timeout)
        except OSError as exc:
            raise ServiceError(f"cannot connect to {host}:{port}: {exc}") from exc
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        self._next_id = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Wire plumbing
    # ------------------------------------------------------------------
    def _send(self, request: dict) -> None:
        try:
            self._wfile.write(encode_line(request))
            self._wfile.flush()
        except OSError as exc:
            self.close()
            raise ServiceError(f"connection to service lost: {exc}") from exc

    def _read_response(self) -> dict:
        try:
            line = self._rfile.readline()
        except OSError as exc:
            # The stream is desynchronized (a late response could still
            # arrive) — poison the client, don't let a retry read stale
            # bytes as its own answer.
            self.close()
            raise ServiceError(f"connection to service lost: {exc}") from exc
        if not line:
            self.close()
            raise ServiceError("server closed the connection (unexpected EOF)")
        try:
            return decode_line(line)
        except ProtocolError as exc:
            self.close()
            raise ServiceError(f"malformed response from server: {exc}") from exc

    @staticmethod
    def _unwrap(response: dict):
        if not response.get("ok"):
            raise exception_from_wire(response.get("error") or {})
        return response.get("result")

    # ------------------------------------------------------------------
    # Calls
    # ------------------------------------------------------------------
    def call(self, op: str, *, session: str = "default", **params):
        """Run one operation; returns the result payload or raises.

        Raises a :class:`~repro.service.errors.ServiceError` subclass
        keyed on the wire error code for server-side errors, and plain
        :class:`ServiceError` for transport failures (connection
        refused, server gone mid-call) — callers see clean typed
        exceptions, never a traceback from socket internals.
        """
        if self._closed:
            raise ServiceError("client is closed")
        self._next_id += 1
        self._send(
            {
                "id": self._next_id,
                "op": op,
                "session": session,
                "params": params,
                "proto": PROTO_VERSION,
            }
        )
        response = self._read_response()
        if response.get("id") != self._next_id:
            self.close()
            raise ServiceError(
                f"out-of-sync response (expected id {self._next_id}, "
                f"got {response.get('id')!r})"
            )
        return self._unwrap(response)

    def call_pipelined(self, requests, *, session: str = "default"):
        """Issue many requests on one socket before reading any response.

        ``requests`` is an iterable of ``(op, params_dict)`` pairs.  All
        request lines are written first; responses stream back in
        whatever order the server finishes them and are matched by
        ``id``.  Returns results in *request* order; a failed request's
        slot holds its typed exception instead of raising, so one
        over-budget query doesn't hide its siblings' answers.
        """
        if self._closed:
            raise ServiceError("client is closed")
        ids = []
        for op, params in requests:
            self._next_id += 1
            ids.append(self._next_id)
            self._send(
                {
                    "id": self._next_id,
                    "op": op,
                    "session": session,
                    "params": dict(params),
                    "proto": PROTO_VERSION,
                }
            )
        expected = set(ids)
        outcomes: dict = {}
        while expected:
            response = self._read_response()
            rid = response.get("id")
            if rid not in expected:
                self.close()
                raise ServiceError(
                    f"out-of-sync response (unexpected id {rid!r}; "
                    f"awaiting {sorted(expected)})"
                )
            expected.discard(rid)
            try:
                outcomes[rid] = self._unwrap(response)
            except ServiceError as exc:
                outcomes[rid] = exc
        return [outcomes[rid] for rid in ids]

    def hello(self) -> dict:
        """Negotiate: the server's protocol revision and op vocabulary."""
        return self.call("hello")

    def ping(self) -> bool:
        """True if the server answers."""
        return bool(self.call("ping").get("pong"))

    def mutate(
        self, delta, *, session: str = "default", add=None, remove=None, reweight=None
    ):
        """Apply one graph mutation in the structured wire form.

        ``delta`` may be a :class:`~repro.dynamic.delta.GraphDelta`, an
        ``as_dict()``-shaped mapping, or ``None`` with explicit
        ``add``/``remove``/``reweight`` edge-row lists.
        """
        if delta is None:
            payload = {}
            if add:
                payload["add"] = [list(row) for row in add]
            if remove:
                payload["remove"] = [list(row) for row in remove]
            if reweight:
                payload["reweight"] = [list(row) for row in reweight]
        elif hasattr(delta, "as_dict"):
            payload = delta.as_dict()
        else:
            payload = dict(delta)
        return self.call("mutate", session=session, delta=payload)

    def shutdown_server(self) -> None:
        """Ask the server to stop (it still answers this request)."""
        self.call("shutdown")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for closer in (self._rfile.close, self._wfile.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
