"""Client for the influence service's TCP protocol.

Blocking, line-oriented, dependency-free — the shape a user's first
integration takes, and what the ``repro query --connect`` REPL uses.
Each :meth:`ServiceClient.call` sends one request line and waits for its
response line; concurrency comes from using one client per thread (the
server is thread-per-connection).
"""

from __future__ import annotations

import socket

from repro.service.protocol import ProtocolError, decode_line, encode_line
from repro.service.service import ServiceError


class ServiceClient:
    """Synchronous NDJSON-over-TCP client.

    >>> with ServiceClient("127.0.0.1", 8642) as client:   # doctest: +SKIP
    ...     answer = client.call("maximize", k=10, epsilon=0.2)
    ...     answer["seeds"]
    """

    def __init__(
        self,
        host: str,
        port: int,
        *,
        timeout: float | None = None,
        connect_timeout: float = 10.0,
    ) -> None:
        try:
            self._sock = socket.create_connection((host, port), timeout=connect_timeout)
            # Queries may legitimately run long (cold pools on big graphs);
            # reads block unless the caller opts into a response deadline.
            self._sock.settimeout(timeout)
        except OSError as exc:
            raise ServiceError(f"cannot connect to {host}:{port}: {exc}") from exc
        self._rfile = self._sock.makefile("rb")
        self._wfile = self._sock.makefile("wb")
        self._next_id = 0
        self._closed = False

    def call(self, op: str, *, session: str = "default", **params):
        """Run one operation; returns the result payload or raises.

        Raises :class:`ServiceError` for server-side errors *and* for
        transport failures (connection refused, server gone mid-call) —
        callers see one exception type with a clean message, never a
        traceback from socket internals.
        """
        if self._closed:
            raise ServiceError("client is closed")
        self._next_id += 1
        request = {"id": self._next_id, "op": op, "session": session, "params": params}
        try:
            self._wfile.write(encode_line(request))
            self._wfile.flush()
            line = self._rfile.readline()
        except OSError as exc:
            # The stream is desynchronized (a late response could still
            # arrive for this request) — poison the client, don't let a
            # retry read stale bytes as its own answer.
            self.close()
            raise ServiceError(f"connection to service lost: {exc}") from exc
        if not line:
            self.close()
            raise ServiceError("server closed the connection (unexpected EOF)")
        try:
            response = decode_line(line)
        except ProtocolError as exc:
            self.close()
            raise ServiceError(f"malformed response from server: {exc}") from exc
        if response.get("id") != self._next_id:
            self.close()
            raise ServiceError(
                f"out-of-sync response (expected id {self._next_id}, "
                f"got {response.get('id')!r})"
            )
        if not response.get("ok"):
            error = response.get("error") or {}
            raise ServiceError(
                f"{error.get('type', 'ServiceError')}: {error.get('message', 'unknown error')}"
            )
        return response.get("result")

    def ping(self) -> bool:
        """True if the server answers."""
        return bool(self.call("ping").get("pong"))

    def shutdown_server(self) -> None:
        """Ask the server to stop (it still answers this request)."""
        self.call("shutdown")

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for closer in (self._rfile.close, self._wfile.close, self._sock.close):
            try:
                closer()
            except OSError:
                pass

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
