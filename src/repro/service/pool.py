"""Thread-safe shared RR pools: snapshots, byte budgets, LRU eviction.

This module is what makes "condition once, query many times" safe to
share between users.  A :class:`PoolManager` owns every warm sampling
context of a service (or of a thread-safe
:class:`~repro.engine.engine.InfluenceEngine`), keyed by
``(namespace, stream, model, horizon)``:

* **Snapshot isolation** — each in-flight query reads an immutable
  prefix :class:`~repro.sampling.rr_collection.RRSnapshot` of the shared
  :class:`~repro.sampling.rr_collection.RRCollection`.  Readers never
  block samplers: a top-up appends under the pool's lock and takes a new
  snapshot; snapshots already handed out stay valid because the compiled
  buffers are append-only.  The merged RR stream stays the byte-exact
  pure function of the seed (worker count and backend are throughput
  knobs), so any interleaving of concurrent queries returns exactly the
  sequential answers.
* **Byte budget** — an optional global budget over all pools.  After
  each top-up batch the manager reclaims bytes from *idle* pools,
  least-recently-used first, until the budget holds again.  A large idle
  pool is first **suffix-truncated** — its sets ``[keep, len)`` are
  dropped and the sampler seeks back to ``keep``, which per-set seed
  derivation makes byte-exactly resumable — so a pool loses its cold
  tail before it loses its hot head; only pools too small to truncate
  are evicted whole.  Pools with queries in flight are never touched, so
  the hard bound is budget + one in-flight top-up batch per busy pool (a
  single busy pool — the common case — overshoots by at most its one
  crossing batch).
* **Per-namespace quotas** — inside the global budget, each namespace
  (session) may carry its own byte quota (:meth:`PoolManager.set_quota`).
  Budget enforcement is two-pass: first every over-quota namespace
  reclaims from **its own** idle pools until its quota holds, then the
  global pass reclaims preferring pools of still-over-quota namespaces
  before touching anyone else.  The fairness contract: a hot session
  that overruns its quota sheds its own pools first and never evicts a
  within-quota tenant's warmth while its own overrun can pay the bill.
* **Spill / reattach** — with a spill directory configured, evicted and
  closed pools are written through
  :class:`~repro.service.store.PoolStore` (sets + sampler stream
  position) and transparently reattached the next time a context with
  the same stream identity is opened — warmup survives evictions *and*
  process restarts.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from dataclasses import dataclass, replace

from repro.engine.context import SamplingContext
from repro.exceptions import SamplingError
from repro.sampling.kernels import DEFAULT_STREAM_ID
from repro.service.store import PoolStore, make_stamp


@dataclass(frozen=True)
class PoolKey:
    """Identity of one shared pool inside a manager.

    ``namespace`` isolates sessions from each other (two sessions with
    different graphs or seeds must never share a pool); the remaining
    fields mirror the engine's context key.  ``stream_id`` is the
    kernel's stream-compatibility token (defaulting to the historical
    scalar stream): two queries share a pool only when their RNG draw
    orders are byte-compatible.  ``graph_version`` is the mutation
    lineage position of the graph the pool was sampled on (0 = the
    pristine snapshot; see :mod:`repro.dynamic`) — a mutation rekeys
    every repaired pool to the new version, so stale keys can never
    resolve to post-mutation state.
    """

    namespace: str
    stream: str
    model: str
    horizon: int | None
    stream_id: str = DEFAULT_STREAM_ID
    graph_version: int = 0


class QueryView:
    """One query's window onto a shared pool (duck-typed SamplingContext).

    Algorithm bodies run against this object exactly as they run against
    a private :class:`~repro.engine.context.SamplingContext`: ``require``
    returns a pool holding at least the requested prefix — here an
    immutable snapshot — and ``sampled`` counts only the RR sets *this*
    query's top-ups generated, so per-query accounting stays exact under
    interleaving.
    """

    def __init__(self, entry: "_PoolEntry") -> None:
        self._entry = entry
        self.graph = entry.ctx.graph
        self.model = entry.ctx.model
        self.roots = entry.ctx.roots
        self.horizon = entry.ctx.horizon
        self.sampled = 0
        self._snap = None

    @property
    def scale(self) -> float:
        return self._entry.ctx.scale

    @property
    def pool(self):
        """The latest snapshot this query has seen (taken lazily)."""
        if self._snap is None:
            self._snap = self._entry.snapshot()
        return self._snap

    def require(self, total: int):
        snap, sampled = self._entry.require_snapshot(int(total))
        self.sampled += sampled
        self._snap = snap
        return snap

    def note_query(self, demand: int) -> None:
        self._entry.note_query(int(demand))

    def resize(self, workers: int) -> None:
        """Per-query worker override: resize the shared pool's sampler.

        Byte-invisible (the stream is seed-pure), so one query asking
        for more throughput can never change another query's answer.
        """
        self._entry.resize(int(workers))

    def fresh_verifier(self):
        # Thread-safe for replayable (int) session seeds: the verifier is
        # re-derived per call without touching shared mutable state.
        return self._entry.ctx.fresh_verifier()


class _PoolEntry:
    """One shared context + its lock and usage bookkeeping."""

    def __init__(self, manager: "PoolManager", key: PoolKey, ctx: SamplingContext, stamp) -> None:
        self.manager = manager
        self.key = key
        self.ctx = ctx
        self.stamp = stamp  # None => not spillable
        self.lock = threading.RLock()
        self.inflight = 0  # mutated only under the manager lock
        self.last_used = 0
        self.reattached = 0  # sets preloaded from a spill file

    def require_snapshot(self, total: int):
        """Top the shared pool up to ``total`` and snapshot it.

        Returns ``(snapshot, newly_sampled)``.  The append and the
        snapshot compile happen under this entry's lock; the budget
        check runs after the lock is released (this entry has a query in
        flight, so it can never evict itself).
        """
        with self.lock:
            before = self.ctx.sampled
            self.ctx.require(total)
            snap = self.ctx.pool.snapshot()
            sampled = self.ctx.sampled - before
        if sampled:
            self.manager.enforce_budget()
        return snap, sampled

    def snapshot(self):
        with self.lock:
            return self.ctx.pool.snapshot()

    def note_query(self, demand: int) -> None:
        with self.lock:
            self.ctx.note_query(demand)

    def resize(self, workers: int) -> bool:
        """Resize the backing context; False if it was already retired.

        Namespace-wide resizes collect entries and then take each entry
        lock in turn, so an entry can be evicted (context closed) in
        between — that is a skip, not an error.
        """
        with self.lock:
            if self.ctx.closed:
                return False
            self.ctx.resize(workers)
            return True

    @property
    def nbytes(self) -> int:
        return self.ctx.pool.nbytes


class PoolManager:
    """Registry of shared pools with budget enforcement and spill.

    Parameters
    ----------
    budget_bytes:
        Global cap on retained RR-set bytes across every pool; ``None``
        disables eviction (the engine's historical behaviour).
    spill_dir:
        Directory for spilled pools; ``None`` disables persistence.
    suffix_min_sets:
        Floor below which suffix truncation stops and whole-pool
        eviction takes over: a truncation must keep at least this many
        sets to be worth the bookkeeping.  (Truncation keeps the first
        half of a pool; pools smaller than twice this are evicted whole.)
    """

    def __init__(
        self,
        *,
        budget_bytes: int | None = None,
        spill_dir=None,
        suffix_min_sets: int = 1024,
    ) -> None:
        if budget_bytes is not None and budget_bytes <= 0:
            raise SamplingError(f"budget_bytes must be positive, got {budget_bytes}")
        if suffix_min_sets < 1:
            raise SamplingError(f"suffix_min_sets must be >= 1, got {suffix_min_sets}")
        self.budget_bytes = budget_bytes
        self.suffix_min_sets = int(suffix_min_sets)
        self.store = PoolStore(spill_dir) if spill_dir is not None else None
        self._lock = threading.RLock()
        self._entries: dict[PoolKey, _PoolEntry] = {}
        self._quotas: dict[str, int] = {}  # namespace -> byte quota
        self._clock = 0
        self._evictions: dict[str, int] = {}  # namespace -> pools evicted
        self._truncations: dict[str, int] = {}  # namespace -> suffix truncations
        self._reattached: dict[str, int] = {}  # namespace -> sets loaded from disk
        self._closed = False

    # ------------------------------------------------------------------
    # Entry lifecycle
    # ------------------------------------------------------------------
    def _get_or_create(self, key: PoolKey, factory) -> _PoolEntry:
        """Resolve ``key``; create (and maybe reattach) under the lock.

        Context creation can be slow (process backends spawn workers);
        holding the manager lock keeps double-creation impossible, which
        matters more here than first-query latency.
        """
        # Callers hold self._lock (query() acquires it before resolving).
        entry = self._entries.get(key)  # repro: allow[lock-discipline]
        if entry is None:
            ctx, seed = factory()
            stamp = make_stamp(
                ctx.graph,
                model=ctx.model.value,
                stream=key.stream,
                horizon=key.horizon,
                seed=seed,
                sampler=ctx.sampler,
                roots=ctx.roots,
                graph_version=ctx.graph_version,
            )
            entry = _PoolEntry(self, key, ctx, stamp)
            if self.store is not None and stamp is not None:
                spilled = self.store.load(stamp)
                if spilled is not None:
                    sets, state = spilled
                    entry.reattached = ctx.preload(sets)
                    ctx.load_state_dict(state)
                    ns = key.namespace
                    self._reattached[ns] = self._reattached.get(ns, 0) + entry.reattached
            self._entries[key] = entry
        return entry

    @contextmanager
    def query(self, key: PoolKey, factory):
        """Open one query against the pool at ``key``.

        ``factory`` builds the backing context on first use and returns
        ``(SamplingContext, replayable_seed_or_None)``.  Yields a
        :class:`QueryView`; on exit the pool's LRU position is bumped
        and the byte budget re-enforced.
        """
        with self._lock:
            if self._closed:
                raise SamplingError("PoolManager is closed")
            entry = self._get_or_create(key, factory)
            entry.inflight += 1
        try:
            yield QueryView(entry)
        finally:
            with self._lock:
                entry.inflight -= 1
                self._clock += 1
                entry.last_used = self._clock
            self.enforce_budget()

    # ------------------------------------------------------------------
    # Budget / eviction
    # ------------------------------------------------------------------
    def total_bytes(self) -> int:
        """Retained RR-set bytes across every pool."""
        with self._lock:
            return sum(entry.nbytes for entry in self._entries.values())

    def set_quota(self, namespace: str, quota_bytes: int | None) -> None:
        """Set (or clear, with ``None``) one namespace's byte quota.

        Enforced immediately: lowering a quota below current usage
        reclaims from the namespace's own idle pools right away.
        """
        if quota_bytes is not None and quota_bytes <= 0:
            raise SamplingError(f"quota_bytes must be positive, got {quota_bytes}")
        with self._lock:
            if quota_bytes is None:
                self._quotas.pop(namespace, None)
            else:
                self._quotas[namespace] = int(quota_bytes)
        self.enforce_budget()

    def quota_for(self, namespace: str) -> int | None:
        with self._lock:
            return self._quotas.get(namespace)

    def quotas(self) -> dict:
        """Copy of the ``{namespace: quota_bytes}`` map."""
        with self._lock:
            return dict(self._quotas)

    def enforce_budget(self) -> int:
        """Reclaim bytes from idle pools until quotas and budget hold.

        Two passes.  **Quota pass**: every namespace over its own byte
        quota reclaims from *its own* idle pools (LRU first) until the
        quota holds.  **Global pass**: while the global budget is still
        exceeded, reclaim LRU-first — preferring pools of namespaces
        still over quota (their overrun pays the global bill) and only
        then falling back to any idle pool.  Large pools shed their
        *suffix* first — per-set seed derivation makes any prefix
        byte-exactly resumable, so truncation trades cold warmup for
        memory without dropping the hot head — and pools too small to
        truncate are evicted whole.  Returns the number of reclaim
        actions (truncations + evictions).
        """
        reclaimed = 0
        with self._lock:
            for namespace, quota in list(self._quotas.items()):
                while True:
                    used = sum(
                        e.nbytes
                        for k, e in self._entries.items()
                        if k.namespace == namespace
                    )
                    if used <= quota:
                        break
                    victims = self._victims_locked(namespace)
                    if not victims:
                        break  # everything left in this namespace is busy
                    self._reclaim_one_locked(victims)
                    reclaimed += 1
            if self.budget_bytes is None:
                return reclaimed
            while sum(e.nbytes for e in self._entries.values()) > self.budget_bytes:
                over = self._over_quota_namespaces_locked()
                if over:
                    # An over-quota tenant pays the global bill.  If its
                    # pools are all busy, overshoot until they go idle
                    # (the quota pass then reclaims them) rather than
                    # evict a within-quota tenant's warmth.
                    victims = [
                        e for e in self._victims_locked(None) if e.key.namespace in over
                    ]
                else:
                    victims = self._victims_locked(None)
                if not victims:
                    # Everything eligible is in flight: overshoot is bounded
                    # by one top-up batch per busy pool until they go idle.
                    break
                self._reclaim_one_locked(victims)
                reclaimed += 1
        return reclaimed

    def _victims_locked(self, namespace: str | None) -> list:
        """Idle, non-empty entries eligible for reclaim.  Manager lock held."""
        return [
            e
            for k, e in self._entries.items()
            if (namespace is None or k.namespace == namespace)
            and e.inflight == 0
            and len(e.ctx.pool)
        ]

    def _over_quota_namespaces_locked(self) -> set:
        usage: dict[str, int] = {}
        for key, entry in self._entries.items():
            usage[key.namespace] = usage.get(key.namespace, 0) + entry.nbytes
        return {
            ns
            for ns, quota in self._quotas.items()
            if usage.get(ns, 0) > quota
        }

    def _reclaim_one_locked(self, victims: list) -> None:
        """Truncate or evict the least-recently-used victim.  Lock held."""
        victim = min(victims, key=lambda e: e.last_used)
        keep = len(victim.ctx.pool) // 2
        if keep >= self.suffix_min_sets:
            self._truncate(victim, keep)
        else:
            self._evict(victim)

    def _truncate(self, entry: _PoolEntry, keep: int) -> None:
        """Suffix-truncate one idle entry to ``[0, keep)``.  Manager lock
        held; ``inflight == 0`` so no query is mid-top-up.

        The *full* pool is spilled first (when a store is configured), so
        disk keeps the longest sampled prefix — a later reattach restores
        everything, and the store's keep-longest rule stops the eventual
        shorter-pool spill from clobbering it.
        """
        with entry.lock:
            self._spill_entry(entry)
            entry.ctx.truncate(keep)
        ns = entry.key.namespace
        self._truncations[ns] = self._truncations.get(ns, 0) + 1

    def _evict(self, entry: _PoolEntry) -> None:
        """Spill (if possible) and drop one idle entry.  Manager lock held;
        ``inflight == 0`` so no query is mid-top-up."""
        self._retire(entry, spill=True)
        ns = entry.key.namespace
        self._evictions[ns] = self._evictions.get(ns, 0) + 1

    def _retire(self, entry: _PoolEntry, *, spill: bool) -> None:
        """Spill (optionally) and close one entry, serialized with its queries.

        Taking the entry lock makes the spilled prefix consistent even if
        a caller retires a session that still has queries in flight (a
        misuse, but one that must corrupt nothing): an in-flight query
        either finishes its top-up before the spill or sees a clean
        "context is closed" error on its next ``require``.  Lock order is
        manager → entry everywhere; no path takes them in reverse.
        """
        # Callers hold self._lock (retire/evict/mutate paths acquire it).
        self._entries.pop(entry.key, None)  # repro: allow[lock-discipline]
        with entry.lock:
            if spill:
                self._spill_entry(entry)
            entry.ctx.close()

    def _spill_entry(self, entry: _PoolEntry) -> None:
        if self.store is None or entry.stamp is None or not len(entry.ctx.pool):
            return
        self.store.save(entry.stamp, entry.ctx.pool, entry.ctx.state_dict())

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def pool_sizes(self, namespace: str | None = None) -> dict:
        """Cached RR sets per pool, keyed ``(stream, model, horizon,
        stream_id, graph_version)``.

        With ``namespace=None`` the keys include the namespace.
        """
        with self._lock:
            out = {}
            for key, entry in self._entries.items():
                if namespace is not None and key.namespace != namespace:
                    continue
                short = (
                    key.stream,
                    key.model,
                    key.horizon,
                    key.stream_id,
                    key.graph_version,
                )
                out[short if namespace is not None else (key.namespace, *short)] = len(
                    entry.ctx.pool
                )
            return out

    def bytes_for(self, namespace: str) -> int:
        with self._lock:
            return sum(
                e.nbytes for k, e in self._entries.items() if k.namespace == namespace
            )

    def occupancy(self, key: PoolKey) -> tuple[int, int]:
        """``(sets, bytes)`` currently pooled at ``key`` (0, 0 if absent).

        This is the admission cost model's view of the cache: how much
        of a query's demand is already paid for.
        """
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                return (0, 0)
            return (len(entry.ctx.pool), entry.nbytes)

    def namespace_usage(self) -> dict:
        """Per-namespace gauge snapshot for metrics exposition.

        ``{namespace: {"pools", "sets", "bytes", "inflight", "quota"}}``
        — quota is ``None`` for unlimited namespaces.  Namespaces with a
        quota but no open pools still appear (all-zero), so a tenant's
        gauges never vanish from the scrape just because it went cold.
        """
        with self._lock:
            usage: dict[str, dict] = {}
            for ns in self._quotas:
                usage[ns] = {"pools": 0, "sets": 0, "bytes": 0, "inflight": 0}
            for key, entry in self._entries.items():
                row = usage.setdefault(
                    key.namespace, {"pools": 0, "sets": 0, "bytes": 0, "inflight": 0}
                )
                row["pools"] += 1
                row["sets"] += len(entry.ctx.pool)
                row["bytes"] += entry.nbytes
                row["inflight"] += entry.inflight
            for ns, row in usage.items():
                row["quota"] = self._quotas.get(ns)
            return usage

    def evictions_for(self, namespace: str | None = None) -> int:
        with self._lock:
            if namespace is None:
                return sum(self._evictions.values())
            return self._evictions.get(namespace, 0)

    def truncations_for(self, namespace: str | None = None) -> int:
        """Lifetime count of suffix truncations (budget pressure relief)."""
        with self._lock:
            if namespace is None:
                return sum(self._truncations.values())
            return self._truncations.get(namespace, 0)

    def resize_namespace(self, namespace: str, workers: int) -> int:
        """Resize every open pool of one namespace; returns pools resized.

        Safe mid-stream: seed-pure streams make the worker count pure
        throughput, so in-flight queries of other sessions (and even of
        this one) keep returning byte-identical answers.  Entries evicted
        concurrently (between collection and their resize) are skipped.
        """
        with self._lock:
            entries = [e for k, e in self._entries.items() if k.namespace == namespace]
        return sum(1 for entry in entries if entry.resize(workers))

    # ------------------------------------------------------------------
    # Graph mutation (see repro.dynamic)
    # ------------------------------------------------------------------
    def mutate_namespace(self, namespace: str, graph, graph_version: int, delta) -> dict:
        """Move every pool of one namespace onto a mutated graph snapshot.

        For each pool: compute the exact invalidation set from its
        node→set index, rebind its context onto ``graph``, resample only
        the invalidated sets in place (byte-identical to a cold resample
        — see :func:`repro.dynamic.repair.repair_context`), refresh its
        spill stamp, and rekey it to ``graph_version``.  A node-count
        change defeats targeted repair (root selection draws over ``n``),
        so those pools are retired (spilled under their old stamp) and
        rebuilt lazily on next use.

        Mutation is a **barrier operation**: the whole pass runs under
        the manager lock — new queries block until the repair completes —
        and a namespace with queries in flight is refused, because
        repairs rewrite pool sets that in-flight snapshots may be
        reading.  Returns a report dict (``pools``, ``sets_total``,
        ``invalidated``, ``repaired``, ``repair_fraction``,
        ``pools_retired``).
        """
        graph_version = int(graph_version)
        report = {
            "pools": 0,
            "sets_total": 0,
            "invalidated": 0,
            "repaired": 0,
            "pools_retired": 0,
        }
        from repro.dynamic.repair import repair_context

        with self._lock:
            if self._closed:
                raise SamplingError("PoolManager is closed")
            items = [
                (k, e) for k, e in self._entries.items() if k.namespace == namespace
            ]
            busy = sum(1 for _k, e in items if e.inflight)
            if busy:
                raise SamplingError(
                    f"cannot mutate namespace {namespace!r}: {busy} pool(s) "
                    "have queries in flight — mutation is a barrier operation"
                )
            for key, entry in items:
                with entry.lock:
                    if entry.ctx.closed:
                        continue
                    if graph.n != entry.ctx.graph.n:
                        pooled = len(entry.ctx.pool)
                        report["sets_total"] += pooled
                        report["invalidated"] += pooled
                        self._retire(entry, spill=True)
                        report["pools_retired"] += 1
                        continue
                    stats = repair_context(entry.ctx, graph, graph_version, delta)
                    entry.stamp = make_stamp(
                        graph,
                        model=entry.ctx.model.value,
                        stream=key.stream,
                        horizon=key.horizon,
                        seed=entry.stamp["seed"] if entry.stamp is not None else None,
                        sampler=entry.ctx.sampler,
                        roots=entry.ctx.roots,
                        graph_version=graph_version,
                    )
                new_key = replace(key, graph_version=graph_version)
                self._entries.pop(key, None)
                entry.key = new_key
                self._entries[new_key] = entry
                report["pools"] += 1
                report["sets_total"] += stats["sets_total"]
                report["invalidated"] += stats["invalidated"]
                report["repaired"] += stats["repaired"]
        total = report["sets_total"]
        report["repair_fraction"] = report["invalidated"] / total if total else 0.0
        return report

    def workers_for(self, namespace: str) -> "list[int]":
        """Actual worker counts of the namespace's open pools."""
        with self._lock:
            return [
                e.ctx.workers
                for k, e in self._entries.items()
                if k.namespace == namespace and not e.ctx.closed
            ]

    def reattached_for(self, namespace: str) -> int:
        """Lifetime count of sets loaded from disk spills (warm starts)."""
        with self._lock:
            return self._reattached.get(namespace, 0)

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def release_namespace(self, namespace: str, *, spill: bool = True) -> None:
        """Close (and optionally spill) every pool of one namespace."""
        with self._lock:
            entries = [e for k, e in self._entries.items() if k.namespace == namespace]
            for entry in entries:
                self._retire(entry, spill=spill)

    def close(self, *, spill: bool = True) -> None:
        """Spill (by default) and close every pool; idempotent."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            errors = []
            for entry in list(self._entries.values()):
                try:
                    self._retire(entry, spill=spill)
                except Exception as exc:  # keep releasing the rest
                    errors.append(exc)
            self._entries.clear()
            if errors:
                raise errors[0]
