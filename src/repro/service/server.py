"""Asyncio TCP front-end for :class:`~repro.service.service.InfluenceService`.

The serving tier is a single event loop, so **connection count is
decoupled from thread count**: ten thousand idle sockets cost ten
thousand readers on one loop, not ten thousand threads.  Protocol work
(framing, dispatch, response writing) happens on the loop; query work
happens on the service's existing thread pool via
:meth:`~repro.service.service.InfluenceService.submit`, bridged back
with :func:`asyncio.wrap_future` — the `PoolManager` locking discipline
is untouched, the loop never blocks on a query.

Requests **pipeline per connection**: a client may write any number of
request lines without waiting; each is dispatched as its own task and
answered when it completes, so responses can arrive **out of order** —
clients match on ``id`` (see :mod:`repro.service.protocol`).  One
connection issuing a slow ``maximize`` and a ``ping`` gets the pong
immediately.

Lifecycle mirrors the historical thread-per-connection server exactly —
``serve_forever`` / ``start_background`` / ``stop_async`` /
``shutdown`` with the same shutdown-vs-startup race guarantees — and the
listening socket binds eagerly in ``__init__`` so :attr:`address` is
known before serving.  Clients may send ``{"op": "shutdown"}`` to stop
the server remotely (used by CI and orchestration scripts); the
response is written before the listener winds down.

With ``metrics_port`` set, a second listener serves Prometheus text
exposition to plain HTTP ``GET /metrics`` scrapes
(:func:`~repro.service.metrics.prometheus_text`) — no protocol client
needed to observe the tier.
"""

from __future__ import annotations

import asyncio
import socket
import threading

from repro.exceptions import ReproError
from repro.service.metrics import prometheus_text
from repro.service.protocol import (
    ErrorResponse,
    OkResponse,
    Request,
    decode_line,
    encode_line,
    hello_payload,
)
from repro.service.service import OPERATIONS, InfluenceService

#: transport-level ops the server answers without touching the service.
TRANSPORT_OPS = ("hello", "shutdown")


class InfluenceServer:
    """Serve an :class:`InfluenceService` over an asyncio TCP socket.

    Parameters
    ----------
    service:
        The service that owns sessions and pools.  The server never
        closes it unless :meth:`shutdown` is asked to (``repro serve``
        does, so a remote ``shutdown`` op spills pools on the way out).
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`).
    metrics_port:
        When not ``None``, also bind an HTTP listener on
        ``(host, metrics_port)`` answering ``GET /metrics`` with
        Prometheus text exposition (``0`` picks a free port, see
        :attr:`metrics_address`).
    """

    def __init__(
        self,
        service: InfluenceService,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        metrics_port: int | None = None,
    ) -> None:
        self.service = service
        # Eager bind: the address is known (and the port reserved) before
        # serve_forever runs, exactly as the socketserver front end did.
        self._sock = socket.create_server((host, port))
        self._metrics_sock = (
            socket.create_server((host, metrics_port))
            if metrics_port is not None
            else None
        )
        self._stopped = threading.Event()
        self._finished = threading.Event()  # serve loop fully wound down
        self._lifecycle = threading.Lock()
        self._serving = False
        self._loop: asyncio.AbstractEventLoop | None = None
        # Loop-thread-only state (no locks: touched only on the loop).
        self._stop_event: asyncio.Event | None = None
        self._stop_requested = False
        self._tasks: set = set()
        self._connections = 0

    @property
    def address(self) -> "tuple[str, int]":
        """The actually bound ``(host, port)``."""
        return self._sock.getsockname()[:2]

    @property
    def metrics_address(self) -> "tuple[str, int] | None":
        """The bound metrics ``(host, port)``; ``None`` when disabled."""
        if self._metrics_sock is None:
            return None
        return self._metrics_sock.getsockname()[:2]

    # ------------------------------------------------------------------
    # Request processing
    # ------------------------------------------------------------------
    def process_line(self, raw: bytes) -> "tuple[object, bool]":
        """Handle one request line synchronously (transport-agnostic core).

        Returns ``(response_frame, stop_server)``.  The asyncio path
        does the same decode/dispatch but awaits the service instead of
        blocking; this entry point stays for in-process callers and
        tests that want the protocol without a socket.
        """
        request, response = self._decode_request(raw)
        if response is not None:
            return response, False
        transport = self._transport_response(request)
        if transport is not None:
            return transport
        try:
            result = self.service.call(
                request.op, session=request.session, **request.params
            )
            return (
                OkResponse(request.id, self.service.wire_result(result), proto=request.proto),
                False,
            )
        except (ReproError, ValueError, KeyError, TypeError) as exc:
            return ErrorResponse.from_exception(request.id, exc, proto=request.proto), False

    def _decode_request(self, raw):
        """Decode one line to ``(Request, None)`` or ``(None, ErrorResponse)``."""
        request_id = None
        try:
            message = decode_line(raw)
            request_id = message.get("id")
            return Request.from_wire(message), None
        except (ReproError, ValueError, KeyError, TypeError) as exc:
            return None, ErrorResponse.from_exception(request_id, exc)

    def _transport_response(self, request: Request):
        """Answer transport-level ops; ``None`` for service ops."""
        if request.op == "shutdown":
            return OkResponse(request.id, {"stopping": True}, proto=request.proto), True
        if request.op == "hello":
            payload = hello_payload(OPERATIONS + TRANSPORT_OPS)
            return OkResponse(request.id, payload, proto=request.proto), False
        return None

    async def _respond(self, raw: bytes):
        """Async decode/dispatch for one request line (loop thread)."""
        request, response = self._decode_request(raw)
        if response is not None:
            return response, False
        transport = self._transport_response(request)
        if transport is not None:
            return transport
        try:
            future = self.service.submit(
                request.op, session=request.session, **request.params
            )
            result = await asyncio.wrap_future(future)
            return (
                OkResponse(request.id, self.service.wire_result(result), proto=request.proto),
                False,
            )
        except (ReproError, ValueError, KeyError, TypeError) as exc:
            return ErrorResponse.from_exception(request.id, exc, proto=request.proto), False

    # ------------------------------------------------------------------
    # Connection handling (loop thread)
    # ------------------------------------------------------------------
    async def _handle_request(self, raw, writer, write_lock) -> None:
        response, stop = await self._respond(raw)
        try:
            async with write_lock:
                writer.write(encode_line(response))
                await writer.drain()
        except (ConnectionError, OSError):
            # Client went away mid-response: the query already completed
            # (and released its pool snapshot); nothing to clean up.
            return
        if stop:
            self.stop_async()

    def _spawn(self, coro):
        task = asyncio.ensure_future(coro)
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)
        return task

    async def _handle_connection(self, reader, writer) -> None:
        """One client connection: pipelined request lines in, responses out.

        Every request line becomes its own task, so a connection can
        have many queries in flight; the write lock keeps response
        frames whole.  On disconnect — clean or abrupt — the handler
        waits for in-flight requests to finish (their executor futures
        are not cancellable mid-query), which releases their pool
        snapshots; their response writes fail silently.
        """
        self._connections += 1
        write_lock = asyncio.Lock()
        pending: set = set()
        try:
            while True:
                try:
                    raw = await reader.readline()
                except (ConnectionError, OSError):
                    break
                if not raw:
                    break
                if not raw.strip():
                    continue
                task = self._spawn(self._handle_request(raw, writer, write_lock))
                pending.add(task)
                task.add_done_callback(pending.discard)
        finally:
            if pending:
                await asyncio.gather(*pending, return_exceptions=True)
            self._connections -= 1
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    async def _handle_metrics(self, reader, writer) -> None:
        """Answer one plain-HTTP scrape on the metrics listener."""
        try:
            request_line = await reader.readline()
            while True:  # drain headers up to the blank line
                header = await reader.readline()
                if header in (b"\r\n", b"\n", b""):
                    break
            parts = request_line.split()
            method = parts[0].decode("latin-1") if parts else ""
            path = parts[1].decode("latin-1") if len(parts) > 1 else "/"
            path = path.split("?", 1)[0]
            if method != "GET":
                status, ctype = "405 Method Not Allowed", "text/plain; charset=utf-8"
                body = b"method not allowed; GET /metrics\n"
            elif path not in ("/metrics", "/"):
                status, ctype = "404 Not Found", "text/plain; charset=utf-8"
                body = b"not found; scrape /metrics\n"
            else:
                text = prometheus_text(self.service, connections=self._connections)
                status = "200 OK"
                ctype = "text/plain; version=0.0.4; charset=utf-8"
                body = text.encode()
            head = (
                f"HTTP/1.1 {status}\r\n"
                f"Content-Type: {ctype}\r\n"
                f"Content-Length: {len(body)}\r\n"
                "Connection: close\r\n\r\n"
            )
            writer.write(head.encode("latin-1") + body)
            await writer.drain()
        except (ConnectionError, OSError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _signal_stop(self) -> None:
        # Runs on the loop thread (scheduled by call_soon_threadsafe).
        self._stop_requested = True
        if self._stop_event is not None:
            self._stop_event.set()

    async def _serve(self) -> None:
        self._stop_event = asyncio.Event()
        if self._stop_requested:
            # shutdown() signalled before the loop started running.
            self._stop_event.set()
        server = await asyncio.start_server(self._handle_connection, sock=self._sock)
        metrics_server = None
        if self._metrics_sock is not None:
            metrics_server = await asyncio.start_server(
                self._handle_metrics, sock=self._metrics_sock
            )
        try:
            await self._stop_event.wait()
        finally:
            server.close()
            if metrics_server is not None:
                metrics_server.close()
            await server.wait_closed()
            if metrics_server is not None:
                await metrics_server.wait_closed()
            # Outstanding request tasks: cancel the awaits (the executor
            # side of an in-flight query still runs to completion and
            # releases its snapshot; only the response write is dropped).
            for task in list(self._tasks):
                task.cancel()
            if self._tasks:
                await asyncio.gather(*self._tasks, return_exceptions=True)

    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (or a remote one)."""
        with self._lifecycle:
            if self._stopped.is_set():
                # shutdown() won the race (or already ran): never enter the
                # serve loop, just release the sockets.
                self._close_sockets()
                self._finished.set()
                return
            self._serving = True
            loop = asyncio.new_event_loop()
            self._loop = loop
        try:
            asyncio.set_event_loop(loop)
            loop.run_until_complete(self._serve())
        finally:
            try:
                loop.run_until_complete(loop.shutdown_asyncgens())
            finally:
                asyncio.set_event_loop(None)
                loop.close()
                with self._lifecycle:
                    self._serving = False
                    self._loop = None
                    self._stopped.set()
                self._close_sockets()
                self._finished.set()

    def _close_sockets(self) -> None:
        # Idempotent; asyncio's Server.close() may already have closed
        # the underlying sockets.
        self._sock.close()
        if self._metrics_sock is not None:
            self._metrics_sock.close()

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns the thread."""
        thread = threading.Thread(
            target=self.serve_forever, name="influence-server", daemon=True
        )
        thread.start()
        return thread

    def stop_async(self) -> None:
        """Request shutdown from the loop or a handler (non-blocking)."""
        threading.Thread(target=self.shutdown, daemon=True).start()

    def shutdown(self, *, close_service: bool = False) -> None:
        """Stop the listener (idempotent); optionally close the service.

        Safe at any lifecycle point: if the loop is live, the stop event
        is set on the loop thread and the caller waits for the loop to
        wind down; if the loop has not started yet (``start_background``
        just launched its thread), the stop flag makes ``serve_forever``
        exit before serving instead — no deadlock either way.
        """
        with self._lifecycle:
            first = not self._stopped.is_set()
            self._stopped.set()
            serving = self._serving
            loop = self._loop
        if first:
            if serving and loop is not None:
                try:
                    loop.call_soon_threadsafe(self._signal_stop)
                except RuntimeError:
                    pass  # the loop closed between the lock and the call
                self._finished.wait(timeout=30)
            else:
                self._close_sockets()
        if close_service:
            self.service.close()

    @property
    def stopped(self) -> bool:
        return self._stopped.is_set()

    def wait_stopped(self, timeout: float | None = None) -> bool:
        return self._stopped.wait(timeout)


def serve(
    service: InfluenceService,
    *,
    host: str = "127.0.0.1",
    port: int = 0,
    metrics_port: int | None = None,
) -> InfluenceServer:
    """Convenience: build a server bound to ``(host, port)``."""
    return InfluenceServer(service, host=host, port=port, metrics_port=metrics_port)
