"""TCP front-end for :class:`~repro.service.service.InfluenceService`.

A thin transport: one thread per connection (the pool layer already
guarantees concurrent queries are exact), newline-delimited JSON per
:mod:`repro.service.protocol`.  This is the network counterpart of the
execution-backend groundwork — workers parallelize *sampling* below the
engine, this server parallelizes *queries* above it.

Typical lifecycle::

    service = InfluenceService(pool_budget=..., spill_dir=...)
    service.open_session("default", graph, model="LT", seed=7)
    server = InfluenceServer(service, host="127.0.0.1", port=8642)
    server.serve_forever()          # or server.start_background()

Clients may send ``{"op": "shutdown"}`` to stop the server remotely
(used by CI and orchestration scripts); the response is written before
the listener winds down, and the service spills its pools on close.
"""

from __future__ import annotations

import socketserver
import threading

from repro.exceptions import ReproError
from repro.service.protocol import (
    ProtocolError,
    decode_line,
    encode_line,
    error_response,
    ok_response,
)
from repro.service.service import InfluenceService, ServiceError


class _ConnectionHandler(socketserver.StreamRequestHandler):
    """One client connection: request lines in, response lines out."""

    def handle(self) -> None:
        server: "InfluenceServer" = self.server.influence_server  # type: ignore[attr-defined]
        for raw in self.rfile:
            if not raw.strip():
                continue
            response, stop = server.process_line(raw)
            try:
                self.wfile.write(encode_line(response))
                self.wfile.flush()
            except (BrokenPipeError, OSError):
                return
            if stop:
                server.stop_async()
                return


class _ThreadingTCPServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class InfluenceServer:
    """Serve an :class:`InfluenceService` over a TCP socket.

    Parameters
    ----------
    service:
        The service that owns sessions and pools.  The server never
        closes it unless :meth:`shutdown` is asked to (``repro serve``
        does, so a remote ``shutdown`` op spills pools on the way out).
    host, port:
        Bind address; ``port=0`` picks a free port (see :attr:`address`).
    """

    def __init__(
        self, service: InfluenceService, *, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.service = service
        self._tcp = _ThreadingTCPServer((host, port), _ConnectionHandler)
        self._tcp.influence_server = self  # type: ignore[attr-defined]
        self._stopped = threading.Event()
        self._lifecycle = threading.Lock()
        self._serving = False

    @property
    def address(self) -> "tuple[str, int]":
        """The actually bound ``(host, port)``."""
        return self._tcp.server_address[:2]

    # ------------------------------------------------------------------
    # Request processing
    # ------------------------------------------------------------------
    def process_line(self, raw: bytes) -> "tuple[dict, bool]":
        """Handle one request line; returns ``(response, stop_server)``."""
        request_id = None
        try:
            message = decode_line(raw)
            request_id = message.get("id")
            op = message.get("op")
            if not isinstance(op, str):
                raise ProtocolError("request needs a string 'op' field")
            if op == "shutdown":
                return ok_response(request_id, {"stopping": True}), True
            session = message.get("session", "default")
            params = message.get("params", {})
            if not isinstance(params, dict):
                raise ProtocolError("'params' must be a JSON object")
            result = self.service.call(op, session=session, **params)
            return ok_response(request_id, self.service.wire_result(result)), False
        except (ReproError, ValueError, KeyError, TypeError) as exc:
            return error_response(request_id, exc), False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def serve_forever(self) -> None:
        """Block serving requests until :meth:`shutdown` (or a remote one)."""
        with self._lifecycle:
            if self._stopped.is_set():
                # shutdown() won the race (or already ran): never enter the
                # serve loop, just release the socket.
                self._tcp.server_close()
                return
            self._serving = True
        try:
            self._tcp.serve_forever(poll_interval=0.1)
        finally:
            with self._lifecycle:
                self._serving = False
                self._stopped.set()
            self._tcp.server_close()

    def start_background(self) -> threading.Thread:
        """Serve on a daemon thread; returns the thread."""
        thread = threading.Thread(target=self.serve_forever, name="influence-server", daemon=True)
        thread.start()
        return thread

    def stop_async(self) -> None:
        """Request shutdown from a handler thread (non-blocking)."""
        threading.Thread(target=self.shutdown, daemon=True).start()

    def shutdown(self, *, close_service: bool = False) -> None:
        """Stop the listener (idempotent); optionally close the service.

        Safe at any lifecycle point: ``socketserver.shutdown`` blocks on an
        event that only a *running* ``serve_forever`` loop ever sets, so it
        is called only when the loop is live.  If the loop has not started
        yet (e.g. ``start_background`` just launched its thread), the stop
        flag makes ``serve_forever`` exit before serving instead — no
        deadlock either way.
        """
        with self._lifecycle:
            first = not self._stopped.is_set()
            self._stopped.set()
            serving = self._serving
        if first:
            if serving:
                self._tcp.shutdown()
            else:
                self._tcp.server_close()
        if close_service:
            self.service.close()

    @property
    def stopped(self) -> bool:
        return self._stopped.is_set()

    def wait_stopped(self, timeout: float | None = None) -> bool:
        return self._stopped.wait(timeout)


def serve(
    service: InfluenceService, *, host: str = "127.0.0.1", port: int = 0
) -> InfluenceServer:
    """Convenience: build a server bound to ``(host, port)``."""
    return InfluenceServer(service, host=host, port=port)
