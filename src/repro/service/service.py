"""`InfluenceService` — concurrent multi-user serving over warm engines.

The service is the multi-user face of the library: it owns a registry of
named :class:`~repro.engine.engine.InfluenceEngine` sessions that all
share one :class:`~repro.service.pool.PoolManager` — one global pool
byte budget, one spill directory — plus a thread pool that lets many
clients have queries in flight at once:

>>> from repro import InfluenceService, load_dataset
>>> service = InfluenceService(pool_budget=64 << 20)
>>> _ = service.open_session("default", load_dataset("nethept"),
...                          model="LT", seed=7)
>>> futures = [service.submit("maximize", k=k, epsilon=0.2) for k in (5, 10)]
>>> [len(f.result().seeds) for f in futures]
[5, 10]
>>> service.close()

Concurrency is *exact*: queries read immutable pool snapshots and
top-ups extend the pure ``(seed, workers)`` RR stream under a lock, so
any interleaving of concurrent queries returns byte-identical answers to
the same queries run sequentially on a fresh engine.  What concurrency
*does* share is conditioning — answers served from one pool are
statistically correlated (the registry's ``concurrency`` column says
which algorithms share pools).

Operations are also exposed name-based (:meth:`InfluenceService.call`)
for transport layers: the TCP server
(:mod:`repro.service.server`) and the ``repro query`` REPL both speak
this op vocabulary.
"""

from __future__ import annotations

import threading
import time
import warnings
from concurrent.futures import Future, ThreadPoolExecutor

from repro.engine.engine import InfluenceEngine
from repro.engine.registry import get_algorithm, list_algorithms
from repro.service.admission import ADMITTED_OPS, AdmissionController, estimate_cost
from repro.service.errors import (  # noqa: F401  (re-exported compat surface)
    InternalServiceError,
    OverBudgetError,
    ServiceError,
    UnknownSessionError,
)
from repro.service.metrics import MetricsRegistry, prometheus_text
from repro.service.pool import PoolManager
from repro.service.protocol import result_to_dict

#: operation vocabulary shared by the programmatic API, the TCP server,
#: and the REPL.  ``shutdown`` and ``hello`` are transport-level and
#: handled by the server, not here.
OPERATIONS = (
    "ping",
    "algorithms",
    "sessions",
    "stats",
    "metrics",
    "metrics_text",
    "quota",
    "resize",
    "mutate",
    "maximize",
    "sweep",
    "estimate",
)


def _opt_int(value, name: str) -> int | None:
    if value is None:
        return None
    try:
        return int(value)
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"{name} must be an integer, got {value!r}") from exc


def _opt_float(value, name: str) -> float | None:
    if value is None:
        return None
    try:
        return float(value)
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"{name} must be a number, got {value!r}") from exc


def _edge_list(value, name: str, *, weighted: bool, allow_string: bool = True) -> list[tuple]:
    """Parse a wire-format edge list for the ``mutate`` operation.

    The structured form is a list of ``[u, v(, w)]`` rows — the
    :meth:`repro.dynamic.delta.GraphDelta.as_dict` wire shape.  The
    legacy string form (comma-separated groups with colon-separated
    fields, ``"0:1:0.5,2:3:0.25"``) is a **deprecated alias** kept for
    one release; it warns and will be removed.  Weighted ops
    (add/reweight) need exactly three fields; removes exactly two.
    """
    if value is None:
        return []
    if isinstance(value, str):
        if not allow_string:
            raise ServiceError(
                f"{name} must be a list of edge rows, not a string"
            )
        warnings.warn(
            f"string edge lists for mutate ({name}={value!r}) are deprecated; "
            "send the structured GraphDelta.as_dict() form "
            '({"delta": {"add": [[u, v, w], ...], ...}})',
            DeprecationWarning,
            stacklevel=3,
        )
        value = [group.split(":") for group in value.split(",") if group.strip()]
    arity = 3 if weighted else 2
    out = []
    for item in value:
        fields = list(item)
        if len(fields) != arity:
            raise ServiceError(
                f"{name} entries need {arity} fields (got {fields!r})"
            )
        try:
            edge = (int(fields[0]), int(fields[1]))
            if weighted:
                edge = edge + (float(fields[2]),)
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"{name} entry {fields!r} is not numeric") from exc
        out.append(edge)
    return out


def _int_list(value, name: str) -> list[int]:
    if isinstance(value, str):
        value = [tok for tok in value.replace(",", " ").split() if tok]
    try:
        out = [int(v) for v in value]
    except (TypeError, ValueError) as exc:
        raise ServiceError(f"{name} must be a list of integers, got {value!r}") from exc
    if not out:
        raise ServiceError(f"{name} must be non-empty")
    return out


class InfluenceService:
    """Registry of named engine sessions serving concurrent queries.

    Parameters
    ----------
    pool_budget:
        Global byte budget across *all* sessions' RR pools (LRU eviction
        of idle pools; see :class:`~repro.service.pool.PoolManager`).
    spill_dir:
        Directory for cross-restart pool persistence.  Evicted and
        closed pools are spilled there and reattached on the next
        session with the same stream identity.
    max_workers:
        Size of the thread pool behind :meth:`submit`; also the number
        of queries that can make progress at once.
    admission_queue_timeout:
        How long an admitted-but-over-reserved query queues for
        in-flight reservations to drain before rejection (see
        :class:`~repro.service.admission.AdmissionController`).
    """

    def __init__(
        self,
        *,
        pool_budget: int | None = None,
        spill_dir=None,
        max_workers: int = 8,
        admission_queue_timeout: float = 0.5,
    ) -> None:
        if max_workers < 1:
            raise ServiceError(f"max_workers must be >= 1, got {max_workers}")
        self.pools = PoolManager(budget_bytes=pool_budget, spill_dir=spill_dir)
        self.metrics = MetricsRegistry()
        self.admission = AdmissionController(queue_timeout=admission_queue_timeout)
        self._engines: dict[str, InfluenceEngine] = {}
        self._lock = threading.RLock()
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="influence-query"
        )
        self._closed = False

    # ------------------------------------------------------------------
    # Session registry
    # ------------------------------------------------------------------
    def open_session(
        self,
        name: str,
        graph,
        *,
        model="IC",
        seed: int | None = None,
        backend=None,
        workers: int | None = None,
        roots=None,
        kernel=None,
        quota_bytes: int | None = None,
    ) -> InfluenceEngine:
        """Create a named engine session bound to the shared pool manager.

        ``quota_bytes`` caps this session's share of the pool budget:
        over-quota usage reclaims from the session's *own* pools first,
        and the admission controller rejects queries whose predicted
        RR-set bill exceeds the quota (see :meth:`set_quota`).
        """
        with self._lock:
            self._check_open()
            if name in self._engines:
                raise ServiceError(f"session {name!r} already exists")
            engine = InfluenceEngine(
                graph,
                model=model,
                seed=seed,
                backend=backend,
                workers=workers,
                roots=roots,
                kernel=kernel,
                pool_manager=self.pools,
                session=name,
            )
            self._engines[name] = engine
        if quota_bytes is not None:
            self.pools.set_quota(name, quota_bytes)
        return engine

    def set_quota(self, name: str, quota_bytes: int | None) -> None:
        """Set (or clear, with ``None``) one session's byte quota."""
        self.session(name)  # raises UnknownSessionError for typos
        self.pools.set_quota(name, quota_bytes)

    def session(self, name: str = "default") -> InfluenceEngine:
        """Look a session up by name."""
        with self._lock:
            engine = self._engines.get(name)
            open_names = sorted(self._engines)
        if engine is None:
            raise UnknownSessionError(
                f"unknown session {name!r}; open sessions: {open_names}"
            )
        return engine

    def close_session(self, name: str) -> None:
        """Close one session (its pools spill when a spill dir is set)."""
        with self._lock:
            engine = self._engines.pop(name, None)
        if engine is None:
            raise UnknownSessionError(f"unknown session {name!r}")
        engine.close()
        self.pools.set_quota(name, None)

    def sessions(self) -> dict:
        """Summary of every open session, keyed by name."""
        with self._lock:
            engines = dict(self._engines)
        out = {}
        for name, engine in engines.items():
            out[name] = {
                "graph_nodes": engine.graph.n,
                "graph_edges": engine.graph.m,
                "model": engine.model.value,
                "seed": engine.seed,
                "backend": getattr(engine.backend, "name", engine.backend) or "serial",
                "workers": engine.active_workers,
                "kernel": engine.kernel.name,
                "queries": engine.stats_snapshot().queries,
            }
        return out

    # ------------------------------------------------------------------
    # Query surface
    # ------------------------------------------------------------------
    def submit(self, op: str, *, session: str = "default", **params) -> Future:
        """Run one operation on the service's thread pool; returns a future.

        This is the async-friendly entry point: callers fan out any
        number of operations and collect futures, while the pool layer
        guarantees the answers are byte-identical to a sequential run.
        """
        with self._lock:
            self._check_open()
            return self._executor.submit(self.call, op, session=session, **params)

    def call(self, op: str, *, session: str = "default", **params):
        """Run one named operation synchronously and return its raw result.

        Every call — success or failure — is timed into the service's
        per-op latency histograms (the ``metrics`` operation reads them
        back).  Query operations (:data:`~repro.service.admission.ADMITTED_OPS`)
        pass through the admission controller first: their predicted
        RR-set bill is checked against the session quota, and an
        unaffordable query fails with
        :class:`~repro.service.errors.OverBudgetError` before any
        sampling happens.
        """
        self._check_open()
        handler = getattr(self, f"_op_{op.replace('-', '_')}", None)
        if op not in OPERATIONS or handler is None:
            raise ServiceError(f"unknown operation {op!r}; known: {OPERATIONS}")
        start = time.perf_counter()
        try:
            if op in ADMITTED_OPS:
                engine = self.session(session)
                quota = self.pools.quota_for(session)
                estimate = estimate_cost(
                    engine, op=op, session=session, params=params, quota_bytes=quota
                )
                with self.admission.admit(
                    session=session, quota=quota, estimate=estimate
                ):
                    return handler(session, dict(params))
            return handler(session, dict(params))
        finally:
            self.metrics.observe(op, time.perf_counter() - start)

    def stats(self, session: str | None = None) -> dict:
        """Service-level statistics (optionally scoped to one session)."""
        if session is not None:
            engine = self.session(session)
            payload = engine.stats_snapshot().as_dict()
            payload.update(
                {
                    "session": session,
                    "seed": engine.seed,
                    "workers": engine.active_workers,
                    "graph_version": engine.graph_version,
                    "pools": {
                        "/".join(str(p) for p in key): size
                        for key, size in engine.pool_sizes().items()
                    },
                    "reattached_sets": self.pools.reattached_for(session),
                    "pool_truncations": self.pools.truncations_for(session),
                    "pool_bytes": self.pools.bytes_for(session),
                    "quota_bytes": self.pools.quota_for(session),
                    "admission": self.admission.counters().get(session, {}),
                }
            )
            return payload
        with self._lock:
            names = sorted(self._engines)
        return {
            "sessions": {name: self.stats(name) for name in names},
            "pool_bytes_total": self.pools.total_bytes(),
            "pool_budget": self.pools.budget_bytes,
            "evictions_total": self.pools.evictions_for(None),
            "quotas": self.pools.quotas(),
            "admission": self.admission.counters(),
        }

    # ------------------------------------------------------------------
    # Operation handlers (name-based vocabulary for transports)
    # ------------------------------------------------------------------
    def _op_ping(self, session: str, params: dict):
        return {"pong": True}

    def _op_algorithms(self, session: str, params: dict):
        rows = []
        for name in list_algorithms():
            spec = get_algorithm(name)
            rows.append(
                {
                    "name": spec.name,
                    "engine": spec.engine_func is not None,
                    "needs_rr_sets": spec.needs_rr_sets,
                    "supports_backend": spec.supports_backend,
                    "supports_horizon": spec.supports_horizon,
                    "supports_kernel": spec.supports_kernel,
                    "concurrency": spec.concurrency,
                    "description": spec.description,
                }
            )
        return rows

    def _op_sessions(self, session: str, params: dict):
        return self.sessions()

    def _op_stats(self, session: str, params: dict):
        if params.pop("all", False):
            return self.stats(None)
        return self.stats(session)

    def _op_metrics(self, session: str, params: dict):
        self._reject_unknown("metrics", params)
        return self.metrics.snapshot()

    def _op_metrics_text(self, session: str, params: dict):
        """Prometheus text exposition over the NDJSON protocol.

        The same text a ``GET /metrics`` scrape on ``--metrics-port``
        returns, so protocol-only clients can still feed a scraper.
        """
        self._reject_unknown("metrics_text", params)
        return {
            "content_type": "text/plain; version=0.0.4; charset=utf-8",
            "text": prometheus_text(self),
        }

    def _op_quota(self, session: str, params: dict):
        """Read or set the session's byte quota over the wire."""
        has_quota = "quota_bytes" in params
        quota = _opt_int(params.pop("quota_bytes", None), "quota_bytes")
        self._reject_unknown("quota", params)
        if has_quota:
            self.set_quota(session, quota)
        else:
            self.session(session)
        return {
            "session": session,
            "quota_bytes": self.pools.quota_for(session),
            "pool_bytes": self.pools.bytes_for(session),
            "reserved_bytes": self.admission.reserved_for(session),
        }

    def _op_resize(self, session: str, params: dict):
        engine = self.session(session)
        workers = _opt_int(params.pop("workers", None), "workers")
        if workers is None:
            raise ServiceError("resize needs workers")
        self._reject_unknown("resize", params)
        resized = engine.resize(workers)
        return {"session": session, "workers": workers, "pools_resized": resized}

    def _op_mutate(self, session: str, params: dict):
        engine = self.session(session)
        delta = params.pop("delta", None)
        if delta is not None:
            # Structured wire form: GraphDelta.as_dict() verbatim.
            if not isinstance(delta, dict):
                raise ServiceError(
                    "mutate delta must be a JSON object in GraphDelta.as_dict() "
                    f"form, got {type(delta).__name__}"
                )
            unknown = sorted(set(delta) - {"add", "remove", "reweight"})
            if unknown:
                raise ServiceError(f"mutate delta got unknown key(s) {unknown}")
            if any(params.get(k) is not None for k in ("add", "remove", "reweight")):
                raise ServiceError(
                    "mutate takes either a structured delta or legacy "
                    "add/remove/reweight fields, not both"
                )
            for k in ("add", "remove", "reweight"):
                params.pop(k, None)
            add = _edge_list(delta.get("add"), "delta.add", weighted=True, allow_string=False)
            remove = _edge_list(delta.get("remove"), "delta.remove", weighted=False, allow_string=False)
            reweight = _edge_list(delta.get("reweight"), "delta.reweight", weighted=True, allow_string=False)
        else:
            add = _edge_list(params.pop("add", None), "add", weighted=True)
            remove = _edge_list(params.pop("remove", None), "remove", weighted=False)
            reweight = _edge_list(params.pop("reweight", None), "reweight", weighted=True)
        self._reject_unknown("mutate", params)
        if not (add or remove or reweight):
            raise ServiceError("mutate needs at least one of add/remove/reweight")
        return engine.mutate(add=add, remove=remove, reweight=reweight)

    def _op_maximize(self, session: str, params: dict):
        engine = self.session(session)
        k = _opt_int(params.pop("k", None), "k")
        if k is None:
            raise ServiceError("maximize needs k")
        epsilon = _opt_float(params.pop("epsilon", None), "epsilon")
        kwargs = {
            "epsilon": epsilon if epsilon is not None else 0.1,
            "delta": _opt_float(params.pop("delta", None), "delta"),
            "algorithm": str(params.pop("algorithm", "D-SSA")),
            "model": params.pop("model", None),
            "horizon": _opt_int(params.pop("horizon", None), "horizon"),
            "max_samples": _opt_int(params.pop("max_samples", None), "max_samples"),
            "workers": _opt_int(params.pop("workers", None), "workers"),
        }
        self._reject_unknown("maximize", params)
        return engine.maximize(k, **kwargs)

    def _op_sweep(self, session: str, params: dict):
        engine = self.session(session)
        ks = _int_list(params.pop("ks", ()), "ks")
        epsilon = _opt_float(params.pop("epsilon", None), "epsilon")
        kwargs = {
            "epsilon": epsilon if epsilon is not None else 0.1,
            "delta": _opt_float(params.pop("delta", None), "delta"),
            "algorithm": str(params.pop("algorithm", "D-SSA")),
            "workers": _opt_int(params.pop("workers", None), "workers"),
        }
        self._reject_unknown("sweep", params)
        return engine.sweep(ks, **kwargs)

    def _op_estimate(self, session: str, params: dict):
        engine = self.session(session)
        seeds = _int_list(params.pop("seeds", ()), "seeds")
        kwargs = {
            "samples": _opt_int(params.pop("samples", None), "samples"),
            "model": params.pop("model", None),
            "horizon": _opt_int(params.pop("horizon", None), "horizon"),
            "workers": _opt_int(params.pop("workers", None), "workers"),
        }
        self._reject_unknown("estimate", params)
        return engine.estimate(seeds, **kwargs)

    @staticmethod
    def _reject_unknown(op: str, params: dict) -> None:
        if params:
            raise ServiceError(f"{op} got unknown parameter(s) {sorted(params)}")

    @staticmethod
    def wire_result(result):
        """JSON-able form of an operation result (for transports)."""
        from repro.core.result import IMResult

        if isinstance(result, IMResult):
            return result_to_dict(result)
        if isinstance(result, list) and result and isinstance(result[0], IMResult):
            return [result_to_dict(r) for r in result]
        return result

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        # Deliberately lock-free (baselined in reprolint-baseline.json):
        # _closed is a monotonic GIL-atomic bool, and this sits on every
        # query's hot path.  Worst case a query racing close() proceeds
        # and fails in the draining executor instead of failing here.
        if self._closed:
            raise ServiceError("InfluenceService is closed")

    def close(self, *, spill: bool = True) -> None:
        """Drain in-flight queries, close every session, spill pools."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            engines = list(self._engines.values())
            self._engines.clear()
        self._executor.shutdown(wait=True)
        errors = []
        for engine in engines:
            try:
                engine.close()
            except Exception as exc:
                errors.append(exc)
        try:
            self.pools.close(spill=spill)
        except Exception as exc:
            errors.append(exc)
        if errors:
            raise errors[0]

    def __enter__(self) -> "InfluenceService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
