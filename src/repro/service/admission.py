"""Admission control: predict a query's RR-set bill before running it.

The serving tier's scarce resource is pooled RR-set bytes.  A query's
bill is estimable *before any sampling happens* from quantities the
engine already tracks — the RIS theta bounds give the set count, the
pool gives the observed mean set size, and current occupancy says how
much of the demand is already cached:

* **Set count** — D-SSA (and the other stop-and-stare RIS algorithms)
  consume the stream in doubling rungs ``2·Λ·2^(t-1)`` up to the
  theta cap ``N_max`` (:func:`repro.core.thresholds.sample_cap`).  The
  admission estimate is the first rung the pool does not already cover
  — the *cheapest outcome that samples at all*.  The true bill may
  double a few more times before the stopping conditions fire; the cap
  rides along as the worst case (``cap_sets``).
* **Bytes per set** — the pool's observed mean (``nbytes / len``) when
  it holds anything, else a conservative prior
  (:data:`DEFAULT_SET_BYTES`).
* **Occupancy** — cached sets are free (the pool layer serves them
  byte-identically without sampling), so only the deficit is billed.

The :class:`AdmissionController` turns estimates into decisions against
the session's byte quota:

* bill alone exceeds the quota → **reject** immediately with a
  structured ``over_budget`` error carrying the estimate;
* bill fits the quota but concurrent in-flight queries hold too many
  reserved bytes → **queue** (bounded wait for reservations to drain,
  then reject);
* otherwise → **admit**, reserving the bill until the query finishes.

Accept/reject/queue counters per session feed the Prometheus exposition
(:func:`repro.service.metrics.prometheus_text`).
"""

from __future__ import annotations

import math
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass

from repro.core.thresholds import max_iterations, sample_cap
from repro.exceptions import ReproError
from repro.service.errors import OverBudgetError
from repro.utils.mathstats import upsilon

#: bytes-per-RR-set prior used before a pool has observed anything.
#: RR sets are int32 node arrays; 16 nodes/set is generous for the
#: sparse weighted-cascade regime and safely conservative for admission.
DEFAULT_SET_BYTES = 64

#: pool floor the ``estimate`` op tops an empty session up to (mirrors
#: ``repro.engine.engine._DEFAULT_ESTIMATE_SAMPLES``).
_ESTIMATE_FLOOR = 4096

#: operations the controller gates; everything else (ping, stats,
#: metrics, resize, mutate, ...) has no RR-set bill.
ADMITTED_OPS = ("maximize", "sweep", "estimate")


@dataclass(frozen=True)
class CostEstimate:
    """One query's predicted RR-set bill, computed before admission.

    ``demand_sets`` is the predicted total stream prefix the query will
    require; ``sets_to_sample``/``bytes_to_sample`` is the deficit after
    cache (the actual bill); ``cap_sets`` is the theta worst case.
    """

    op: str
    session: str
    algorithm: "str | None"
    k: "int | None"
    epsilon: "float | None"
    occupancy_sets: int
    pooled_bytes: int
    mean_set_bytes: float
    demand_sets: int
    sets_to_sample: int
    bytes_to_sample: int
    cap_sets: int
    quota_bytes: "int | None"

    def as_dict(self) -> dict:
        return {
            "op": self.op,
            "session": self.session,
            "algorithm": self.algorithm,
            "k": self.k,
            "epsilon": self.epsilon,
            "occupancy_sets": self.occupancy_sets,
            "pooled_bytes": self.pooled_bytes,
            "mean_set_bytes": round(self.mean_set_bytes, 2),
            "demand_sets": self.demand_sets,
            "sets_to_sample": self.sets_to_sample,
            "bytes_to_sample": self.bytes_to_sample,
            "cap_sets": self.cap_sets,
            "quota_bytes": self.quota_bytes,
        }


def predict_demand(
    n: int,
    k: int,
    epsilon: float,
    delta: float,
    *,
    occupancy: int = 0,
    max_samples: "int | None" = None,
) -> "tuple[int, int]":
    """Predicted stream demand of one stop-and-stare query.

    Returns ``(demand_sets, cap_sets)``: the first doubling rung
    ``2·Λ·2^(t-1)`` beyond what the pool already holds (clamped to the
    theta cap), and the cap itself.  A pool at or past the cap predicts
    zero sampling (``demand == occupancy``).
    """
    cap = sample_cap(n, k, epsilon, delta)
    if max_samples is not None:
        cap = min(cap, float(max_samples))
    cap_sets = int(math.ceil(cap))
    t_max = max_iterations(n, k, epsilon, delta)
    lambda_base = int(math.ceil(upsilon(epsilon, delta / (3.0 * t_max))))
    demand = occupancy
    for t in range(1, t_max + 1):
        rung = min(2 * lambda_base * (2 ** (t - 1)), cap_sets)
        if rung > occupancy:
            demand = rung
            break
        if rung >= cap_sets:
            break
    return demand, cap_sets


def _opt_num(params: dict, name: str, cast, default=None):
    value = params.get(name)
    if value is None:
        return default
    return cast(value)


def estimate_cost(
    engine,
    *,
    op: str,
    session: str,
    params: dict,
    quota_bytes: "int | None" = None,
) -> "CostEstimate | None":
    """Estimate one operation's RR-set bill against a session engine.

    Returns ``None`` when the operation carries no pool bill (one-shot
    algorithms sample outside the pools) or when the parameters are
    malformed — admission never masks the handler's real
    ``bad_request`` error with a cost-model failure.
    """
    if op not in ADMITTED_OPS:
        return None
    try:
        return _estimate_cost(
            engine, op=op, session=session, params=params, quota_bytes=quota_bytes
        )
    except (ReproError, ValueError, TypeError, KeyError, OverflowError):
        return None


def _estimate_cost(engine, *, op, session, params, quota_bytes):
    from repro.engine.registry import get_algorithm

    n = engine.graph.n
    algorithm = None
    k = None
    epsilon = None
    horizon = _opt_num(params, "horizon", int)
    model = params.get("model")

    if op == "estimate":
        occupancy, pooled_bytes = engine.pool_occupancy(
            stream="direct", model=model, horizon=horizon
        )
        samples = _opt_num(params, "samples", int)
        demand = samples if samples is not None else max(occupancy, _ESTIMATE_FLOOR)
        cap = demand
    else:
        algorithm = str(params.get("algorithm", "D-SSA"))
        spec = get_algorithm(algorithm)
        if spec.engine_func is None or not spec.needs_rr_sets:
            return None  # one-shot algorithms never touch the pools
        if op == "sweep":
            ks = params.get("ks") or ()
            if isinstance(ks, str):
                ks = [tok for tok in ks.replace(",", " ").split() if tok]
            k = max(int(v) for v in ks)
        else:
            k = int(params["k"])
        epsilon = _opt_num(params, "epsilon", float, 0.1)
        delta = _opt_num(params, "delta", float, 1.0 / max(n, 2))
        max_samples = _opt_num(params, "max_samples", int)
        occupancy, pooled_bytes = engine.pool_occupancy(
            stream=spec.stream, model=model, horizon=horizon
        )
        demand, cap = predict_demand(
            n, k, epsilon, delta, occupancy=occupancy, max_samples=max_samples
        )

    mean_set_bytes = (
        pooled_bytes / occupancy if occupancy else float(DEFAULT_SET_BYTES)
    )
    sets_to_sample = max(0, demand - occupancy)
    return CostEstimate(
        op=op,
        session=session,
        algorithm=algorithm,
        k=k,
        epsilon=epsilon,
        occupancy_sets=occupancy,
        pooled_bytes=pooled_bytes,
        mean_set_bytes=mean_set_bytes,
        demand_sets=demand,
        sets_to_sample=sets_to_sample,
        bytes_to_sample=int(math.ceil(sets_to_sample * mean_set_bytes)),
        cap_sets=cap,
        quota_bytes=quota_bytes,
    )


class AdmissionController:
    """Reservation-based admission against per-session byte quotas.

    Admitted queries *reserve* their estimated bill until completion, so
    a burst of concurrent queries on one session cannot collectively
    blow its quota by each fitting individually.  Quota-less sessions
    are always admitted (counters still tick).

    Parameters
    ----------
    queue_timeout:
        How long an over-reserved (but individually affordable) query
        waits for in-flight reservations to drain before being rejected.
        ``0`` disables queueing — reject immediately.
    """

    def __init__(self, *, queue_timeout: float = 0.5) -> None:
        if queue_timeout < 0:
            raise ValueError(f"queue_timeout must be >= 0, got {queue_timeout}")
        self.queue_timeout = float(queue_timeout)
        self._cond = threading.Condition()
        self._reserved: dict[str, int] = {}
        self._counters: dict[tuple[str, str], int] = {}

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def counters(self) -> dict:
        """``{session: {outcome: count}}`` for every session seen."""
        with self._cond:
            items = list(self._counters.items())
        out: dict = {}
        for (session, outcome), count in items:
            out.setdefault(session, {})[outcome] = count
        return out

    def reserved_for(self, session: str) -> int:
        """Bytes currently reserved by the session's in-flight queries."""
        with self._cond:
            return self._reserved.get(session, 0)

    def _count_locked(self, session: str, outcome: str) -> None:
        key = (session, outcome)
        self._counters[key] = self._counters.get(key, 0) + 1

    # ------------------------------------------------------------------
    # Admission
    # ------------------------------------------------------------------
    @contextmanager
    def admit(self, *, session: str, quota: "int | None", estimate: "CostEstimate | None"):
        """Admit, queue, or reject one query; yields inside the reservation.

        Raises :class:`~repro.service.errors.OverBudgetError` (wire code
        ``over_budget``, estimate attached) on rejection.
        """
        bill = estimate.bytes_to_sample if estimate is not None else 0
        if quota is None or bill == 0:
            with self._cond:
                self._count_locked(session, "accepted")
            yield estimate
            return
        if bill > quota:
            with self._cond:
                self._count_locked(session, "rejected")
            raise OverBudgetError(
                f"query on session {session!r} predicts a {bill}-byte RR-set "
                f"bill, over the {quota}-byte session quota",
                estimate=estimate.as_dict(),
            )
        deadline = time.monotonic() + self.queue_timeout
        with self._cond:
            queued = False
            while self._reserved.get(session, 0) + bill > quota:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    self._count_locked(session, "rejected")
                    raise OverBudgetError(
                        f"query on session {session!r} predicts a {bill}-byte "
                        f"bill; in-flight queries hold "
                        f"{self._reserved.get(session, 0)} of the {quota}-byte "
                        f"quota reserved (queued {self.queue_timeout:.1f}s)",
                        estimate=estimate.as_dict(),
                    )
                if not queued:
                    queued = True
                    self._count_locked(session, "queued")
                self._cond.wait(remaining)
            self._reserved[session] = self._reserved.get(session, 0) + bill
            self._count_locked(session, "accepted")
        try:
            yield estimate
        finally:
            with self._cond:
                left = self._reserved.get(session, 0) - bill
                if left > 0:
                    self._reserved[session] = left
                else:
                    self._reserved.pop(session, None)
                self._cond.notify_all()
