"""Strongly connected components and reachability structure.

Influence flows along directed paths, so a graph's SCC structure bounds
what any seed set can achieve: a seed influences (at most) the forward
closure of its component in the condensation DAG.  These utilities give
analysts the structural view behind the sampling numbers and give tests
a cheap upper-bound oracle for influence.
"""

from __future__ import annotations

import numpy as np

from repro.graph.digraph import CSRGraph


def strongly_connected_components(graph: CSRGraph) -> np.ndarray:
    """Component id per node (Tarjan's algorithm, iterative).

    Ids are assigned in reverse topological order of the condensation
    (a component's id is larger than those of components it can reach —
    the usual Tarjan numbering).
    """
    n = graph.n
    index = np.full(n, -1, dtype=np.int64)
    lowlink = np.zeros(n, dtype=np.int64)
    on_stack = np.zeros(n, dtype=bool)
    component = np.full(n, -1, dtype=np.int64)
    stack: list[int] = []
    next_index = 0
    next_component = 0

    indptr, indices = graph.out_indptr, graph.out_indices

    for root in range(n):
        if index[root] != -1:
            continue
        # Each work item: (node, next out-edge offset to try).
        work: list[list[int]] = [[root, int(indptr[root])]]
        while work:
            v, edge_pos = work[-1]
            if index[v] == -1:
                index[v] = lowlink[v] = next_index
                next_index += 1
                stack.append(v)
                on_stack[v] = True
            advanced = False
            while edge_pos < indptr[v + 1]:
                w = int(indices[edge_pos])
                edge_pos += 1
                if index[w] == -1:
                    work[-1][1] = edge_pos
                    work.append([w, int(indptr[w])])
                    advanced = True
                    break
                if on_stack[w]:
                    lowlink[v] = min(lowlink[v], index[w])
            if advanced:
                continue
            work[-1][1] = edge_pos
            if lowlink[v] == index[v]:
                while True:
                    w = stack.pop()
                    on_stack[w] = False
                    component[w] = next_component
                    if w == v:
                        break
                next_component += 1
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[v])
    return component


def component_sizes(graph: CSRGraph) -> np.ndarray:
    """Sizes of all SCCs, descending."""
    labels = strongly_connected_components(graph)
    if labels.size == 0:
        return np.zeros(0, dtype=np.int64)
    sizes = np.bincount(labels)
    return np.sort(sizes)[::-1]


def largest_scc(graph: CSRGraph) -> np.ndarray:
    """Node ids of the largest strongly connected component."""
    labels = strongly_connected_components(graph)
    if labels.size == 0:
        return np.zeros(0, dtype=np.int64)
    biggest = np.argmax(np.bincount(labels))
    return np.nonzero(labels == biggest)[0]


def forward_closure_size(graph: CSRGraph, node: int) -> int:
    """Number of nodes reachable from ``node`` — a hard cap on I({node}).

    Even with all edge probabilities 1, a cascade from ``node`` cannot
    leave its forward closure; tests use this as an influence ceiling.
    """
    seen = np.zeros(graph.n, dtype=bool)
    seen[node] = True
    frontier = [int(node)]
    while frontier:
        nxt = []
        for u in frontier:
            for v in graph.out_neighbors(u).tolist():
                if not seen[v]:
                    seen[v] = True
                    nxt.append(v)
        frontier = nxt
    return int(seen.sum())
