"""Structural graph transformations."""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import CSRGraph


def reverse_graph(graph: CSRGraph) -> CSRGraph:
    """Graph with every edge direction flipped (weights preserved).

    Reversal swaps the in and out CSR views, so this is O(1) array reuse.
    """
    return CSRGraph(
        graph.n,
        graph.in_indptr.copy(),
        graph.in_indices.copy(),
        graph.in_weights.copy(),
        graph.out_indptr.copy(),
        graph.out_indices.copy(),
        graph.out_weights.copy(),
    )


def undirected_to_bidirected(edges: "list[tuple[int, int]]", *, n: int | None = None) -> CSRGraph:
    """Replace each undirected edge {u, v} by arcs (u, v) and (v, u).

    This is the paper's treatment of Orkut and Friendster (Section 7.1
    Remark): undirected social ties become two opposite influence arcs.
    """
    builder = GraphBuilder(n)
    for u, v in edges:
        builder.add_edge(u, v)
        builder.add_edge(v, u)
    return builder.build()


def induced_subgraph(graph: CSRGraph, nodes: "list[int] | np.ndarray") -> CSRGraph:
    """Subgraph induced by ``nodes``, relabeled to 0..len(nodes)-1.

    Node order in ``nodes`` defines the new labels.
    """
    nodes = np.asarray(nodes, dtype=np.int64)
    if nodes.size != np.unique(nodes).size:
        raise GraphError("induced_subgraph received duplicate node ids")
    if nodes.size and (nodes.min() < 0 or nodes.max() >= graph.n):
        raise GraphError("induced_subgraph received out-of-range node ids")
    new_id = -np.ones(graph.n, dtype=np.int64)
    new_id[nodes] = np.arange(nodes.size)

    builder = GraphBuilder(int(nodes.size))
    for old_u in nodes.tolist():
        u = int(new_id[old_u])
        targets = graph.out_neighbors(old_u)
        weights = graph.out_edge_weights(old_u)
        for old_v, w in zip(targets.tolist(), weights.tolist()):
            v = new_id[old_v]
            if v >= 0:
                builder.add_edge(u, int(v), w)
    return builder.build()


def relabel_nodes(graph: CSRGraph, permutation: "list[int] | np.ndarray") -> CSRGraph:
    """Apply a node permutation: new id of node i is ``permutation[i]``.

    Used by tests to assert that algorithms are label-invariant.
    """
    perm = np.asarray(permutation, dtype=np.int64)
    if perm.size != graph.n or np.unique(perm).size != graph.n:
        raise GraphError("permutation must be a bijection over all nodes")
    builder = GraphBuilder(graph.n)
    for u in range(graph.n):
        targets = graph.out_neighbors(u)
        weights = graph.out_edge_weights(u)
        for v, w in zip(targets.tolist(), weights.tolist()):
            builder.add_edge(int(perm[u]), int(perm[v]), w)
    return builder.build()


def largest_out_component_seeded(graph: CSRGraph, source: int) -> np.ndarray:
    """Nodes forward-reachable from ``source`` (BFS over out edges).

    A cheap reachability helper used by dataset sanity checks.
    """
    if not 0 <= source < graph.n:
        raise GraphError(f"source {source} out of range for n={graph.n}")
    seen = np.zeros(graph.n, dtype=bool)
    seen[source] = True
    frontier = [source]
    while frontier:
        next_frontier = []
        for u in frontier:
            for v in graph.out_neighbors(u).tolist():
                if not seen[v]:
                    seen[v] = True
                    next_frontier.append(v)
        frontier = next_frontier
    return np.nonzero(seen)[0]
