"""Random and deterministic graph generators.

The dataset stand-ins (``repro.datasets``) are built from
:func:`powerlaw_configuration` (heavy-tailed degree, the shape of real
social networks) and :func:`preferential_attachment`.  The deterministic
small graphs at the bottom give tests structures whose influence spread is
analytically known.

All generators return unweighted graphs (weight 1.0 per edge); compose with
:mod:`repro.graph.weights` to pick an influence model.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.builder import GraphBuilder, from_edges
from repro.graph.digraph import CSRGraph
from repro.utils.rng import ensure_rng


def erdos_renyi(
    n: int,
    p: float | None = None,
    *,
    m: int | None = None,
    seed: int | np.random.Generator | None = None,
) -> CSRGraph:
    """Directed G(n, p) or G(n, m) random graph.

    Exactly one of ``p`` (edge probability) or ``m`` (edge count) must be
    given.  The G(n, m) form samples edges without replacement, so the
    result has exactly ``m`` distinct directed edges.
    """
    if n <= 0:
        raise ParameterError(f"n must be positive, got {n}")
    if (p is None) == (m is None):
        raise ParameterError("provide exactly one of p or m")
    rng = ensure_rng(seed)
    max_edges = n * (n - 1)
    if p is not None:
        if not 0.0 <= p <= 1.0:
            raise ParameterError(f"p must be in [0, 1], got {p}")
        m = int(rng.binomial(max_edges, p))
    if m > max_edges:
        raise ParameterError(f"m={m} exceeds the {max_edges} possible directed edges")
    # Sample edge codes in [0, n(n-1)) without replacement; decode skipping
    # the diagonal so self-loops are impossible by construction.
    codes = rng.choice(max_edges, size=m, replace=False)
    src = codes // (n - 1)
    rem = codes % (n - 1)
    dst = np.where(rem >= src, rem + 1, rem)
    return from_edges(zip(src.tolist(), dst.tolist()), n=n)


def powerlaw_configuration(
    n: int,
    avg_degree: float,
    *,
    exponent: float = 2.3,
    seed: int | np.random.Generator | None = None,
) -> CSRGraph:
    """Chung–Lu style directed graph with power-law in/out degrees.

    Each node gets expected in- and out-weights drawn from a Pareto-like
    distribution with the given ``exponent`` (typical social networks:
    2 < γ < 3), independently permuted so in- and out-degree are only
    weakly correlated (as in citation/follower graphs).  Edges are then
    sampled with probability proportional to ``w_out(u) · w_in(v)``.

    This is the workhorse behind the billion-edge dataset stand-ins: it
    reproduces heavy-tailed degree shape at any scale in O(m) time.
    """
    if n <= 1:
        raise ParameterError(f"n must be at least 2, got {n}")
    if avg_degree <= 0:
        raise ParameterError(f"avg_degree must be positive, got {avg_degree}")
    if exponent <= 1.0:
        raise ParameterError(f"exponent must exceed 1, got {exponent}")
    rng = ensure_rng(seed)

    # Pareto weights with finite mean; cap at n^(1/(exponent-1)) — the
    # natural cutoff that keeps expected max degree below n.
    shape = exponent - 1.0
    raw = (1.0 + rng.pareto(shape, size=n))
    cap = n ** (1.0 / shape)
    out_w = np.minimum(raw, cap)
    in_w = np.minimum(1.0 + rng.pareto(shape, size=n), cap)
    rng.shuffle(in_w)

    target_m = int(round(n * avg_degree))
    # Sample endpoints independently proportional to weights; duplicates
    # and self-loops are dropped by the builder, so oversample slightly.
    oversample = int(target_m * 1.15) + 16
    p_out = out_w / out_w.sum()
    p_in = in_w / in_w.sum()
    src = rng.choice(n, size=oversample, p=p_out)
    dst = rng.choice(n, size=oversample, p=p_in)
    keep = src != dst
    src, dst = src[keep][:target_m], dst[keep][:target_m]

    builder = GraphBuilder(n)
    builder.add_edges(zip(src.tolist(), dst.tolist()))
    return builder.build()


def preferential_attachment(
    n: int,
    edges_per_node: int,
    *,
    seed: int | np.random.Generator | None = None,
) -> CSRGraph:
    """Barabási–Albert style growth: each new node links to ``edges_per_node``
    existing nodes chosen proportional to current degree.

    Returns a *directed* graph with edges pointing from the new node to its
    chosen targets (citation-network orientation), so older nodes accrue
    high in-degree — the hubs that influence maximization discovers.
    """
    if n <= edges_per_node:
        raise ParameterError(f"need n > edges_per_node, got n={n}, m0={edges_per_node}")
    if edges_per_node < 1:
        raise ParameterError(f"edges_per_node must be >= 1, got {edges_per_node}")
    rng = ensure_rng(seed)

    # Repeated-nodes list trick: choosing uniformly from the multiset of
    # edge endpoints is choosing proportional to degree.
    targets_pool: list[int] = list(range(edges_per_node))
    builder = GraphBuilder(n)
    for new_node in range(edges_per_node, n):
        chosen: set[int] = set()
        while len(chosen) < edges_per_node:
            pick = int(targets_pool[rng.integers(len(targets_pool))]) if targets_pool else int(rng.integers(new_node))
            chosen.add(pick)
        for t in chosen:
            builder.add_edge(new_node, t)
            targets_pool.append(t)
        targets_pool.extend([new_node] * edges_per_node)
    return builder.build()


def stochastic_block_model(
    blocks: int,
    block_size: int,
    *,
    intra_degree: float = 8.0,
    inter_degree: float = 0.6,
    seed: int | np.random.Generator | None = None,
) -> CSRGraph:
    """Directed stochastic block model: dense communities, sparse bridges.

    Each of the ``blocks`` communities of ``block_size`` nodes receives
    ``block_size * intra_degree`` internal directed edges (uniform
    endpoints within the block) and the whole graph receives
    ``n * inter_degree`` bridge edges (uniform endpoints anywhere).
    Interest groups in real networks live inside communities —
    configuration models cannot express that, and targeted-marketing
    experiments need it (see ``examples/targeted_marketing.py``).
    """
    if blocks < 1 or block_size < 2:
        raise ParameterError(
            f"need blocks >= 1 and block_size >= 2, got {blocks}, {block_size}"
        )
    if intra_degree < 0 or inter_degree < 0:
        raise ParameterError("degrees must be non-negative")
    rng = ensure_rng(seed)
    n = blocks * block_size
    builder = GraphBuilder(n)
    for b in range(blocks):
        base = b * block_size
        intra_count = int(block_size * intra_degree)
        sources = base + rng.integers(block_size, size=intra_count)
        targets = base + rng.integers(block_size, size=intra_count)
        builder.add_edges(zip(sources.tolist(), targets.tolist()))
    inter_count = int(n * inter_degree)
    sources = rng.integers(n, size=inter_count)
    targets = rng.integers(n, size=inter_count)
    builder.add_edges(zip(sources.tolist(), targets.tolist()))
    return builder.build()


def complete_graph(n: int) -> CSRGraph:
    """Complete directed graph K_n (every ordered pair, no self-loops)."""
    if n <= 0:
        raise ParameterError(f"n must be positive, got {n}")
    src, dst = np.meshgrid(np.arange(n), np.arange(n), indexing="ij")
    mask = src != dst
    return from_edges(zip(src[mask].tolist(), dst[mask].tolist()), n=n)


def star_graph(n: int, *, inward: bool = False) -> CSRGraph:
    """Star on ``n`` nodes: hub 0 points at all leaves (or all leaves at 0).

    Influence under IC with weight p from the hub is analytically
    ``1 + (n-1)p``, which anchors several unit tests.
    """
    if n < 2:
        raise ParameterError(f"star needs at least 2 nodes, got {n}")
    if inward:
        edges = [(leaf, 0) for leaf in range(1, n)]
    else:
        edges = [(0, leaf) for leaf in range(1, n)]
    return from_edges(edges, n=n)


def cycle_graph(n: int) -> CSRGraph:
    """Directed cycle 0 → 1 → ... → n-1 → 0."""
    if n < 2:
        raise ParameterError(f"cycle needs at least 2 nodes, got {n}")
    return from_edges([(i, (i + 1) % n) for i in range(n)], n=n)


def grid_2d(rows: int, cols: int) -> CSRGraph:
    """2D grid with bidirected nearest-neighbour edges (epidemic testbed)."""
    if rows < 1 or cols < 1:
        raise ParameterError(f"grid needs positive dimensions, got {rows}x{cols}")
    edges = []
    for r in range(rows):
        for c in range(cols):
            node = r * cols + c
            if c + 1 < cols:
                right = node + 1
                edges += [(node, right), (right, node)]
            if r + 1 < rows:
                down = node + cols
                edges += [(node, down), (down, node)]
    return from_edges(edges, n=rows * cols)
