"""Compressed sparse row (CSR) directed weighted graph.

Both the forward cascade simulators and the reverse (RIS) samplers are hot
loops, so the graph keeps *two* CSR views of the same edge set:

* the **out view** (``out_indptr``/``out_indices``/``out_weights``), edges
  grouped by source — used by forward IC/LT simulation, and
* the **in view** (``in_indptr``/``in_indices``/``in_weights``), edges
  grouped by target — used by reverse reachable (RR) set generation.

Edge ``(u, v)`` carries an influence probability ``w(u, v) ∈ [0, 1]``
(Section 2 of the paper).  The graph is immutable after construction; all
mutation happens in :class:`repro.graph.builder.GraphBuilder`.
"""

from __future__ import annotations

import hashlib

import numpy as np

from repro.exceptions import GraphError, WeightError


class CSRGraph:
    """Immutable directed weighted graph over nodes ``0..n-1``.

    Parameters
    ----------
    n:
        Number of nodes.
    out_indptr, out_indices, out_weights:
        CSR arrays of the out-adjacency: the out-neighbours of ``u`` are
        ``out_indices[out_indptr[u]:out_indptr[u+1]]`` with matching
        weights.
    in_indptr, in_indices, in_weights:
        CSR arrays of the in-adjacency (edges grouped by *target*):
        ``in_indices`` holds edge *sources*.

    Use :class:`repro.graph.builder.GraphBuilder` or
    :func:`repro.graph.builder.from_edges` instead of calling this
    constructor with hand-built arrays.
    """

    __slots__ = (
        "n",
        "m",
        "out_indptr",
        "out_indices",
        "out_weights",
        "in_indptr",
        "in_indices",
        "in_weights",
        "in_weight_totals",
        "_fingerprint",
    )

    def __init__(
        self,
        n: int,
        out_indptr: np.ndarray,
        out_indices: np.ndarray,
        out_weights: np.ndarray,
        in_indptr: np.ndarray,
        in_indices: np.ndarray,
        in_weights: np.ndarray,
    ) -> None:
        if n < 0:
            raise GraphError(f"node count must be non-negative, got {n}")
        self.n = int(n)
        self.m = int(len(out_indices))
        self.out_indptr = np.ascontiguousarray(out_indptr, dtype=np.int64)
        self.out_indices = np.ascontiguousarray(out_indices, dtype=np.int32)
        self.out_weights = np.ascontiguousarray(out_weights, dtype=np.float64)
        self.in_indptr = np.ascontiguousarray(in_indptr, dtype=np.int64)
        self.in_indices = np.ascontiguousarray(in_indices, dtype=np.int32)
        self.in_weights = np.ascontiguousarray(in_weights, dtype=np.float64)
        self._validate()
        # Per-node total incoming weight: the LT reverse walk continues with
        # this probability, so precomputing it here keeps sampling tight.
        self.in_weight_totals = np.add.reduceat(
            np.append(self.in_weights, 0.0), self.in_indptr[:-1]
        ) if self.m else np.zeros(self.n)
        self.in_weight_totals = np.where(
            np.diff(self.in_indptr) > 0, self.in_weight_totals, 0.0
        )
        for arr in (
            self.out_indptr,
            self.out_indices,
            self.out_weights,
            self.in_indptr,
            self.in_indices,
            self.in_weights,
            self.in_weight_totals,
        ):
            arr.setflags(write=False)
        self._fingerprint: str | None = None

    def _validate(self) -> None:
        if len(self.out_indptr) != self.n + 1 or len(self.in_indptr) != self.n + 1:
            raise GraphError("indptr arrays must have length n + 1")
        if len(self.in_indices) != self.m or len(self.out_weights) != self.m or len(self.in_weights) != self.m:
            raise GraphError("out/in edge arrays disagree on edge count")
        if self.m:
            if self.out_indices.min() < 0 or self.out_indices.max() >= self.n:
                raise GraphError("out_indices contains an out-of-range node id")
            if self.in_indices.min() < 0 or self.in_indices.max() >= self.n:
                raise GraphError("in_indices contains an out-of-range node id")
            if self.out_weights.min() < 0.0 or self.out_weights.max() > 1.0:
                raise WeightError("edge weights must lie in [0, 1]")
        if self.out_indptr[0] != 0 or self.out_indptr[-1] != self.m:
            raise GraphError("out_indptr must start at 0 and end at m")
        if self.in_indptr[0] != 0 or self.in_indptr[-1] != self.m:
            raise GraphError("in_indptr must start at 0 and end at m")
        if np.any(np.diff(self.out_indptr) < 0) or np.any(np.diff(self.in_indptr) < 0):
            raise GraphError("indptr arrays must be non-decreasing")

    # ------------------------------------------------------------------
    # Adjacency access
    # ------------------------------------------------------------------
    def out_neighbors(self, u: int) -> np.ndarray:
        """Targets of edges leaving ``u`` (read-only view)."""
        return self.out_indices[self.out_indptr[u] : self.out_indptr[u + 1]]

    def out_edge_weights(self, u: int) -> np.ndarray:
        """Weights of edges leaving ``u``, aligned with :meth:`out_neighbors`."""
        return self.out_weights[self.out_indptr[u] : self.out_indptr[u + 1]]

    def in_neighbors(self, v: int) -> np.ndarray:
        """Sources of edges entering ``v`` (read-only view)."""
        return self.in_indices[self.in_indptr[v] : self.in_indptr[v + 1]]

    def in_edge_weights(self, v: int) -> np.ndarray:
        """Weights of edges entering ``v``, aligned with :meth:`in_neighbors`."""
        return self.in_weights[self.in_indptr[v] : self.in_indptr[v + 1]]

    def out_degree(self, u: int | None = None) -> np.ndarray | int:
        """Out-degree of ``u``, or the full out-degree array when ``u`` is None."""
        if u is None:
            return np.diff(self.out_indptr)
        return int(self.out_indptr[u + 1] - self.out_indptr[u])

    def in_degree(self, v: int | None = None) -> np.ndarray | int:
        """In-degree of ``v``, or the full in-degree array when ``v`` is None."""
        if v is None:
            return np.diff(self.in_indptr)
        return int(self.in_indptr[v + 1] - self.in_indptr[v])

    # ------------------------------------------------------------------
    # Edge iteration / queries
    # ------------------------------------------------------------------
    def edges(self) -> "np.ndarray":
        """All edges as an ``(m, 2)`` int array of (source, target) pairs."""
        sources = np.repeat(np.arange(self.n, dtype=np.int32), np.diff(self.out_indptr))
        return np.column_stack([sources, self.out_indices])

    def has_edge(self, u: int, v: int) -> bool:
        """True if the directed edge (u, v) exists.

        Out-neighbour lists are sorted by the builder, so this is a binary
        search.
        """
        lo, hi = self.out_indptr[u], self.out_indptr[u + 1]
        pos = np.searchsorted(self.out_indices[lo:hi], v)
        return bool(pos < hi - lo and self.out_indices[lo + pos] == v)

    def edge_weight(self, u: int, v: int) -> float:
        """Weight of edge (u, v); 0.0 when the edge is absent (paper convention)."""
        lo, hi = self.out_indptr[u], self.out_indptr[u + 1]
        pos = np.searchsorted(self.out_indices[lo:hi], v)
        if pos < hi - lo and self.out_indices[lo + pos] == v:
            return float(self.out_weights[lo + pos])
        return 0.0

    # ------------------------------------------------------------------
    # Model validation / introspection
    # ------------------------------------------------------------------
    def validate_lt_weights(self, *, tolerance: float = 1e-9) -> None:
        """Raise :class:`WeightError` unless Σ_u w(u, v) ≤ 1 for every v.

        This is the Linear Threshold admissibility condition from Section
        2.1 of the paper.
        """
        bad = np.nonzero(self.in_weight_totals > 1.0 + tolerance)[0]
        if bad.size:
            v = int(bad[0])
            raise WeightError(
                f"LT weights invalid: node {v} has incoming weight sum "
                f"{self.in_weight_totals[v]:.6f} > 1 ({bad.size} offending nodes)"
            )

    def fingerprint(self) -> str:
        """Content fingerprint (structure + exact weights), cached.

        The out view fully determines the edge set (the in view is a
        permutation of it), so hashing ``n``, ``m`` and the three out
        arrays identifies the graph.  This is the same fingerprint the
        pool store and graph manifests use, so a graph, its spills and
        its shared-memory blobs agree on identity.
        """
        if self._fingerprint is None:
            digest = hashlib.sha1()
            digest.update(f"{self.n}:{self.m}:".encode())
            for arr in (self.out_indptr, self.out_indices, self.out_weights):
                digest.update(np.ascontiguousarray(arr).tobytes())
            self._fingerprint = digest.hexdigest()[:16]
        return self._fingerprint

    def memory_bytes(self) -> int:
        """Resident bytes of the CSR arrays (used by the memory model)."""
        arrays = (
            self.out_indptr,
            self.out_indices,
            self.out_weights,
            self.in_indptr,
            self.in_indices,
            self.in_weights,
            self.in_weight_totals,
        )
        return int(sum(a.nbytes for a in arrays))

    def __repr__(self) -> str:
        return f"CSRGraph(n={self.n}, m={self.m})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, CSRGraph):
            return NotImplemented
        return (
            self.n == other.n
            and self.m == other.m
            and np.array_equal(self.out_indptr, other.out_indptr)
            and np.array_equal(self.out_indices, other.out_indices)
            and np.array_equal(self.out_weights, other.out_weights)
        )

    def __hash__(self) -> int:
        # Hash/eq contract: equality is structural (exact arrays), so the
        # hash must be content-based too — equal graphs built separately
        # must collide in dicts/sets keyed on graphs.
        return hash(self.fingerprint())
