"""Directed weighted graph substrate (CSR storage, builders, generators, IO)."""

from repro.graph.digraph import CSRGraph
from repro.graph.builder import GraphBuilder, from_edges
from repro.graph.weights import (
    assign_constant_weights,
    assign_random_weights,
    assign_trivalency_weights,
    assign_weighted_cascade,
)
from repro.graph.generators import (
    complete_graph,
    cycle_graph,
    erdos_renyi,
    grid_2d,
    powerlaw_configuration,
    preferential_attachment,
    star_graph,
    stochastic_block_model,
)
from repro.graph.components import (
    component_sizes,
    forward_closure_size,
    largest_scc,
    strongly_connected_components,
)
from repro.graph.io import load_edge_list, save_edge_list, load_npz, save_npz
from repro.graph.statistics import GraphStats, compute_stats
from repro.graph.transform import (
    induced_subgraph,
    largest_out_component_seeded,
    relabel_nodes,
    reverse_graph,
    undirected_to_bidirected,
)

__all__ = [
    "CSRGraph",
    "GraphBuilder",
    "from_edges",
    "assign_weighted_cascade",
    "assign_constant_weights",
    "assign_trivalency_weights",
    "assign_random_weights",
    "erdos_renyi",
    "powerlaw_configuration",
    "preferential_attachment",
    "complete_graph",
    "star_graph",
    "cycle_graph",
    "grid_2d",
    "stochastic_block_model",
    "load_edge_list",
    "save_edge_list",
    "load_npz",
    "save_npz",
    "GraphStats",
    "compute_stats",
    "reverse_graph",
    "undirected_to_bidirected",
    "induced_subgraph",
    "relabel_nodes",
    "largest_out_component_seeded",
    "strongly_connected_components",
    "component_sizes",
    "largest_scc",
    "forward_closure_size",
]
