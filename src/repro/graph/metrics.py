"""Structural graph metrics beyond degree statistics.

Used to validate that dataset stand-ins resemble their originals in the
ways that matter to diffusion: reciprocity (mutual ties boost LT/IC
spread), degree assortativity (hub-to-hub wiring changes cascade depth),
and local clustering (triangles create redundant infection paths).
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError
from repro.graph.digraph import CSRGraph
from repro.utils.rng import ensure_rng


def reciprocity(graph: CSRGraph) -> float:
    """Fraction of directed edges whose reverse edge also exists.

    1.0 for bidirected graphs (Orkut/Friendster stand-ins), near 0 for
    citation-style DAG-ish graphs.
    """
    if graph.m == 0:
        return 0.0
    edges = graph.edges()
    keys = set(map(tuple, edges.tolist()))
    mutual = sum(1 for u, v in keys if (v, u) in keys)
    return mutual / len(keys)


def degree_assortativity(graph: CSRGraph) -> float:
    """Pearson correlation of (source out-degree, target in-degree) over edges.

    Negative values (hubs pointing at low-degree nodes) are typical of
    social/citation networks; 0 for uncorrelated wiring.  Returns 0.0 for
    degenerate graphs where a correlation is undefined.
    """
    if graph.m < 2:
        return 0.0
    sources = np.repeat(np.arange(graph.n), np.diff(graph.out_indptr))
    targets = graph.out_indices.astype(np.int64)
    x = np.diff(graph.out_indptr)[sources].astype(np.float64)
    y = np.diff(graph.in_indptr)[targets].astype(np.float64)
    if x.std() == 0 or y.std() == 0:
        return 0.0
    return float(np.corrcoef(x, y)[0, 1])


def local_clustering(
    graph: CSRGraph,
    *,
    sample_nodes: int | None = None,
    seed: "int | np.random.Generator | None" = None,
) -> float:
    """Average local clustering coefficient (directed, out-neighbourhood).

    For node u with out-neighbours N(u): the fraction of ordered pairs
    (v, w) ∈ N(u)² (v ≠ w) with edge v → w.  ``sample_nodes`` estimates
    over a uniform node sample for large graphs.
    """
    n = graph.n
    if n == 0:
        raise GraphError("clustering of an empty graph is undefined")
    if sample_nodes is not None and sample_nodes < 1:
        raise GraphError(f"sample_nodes must be positive, got {sample_nodes}")
    rng = ensure_rng(seed)
    nodes = (
        np.arange(n)
        if sample_nodes is None or sample_nodes >= n
        else rng.choice(n, size=sample_nodes, replace=False)
    )
    total = 0.0
    for u in nodes.tolist():
        neigh = graph.out_neighbors(u)
        d = len(neigh)
        if d < 2:
            continue
        neighbor_set = set(neigh.tolist())
        links = 0
        for v in neigh.tolist():
            links += sum(1 for w in graph.out_neighbors(v).tolist() if w in neighbor_set)
        total += links / (d * (d - 1))
    return total / len(nodes)
