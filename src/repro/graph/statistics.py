"""Descriptive graph statistics (Table 2 of the paper)."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.digraph import CSRGraph


@dataclass(frozen=True)
class GraphStats:
    """Summary statistics mirroring the columns of Table 2.

    ``avg_degree`` follows the paper's convention of average *out*-degree
    (= m / n for directed graphs; the paper reports undirected averages for
    Orkut/Friendster before bidirecting, which our catalog accounts for).
    """

    nodes: int
    edges: int
    avg_degree: float
    max_in_degree: int
    max_out_degree: int
    weight_min: float
    weight_max: float
    weight_mean: float
    lt_admissible: bool

    def row(self) -> list[object]:
        """Row for Table 2-style rendering."""
        return [self.nodes, self.edges, round(self.avg_degree, 1)]


def compute_stats(graph: CSRGraph) -> GraphStats:
    """Compute :class:`GraphStats` for a graph in one pass over the arrays."""
    in_deg = np.diff(graph.in_indptr)
    out_deg = np.diff(graph.out_indptr)
    if graph.m:
        w_min = float(graph.out_weights.min())
        w_max = float(graph.out_weights.max())
        w_mean = float(graph.out_weights.mean())
    else:
        w_min = w_max = w_mean = 0.0
    lt_ok = bool(np.all(graph.in_weight_totals <= 1.0 + 1e-9))
    return GraphStats(
        nodes=graph.n,
        edges=graph.m,
        avg_degree=(graph.m / graph.n) if graph.n else 0.0,
        max_in_degree=int(in_deg.max()) if graph.n else 0,
        max_out_degree=int(out_deg.max()) if graph.n else 0,
        weight_min=w_min,
        weight_max=w_max,
        weight_mean=w_mean,
        lt_admissible=lt_ok,
    )


def degree_histogram(graph: CSRGraph, *, direction: str = "in") -> np.ndarray:
    """Histogram ``h[d] = #nodes with degree d`` for tests of degree shape."""
    if direction not in ("in", "out"):
        raise ValueError(f"direction must be 'in' or 'out', got {direction!r}")
    degrees = np.diff(graph.in_indptr if direction == "in" else graph.out_indptr)
    if degrees.size == 0:
        return np.zeros(1, dtype=np.int64)
    return np.bincount(degrees.astype(np.int64))


def powerlaw_tail_ratio(graph: CSRGraph, *, direction: str = "in") -> float:
    """Fraction of edges owned by the top 1% highest-degree nodes.

    Heavy-tailed (social) graphs concentrate a large share of edges in the
    top percentile; Erdős–Rényi graphs do not.  Dataset stand-in tests use
    this as a cheap shape check instead of fitting a power-law exponent.
    """
    degrees = np.diff(graph.in_indptr if direction == "in" else graph.out_indptr)
    if graph.m == 0:
        return 0.0
    top = max(1, graph.n // 100)
    largest = np.sort(degrees)[-top:]
    return float(largest.sum() / graph.m)
