"""Zero-copy CSR graph (de)serialization over POSIX shared memory.

The process execution backend ships the influence graph to its workers
exactly once: :func:`share_csr_graph` lays the six CSR arrays out in a
single :class:`multiprocessing.shared_memory.SharedMemory` segment and
returns a small picklable :class:`SharedCSRSpec` manifest (segment name +
per-array offsets).  A worker calls :func:`attach_csr_graph` with the
manifest and reconstructs a fully validated :class:`CSRGraph` whose
arrays are *views into the segment* — no copy, no re-parse, O(1) attach
regardless of graph size.

Lifetime rules follow the usual shared-memory discipline: the creator
owns the segment and must :meth:`~multiprocessing.shared_memory.SharedMemory.unlink`
it after every attacher has closed; attachers only ``close()``.  Both
sides must keep their ``SharedMemory`` handle alive for as long as the
attached graph is in use (the graph's arrays borrow the segment's
buffer).
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.exceptions import GraphIOError
from repro.graph.digraph import CSRGraph

# CSR fields in layout order; each is (attribute name, dtype).
_FIELDS: tuple[tuple[str, str], ...] = (
    ("out_indptr", "int64"),
    ("out_indices", "int32"),
    ("out_weights", "float64"),
    ("in_indptr", "int64"),
    ("in_indices", "int32"),
    ("in_weights", "float64"),
)

_ALIGNMENT = 8  # every array starts on an 8-byte boundary


@dataclass(frozen=True)
class SharedCSRSpec:
    """Picklable manifest describing a CSR graph laid out in shared memory.

    ``fields`` maps each CSR array name to its ``(offset, length)`` within
    the segment; dtypes are fixed by the CSR contract (`_FIELDS`).
    """

    shm_name: str
    n: int
    m: int
    fields: tuple[tuple[str, int, int], ...]
    total_bytes: int


def _layout(graph: CSRGraph) -> tuple[tuple[tuple[str, int, int], ...], int]:
    """Compute (name, offset, length) for each array plus the total size."""
    fields = []
    cursor = 0
    for name, dtype in _FIELDS:
        arr = getattr(graph, name)
        fields.append((name, cursor, int(arr.size)))
        cursor += int(arr.size) * np.dtype(dtype).itemsize
        cursor = (cursor + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT
    return tuple(fields), cursor


def share_csr_graph(
    graph: CSRGraph, *, name: str | None = None
) -> tuple[shared_memory.SharedMemory, SharedCSRSpec]:
    """Copy ``graph``'s CSR arrays into a new shared-memory segment.

    Returns the owning segment handle (caller must eventually ``close()``
    and ``unlink()`` it) and the manifest to hand to attachers.
    """
    fields, total = _layout(graph)
    # SharedMemory refuses zero-length segments; indptr arrays guarantee
    # total > 0 for any n >= 0, but keep the guard for safety.
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1), name=name)
    dtypes = dict(_FIELDS)
    for field_name, offset, length in fields:
        view = np.ndarray((length,), dtype=dtypes[field_name], buffer=shm.buf, offset=offset)
        view[:] = getattr(graph, field_name)
        del view  # drop the exported-buffer reference before returning
    spec = SharedCSRSpec(
        shm_name=shm.name,
        n=graph.n,
        m=graph.m,
        fields=fields,
        total_bytes=max(total, 1),
    )
    return shm, spec


def attach_csr_graph(
    spec: SharedCSRSpec, *, shm: shared_memory.SharedMemory | None = None
) -> tuple[CSRGraph, shared_memory.SharedMemory]:
    """Reconstruct a :class:`CSRGraph` from a shared-memory manifest.

    The returned graph's arrays are zero-copy views into the segment; the
    returned handle must stay alive (and be ``close()``-d, not unlinked)
    by the caller.  Pass ``shm`` to reuse an already-attached handle.
    """
    if shm is None:
        try:
            shm = shared_memory.SharedMemory(name=spec.shm_name)
        except FileNotFoundError as exc:
            raise GraphIOError(
                f"shared CSR segment {spec.shm_name!r} does not exist "
                "(owner exited or unlinked it?)"
            ) from exc
    if shm.size < spec.total_bytes:
        raise GraphIOError(
            f"shared CSR segment {spec.shm_name!r} is {shm.size} bytes, "
            f"manifest expects {spec.total_bytes}"
        )
    dtypes = dict(_FIELDS)
    arrays = {
        field_name: np.ndarray(
            (length,), dtype=dtypes[field_name], buffer=shm.buf, offset=offset
        )
        for field_name, offset, length in spec.fields
    }
    # CSRGraph re-validates the arrays, so a corrupt/truncated segment
    # fails loudly here rather than mid-sampling.
    graph = CSRGraph(spec.n, **arrays)
    return graph, shm


def close_segment(shm: shared_memory.SharedMemory, *, unlink: bool = False) -> None:
    """Best-effort close (and optional unlink) of a shared segment.

    ``mmap`` refuses to close while graph views still borrow the buffer;
    swallowing the :class:`BufferError` keeps teardown paths (worker exit,
    backend close, test cleanup) from masking the real error, at the cost
    of letting the OS reclaim the mapping at process exit instead.
    """
    try:
        shm.close()
    except BufferError:
        pass
    if unlink:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
