"""Content-addressed CSR graph blobs: shared memory and network transport.

The execution backends ship the influence graph to their workers exactly
once.  The layout is transport-neutral: a :class:`GraphManifest` pins the
six CSR arrays to offsets inside one contiguous byte blob and carries a
**content hash** (SHA-256 of the laid-out blob), so any transport that can
move bytes can move a graph:

* the **process backend** lays the blob out in a POSIX shared-memory
  segment (:func:`share_csr_graph`) and hands workers a
  :class:`SharedCSRSpec` — the manifest plus the segment name; workers
  attach zero-copy with :func:`attach_csr_graph`;
* the **network backend** packs the same layout into plain bytes
  (:func:`pack_csr_graph`), and remote worker hosts fetch the blob once,
  verify it against ``manifest.content_hash``, cache it on disk *by
  hash*, and rebuild the graph with :func:`unpack_csr_graph` — a host
  that already holds the hash never fetches again.

Both paths produce byte-identical blobs, so the hash is one identity
across transports: a graph served over shm and the same graph served
over TCP are the same content address.

Lifetime rules for the shm path follow the usual shared-memory
discipline: the creator owns the segment and must
:meth:`~multiprocessing.shared_memory.SharedMemory.unlink` it after every
attacher has closed; attachers only ``close()``.  Both sides must keep
their ``SharedMemory`` handle alive for as long as the attached graph is
in use (the graph's arrays borrow the segment's buffer).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.exceptions import GraphIOError
from repro.graph.digraph import CSRGraph

# CSR fields in layout order; each is (attribute name, dtype).
_FIELDS: tuple[tuple[str, str], ...] = (
    ("out_indptr", "int64"),
    ("out_indices", "int32"),
    ("out_weights", "float64"),
    ("in_indptr", "int64"),
    ("in_indices", "int32"),
    ("in_weights", "float64"),
)

_ALIGNMENT = 8  # every array starts on an 8-byte boundary


@dataclass(frozen=True)
class GraphManifest:
    """Transport-neutral manifest of a CSR graph laid out as one blob.

    ``fields`` maps each CSR array name to its ``(offset, length)`` within
    the blob; dtypes are fixed by the CSR contract (`_FIELDS`).
    ``content_hash`` is the SHA-256 hex digest of the full blob (alignment
    padding included — segments and packed blobs are both zero-padded, so
    the hash is the graph's identity on every transport).
    """

    n: int
    m: int
    fields: tuple[tuple[str, int, int], ...]
    total_bytes: int
    content_hash: str = ""
    # Mutation lineage position of the snapshot (see repro.dynamic); the
    # content hash is the fetch key — workers holding the same hash skip
    # the re-fetch even across versions — while graph_version lets a
    # coordinator advertise *which* snapshot a fleet is serving.
    graph_version: int = 0


@dataclass(frozen=True)
class SharedCSRSpec(GraphManifest):
    """A :class:`GraphManifest` bound to a POSIX shared-memory segment."""

    shm_name: str = ""


def _layout(graph: CSRGraph) -> tuple[tuple[tuple[str, int, int], ...], int]:
    """Compute (name, offset, length) for each array plus the total size."""
    fields = []
    cursor = 0
    for name, dtype in _FIELDS:
        arr = getattr(graph, name)
        fields.append((name, cursor, int(arr.size)))
        cursor += int(arr.size) * np.dtype(dtype).itemsize
        cursor = (cursor + _ALIGNMENT - 1) // _ALIGNMENT * _ALIGNMENT
    return tuple(fields), cursor


def _write_blob(graph: CSRGraph, fields, buf) -> None:
    """Lay ``graph``'s arrays into ``buf`` (a writable buffer) per ``fields``."""
    dtypes = dict(_FIELDS)
    for field_name, offset, length in fields:
        view = np.ndarray((length,), dtype=dtypes[field_name], buffer=buf, offset=offset)
        view[:] = getattr(graph, field_name)
        del view  # drop the exported-buffer reference before returning


def blob_hash(buf) -> str:
    """SHA-256 hex digest of a graph blob (bytes, bytearray, or memoryview)."""
    return hashlib.sha256(buf).hexdigest()


def pack_csr_graph(graph: CSRGraph, *, graph_version: int = 0) -> tuple[bytes, GraphManifest]:
    """Serialize ``graph`` into one contiguous content-addressed blob.

    Returns ``(blob, manifest)``; ``manifest.content_hash`` is the blob's
    SHA-256, so receivers can verify a fetched or cached copy before
    trusting it (and skip re-fetching a blob they already hold — after a
    mutation only a changed hash forces a transfer).
    """
    fields, total = _layout(graph)
    blob = bytearray(max(total, 1))  # zero-filled, padding included
    _write_blob(graph, fields, blob)
    blob = bytes(blob)
    return blob, GraphManifest(
        n=graph.n,
        m=graph.m,
        fields=fields,
        total_bytes=max(total, 1),
        content_hash=blob_hash(blob),
        graph_version=int(graph_version),
    )


def unpack_csr_graph(manifest: GraphManifest, buf) -> CSRGraph:
    """Rebuild a :class:`CSRGraph` from a blob per its manifest.

    The graph's arrays are zero-copy views into ``buf`` (read-only when
    ``buf`` is ``bytes``), so the caller must keep the buffer alive for
    the graph's lifetime.  Verification against ``content_hash`` is the
    caller's job (do it once at fetch time, not per attach — see
    :func:`verify_blob`).
    """
    if len(buf) < manifest.total_bytes:
        raise GraphIOError(
            f"graph blob is {len(buf)} bytes, manifest expects {manifest.total_bytes}"
        )
    dtypes = dict(_FIELDS)
    arrays = {
        field_name: np.ndarray(
            (length,), dtype=dtypes[field_name], buffer=buf, offset=offset
        )
        for field_name, offset, length in manifest.fields
    }
    # CSRGraph re-validates the arrays, so a corrupt/truncated blob fails
    # loudly here rather than mid-sampling.
    return CSRGraph(manifest.n, **arrays)


def verify_blob(manifest: GraphManifest, buf) -> None:
    """Raise :class:`GraphIOError` unless ``buf`` matches the manifest hash."""
    if not manifest.content_hash:
        raise GraphIOError("manifest carries no content hash to verify against")
    got = blob_hash(buf)
    if got != manifest.content_hash:
        raise GraphIOError(
            f"graph blob hash mismatch: manifest says {manifest.content_hash[:16]}…, "
            f"blob is {got[:16]}… (corrupt fetch or stale cache entry)"
        )


def share_csr_graph(
    graph: CSRGraph, *, name: str | None = None, graph_version: int = 0
) -> tuple[shared_memory.SharedMemory, SharedCSRSpec]:
    """Copy ``graph``'s CSR arrays into a new shared-memory segment.

    Returns the owning segment handle (caller must eventually ``close()``
    and ``unlink()`` it) and the manifest to hand to attachers.  The spec's
    ``content_hash`` equals :func:`pack_csr_graph`'s for the same graph —
    one content address across transports.
    """
    fields, total = _layout(graph)
    # SharedMemory refuses zero-length segments; indptr arrays guarantee
    # total > 0 for any n >= 0, but keep the guard for safety.
    shm = shared_memory.SharedMemory(create=True, size=max(total, 1), name=name)
    _write_blob(graph, fields, shm.buf)
    # Hash exactly the manifest's extent: the OS may round the segment up
    # to a page multiple, and those tail bytes are not part of the blob.
    content_hash = blob_hash(shm.buf[: max(total, 1)])
    spec = SharedCSRSpec(
        shm_name=shm.name,
        n=graph.n,
        m=graph.m,
        fields=fields,
        total_bytes=max(total, 1),
        content_hash=content_hash,
        graph_version=int(graph_version),
    )
    return shm, spec


def attach_csr_graph(
    spec: SharedCSRSpec, *, shm: shared_memory.SharedMemory | None = None
) -> tuple[CSRGraph, shared_memory.SharedMemory]:
    """Reconstruct a :class:`CSRGraph` from a shared-memory manifest.

    The returned graph's arrays are zero-copy views into the segment; the
    returned handle must stay alive (and be ``close()``-d, not unlinked)
    by the caller.  Pass ``shm`` to reuse an already-attached handle.
    """
    if shm is None:
        try:
            shm = shared_memory.SharedMemory(name=spec.shm_name)
        except FileNotFoundError as exc:
            raise GraphIOError(
                f"shared CSR segment {spec.shm_name!r} does not exist "
                "(owner exited or unlinked it?)"
            ) from exc
    if shm.size < spec.total_bytes:
        raise GraphIOError(
            f"shared CSR segment {spec.shm_name!r} is {shm.size} bytes, "
            f"manifest expects {spec.total_bytes}"
        )
    graph = unpack_csr_graph(spec, shm.buf)
    return graph, shm


def close_segment(shm: shared_memory.SharedMemory, *, unlink: bool = False) -> None:
    """Best-effort close (and optional unlink) of a shared segment.

    ``mmap`` refuses to close while graph views still borrow the buffer;
    swallowing the :class:`BufferError` keeps teardown paths (worker exit,
    backend close, test cleanup) from masking the real error, at the cost
    of letting the OS reclaim the mapping at process exit instead.
    """
    try:
        shm.close()
    except BufferError:
        pass
    if unlink:
        try:
            shm.unlink()
        except FileNotFoundError:
            pass
