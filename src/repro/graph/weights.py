"""Edge-weight assignment schemes for influence graphs.

The paper's experiments (Section 7.1) use the **weighted cascade** (WC)
convention ``w(u, v) = 1 / d_in(v)``, which automatically satisfies the LT
admissibility constraint Σ_u w(u, v) ≤ 1.  The other schemes here are the
standard alternatives from the IM literature (constant / trivalency /
random) used by our ablation benchmarks and tests.

All functions return a *new* :class:`CSRGraph` — graphs are immutable.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.digraph import CSRGraph
from repro.utils.rng import ensure_rng


def _rebuild_with_weights(graph: CSRGraph, in_view_weights: np.ndarray) -> CSRGraph:
    """Construct a new graph with weights given in in-view edge order."""
    # Translate in-view edge order to out-view edge order by matching the
    # lexicographic edge key (source, target).
    n = graph.n
    in_targets = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.in_indptr))
    in_sources = graph.in_indices.astype(np.int64)
    out_sources = np.repeat(np.arange(n, dtype=np.int64), np.diff(graph.out_indptr))
    out_targets = graph.out_indices.astype(np.int64)

    in_keys = in_sources * n + in_targets
    out_keys = out_sources * n + out_targets
    in_order = np.argsort(in_keys)
    out_order = np.argsort(out_keys)
    out_weights = np.empty_like(in_view_weights)
    out_weights[out_order] = in_view_weights[in_order]

    return CSRGraph(
        n,
        graph.out_indptr.copy(),
        graph.out_indices.copy(),
        out_weights,
        graph.in_indptr.copy(),
        graph.in_indices.copy(),
        in_view_weights,
    )


def assign_weighted_cascade(graph: CSRGraph) -> CSRGraph:
    """WC model: every edge into ``v`` gets weight ``1 / d_in(v)``.

    This is the paper's experimental setting (Section 7.1) and makes the
    incoming weights of every node sum to exactly 1, so the result is valid
    under both IC and LT.
    """
    in_degrees = np.diff(graph.in_indptr)
    per_edge = np.repeat(
        np.where(in_degrees > 0, 1.0 / np.maximum(in_degrees, 1), 0.0), in_degrees
    )
    return _rebuild_with_weights(graph, per_edge.astype(np.float64))


def assign_constant_weights(graph: CSRGraph, probability: float) -> CSRGraph:
    """Uniform IC probability on every edge (classic p = 0.01 / 0.1 settings).

    Note constant weights generally violate the LT constraint on high
    in-degree nodes; :meth:`CSRGraph.validate_lt_weights` will flag that.
    """
    if not 0.0 <= probability <= 1.0:
        raise ParameterError(f"probability must be in [0, 1], got {probability}")
    weights = np.full(graph.m, float(probability))
    return _rebuild_with_weights(graph, weights)


def assign_trivalency_weights(
    graph: CSRGraph,
    seed: int | np.random.Generator | None = None,
    choices: tuple[float, ...] = (0.1, 0.01, 0.001),
) -> CSRGraph:
    """TRIVALENCY model: each edge draws uniformly from ``choices``."""
    if any(not 0.0 <= c <= 1.0 for c in choices):
        raise ParameterError(f"choices must lie in [0, 1], got {choices}")
    rng = ensure_rng(seed)
    weights = rng.choice(np.asarray(choices, dtype=np.float64), size=graph.m)
    return _rebuild_with_weights(graph, weights)


def assign_random_weights(
    graph: CSRGraph,
    seed: int | np.random.Generator | None = None,
    *,
    low: float = 0.0,
    high: float = 1.0,
    lt_normalize: bool = False,
) -> CSRGraph:
    """Uniform random weights in ``[low, high]``.

    With ``lt_normalize=True`` each node's incoming weights are rescaled to
    sum to at most 1, producing an LT-admissible graph with heterogeneous
    weights (useful for property tests).
    """
    if not 0.0 <= low <= high <= 1.0:
        raise ParameterError(f"need 0 <= low <= high <= 1, got [{low}, {high}]")
    rng = ensure_rng(seed)
    weights = rng.uniform(low, high, size=graph.m)
    if lt_normalize and graph.m:
        in_degrees = np.diff(graph.in_indptr)
        sums = np.add.reduceat(np.append(weights, 0.0), graph.in_indptr[:-1])
        sums = np.where(in_degrees > 0, sums, 1.0)
        scale = np.repeat(np.where(sums > 1.0, 1.0 / sums, 1.0), in_degrees)
        weights = weights * scale
    return _rebuild_with_weights(graph, weights.astype(np.float64))
