"""Mutable edge accumulator that compiles into an immutable :class:`CSRGraph`.

The builder is the single place where edges are normalized: duplicates are
combined (keeping the max weight by default, matching the common convention
for influence graphs where parallel observations reinforce each other),
self-loops are dropped (they never affect influence spread), and node count
is inferred or fixed by the caller.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.exceptions import GraphError, WeightError
from repro.graph.digraph import CSRGraph


class GraphBuilder:
    """Accumulate directed weighted edges, then :meth:`build` a CSR graph.

    >>> b = GraphBuilder()
    >>> b.add_edge(0, 1, 0.5)
    >>> b.add_edge(1, 2, 0.25)
    >>> g = b.build()
    >>> (g.n, g.m)
    (3, 2)
    """

    def __init__(self, n: int | None = None, *, combine: str = "max") -> None:
        if combine not in ("max", "sum", "last"):
            raise GraphError(f"combine must be 'max', 'sum' or 'last', got {combine!r}")
        self._n = n
        self._combine = combine
        self._sources: list[int] = []
        self._targets: list[int] = []
        self._weights: list[float] = []

    def add_edge(self, u: int, v: int, weight: float = 1.0) -> None:
        """Record edge (u, v) with the given influence probability."""
        if u < 0 or v < 0:
            raise GraphError(f"node ids must be non-negative, got ({u}, {v})")
        if not 0.0 <= weight <= 1.0:
            raise WeightError(f"edge weight must be in [0, 1], got {weight} on ({u}, {v})")
        if u == v:
            return  # self-influence never changes a cascade
        self._sources.append(int(u))
        self._targets.append(int(v))
        self._weights.append(float(weight))

    def add_edges(self, edges: Iterable[tuple[int, int] | tuple[int, int, float]]) -> None:
        """Record many edges; 2-tuples default to weight 1.0."""
        for edge in edges:
            if len(edge) == 2:
                u, v = edge
                self.add_edge(u, v)
            else:
                u, v, w = edge
                self.add_edge(u, v, w)

    @property
    def pending_edges(self) -> int:
        """Number of edges recorded so far (before dedup)."""
        return len(self._sources)

    def build(self) -> CSRGraph:
        """Compile accumulated edges into an immutable :class:`CSRGraph`."""
        if not self._sources:
            n = self._n or 0
            empty_ptr = np.zeros(n + 1, dtype=np.int64)
            empty_idx = np.zeros(0, dtype=np.int32)
            empty_w = np.zeros(0, dtype=np.float64)
            return CSRGraph(n, empty_ptr, empty_idx, empty_w, empty_ptr.copy(), empty_idx.copy(), empty_w.copy())

        src = np.asarray(self._sources, dtype=np.int64)
        dst = np.asarray(self._targets, dtype=np.int64)
        wgt = np.asarray(self._weights, dtype=np.float64)

        inferred_n = int(max(src.max(), dst.max())) + 1
        n = self._n if self._n is not None else inferred_n
        if n < inferred_n:
            raise GraphError(f"explicit n={n} is smaller than the largest node id {inferred_n - 1}")

        src, dst, wgt = _deduplicate(src, dst, wgt, n, self._combine)
        if wgt.size and wgt.max() > 1.0:
            # 'sum' combining can push weights past 1; clamp to the model's domain.
            wgt = np.minimum(wgt, 1.0)
        return _compile_csr(n, src, dst, wgt)


def from_edges(
    edges: Iterable[tuple[int, int] | tuple[int, int, float]],
    *,
    n: int | None = None,
    combine: str = "max",
) -> CSRGraph:
    """One-shot convenience: build a graph directly from an edge iterable."""
    builder = GraphBuilder(n, combine=combine)
    builder.add_edges(edges)
    return builder.build()


def compile_edge_arrays(
    n: int, src: np.ndarray, dst: np.ndarray, wgt: np.ndarray
) -> CSRGraph:
    """Compile pre-normalized edge arrays straight into a :class:`CSRGraph`.

    The fast path for callers that already hold deduplicated, self-loop
    free edges — :class:`~repro.dynamic.MutableGraphView` rebuilds its
    snapshot from the previous CSR out view this way, skipping the
    builder's python accumulation and dedup passes.  The caller owns the
    no-duplicates / no-self-loops invariants; node ids and weights are
    still range-checked by the :class:`CSRGraph` constructor.
    """
    return _compile_csr(
        int(n),
        np.ascontiguousarray(src, dtype=np.int64),
        np.ascontiguousarray(dst, dtype=np.int64),
        np.ascontiguousarray(wgt, dtype=np.float64),
    )


def _deduplicate(
    src: np.ndarray, dst: np.ndarray, wgt: np.ndarray, n: int, combine: str
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Combine duplicate (u, v) pairs using the builder's combine policy."""
    keys = src * n + dst
    order = np.argsort(keys, kind="stable")
    keys, src, dst, wgt = keys[order], src[order], dst[order], wgt[order]
    unique_keys, first_pos = np.unique(keys, return_index=True)
    if len(unique_keys) == len(keys):
        return src, dst, wgt
    if combine == "sum":
        combined = np.add.reduceat(wgt, first_pos)
    elif combine == "max":
        combined = np.maximum.reduceat(wgt, first_pos)
    else:  # 'last' — stable sort keeps insertion order within a key group
        group_ends = np.append(first_pos[1:], len(keys)) - 1
        combined = wgt[group_ends]
    return src[first_pos], dst[first_pos], combined


def _compile_csr(
    n: int, src: np.ndarray, dst: np.ndarray, wgt: np.ndarray
) -> CSRGraph:
    """Sort edges into the out view and the in view, then assemble."""
    out_order = np.lexsort((dst, src))
    out_src, out_dst, out_w = src[out_order], dst[out_order], wgt[out_order]
    out_indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(out_indptr, out_src + 1, 1)
    np.cumsum(out_indptr, out=out_indptr)

    in_order = np.lexsort((src, dst))
    in_src, in_dst, in_w = src[in_order], dst[in_order], wgt[in_order]
    in_indptr = np.zeros(n + 1, dtype=np.int64)
    np.add.at(in_indptr, in_dst + 1, 1)
    np.cumsum(in_indptr, out=in_indptr)

    return CSRGraph(
        n,
        out_indptr,
        out_dst.astype(np.int32),
        out_w,
        in_indptr,
        in_src.astype(np.int32),
        in_w,
    )
