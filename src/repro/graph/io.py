"""Graph serialization: text edge lists and compressed numpy snapshots.

The text format is the SNAP-style whitespace edge list used by the paper's
datasets: one ``u v [w]`` triple per line, ``#`` comments allowed.  The
binary format stores the CSR arrays directly in an ``.npz`` so a dataset
stand-in can be materialized once and reloaded instantly by benchmarks.
"""

from __future__ import annotations

import os

import numpy as np

from repro.exceptions import GraphIOError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import CSRGraph

_NPZ_KEYS = (
    "n",
    "out_indptr",
    "out_indices",
    "out_weights",
    "in_indptr",
    "in_indices",
    "in_weights",
)


def load_edge_list(
    path: str | os.PathLike,
    *,
    default_weight: float = 1.0,
    combine: str = "max",
) -> CSRGraph:
    """Parse a whitespace edge-list file into a graph.

    Lines are ``u v`` or ``u v w``; blank lines and ``#`` comments are
    skipped.  Node ids must be non-negative integers.
    """
    builder = GraphBuilder(combine=combine)
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            stripped = line.strip()
            if not stripped or stripped.startswith("#"):
                continue
            parts = stripped.split()
            if len(parts) not in (2, 3):
                raise GraphIOError(f"{path}:{lineno}: expected 'u v [w]', got {stripped!r}")
            try:
                u, v = int(parts[0]), int(parts[1])
                w = float(parts[2]) if len(parts) == 3 else default_weight
            except ValueError as exc:
                raise GraphIOError(f"{path}:{lineno}: unparseable edge {stripped!r}") from exc
            try:
                builder.add_edge(u, v, w)
            except Exception as exc:
                raise GraphIOError(f"{path}:{lineno}: invalid edge {stripped!r}: {exc}") from exc
    return builder.build()


def save_edge_list(graph: CSRGraph, path: str | os.PathLike, *, weights: bool = True) -> None:
    """Write the graph as a text edge list (out-edge order)."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(f"# nodes {graph.n} edges {graph.m}\n")
        for u in range(graph.n):
            targets = graph.out_neighbors(u)
            wgts = graph.out_edge_weights(u)
            for v, w in zip(targets.tolist(), wgts.tolist()):
                if weights:
                    # 17 significant digits: the shortest precision that
                    # roundtrips every float64, so a saved graph reloads
                    # with the same content fingerprint.
                    handle.write(f"{u} {v} {w:.17g}\n")
                else:
                    handle.write(f"{u} {v}\n")


def save_npz(graph: CSRGraph, path: str | os.PathLike) -> None:
    """Persist the CSR arrays as a compressed ``.npz`` snapshot."""
    np.savez_compressed(
        path,
        n=np.int64(graph.n),
        out_indptr=graph.out_indptr,
        out_indices=graph.out_indices,
        out_weights=graph.out_weights,
        in_indptr=graph.in_indptr,
        in_indices=graph.in_indices,
        in_weights=graph.in_weights,
    )


def load_npz(path: str | os.PathLike) -> CSRGraph:
    """Reload a graph saved by :func:`save_npz`."""
    try:
        with np.load(path) as data:
            missing = [k for k in _NPZ_KEYS if k not in data]
            if missing:
                raise GraphIOError(f"{path}: not a repro graph snapshot (missing {missing})")
            return CSRGraph(
                int(data["n"]),
                data["out_indptr"],
                data["out_indices"],
                data["out_weights"],
                data["in_indptr"],
                data["in_indices"],
                data["in_weights"],
            )
    except (OSError, ValueError) as exc:
        raise GraphIOError(f"cannot load graph from {path}: {exc}") from exc
