"""Node → containing-sets inverted index over an RR collection.

This is the invalidation oracle for incremental repair: given a mutation
batch, which stored RR sets could the mutation have changed?

**The invalidation rule.**  Any mutation of edge (u → v) — insert,
delete, or reweight — invalidates exactly the RR sets whose stored
nodes include the *target* v.  Soundness is a statement about the
reverse-sampling kernels, not about reachability alone:

* A reverse traversal only ever reads the in-adjacency of nodes it
  *visits*, and the visited nodes are exactly the stored set (both IC
  kernels and the LT walk record every expanded node).  A set that does
  not contain v never read v's in-edge list, and no other node's
  in-edge list changed, so replaying it on the mutated graph consumes
  byte-identical draws: the root draw depends only on n, and each
  expansion of node x draws from x's unchanged in-adjacency.
* Conversely a set containing v *did* read v's in-edge list — its draw
  counts (IC flips one coin per in-edge of v; LT's searchsorted hop
  picks within v's in-edge weight range) may differ on the mutated
  graph, so it must be resampled.

Note this is deliberately *stronger* than the tempting refinement
"deletes/reweights only matter if the set contains both endpoints":
that refinement is reachability-sound but **stream-unsound** — removing
(u → v) changes the number of RNG draws consumed while expanding v even
when u was never reached, which shifts every subsequent draw of that
set and breaks byte-identity with a cold resample.  Containment of the
target is the exact criterion for "this set's draw sequence is
unchanged".

A node-count change (an insert referencing a new node id) invalidates
everything: root selection draws over ``n`` itself, so no stored set's
draws survive.  Callers handle that case before consulting the index
(see :meth:`repro.service.pool.PoolManager.mutate_namespace`).
"""

from __future__ import annotations

import numpy as np

from repro.dynamic.delta import GraphDelta
from repro.exceptions import SamplingError


class RRSetIndex:
    """Immutable inverted index: which stored sets contain each node.

    Built in O(total entries) from the collection's compiled flat view;
    ``sets_containing`` answers per-node membership via two pointer
    lookups and a slice.  The index describes the collection at build
    time — rebuild after appends, truncation, or repair.
    """

    def __init__(self, n: int, sets_by_node: np.ndarray, node_ptr: np.ndarray, count: int) -> None:
        self.n = int(n)
        self._sets_by_node = sets_by_node
        self._node_ptr = node_ptr
        self.count = int(count)

    @classmethod
    def from_collection(cls, collection) -> "RRSetIndex":
        """Index any object with ``n`` and ``flat_view()`` (an
        :class:`~repro.sampling.rr_collection.RRCollection` or snapshot)."""
        flat, offsets = collection.flat_view()
        count = len(offsets) - 1
        set_ids = np.repeat(
            np.arange(count, dtype=np.int64), np.diff(offsets)
        )
        order = np.argsort(flat, kind="stable")
        nodes_sorted = flat[order]
        sets_by_node = set_ids[order]
        node_ptr = np.searchsorted(
            nodes_sorted, np.arange(collection.n + 1, dtype=np.int64)
        )
        return cls(collection.n, sets_by_node, node_ptr, count)

    def sets_containing(self, nodes) -> np.ndarray:
        """Sorted distinct ids of sets containing any of ``nodes``."""
        nodes = np.unique(np.asarray(nodes, dtype=np.int64))
        if nodes.size and (nodes[0] < 0 or nodes[-1] >= self.n):
            raise SamplingError(
                f"node id out of range [0, {self.n}) in index query"
            )
        if nodes.size == 0:
            return np.zeros(0, dtype=np.int64)
        parts = [
            self._sets_by_node[self._node_ptr[v] : self._node_ptr[v + 1]]
            for v in nodes
        ]
        return np.unique(np.concatenate(parts))

    def invalidated_by(self, delta: GraphDelta) -> np.ndarray:
        """Set ids a mutation batch invalidates (the head-containment
        rule; see the module docstring for why all operation kinds use
        it).  Targets beyond the indexed ``n`` are new nodes — no stored
        set can contain them, so they contribute nothing here; the
        caller already handles the n-growth full-invalidation case.
        """
        targets = delta.touched_targets()
        targets = targets[targets < self.n]
        return self.sets_containing(targets)
