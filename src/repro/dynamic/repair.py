"""Incremental repair of a warm RR pool after a graph mutation.

Seed purity is what makes this exact rather than approximate: stream set
``g`` is a pure function of ``(seed, g, graph)``, so resampling exactly
the invalidated ids via ``sample_at(g)`` on the mutated graph rebuilds a
pool byte-identical to one sampled cold on that graph — for any
execution backend and any kernel, because the repair runs the same
per-set derivation every backend runs.
"""

from __future__ import annotations

import numpy as np

from repro.dynamic.delta import GraphDelta
from repro.dynamic.index import RRSetIndex
from repro.sampling.base import make_sampler


def repair_context(ctx, graph, graph_version: int, delta: GraphDelta) -> dict:
    """Rebind ``ctx`` onto the mutated ``graph`` and repair its pool.

    Computes the exact invalidation set from the pool's inverted index,
    moves the context's sampler onto the new snapshot
    (:meth:`~repro.engine.context.SamplingContext.rebind_graph`), then
    resamples only the invalidated set ids with a local plain sampler on
    the same seed stream — a deliberate choice over routing repairs
    through the context's (possibly sharded) sampler: seed purity makes
    the bytes identical either way, and a local sampler avoids one
    fan-out round-trip per repaired set.

    Returns ``{"sets_total", "invalidated", "repaired",
    "repair_fraction"}``.  The caller must hold whatever lock serializes
    pool access (repairs rewrite stored sets in place).
    """
    pool = ctx.pool
    total = len(pool)
    invalid = np.zeros(0, dtype=np.int64)
    if total:
        invalid = RRSetIndex.from_collection(pool).invalidated_by(delta)
    ctx.rebind_graph(graph, graph_version)
    if invalid.size:
        repairer = make_sampler(
            graph,
            ctx.model,
            ctx.sampler.seed_stream,
            roots=ctx.roots,
            max_hops=ctx.horizon,
            kernel=ctx.kernel,
            graph_version=int(graph_version),
        )
        try:
            # One block call instead of a per-set loop: batched kernels
            # repair the whole invalidation set in lockstep, and
            # batch-composition invariance keeps each set byte-identical
            # to its sample_at(g) bytes.
            repaired = repairer.sample_block(np.asarray(invalid, dtype=np.int64))
            updates = {int(g): rr for g, rr in zip(invalid, repaired)}
        finally:
            repairer.close()
        pool.replace_many(updates)
    return {
        "sets_total": int(total),
        "invalidated": int(invalid.size),
        "repaired": int(invalid.size),
        "repair_fraction": float(invalid.size) / total if total else 0.0,
    }
