"""Batched graph mutations.

A :class:`GraphDelta` accumulates edge operations — inserts, deletes,
probability reweights — and is applied atomically by
:meth:`repro.dynamic.view.MutableGraphView.apply`: the whole batch
becomes *one* new graph version, one invalidation set, one repair pass.
Validation happens at record time (node ids, weight domain, self-loops,
conflicting ops on the same edge) so an invalid delta never reaches the
compile step half-applied.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import GraphError, WeightError


class GraphDelta:
    """An ordered, validated batch of edge mutations.

    >>> delta = GraphDelta().add_edge(0, 3, 0.5).remove_edge(2, 1)
    >>> len(delta)
    2

    Each edge may appear in at most one operation per delta — "remove
    then re-add (u, v)" in one batch has no well-defined combined weight
    and is rejected; apply two deltas instead.
    """

    __slots__ = ("_adds", "_removes", "_reweights", "_pairs")

    def __init__(self) -> None:
        self._adds: list[tuple[int, int, float]] = []
        self._removes: list[tuple[int, int]] = []
        self._reweights: list[tuple[int, int, float]] = []
        self._pairs: set[tuple[int, int]] = set()

    # ------------------------------------------------------------------
    # Recording
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float = 1.0) -> "GraphDelta":
        """Record insertion of edge (u, v) with influence probability."""
        u, v = self._claim_pair(u, v, "add")
        self._adds.append((u, v, self._check_weight(u, v, weight)))
        return self

    def remove_edge(self, u: int, v: int) -> "GraphDelta":
        """Record deletion of edge (u, v)."""
        u, v = self._claim_pair(u, v, "remove")
        self._removes.append((u, v))
        return self

    def reweight(self, u: int, v: int, weight: float) -> "GraphDelta":
        """Record a probability change on the existing edge (u, v)."""
        u, v = self._claim_pair(u, v, "reweight")
        self._reweights.append((u, v, self._check_weight(u, v, weight)))
        return self

    def _claim_pair(self, u: int, v: int, op: str) -> tuple[int, int]:
        u, v = int(u), int(v)
        if u < 0 or v < 0:
            raise GraphError(f"cannot {op} edge ({u}, {v}): node ids must be non-negative")
        if u == v:
            raise GraphError(f"cannot {op} edge ({u}, {v}): self-loops never affect influence")
        if (u, v) in self._pairs:
            raise GraphError(
                f"edge ({u}, {v}) appears twice in one delta; "
                "each edge may carry at most one operation per batch"
            )
        self._pairs.add((u, v))
        return u, v

    @staticmethod
    def _check_weight(u: int, v: int, weight: float) -> float:
        weight = float(weight)
        if not 0.0 <= weight <= 1.0:
            raise WeightError(
                f"edge weight must be in [0, 1], got {weight} on ({u}, {v})"
            )
        return weight

    # ------------------------------------------------------------------
    # Inspection
    # ------------------------------------------------------------------
    @property
    def adds(self) -> tuple[tuple[int, int, float], ...]:
        return tuple(self._adds)

    @property
    def removes(self) -> tuple[tuple[int, int], ...]:
        return tuple(self._removes)

    @property
    def reweights(self) -> tuple[tuple[int, int, float], ...]:
        return tuple(self._reweights)

    def __len__(self) -> int:
        return len(self._adds) + len(self._removes) + len(self._reweights)

    @property
    def is_empty(self) -> bool:
        return len(self) == 0

    @property
    def max_node(self) -> int:
        """Largest node id any operation references (-1 when empty).

        Only inserts can grow the graph, but deletes/reweights are
        included so out-of-range references fail loudly at apply time.
        """
        if not self._pairs:
            return -1
        return max(max(u, v) for u, v in self._pairs)

    def touched_targets(self) -> np.ndarray:
        """Distinct *target* node of every mutated edge (sorted int64).

        This is the invalidation key: reverse traversals only read the
        in-adjacency of nodes they visit, so an RR set can observe a
        mutation of edge (u → v) iff it contains v (see
        :class:`repro.dynamic.index.RRSetIndex`).
        """
        targets = {v for _u, v in self._pairs}
        return np.asarray(sorted(targets), dtype=np.int64)

    def __repr__(self) -> str:
        return (
            f"GraphDelta(adds={len(self._adds)}, removes={len(self._removes)}, "
            f"reweights={len(self._reweights)})"
        )

    # ------------------------------------------------------------------
    # Wire format (service `mutate` op)
    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-serializable form; inverse of :meth:`from_dict`."""
        return {
            "add": [[u, v, w] for u, v, w in self._adds],
            "remove": [[u, v] for u, v in self._removes],
            "reweight": [[u, v, w] for u, v, w in self._reweights],
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "GraphDelta":
        """Rebuild a delta from :meth:`as_dict` output (re-validates)."""
        return as_delta(
            add=payload.get("add") or (),
            remove=payload.get("remove") or (),
            reweight=payload.get("reweight") or (),
        )


def as_delta(
    delta: "GraphDelta | None" = None,
    *,
    add=(),
    remove=(),
    reweight=(),
) -> GraphDelta:
    """Coerce edge tuples (or a ready delta) into one :class:`GraphDelta`.

    ``add``/``reweight`` entries are ``(u, v, weight)`` (2-tuples default
    to weight 1.0 for ``add``); ``remove`` entries are ``(u, v)``.
    Passing both a delta and edge tuples is ambiguous and rejected.
    """
    if delta is not None:
        if not isinstance(delta, GraphDelta):
            raise GraphError(f"expected a GraphDelta, got {type(delta).__name__}")
        if add or remove or reweight:
            raise GraphError("pass either a GraphDelta or add/remove/reweight edges, not both")
        return delta
    built = GraphDelta()
    for edge in add:
        if len(edge) == 2:
            built.add_edge(edge[0], edge[1])
        else:
            built.add_edge(edge[0], edge[1], edge[2])
    for edge in remove:
        if len(edge) != 2:
            raise GraphError(f"remove entries are (u, v) pairs, got {tuple(edge)!r}")
        built.remove_edge(edge[0], edge[1])
    for edge in reweight:
        if len(edge) != 3:
            raise GraphError(f"reweight entries are (u, v, weight) triples, got {tuple(edge)!r}")
        built.reweight(edge[0], edge[1], edge[2])
    return built
