"""Dynamic graphs: a mutation API over :class:`CSRGraph` snapshots plus
incremental RR-set maintenance under edge churn.

The rest of the library treats a graph as one immutable snapshot.  This
package makes that snapshot *versioned*: a :class:`MutableGraphView`
accepts batched mutations (:class:`GraphDelta` — edge inserts, deletes,
probability reweights) and compiles each batch into a fresh immutable
``CSRGraph`` with a monotone ``graph_version`` and a content hash
(:meth:`CSRGraph.fingerprint`), so every consumer — pools, spills,
shared-memory manifests, provenance records — can tell exactly which
graph a piece of state belongs to.

The maintenance layer keeps warm RR pools alive across mutations instead
of throwing them away: an :class:`RRSetIndex` (node → containing-sets
inverted index) computes the exact invalidation set of a delta, and
:func:`repair_context` resamples *only* those sets via seed-pure
``sample_at`` on the mutated graph — byte-identical to a cold resample,
because set ``g`` is a pure function of ``(seed, g, graph)`` and the
untouched sets provably could not have observed the mutation (see
:class:`RRSetIndex` for the invalidation rule and its soundness
argument).
"""

from repro.dynamic.delta import GraphDelta, as_delta
from repro.dynamic.index import RRSetIndex
from repro.dynamic.repair import repair_context
from repro.dynamic.view import MutableGraphView

__all__ = [
    "GraphDelta",
    "MutableGraphView",
    "RRSetIndex",
    "as_delta",
    "repair_context",
]
