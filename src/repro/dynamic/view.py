"""Versioned mutable view over immutable :class:`CSRGraph` snapshots.

``CSRGraph`` stays immutable — every consumer (kernels, shared memory,
spill stamps) depends on that.  Mutation is therefore *snapshot
replacement*: :meth:`MutableGraphView.apply` compiles the current CSR
out view plus a :class:`~repro.dynamic.delta.GraphDelta` into a brand
new graph and bumps a monotone ``version``.  Readers that grabbed the
old snapshot keep a perfectly valid immutable graph; identity-sensitive
consumers key on ``(version, content hash)``.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.dynamic.delta import GraphDelta
from repro.exceptions import GraphError
from repro.graph.builder import compile_edge_arrays
from repro.graph.digraph import CSRGraph


def _edge_position(graph: CSRGraph, u: int, v: int, op: str) -> int:
    """Position of edge (u, v) in the out view, or a loud GraphError."""
    if not 0 <= u < graph.n or not 0 <= v < graph.n:
        raise GraphError(
            f"cannot {op} edge ({u}, {v}): node id out of range for n={graph.n}"
        )
    lo, hi = int(graph.out_indptr[u]), int(graph.out_indptr[u + 1])
    pos = int(np.searchsorted(graph.out_indices[lo:hi], v))
    if pos < hi - lo and graph.out_indices[lo + pos] == v:
        return lo + pos
    raise GraphError(f"cannot {op} edge ({u}, {v}): edge does not exist")


class MutableGraphView:
    """Thread-safe mutation front end producing versioned graph snapshots.

    >>> from repro.graph import from_edges
    >>> view = MutableGraphView(from_edges([(0, 1, 0.5), (1, 2, 0.5)]))
    >>> snap = view.apply(GraphDelta().add_edge(2, 0, 0.25))
    >>> (view.version, snap.has_edge(2, 0))
    (1, True)

    Operation semantics are strict so a typo'd mutation cannot silently
    no-op: ``add`` requires the edge to be absent (use ``reweight`` to
    change an existing probability), ``remove``/``reweight`` require it
    to exist.  Inserts may reference node ids beyond the current ``n``
    — the node set grows to cover them (consumers treat an ``n`` change
    as full invalidation; see :meth:`RRSetIndex.invalidated_by`).
    """

    def __init__(self, graph: CSRGraph, *, version: int = 0) -> None:
        if not isinstance(graph, CSRGraph):
            raise GraphError(f"MutableGraphView wraps a CSRGraph, got {type(graph).__name__}")
        if version < 0:
            raise GraphError(f"graph_version must be non-negative, got {version}")
        self._lock = threading.Lock()
        self._graph = graph
        self._version = int(version)

    @property
    def graph(self) -> CSRGraph:
        """The current immutable snapshot."""
        with self._lock:
            return self._graph

    @property
    def version(self) -> int:
        """Monotone mutation counter (0 = the graph the view was built on)."""
        with self._lock:
            return self._version

    @property
    def content_hash(self) -> str:
        """Content fingerprint of the current snapshot (identity across
        processes; versions are lineage within one view)."""
        with self._lock:
            return self._graph.fingerprint()

    def snapshot(self) -> "tuple[CSRGraph, int]":
        """Atomically read ``(graph, version)`` — the pair a consumer
        should stamp into any state derived from the snapshot."""
        with self._lock:
            return self._graph, self._version

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add_edge(self, u: int, v: int, weight: float = 1.0) -> CSRGraph:
        """Insert one edge (convenience for a one-op delta)."""
        return self.apply(GraphDelta().add_edge(u, v, weight))

    def remove_edge(self, u: int, v: int) -> CSRGraph:
        """Delete one edge (convenience for a one-op delta)."""
        return self.apply(GraphDelta().remove_edge(u, v))

    def reweight(self, u: int, v: int, weight: float) -> CSRGraph:
        """Change one edge's probability (convenience for a one-op delta)."""
        return self.apply(GraphDelta().reweight(u, v, weight))

    def apply(self, delta: GraphDelta) -> CSRGraph:
        """Apply one mutation batch atomically; returns the new snapshot.

        The whole batch validates against the *current* snapshot before
        anything is swapped, so a bad op leaves the view untouched.  The
        new snapshot is compiled from the previous CSR out view in a few
        vectorized passes — O(m + |delta| log d) — and the version bumps
        by exactly one per successful apply.
        """
        if not isinstance(delta, GraphDelta):
            raise GraphError(f"apply() takes a GraphDelta, got {type(delta).__name__}")
        if delta.is_empty:
            raise GraphError("empty delta: nothing to apply")
        with self._lock:
            graph = self._graph
            src = np.repeat(
                np.arange(graph.n, dtype=np.int64), np.diff(graph.out_indptr)
            )
            dst = graph.out_indices.astype(np.int64)
            wgt = graph.out_weights.copy()
            keep = np.ones(graph.m, dtype=bool)
            for u, v in delta.removes:
                keep[_edge_position(graph, u, v, "remove")] = False
            for u, v, weight in delta.reweights:
                wgt[_edge_position(graph, u, v, "reweight")] = weight
            for u, v, _weight in delta.adds:
                if u < graph.n and v < graph.n and graph.has_edge(u, v):
                    raise GraphError(
                        f"cannot add edge ({u}, {v}): edge already exists "
                        "(use reweight to change its probability)"
                    )
            if delta.adds:
                add_u = np.asarray([u for u, _v, _w in delta.adds], dtype=np.int64)
                add_v = np.asarray([v for _u, v, _w in delta.adds], dtype=np.int64)
                add_w = np.asarray([w for _u, _v, w in delta.adds], dtype=np.float64)
                src = np.concatenate([src[keep], add_u])
                dst = np.concatenate([dst[keep], add_v])
                wgt = np.concatenate([wgt[keep], add_w])
            else:
                src, dst, wgt = src[keep], dst[keep], wgt[keep]
            n = max(graph.n, delta.max_node + 1)
            new_graph = compile_edge_arrays(n, src, dst, wgt)
            self._graph = new_graph
            self._version += 1
            return new_graph

    def __repr__(self) -> str:
        graph, version = self.snapshot()
        return f"MutableGraphView(n={graph.n}, m={graph.m}, version={version})"
