"""Command-line interface: ``repro-im`` / ``python -m repro``.

Subcommands
-----------
``datasets``
    List catalogued datasets with paper and stand-in statistics.
``algorithms``
    Print the algorithm registry's capability table.
``run``
    Run one algorithm on one dataset and print the result summary.
``compare``
    Run several algorithms at one k and print the comparison table.
``query``
    Open a warm :class:`~repro.engine.engine.InfluenceEngine` session
    and answer many maximize/sweep/estimate queries against it.
``tvm``
    Run the TVM experiment (Fig. 8 style) on a topic group.
"""

from __future__ import annotations

import argparse
import sys

from repro.datasets.catalog import DATASETS
from repro.datasets.synthetic import load_dataset
from repro.engine import InfluenceEngine, registry_table
from repro.exceptions import ReproError
from repro.experiments.figures import tvm_runtime_vs_k
from repro.experiments.report import render_comparison
from repro.experiments.runner import ALGORITHMS, evaluate_quality, run_algorithm
from repro.graph.statistics import compute_stats
from repro.sampling.backends import BACKENDS
from repro.utils.tables import format_table


def _cmd_datasets(_: argparse.Namespace) -> int:
    headers = ["name", "paper nodes", "paper edges", "avg deg", "stand-in nodes", "scale"]
    rows = []
    for spec in DATASETS.values():
        rows.append(
            [
                spec.name,
                spec.paper_nodes,
                spec.paper_edges,
                spec.paper_avg_degree,
                spec.standin_nodes,
                round(spec.scale_factor, 1),
            ]
        )
    print(format_table(headers, rows, title="Datasets (Table 2 + stand-ins)"))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    stats = compute_stats(graph)
    print(f"{args.dataset}: n={stats.nodes} m={stats.edges} avg_deg={stats.avg_degree:.2f}")
    print(f"  max in-degree={stats.max_in_degree} max out-degree={stats.max_out_degree}")
    print(f"  weights in [{stats.weight_min:.4f}, {stats.weight_max:.4f}], LT admissible={stats.lt_admissible}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    record = run_algorithm(
        args.algorithm,
        graph,
        args.k,
        model=args.model,
        epsilon=args.epsilon,
        seed=args.seed,
        dataset=args.dataset,
        backend=args.backend,
        workers=args.workers,
    )
    if args.quality:
        evaluate_quality(record, graph, simulations=args.quality_sims, seed=args.seed)
    print(render_comparison([record], title=f"{args.algorithm} on {args.dataset}"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    records = []
    for algo in args.algorithms:
        record = run_algorithm(
            algo,
            graph,
            args.k,
            model=args.model,
            epsilon=args.epsilon,
            seed=args.seed,
            dataset=args.dataset,
            backend=args.backend,
            workers=args.workers,
        )
        if args.quality:
            evaluate_quality(record, graph, simulations=args.quality_sims, seed=args.seed)
        records.append(record)
    print(render_comparison(records, title=f"Comparison on {args.dataset} (k={args.k}, {args.model})"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.extensions.sweep import influence_sweep

    graph = load_dataset(args.dataset, scale=args.scale)
    sweep = influence_sweep(
        graph,
        args.k_values,
        epsilon=args.epsilon,
        model=args.model,
        seed=args.seed,
    )
    rows = [[k, round(sweep.influence_at[k], 1)] for k in sorted(sweep.influence_at)]
    print(
        format_table(
            ["k", "estimated influence"],
            rows,
            title=(
                f"Influence sweep on {args.dataset} ({args.model}), one D-SSA run "
                f"at k={sweep.k_max}, {sweep.samples} RR sets total"
            ),
        )
    )
    return 0


def _cmd_algorithms(_: argparse.Namespace) -> int:
    print(registry_table())
    return 0


def _parse_query_options(tokens: "list[str]") -> dict:
    """``key=value`` tokens -> dict (values stay strings)."""
    options = {}
    for token in tokens:
        if "=" not in token:
            raise ValueError(f"expected key=value, got {token!r}")
        key, value = token.split("=", 1)
        options[key.strip()] = value.strip()
    return options


def _query_execute(engine: InfluenceEngine, line: str) -> bool:
    """Run one query-session command; returns False on quit."""
    tokens = line.split()
    if not tokens:
        return True
    command, opts = tokens[0].lower(), _parse_query_options(tokens[1:])
    if command in ("quit", "exit"):
        return False
    if command == "help":
        print(
            "commands:\n"
            "  maximize k=10 [epsilon=0.1] [algorithm=D-SSA] [horizon=T]\n"
            "  sweep ks=1,5,10 [epsilon=0.1] [algorithm=D-SSA]\n"
            "  estimate seeds=1,2,3 [samples=N]\n"
            "  algorithms | stats | help | quit"
        )
    elif command == "algorithms":
        print(registry_table())
    elif command == "stats":
        stats = engine.stats
        print(
            f"session seed={engine.seed} queries={stats.queries} "
            f"rr_requested={stats.rr_requested} rr_sampled={stats.rr_sampled} "
            f"cache_hits={stats.cache_hits} hit_rate={stats.hit_rate:.1%}"
        )
        for key, size in engine.pool_sizes().items():
            print(f"  pool {key}: {size} RR sets")
    elif command == "maximize":
        horizon = opts.pop("horizon", None)
        result = engine.maximize(
            int(opts.pop("k")),
            epsilon=float(opts.pop("epsilon", 0.1)),
            algorithm=opts.pop("algorithm", "D-SSA"),
            horizon=int(horizon) if horizon is not None else None,
        )
        print(result.summary())
        print(f"  seeds: {result.seeds}")
    elif command == "sweep":
        ks = [int(x) for x in opts.pop("ks").split(",")]
        results = engine.sweep(
            ks,
            epsilon=float(opts.pop("epsilon", 0.1)),
            algorithm=opts.pop("algorithm", "D-SSA"),
        )
        rows = [[r.k, round(r.influence, 1), r.samples, r.iterations] for r in results]
        print(format_table(["k", "influence", "RR demand", "iterations"], rows))
    elif command == "estimate":
        seeds = [int(x) for x in opts.pop("seeds").split(",")]
        samples = opts.pop("samples", None)
        estimate = engine.estimate(
            seeds, samples=int(samples) if samples is not None else None
        )
        print(f"estimated influence: {estimate:.2f}")
    else:
        print(f"unknown command {command!r} (try: help)")
        return True
    if opts:
        print(f"warning: ignored unknown option(s) {sorted(opts)}")
    return True


def _cmd_query(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    interactive = args.command is None and sys.stdin.isatty()
    with InfluenceEngine(
        graph,
        model=args.model,
        seed=args.seed,
        backend=args.backend,
        workers=args.workers,
    ) as engine:
        print(
            f"engine session: {args.dataset} (n={graph.n}, m={graph.m}), "
            f"model={args.model}, seed={engine.seed}, backend={args.backend}"
        )
        lines = iter(args.command) if args.command is not None else sys.stdin
        while True:
            if interactive:
                print("query> ", end="", flush=True)
            line = next(lines, None)
            if line is None:
                break
            try:
                if not _query_execute(engine, line):
                    break
            except (ReproError, ValueError, KeyError) as exc:
                print(f"error: {exc}")
                if args.command is not None:
                    return 1
        _query_execute(engine, "stats")
    return 0


def _cmd_tvm(args: argparse.Namespace) -> int:
    graph = load_dataset("twitter", scale=args.scale)
    records = tvm_runtime_vs_k(
        graph, args.topic, args.k_values, model=args.model, epsilon=args.epsilon
    )
    print(render_comparison(records, title=f"TVM topic {args.topic}"))
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-im",
        description="Stop-and-Stare influence maximization (SIGMOD 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list catalogued datasets").set_defaults(fn=_cmd_datasets)

    sub.add_parser(
        "algorithms", help="print the algorithm registry's capability table"
    ).set_defaults(fn=_cmd_algorithms)

    p_stats = sub.add_parser("stats", help="show a dataset stand-in's statistics")
    p_stats.add_argument("dataset", choices=list(DATASETS))
    p_stats.add_argument("--scale", type=float, default=1.0)
    p_stats.set_defaults(fn=_cmd_stats)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", default="nethept", choices=list(DATASETS))
        p.add_argument("--scale", type=float, default=1.0)
        p.add_argument("-k", type=int, default=10)
        p.add_argument("--model", default="LT", choices=["LT", "IC"])
        p.add_argument("--epsilon", type=float, default=0.2)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--quality", action="store_true", help="Monte Carlo-evaluate the seeds")
        p.add_argument("--quality-sims", type=int, default=200)
        p.add_argument(
            "--backend",
            default="serial",
            choices=sorted(BACKENDS),
            help="RR-sampling execution backend (RIS algorithms only)",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            help="parallel sampling workers (>1 shards the RR stream; "
            "defaults to the CPU count when a parallel backend is chosen)",
        )

    p_run = sub.add_parser("run", help="run one algorithm")
    p_run.add_argument("algorithm", choices=list(ALGORITHMS))
    add_common(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_cmp = sub.add_parser("compare", help="run several algorithms")
    p_cmp.add_argument("--algorithms", nargs="+", default=["D-SSA", "SSA", "IMM"], choices=list(ALGORITHMS))
    add_common(p_cmp)
    p_cmp.set_defaults(fn=_cmd_compare)

    p_query = sub.add_parser(
        "query",
        help="answer many maximize/sweep/estimate queries against one warm engine",
        description=(
            "REPL-style session over a warm InfluenceEngine: the execution "
            "backend stays up and RR sets are cached across queries.  Reads "
            "commands from stdin (or --command), e.g. 'maximize k=10 "
            "epsilon=0.2 algorithm=D-SSA'; 'help' lists the rest."
        ),
    )
    p_query.add_argument("--dataset", default="nethept", choices=list(DATASETS))
    p_query.add_argument("--scale", type=float, default=1.0)
    p_query.add_argument("--model", default="LT", choices=["LT", "IC"])
    p_query.add_argument("--seed", type=int, default=7)
    p_query.add_argument("--backend", default="serial", choices=sorted(BACKENDS))
    p_query.add_argument("--workers", type=int, default=None)
    p_query.add_argument(
        "-c",
        "--command",
        action="append",
        metavar="CMD",
        help="run this query command instead of reading stdin (repeatable)",
    )
    p_query.set_defaults(fn=_cmd_query)

    p_sweep = sub.add_parser("sweep", help="influence-vs-k curve from one amortized run")
    p_sweep.add_argument("--dataset", default="nethept", choices=list(DATASETS))
    p_sweep.add_argument("--scale", type=float, default=1.0)
    p_sweep.add_argument("--model", default="LT", choices=["LT", "IC"])
    p_sweep.add_argument("--epsilon", type=float, default=0.2)
    p_sweep.add_argument("--seed", type=int, default=7)
    p_sweep.add_argument("--k-values", type=int, nargs="+", default=[1, 5, 10, 20, 50])
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_tvm = sub.add_parser("tvm", help="targeted viral marketing experiment")
    p_tvm.add_argument("--topic", type=int, default=1, choices=[1, 2])
    p_tvm.add_argument("--scale", type=float, default=1.0)
    p_tvm.add_argument("--model", default="LT", choices=["LT", "IC"])
    p_tvm.add_argument("--epsilon", type=float, default=0.2)
    p_tvm.add_argument("--k-values", type=int, nargs="+", default=[5, 10, 20])
    p_tvm.set_defaults(fn=_cmd_tvm)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
