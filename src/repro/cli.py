"""Command-line interface: ``repro-im`` / ``python -m repro``.

Subcommands
-----------
``datasets``
    List catalogued datasets with paper and stand-in statistics.
``algorithms``
    Print the algorithm registry's capability table.
``run``
    Run one algorithm on one dataset and print the result summary.
``compare``
    Run several algorithms at one k and print the comparison table.
``query``
    Answer many maximize/sweep/estimate queries against a warm
    :class:`~repro.service.service.InfluenceService` — in-process by
    default, or against a remote ``repro serve`` via ``--connect``.
``serve``
    Run an :class:`~repro.service.server.InfluenceServer`: concurrent
    multi-client query serving over TCP (newline-delimited JSON) with a
    pool byte budget and optional cross-restart pool persistence.
``worker``
    Join a network sampling fleet as one worker host: connect to a
    ``--backend network`` coordinator, fetch the content-addressed graph
    blob (cached by hash across restarts), and serve RR batches under a
    heartbeat lease until the coordinator closes the connection.
``tvm``
    Run the TVM experiment (Fig. 8 style) on a topic group.
``lint``
    Run reprolint, the project-specific invariant linter (seed-purity,
    lock-discipline, provenance-stamp, resource-lifecycle) — see
    ``docs/INVARIANTS.md``.
"""

from __future__ import annotations

import argparse
import sys

from repro.analysis.lint import cli as lint_cli
from repro.datasets.catalog import DATASETS
from repro.datasets.synthetic import load_dataset
from repro.engine import registry_table
from repro.exceptions import ReproError
from repro.experiments.figures import tvm_runtime_vs_k
from repro.experiments.report import render_comparison
from repro.experiments.runner import ALGORITHMS, evaluate_quality, run_algorithm
from repro.graph.statistics import compute_stats
from repro.sampling.backends import (
    BACKENDS,
    parse_hosts_spec,
    run_worker,
    set_network_defaults,
)
from repro.sampling.kernels import AUTO_KERNEL, KERNELS
from repro.service import (
    InfluenceServer,
    InfluenceService,
    ServiceClient,
    ServiceError,
    summarize_result,
)
from repro.utils.tables import format_table


def _cmd_datasets(_: argparse.Namespace) -> int:
    headers = ["name", "paper nodes", "paper edges", "avg deg", "stand-in nodes", "scale"]
    rows = []
    for spec in DATASETS.values():
        rows.append(
            [
                spec.name,
                spec.paper_nodes,
                spec.paper_edges,
                spec.paper_avg_degree,
                spec.standin_nodes,
                round(spec.scale_factor, 1),
            ]
        )
    print(format_table(headers, rows, title="Datasets (Table 2 + stand-ins)"))
    return 0


def _cmd_stats(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    stats = compute_stats(graph)
    print(f"{args.dataset}: n={stats.nodes} m={stats.edges} avg_deg={stats.avg_degree:.2f}")
    print(f"  max in-degree={stats.max_in_degree} max out-degree={stats.max_out_degree}")
    print(f"  weights in [{stats.weight_min:.4f}, {stats.weight_max:.4f}], LT admissible={stats.lt_admissible}")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    record = run_algorithm(
        args.algorithm,
        graph,
        args.k,
        model=args.model,
        epsilon=args.epsilon,
        seed=args.seed,
        dataset=args.dataset,
        backend=args.backend,
        workers=args.workers,
        kernel=args.kernel,
    )
    if args.quality:
        evaluate_quality(record, graph, simulations=args.quality_sims, seed=args.seed)
    print(render_comparison([record], title=f"{args.algorithm} on {args.dataset}"))
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    records = []
    for algo in args.algorithms:
        record = run_algorithm(
            algo,
            graph,
            args.k,
            model=args.model,
            epsilon=args.epsilon,
            seed=args.seed,
            dataset=args.dataset,
            backend=args.backend,
            workers=args.workers,
            kernel=args.kernel,
        )
        if args.quality:
            evaluate_quality(record, graph, simulations=args.quality_sims, seed=args.seed)
        records.append(record)
    print(render_comparison(records, title=f"Comparison on {args.dataset} (k={args.k}, {args.model})"))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.extensions.sweep import influence_sweep

    graph = load_dataset(args.dataset, scale=args.scale)
    sweep = influence_sweep(
        graph,
        args.k_values,
        epsilon=args.epsilon,
        model=args.model,
        seed=args.seed,
    )
    rows = [[k, round(sweep.influence_at[k], 1)] for k in sorted(sweep.influence_at)]
    print(
        format_table(
            ["k", "estimated influence"],
            rows,
            title=(
                f"Influence sweep on {args.dataset} ({args.model}), one D-SSA run "
                f"at k={sweep.k_max}, {sweep.samples} RR sets total"
            ),
        )
    )
    return 0


def _cmd_algorithms(_: argparse.Namespace) -> int:
    print(registry_table())
    return 0


def _parse_query_options(tokens: "list[str]") -> dict:
    """``key=value`` tokens -> dict (values stay strings)."""
    options = {}
    for token in tokens:
        if "=" not in token:
            raise ValueError(f"expected key=value, got {token!r}")
        key, value = token.split("=", 1)
        options[key.strip()] = value.strip()
    return options


def _parse_bytes(text: str | None) -> int | None:
    """``"64M"``/``"1.5G"``/``"800K"``/plain int -> bytes."""
    if text is None:
        return None
    raw = str(text).strip().upper().removesuffix("B")
    units = {"K": 1 << 10, "M": 1 << 20, "G": 1 << 30}
    factor = units.get(raw[-1:] or "", 1)
    digits = raw[:-1] if factor != 1 else raw
    try:
        value = int(float(digits) * factor)
    except ValueError as exc:
        raise ValueError(f"cannot parse byte size {text!r} (try 800K, 64M, 1G)") from exc
    if value <= 0:
        raise ValueError(f"byte size must be positive, got {text!r}")
    return value


def _render_algorithm_rows(rows: "list[dict]") -> str:
    table_rows = [
        [
            r["name"],
            "yes" if r["engine"] else "one-shot only",
            "yes" if r["needs_rr_sets"] else "no",
            "yes" if r["supports_backend"] else "-",
            "yes" if r["supports_horizon"] else "-",
            "yes" if r.get("supports_kernel") else "-",
            r["concurrency"],
            r["description"],
        ]
        for r in rows
    ]
    return format_table(
        ["algorithm", "engine reuse", "RR sets", "backends", "horizon", "kernels", "concurrency", "description"],
        table_rows,
        title="Registered influence-maximization algorithms",
    )


def _parse_edge_groups(text, name: str, *, weighted: bool) -> "list[list]":
    """Parse REPL edge shorthand (``u:v:w,...``) into structured rows.

    The REPL keeps the compact command syntax but puts the structured
    ``GraphDelta.as_dict()`` form on the wire — the string wire format
    is deprecated server-side.
    """
    if text is None:
        return []
    arity = 3 if weighted else 2
    rows = []
    for group in str(text).split(","):
        if not group.strip():
            continue
        fields = group.split(":")
        if len(fields) != arity:
            raise ValueError(
                f"{name} groups need {arity} colon-separated fields, got {group!r}"
            )
        try:
            row = [int(fields[0]), int(fields[1])]
            if weighted:
                row.append(float(fields[2]))
        except ValueError as exc:
            raise ValueError(f"{name} group {group!r} is not numeric") from exc
        rows.append(row)
    return rows


def _query_execute(call, line: str) -> bool:
    """Run one REPL command through a service ``call``; False on quit.

    ``call(op, **params)`` is either the in-process service or a remote
    client — both return wire-level (JSON-able) results, so rendering is
    transport-agnostic.
    """
    tokens = line.split()
    if not tokens:
        return True
    command, opts = tokens[0].lower(), _parse_query_options(tokens[1:])
    if command in ("quit", "exit"):
        return False
    if command == "help":
        print(
            "commands:\n"
            "  maximize k=10 [epsilon=0.1] [algorithm=D-SSA] [horizon=T] [workers=W]\n"
            "  sweep ks=1,5,10 [epsilon=0.1] [algorithm=D-SSA]\n"
            "  estimate seeds=1,2,3 [samples=N]\n"
            "  resize workers=W   (elastic worker count; stream unchanged)\n"
            "  mutate [add=u:v:w,...] [remove=u:v,...] [reweight=u:v:w,...]\n"
            "         (edge churn; warm pools repaired incrementally)\n"
            "  quota [quota_bytes=N]   (show or set the session byte quota)\n"
            "  algorithms | stats | metrics | ping | help | quit\n"
            "  shutdown   (stop a remote server)"
        )
    elif command == "algorithms":
        print(_render_algorithm_rows(call("algorithms")))
    elif command == "ping":
        print("pong" if call("ping").get("pong") else "no answer")
    elif command == "shutdown":
        call("shutdown")
        print("server stopping")
        return False
    elif command == "stats":
        stats = call("stats")
        print(
            f"session seed={stats['seed']} workers={stats.get('workers') or 1} "
            f"graph_version={stats.get('graph_version', 0)} "
            f"queries={stats['queries']} "
            f"rr_requested={stats['rr_requested']} rr_sampled={stats['rr_sampled']} "
            f"cache_hits={stats['cache_hits']} hit_rate={stats['hit_rate']:.1%} "
            f"pool_bytes={stats['pool_bytes']} evictions={stats['evictions']} "
            f"truncations={stats.get('pool_truncations', 0)} "
            f"reattached_sets={stats['reattached_sets']} "
            f"mutations={stats.get('mutations', 0)} "
            f"repairs={stats.get('repairs', 0)}"
        )
        for key, size in stats["pools"].items():
            print(f"  pool {key}: {size} RR sets")
        metrics = call("metrics")
        for op, hist in metrics.items():
            if hist["count"]:
                print(
                    f"  latency {op}: n={hist['count']} "
                    f"p50={hist['p50_seconds'] * 1000:.1f}ms "
                    f"p99={hist['p99_seconds'] * 1000:.1f}ms "
                    f"max={hist['max_seconds'] * 1000:.1f}ms"
                )
    elif command == "metrics":
        metrics = call("metrics")
        rows = [
            [
                op,
                hist["count"],
                f"{hist['mean_seconds'] * 1000:.1f}",
                f"{hist['p50_seconds'] * 1000:.1f}",
                f"{hist['p90_seconds'] * 1000:.1f}",
                f"{hist['p99_seconds'] * 1000:.1f}",
                f"{hist['max_seconds'] * 1000:.1f}",
            ]
            for op, hist in metrics.items()
        ]
        print(
            format_table(
                ["op", "count", "mean ms", "p50 ms", "p90 ms", "p99 ms", "max ms"],
                rows,
                title="Per-operation latency (bucketed histogram estimates)",
            )
        )
    elif command == "resize":
        if "workers" not in opts:
            raise ValueError("resize needs workers=<int>")
        outcome = call("resize", **opts)
        print(
            f"session {outcome['session']!r} now at workers={outcome['workers']} "
            f"({outcome['pools_resized']} warm pool(s) resized; stream unchanged)"
        )
    elif command == "quota":
        outcome = call("quota", **opts)
        quota = outcome.get("quota_bytes")
        print(
            f"session {outcome['session']!r} quota="
            f"{quota if quota is not None else 'unlimited'} "
            f"pool_bytes={outcome['pool_bytes']} "
            f"reserved_bytes={outcome['reserved_bytes']}"
        )
    elif command == "mutate":
        known = {"add", "remove", "reweight"}
        unknown = sorted(set(opts) - known)
        if unknown:
            raise ValueError(f"mutate got unknown option(s) {unknown}")
        delta = {
            key: _parse_edge_groups(
                opts.get(key), key, weighted=(key != "remove")
            )
            for key in known
            if opts.get(key) is not None
        }
        if not any(delta.values()):
            raise ValueError(
                "mutate needs at least one of add=u:v:w,... remove=u:v,... "
                "reweight=u:v:w,..."
            )
        report = call("mutate", delta=delta)
        print(
            f"graph now v{report['graph_version']} "
            f"(hash {report['content_hash']}, n={report['n']} m={report['m']}); "
            f"repaired {report['repaired']}/{report['sets_total']} pooled RR sets "
            f"(repair_fraction={report['repair_fraction']:.1%}, "
            f"{report['pools_retired']} pool(s) retired)"
        )
    elif command == "maximize":
        if "k" not in opts:
            raise ValueError("maximize needs k=<int>")
        result = call("maximize", **opts)
        print(summarize_result(result))
        print(f"  seeds: {result['seeds']}")
    elif command == "sweep":
        if "ks" not in opts:
            raise ValueError("sweep needs ks=<k1,k2,...>")
        results = call("sweep", **opts)
        rows = [[r["k"], round(r["influence"], 1), r["samples"], r["iterations"]] for r in results]
        print(format_table(["k", "influence", "RR demand", "iterations"], rows))
    elif command == "estimate":
        if "seeds" not in opts:
            raise ValueError("estimate needs seeds=<v1,v2,...>")
        estimate = call("estimate", **opts)
        print(f"estimated influence: {estimate:.2f}")
    else:
        raise ValueError(f"unknown command {command!r} (try: help)")
    return True


def _query_repl(call, lines, *, interactive: bool) -> int:
    """Drive the REPL loop; returns a process exit code.

    Interactive sessions keep going after a bad command; scripted input
    (piped stdin or ``--command``) fails fast with a clean one-line
    error on stderr and a non-zero exit — malformed scripts and dropped
    server connections must not look like success (or a traceback).
    """
    while True:
        if interactive:
            print("query> ", end="", flush=True)
        try:
            line = next(lines, None)
        except KeyboardInterrupt:
            print()
            break
        if line is None:
            break
        try:
            if not _query_execute(call, line):
                break
        except (ReproError, ValueError, KeyError) as exc:
            print(f"error: {exc}", file=sys.stderr)
            if not interactive:
                return 1
    try:
        _query_execute(call, "stats")
    except (ReproError, ValueError, KeyError):
        pass  # server already gone (e.g. after shutdown) — stats are best-effort
    return 0


def _cmd_query(args: argparse.Namespace) -> int:
    interactive = args.command is None and sys.stdin.isatty()
    lines = iter(args.command) if args.command is not None else iter(sys.stdin)

    if args.connect is not None:
        host, _, port = args.connect.rpartition(":")
        if not host or not port.isdigit():
            print(f"error: --connect expects HOST:PORT, got {args.connect!r}", file=sys.stderr)
            return 2
        try:
            with ServiceClient(host, int(port)) as client:
                print(f"connected to influence service at {host}:{port}")

                def call(op, **params):
                    return client.call(op, session=args.session, **params)

                return _query_repl(call, lines, interactive=interactive)
        except ServiceError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 1

    graph = load_dataset(args.dataset, scale=args.scale)
    try:
        budget = _parse_bytes(args.pool_budget)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    with InfluenceService(pool_budget=budget, spill_dir=args.spill_dir) as service:
        engine = service.open_session(
            args.session,
            graph,
            model=args.model,
            seed=args.seed,
            backend=args.backend,
            workers=args.workers,
            kernel=args.kernel,
        )
        print(
            f"engine session: {args.dataset} (n={graph.n}, m={graph.m}), "
            f"model={args.model}, seed={engine.seed}, backend={args.backend}, "
            f"kernel={engine.kernel.name}"
        )

        def call(op, **params):
            return service.wire_result(service.call(op, session=args.session, **params))

        return _query_repl(call, lines, interactive=interactive)


def _cmd_serve(args: argparse.Namespace) -> int:
    graph = load_dataset(args.dataset, scale=args.scale)
    try:
        budget = _parse_bytes(args.pool_budget)
        quota = _parse_bytes(args.session_quota)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    service = InfluenceService(
        pool_budget=budget, spill_dir=args.spill_dir, max_workers=args.max_workers
    )
    try:
        engine = service.open_session(
            args.session,
            graph,
            model=args.model,
            seed=args.seed,
            backend=args.backend,
            workers=args.workers,
            kernel=args.kernel,
            quota_bytes=quota,
        )
        server = InfluenceServer(
            service, host=args.host, port=args.port, metrics_port=args.metrics_port
        )
        host, port = server.address
        budget_str = f"{budget} bytes" if budget is not None else "unbounded"
        print(
            f"serving {args.dataset} (n={graph.n}, m={graph.m}) "
            f"model={args.model} seed={engine.seed} backend={args.backend} "
            f"session={args.session!r}",
            flush=True,
        )
        print(
            f"listening on {host}:{port}  (pool budget: {budget_str}, "
            f"spill dir: {args.spill_dir or 'none'})",
            flush=True,
        )
        if server.metrics_address is not None:
            mhost, mport = server.metrics_address
            print(
                f"metrics on http://{mhost}:{mport}/metrics "
                "(Prometheus text exposition)",
                flush=True,
            )
        if quota is not None:
            print(
                f"session quota: {quota} bytes (admission control active)",
                flush=True,
            )
        try:
            server.serve_forever()
        except KeyboardInterrupt:
            print("\nshutting down", flush=True)
            server.shutdown()
        return 0
    finally:
        # Spills every warm pool when a spill dir is configured, so the
        # next `repro serve` starts with yesterday's warmup.
        service.close()


def _cmd_worker(args: argparse.Namespace) -> int:
    try:
        return run_worker(
            args.connect,
            cache_dir=args.cache_dir,
            label=args.label,
            retry_for=args.retry,
        )
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


def _cmd_tvm(args: argparse.Namespace) -> int:
    graph = load_dataset("twitter", scale=args.scale)
    records = tvm_runtime_vs_k(
        graph, args.topic, args.k_values, model=args.model, epsilon=args.epsilon
    )
    print(render_comparison(records, title=f"TVM topic {args.topic}"))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    return lint_cli.run(args)


def build_parser() -> argparse.ArgumentParser:
    """Construct the CLI argument parser (exposed for tests)."""
    parser = argparse.ArgumentParser(
        prog="repro-im",
        description="Stop-and-Stare influence maximization (SIGMOD 2016 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("datasets", help="list catalogued datasets").set_defaults(fn=_cmd_datasets)

    sub.add_parser(
        "algorithms", help="print the algorithm registry's capability table"
    ).set_defaults(fn=_cmd_algorithms)

    p_stats = sub.add_parser("stats", help="show a dataset stand-in's statistics")
    p_stats.add_argument("dataset", choices=list(DATASETS))
    p_stats.add_argument("--scale", type=float, default=1.0)
    p_stats.set_defaults(fn=_cmd_stats)

    def add_common(p: argparse.ArgumentParser) -> None:
        p.add_argument("--dataset", default="nethept", choices=list(DATASETS))
        p.add_argument("--scale", type=float, default=1.0)
        p.add_argument("-k", type=int, default=10)
        p.add_argument("--model", default="LT", choices=["LT", "IC"])
        p.add_argument("--epsilon", type=float, default=0.2)
        p.add_argument("--seed", type=int, default=7)
        p.add_argument("--quality", action="store_true", help="Monte Carlo-evaluate the seeds")
        p.add_argument("--quality-sims", type=int, default=200)
        p.add_argument(
            "--backend",
            default="serial",
            choices=sorted(BACKENDS),
            help="RR-sampling execution backend (RIS algorithms only)",
        )
        p.add_argument(
            "--workers",
            type=int,
            default=None,
            help="parallel sampling workers — a pure throughput knob: the "
            "RR stream is byte-identical at any count (defaults to the "
            "CPU count when a parallel backend is chosen)",
        )
        p.add_argument(
            "--kernel",
            default=None,
            choices=sorted(KERNELS) + [AUTO_KERNEL],
            help="reverse-sampling kernel: 'scalar' (historical stream, "
            "default), 'vectorized' (frontier-at-once numpy BFS), "
            "'batched'/'lt-batched' (whole-batch lockstep lanes; fastest "
            "on small-set regimes like weighted cascade), or 'auto' "
            "(resolve per workload; provenance records the resolved name)",
        )
        add_hosts(p)

    def add_hosts(p: argparse.ArgumentParser) -> None:
        p.add_argument(
            "--hosts",
            default=None,
            metavar="SPEC",
            help="network-backend fleet config (with --backend network): an "
            "integer N spawns N loopback worker processes; HOST:PORT "
            "listens there for external 'repro-im worker' hosts; extras: "
            "min=K (hosts to wait for), ttl=SECONDS (heartbeat lease), "
            "cache=DIR (worker blob cache) — e.g. "
            "--hosts 0.0.0.0:8700,min=2,ttl=15",
        )

    p_run = sub.add_parser("run", help="run one algorithm")
    p_run.add_argument("algorithm", choices=list(ALGORITHMS))
    add_common(p_run)
    p_run.set_defaults(fn=_cmd_run)

    p_cmp = sub.add_parser("compare", help="run several algorithms")
    p_cmp.add_argument("--algorithms", nargs="+", default=["D-SSA", "SSA", "IMM"], choices=list(ALGORITHMS))
    add_common(p_cmp)
    p_cmp.set_defaults(fn=_cmd_compare)

    p_query = sub.add_parser(
        "query",
        help="answer many maximize/sweep/estimate queries against a warm service",
        description=(
            "REPL-style session over a warm InfluenceService: the execution "
            "backend stays up and RR sets are cached across queries.  Reads "
            "commands from stdin (or --command), e.g. 'maximize k=10 "
            "epsilon=0.2 algorithm=D-SSA'; 'help' lists the rest.  With "
            "--connect HOST:PORT the commands run against a remote "
            "'repro-im serve' instead of an in-process engine."
        ),
    )
    p_query.add_argument("--dataset", default="nethept", choices=list(DATASETS))
    p_query.add_argument("--scale", type=float, default=1.0)
    p_query.add_argument("--model", default="LT", choices=["LT", "IC"])
    p_query.add_argument("--seed", type=int, default=7)
    p_query.add_argument("--backend", default="serial", choices=sorted(BACKENDS))
    p_query.add_argument("--workers", type=int, default=None)
    p_query.add_argument("--kernel", default=None, choices=sorted(KERNELS) + [AUTO_KERNEL])
    add_hosts(p_query)
    p_query.add_argument(
        "--connect",
        metavar="HOST:PORT",
        default=None,
        help="talk to a remote 'repro-im serve' instead of an in-process engine "
        "(--dataset/--seed/... are then the server's business)",
    )
    p_query.add_argument(
        "--session",
        default="default",
        help="service session name to query (default: default)",
    )
    p_query.add_argument(
        "--pool-budget",
        default=None,
        metavar="BYTES",
        help="in-process pool byte budget with LRU eviction (e.g. 800K, 64M)",
    )
    p_query.add_argument(
        "--spill-dir",
        default=None,
        metavar="DIR",
        help="persist pools here on close/eviction and reattach on startup",
    )
    p_query.add_argument(
        "-c",
        "--command",
        action="append",
        metavar="CMD",
        help="run this query command instead of reading stdin (repeatable)",
    )
    p_query.set_defaults(fn=_cmd_query)

    p_serve = sub.add_parser(
        "serve",
        help="serve concurrent influence queries over TCP (NDJSON protocol)",
        description=(
            "Run an InfluenceServer: one warm session, many concurrent "
            "clients, newline-delimited JSON over TCP.  Queries are "
            "byte-identical to sequential one-shot runs at the same seed; "
            "the pool budget bounds memory via LRU eviction and --spill-dir "
            "makes warmup survive restarts.  Clients: "
            "'repro-im query --connect HOST:PORT' or repro.ServiceClient."
        ),
    )
    p_serve.add_argument("--dataset", default="nethept", choices=list(DATASETS))
    p_serve.add_argument("--scale", type=float, default=1.0)
    p_serve.add_argument("--model", default="LT", choices=["LT", "IC"])
    p_serve.add_argument("--seed", type=int, default=7)
    p_serve.add_argument("--backend", default="serial", choices=sorted(BACKENDS))
    p_serve.add_argument("--workers", type=int, default=None)
    p_serve.add_argument("--kernel", default=None, choices=sorted(KERNELS) + [AUTO_KERNEL])
    add_hosts(p_serve)
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument(
        "--port", type=int, default=8642, help="TCP port (0 picks a free one)"
    )
    p_serve.add_argument("--session", default="default", help="name of the served session")
    p_serve.add_argument(
        "--pool-budget", default=None, metavar="BYTES",
        help="global pool byte budget with LRU eviction (e.g. 64M)",
    )
    p_serve.add_argument(
        "--spill-dir", default=None, metavar="DIR",
        help="persist pools here on eviction/shutdown and reattach on startup",
    )
    p_serve.add_argument(
        "--max-workers", type=int, default=8,
        help="thread pool size for concurrent query execution",
    )
    p_serve.add_argument(
        "--metrics-port", type=int, default=None, metavar="PORT",
        help="also serve Prometheus text exposition to HTTP GET /metrics "
        "on this port (0 picks a free one)",
    )
    p_serve.add_argument(
        "--session-quota", default=None, metavar="BYTES",
        help="byte quota for the served session inside the pool budget "
        "(e.g. 400K, 16M): over-quota usage evicts the session's own "
        "pools first, and queries predicted to blow the quota are "
        "rejected with a structured over_budget error",
    )
    p_serve.set_defaults(fn=_cmd_serve)

    p_sweep = sub.add_parser("sweep", help="influence-vs-k curve from one amortized run")
    p_sweep.add_argument("--dataset", default="nethept", choices=list(DATASETS))
    p_sweep.add_argument("--scale", type=float, default=1.0)
    p_sweep.add_argument("--model", default="LT", choices=["LT", "IC"])
    p_sweep.add_argument("--epsilon", type=float, default=0.2)
    p_sweep.add_argument("--seed", type=int, default=7)
    p_sweep.add_argument("--k-values", type=int, nargs="+", default=[1, 5, 10, 20, 50])
    p_sweep.set_defaults(fn=_cmd_sweep)

    p_worker = sub.add_parser(
        "worker",
        help="join a network sampling fleet as one worker host",
        description=(
            "Connect to a '--backend network' coordinator, register under a "
            "heartbeat lease, fetch the content-addressed graph blob (cached "
            "by hash in --cache-dir across restarts), and serve RR-set "
            "batches until the coordinator closes the connection.  Workers "
            "are stateless: kill one at any time, start one late — the "
            "coordinator re-partitions over the live fleet and the merged "
            "stream is byte-identical either way."
        ),
    )
    p_worker.add_argument(
        "--connect", required=True, metavar="HOST:PORT",
        help="fleet coordinator address",
    )
    p_worker.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed graph blob cache (skips re-fetch on rejoin)",
    )
    p_worker.add_argument(
        "--label", default=None,
        help="host label shown in coordinator fault logs (default: hostname)",
    )
    p_worker.add_argument(
        "--retry", type=float, default=0.0, metavar="SECONDS",
        help="keep retrying the initial connection for this long, so workers "
        "may be launched before the coordinator is up",
    )
    p_worker.set_defaults(fn=_cmd_worker)

    p_tvm = sub.add_parser("tvm", help="targeted viral marketing experiment")
    p_tvm.add_argument("--topic", type=int, default=1, choices=[1, 2])
    p_tvm.add_argument("--scale", type=float, default=1.0)
    p_tvm.add_argument("--model", default="LT", choices=["LT", "IC"])
    p_tvm.add_argument("--epsilon", type=float, default=0.2)
    p_tvm.add_argument("--k-values", type=int, nargs="+", default=[5, 10, 20])
    p_tvm.set_defaults(fn=_cmd_tvm)

    p_lint = sub.add_parser(
        "lint",
        help="run the project invariant linter (reprolint)",
        description="Static analysis enforcing the contracts in "
        "docs/INVARIANTS.md: seed-purity, lock-discipline, "
        "provenance-stamp, resource-lifecycle.",
    )
    lint_cli.add_arguments(p_lint)
    p_lint.set_defaults(fn=_cmd_lint)

    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    hosts_spec = getattr(args, "hosts", None)
    if hosts_spec:
        try:
            set_network_defaults(**parse_hosts_spec(hosts_spec))
        except (ReproError, ValueError) as exc:
            print(f"error: bad --hosts spec: {exc}", file=sys.stderr)
            return 2
    return args.fn(args)


if __name__ == "__main__":
    sys.exit(main())
