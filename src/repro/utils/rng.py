"""Random number generator plumbing.

Every stochastic component in the library accepts either an integer seed, a
:class:`numpy.random.Generator`, or ``None`` (fresh entropy).  Centralizing
the coercion here keeps experiment scripts deterministic: a single seed at
the top fans out to independent child generators via
:func:`numpy.random.Generator.spawn`.
"""

from __future__ import annotations

import numpy as np

RngLike = "int | np.random.Generator | None"


def ensure_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Passing an existing generator returns it unchanged, so components can
    share a stream when the caller wants correlated sampling.

    >>> bool(ensure_rng(7).integers(0, 10) == ensure_rng(7).integers(0, 10))
    True
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int | np.random.Generator | None, count: int) -> list[np.random.Generator]:
    """Produce ``count`` statistically independent child generators.

    Children are derived with the SeedSequence spawning protocol, so two
    different children never share a stream even though they descend from
    the same root seed.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    root = ensure_rng(seed)
    return root.spawn(count)
