"""Argument validation helpers with library-specific error messages."""

from __future__ import annotations

import warnings

from repro.exceptions import ParameterError, RangeConditionWarning


def check_epsilon(epsilon: float, *, name: str = "epsilon") -> float:
    """Validate an approximation parameter ε ∈ (0, 1).

    The paper's range conditions additionally assume ε ≤ 1/4 for the sample
    *optimality* proofs (not for correctness); we warn rather than fail
    above that, matching the paper's remark that the constant is flexible.
    """
    if not isinstance(epsilon, (int, float)):
        raise ParameterError(f"{name} must be a number, got {type(epsilon).__name__}")
    if not 0 < epsilon < 1:
        raise ParameterError(f"{name} must be in (0, 1), got {epsilon}")
    if epsilon > 0.25:
        warnings.warn(
            f"{name}={epsilon} exceeds the paper's range condition (epsilon <= 1/4); "
            "the approximation guarantee still holds but sample-optimality proofs do not",
            RangeConditionWarning,
            stacklevel=3,
        )
    return float(epsilon)


def check_delta(delta: float, *, name: str = "delta") -> float:
    """Validate a failure probability δ ∈ (0, 1)."""
    if not isinstance(delta, (int, float)):
        raise ParameterError(f"{name} must be a number, got {type(delta).__name__}")
    if not 0 < delta < 1:
        raise ParameterError(f"{name} must be in (0, 1), got {delta}")
    return float(delta)


def check_k(k: int, n: int) -> int:
    """Validate a seed budget ``1 <= k <= n``."""
    if not isinstance(k, int) or isinstance(k, bool):
        raise ParameterError(f"k must be an int, got {type(k).__name__}")
    if not 1 <= k <= n:
        raise ParameterError(f"k must satisfy 1 <= k <= n={n}, got {k}")
    return k


def check_probability(p: float, *, name: str = "p") -> float:
    """Validate a probability in [0, 1]."""
    if not isinstance(p, (int, float)):
        raise ParameterError(f"{name} must be a number, got {type(p).__name__}")
    if not 0.0 <= p <= 1.0:
        raise ParameterError(f"{name} must be in [0, 1], got {p}")
    return float(p)


def check_positive_int(value: int, *, name: str) -> int:
    """Validate a strictly positive integer."""
    if not isinstance(value, int) or isinstance(value, bool):
        raise ParameterError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ParameterError(f"{name} must be positive, got {value}")
    return value
