"""Concentration-bound arithmetic shared by every sampling algorithm.

The paper (and its predecessors TIM/TIM+/IMM) is built on three numbers:

* ``upsilon(eps, delta)`` — the Υ function of Table 1,
  ``Υ(ε, δ) = (2 + 2ε/3) · ln(1/δ) / ε²``.  ``T ≥ Υ(ε, δ) / µ`` i.i.d.
  Bernoulli(µ) samples suffice for an upper-tail (ε, δ)-approximation
  (Corollary 1, Eq. 7).
* the lower-tail requirement ``(2 / ε²) · ln(1/δ) / µ`` (Eq. 8), and
* ``ln C(n, k)`` — the union-bound term over all size-k seed sets that
  inflates IMM/TIM thresholds (Eqs. 12–15).

All of them live here so that SSA, D-SSA, IMM, TIM, and the test-suite's
oracle computations agree on a single implementation.
"""

from __future__ import annotations

import math

from repro.exceptions import ParameterError


def upsilon(epsilon: float, delta: float) -> float:
    """The Υ(ε, δ) sample-count kernel from Table 1 of the paper.

    ``Υ(ε, δ) = (2 + 2ε/3) · ln(1/δ) · (1/ε²)``.

    ``T ≥ Υ(ε, δ)/µ`` samples make ``Pr[µ̂ > (1+ε)µ] ≤ δ`` (Eq. 7).

    >>> round(upsilon(0.1, 0.01), 1)
    951.7
    """
    if epsilon <= 0:
        raise ParameterError(f"epsilon must be positive, got {epsilon}")
    if not 0 < delta < 1:
        raise ParameterError(f"delta must be in (0, 1), got {delta}")
    return (2.0 + 2.0 * epsilon / 3.0) * math.log(1.0 / delta) / (epsilon * epsilon)


def chernoff_upper_tail_samples(epsilon: float, delta: float, mu: float) -> float:
    """Samples sufficient for ``Pr[µ̂ > (1+ε)µ] ≤ δ`` (Corollary 1, Eq. 7)."""
    if not 0 < mu <= 1:
        raise ParameterError(f"mu must be in (0, 1], got {mu}")
    return upsilon(epsilon, delta) / mu


def chernoff_lower_tail_samples(epsilon: float, delta: float, mu: float) -> float:
    """Samples sufficient for ``Pr[µ̂ < (1-ε)µ] ≤ δ`` (Corollary 1, Eq. 8)."""
    if epsilon <= 0:
        raise ParameterError(f"epsilon must be positive, got {epsilon}")
    if not 0 < delta < 1:
        raise ParameterError(f"delta must be in (0, 1), got {delta}")
    if not 0 < mu <= 1:
        raise ParameterError(f"mu must be in (0, 1], got {mu}")
    return 2.0 * math.log(1.0 / delta) / (epsilon * epsilon * mu)


def hoeffding_samples(epsilon: float, delta: float) -> float:
    """Two-sided additive-error Hoeffding sample count.

    ``T ≥ ln(2/δ)/(2ε²)`` gives ``Pr[|µ̂ - µ| > ε] ≤ δ`` for variables in
    [0, 1].  Used by the Monte Carlo spread estimator's accuracy knob.
    """
    if epsilon <= 0:
        raise ParameterError(f"epsilon must be positive, got {epsilon}")
    if not 0 < delta < 1:
        raise ParameterError(f"delta must be in (0, 1), got {delta}")
    return math.log(2.0 / delta) / (2.0 * epsilon * epsilon)


def binomial_coefficient_ln(n: int, k: int) -> float:
    """Natural log of the binomial coefficient C(n, k).

    Exact via ``lgamma``; this is the ``ln C(n,k)`` union-bound term in the
    IMM/TIM thresholds (Eqs. 12–15).  Returns ``-inf`` for impossible
    combinations so callers can treat them as probability-zero events.

    >>> round(binomial_coefficient_ln(10, 3), 6) == round(math.log(120), 6)
    True
    """
    if n < 0 or k < 0:
        raise ParameterError(f"n and k must be non-negative, got n={n} k={k}")
    if k > n:
        return float("-inf")
    return math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)


def log2_ceil(x: float) -> int:
    """``ceil(log2(x))`` for positive x, exact for powers of two.

    Used for the iteration caps ``i_max``/``t_max`` in SSA and D-SSA.
    """
    if x <= 0:
        raise ParameterError(f"x must be positive, got {x}")
    return max(0, math.ceil(math.log2(x)))


def harmonic_mean(values: list[float]) -> float:
    """Harmonic mean, used in report aggregation of speedup ratios."""
    if not values:
        raise ParameterError("harmonic_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ParameterError("harmonic_mean requires positive values")
    return len(values) / sum(1.0 / v for v in values)


def relative_error(estimate: float, truth: float) -> float:
    """``|estimate - truth| / truth`` with a guard for zero truth."""
    if truth == 0:
        return float("inf") if estimate != 0 else 0.0
    return abs(estimate - truth) / abs(truth)
