"""Library logging configuration.

The library logs through the standard :mod:`logging` package under the
``"repro"`` namespace and never configures the root logger, per library
best practice.  :func:`enable_verbose` is a convenience for scripts.
"""

from __future__ import annotations

import logging


def get_logger(name: str) -> logging.Logger:
    """Return a child of the ``repro`` logger for module ``name``."""
    if not name.startswith("repro"):
        name = f"repro.{name}"
    return logging.getLogger(name)


def enable_verbose(level: int = logging.INFO) -> None:
    """Attach a stderr handler to the library logger (idempotent)."""
    logger = logging.getLogger("repro")
    logger.setLevel(level)
    if not any(isinstance(h, logging.StreamHandler) for h in logger.handlers):
        handler = logging.StreamHandler()
        handler.setFormatter(logging.Formatter("%(asctime)s %(name)s %(levelname)s %(message)s"))
        logger.addHandler(handler)
