"""Plain-text table and chart rendering for experiment reports.

The benchmark harness prints the same rows/series the paper reports; these
helpers render them as aligned monospace tables and log-scale ASCII series
so results are readable straight from ``pytest`` output.
"""

from __future__ import annotations

import math
from collections.abc import Sequence


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
) -> str:
    """Render rows as an aligned monospace table.

    >>> out = format_table(["a", "b"], [[1, 22], [333, 4]])
    >>> out.splitlines()[0].rstrip()
    'a   | b'
    >>> out.splitlines()[2].rstrip()
    '1   | 22'
    """
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    lines = []
    if title:
        lines.append(title)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in cells[1:]:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(value: object) -> str:
    """Compact cell formatting: 4 significant digits for floats."""
    if isinstance(value, float):
        if value != value:  # NaN
            return "n/a"
        if value == 0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1e4 or magnitude < 1e-3:
            return f"{value:.3e}"
        return f"{value:.4g}"
    return str(value)


def format_series_chart(
    series: dict[str, list[tuple[float, float]]],
    *,
    title: str = "",
    width: int = 60,
    log_y: bool = True,
) -> str:
    """Render named (x, y) series as horizontal ASCII bars per x value.

    This mimics the paper's log-scale line plots well enough to eyeball
    orderings and crossovers in terminal output.
    """
    lines = [title] if title else []
    all_y = [y for pts in series.values() for _, y in pts if y > 0]
    if not all_y:
        return "\n".join(lines + ["(no data)"])
    lo, hi = min(all_y), max(all_y)

    def scale(y: float) -> int:
        if y <= 0:
            return 0
        if log_y:
            if hi == lo:
                return width
            return int(round(width * (math.log10(y) - math.log10(lo)) / max(1e-12, math.log10(hi) - math.log10(lo))))
        return int(round(width * (y - lo) / max(1e-12, hi - lo)))

    name_w = max(len(n) for n in series)
    for name, pts in series.items():
        lines.append(f"{name}:")
        for x, y in pts:
            bar = "#" * max(1, scale(y))
            lines.append(f"  {name.ljust(name_w)} x={_fmt(x):>8} |{bar} {_fmt(y)}")
    return "\n".join(lines)
