"""Shared utilities: RNG management, timing, math helpers, formatting."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.timer import Stopwatch, Timer
from repro.utils.mathstats import (
    binomial_coefficient_ln,
    chernoff_lower_tail_samples,
    chernoff_upper_tail_samples,
    hoeffding_samples,
    upsilon,
)
from repro.utils.tables import format_table
from repro.utils.validation import (
    check_epsilon,
    check_delta,
    check_k,
    check_probability,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "Stopwatch",
    "Timer",
    "upsilon",
    "binomial_coefficient_ln",
    "chernoff_upper_tail_samples",
    "chernoff_lower_tail_samples",
    "hoeffding_samples",
    "format_table",
    "check_epsilon",
    "check_delta",
    "check_k",
    "check_probability",
]
