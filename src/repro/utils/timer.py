"""Wall-clock timing helpers used by the experiment harness."""

from __future__ import annotations

import time
from dataclasses import dataclass, field


@dataclass
class Timer:
    """Context manager measuring elapsed wall-clock seconds.

    >>> with Timer() as t:
    ...     _ = sum(range(1000))
    >>> t.elapsed >= 0.0
    True
    """

    elapsed: float = 0.0
    _start: float = field(default=0.0, repr=False)

    def __enter__(self) -> "Timer":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.elapsed = time.perf_counter() - self._start


class Stopwatch:
    """Accumulating stopwatch with named laps.

    The experiment runner uses one stopwatch per algorithm run and records
    laps such as ``"sampling"`` and ``"selection"`` so reports can break a
    run's cost down by phase.
    """

    def __init__(self) -> None:
        self._laps: dict[str, float] = {}
        self._running: dict[str, float] = {}

    def start(self, name: str) -> None:
        """Begin (or resume) the lap called ``name``."""
        self._running[name] = time.perf_counter()

    def stop(self, name: str) -> float:
        """Stop lap ``name`` and return its accumulated total."""
        if name not in self._running:
            raise KeyError(f"lap {name!r} was never started")
        delta = time.perf_counter() - self._running.pop(name)
        self._laps[name] = self._laps.get(name, 0.0) + delta
        return self._laps[name]

    def lap(self, name: str) -> float:
        """Accumulated seconds for lap ``name`` (0.0 if never recorded)."""
        return self._laps.get(name, 0.0)

    @property
    def total(self) -> float:
        """Sum of all completed laps."""
        return sum(self._laps.values())

    def as_dict(self) -> dict[str, float]:
        """Snapshot of completed laps, for serializing into run records."""
        return dict(self._laps)
