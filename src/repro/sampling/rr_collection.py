"""A growable collection of RR sets with vectorized coverage queries.

``RRCollection`` is the ``R`` of the paper: SSA doubles it each iteration,
D-SSA slices it into a find half and a verify half.  Internally it keeps a
list of int32 arrays plus a lazily compiled flat CSR view (all entries
concatenated + offsets), so coverage counting and greedy max-coverage are
numpy-vectorized rather than per-set Python loops.

Concurrent serving reads the same data through :class:`RRSnapshot` — an
immutable prefix view produced by :meth:`RRCollection.snapshot`.  The
compiled buffers are append-only (never mutated below the compiled
length, replaced wholesale when they grow), so a snapshot taken while
holding the writer's lock stays valid forever: later appends write past
the snapshot's views or into fresh buffers the snapshot never sees.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence

import numpy as np

from repro.exceptions import SamplingError


class _CoverageReadOps:
    """Coverage queries shared by the growable collection and its snapshots.

    Implementations only need ``self.n`` plus ``flat_view(start, end)``
    returning ``(flat entries, local offsets)`` for a set range.
    """

    n: int

    def flat_view(
        self, start: int = 0, end: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        raise NotImplementedError

    def coverage(
        self, seeds: Sequence[int], *, start: int = 0, end: int | None = None
    ) -> int:
        """``Cov_R(S)``: number of sets in [start, end) intersecting S (Eq. 1)."""
        mask = self.coverage_mask(seeds, start=start, end=end)
        return int(mask.sum())

    def coverage_mask(
        self, seeds: Sequence[int], *, start: int = 0, end: int | None = None
    ) -> np.ndarray:
        """Boolean vector: does each set in the range intersect S?"""
        flat, offsets = self.flat_view(start, end)
        count = len(offsets) - 1
        if count == 0:
            return np.zeros(0, dtype=bool)
        seed_mask = np.zeros(self.n, dtype=bool)
        seed_arr = np.asarray(list(seeds), dtype=np.int64)
        if seed_arr.size and (seed_arr.min() < 0 or seed_arr.max() >= self.n):
            raise SamplingError("seed id out of range in coverage query")
        seed_mask[seed_arr] = True
        if flat.size == 0:
            return np.zeros(count, dtype=bool)
        hits = seed_mask[flat]
        # Per-set any(): reduceat over the offsets; empty sets (offset[i] ==
        # offset[i+1]) would misbehave with reduceat, so handle via maximum
        # over a padded cumulative-sum trick.
        cum = np.concatenate(([0], np.cumsum(hits)))
        per_set = cum[offsets[1:]] - cum[offsets[:-1]]
        return per_set > 0

    def node_frequencies(self, *, start: int = 0, end: int | None = None) -> np.ndarray:
        """How many sets of the range contain each node.

        RR sets store distinct nodes, so this equals the per-node coverage
        count used to seed greedy max-coverage.
        """
        flat, _ = self.flat_view(start, end)
        return np.bincount(flat, minlength=self.n).astype(np.int64)

    def estimate_influence(
        self,
        seeds: Sequence[int],
        scale: float,
        *,
        start: int = 0,
        end: int | None = None,
    ) -> float:
        """``Î(S) = Γ · Cov(S)/|R|`` over the given range (Lemma 1)."""
        end = len(self) if end is None else end
        count = end - start
        if count <= 0:
            raise SamplingError("cannot estimate influence from an empty range")
        return scale * self.coverage(seeds, start=start, end=end) / count

    def __len__(self) -> int:  # pragma: no cover - overridden everywhere
        raise NotImplementedError


class RRCollection(_CoverageReadOps):
    """Ordered collection of RR sets over nodes ``0..n-1``.

    ``stream_id`` optionally records which kernel stream the stored sets
    came from (see :mod:`repro.sampling.kernels`); it is provenance —
    snapshots inherit it, and pool/spill layers key on it so sets from
    different draw orders are never mixed in one collection.
    """

    def __init__(self, n: int, *, stream_id: str | None = None) -> None:
        if n <= 0:
            raise SamplingError(f"RRCollection needs a positive node count, got {n}")
        self.n = int(n)
        self.stream_id = stream_id
        self._sets: list[np.ndarray] = []
        self._total_entries = 0
        # Compiled flat view: geometrically grown append-only buffers, so
        # keeping the view current is amortized O(1) per entry even under
        # SSA/D-SSA's doubling loop (a full re-concatenation here used to
        # make the loop O(total²) in entries).
        self._flat_buf = np.zeros(0, dtype=np.int32)
        self._flat_len = 0
        self._offsets_buf = np.zeros(1, dtype=np.int64)
        self._compiled_upto = 0

    # ------------------------------------------------------------------
    # Growth
    # ------------------------------------------------------------------
    def append(self, rr_set: np.ndarray) -> None:
        """Add one RR set (int array of node ids)."""
        arr = np.asarray(rr_set, dtype=np.int32)
        self._sets.append(arr)
        self._total_entries += int(arr.size)

    def extend(self, rr_sets: Iterable[np.ndarray]) -> None:
        """Add many RR sets in order."""
        for rr in rr_sets:
            self.append(rr)

    def __len__(self) -> int:
        return len(self._sets)

    def __getitem__(self, index: int) -> np.ndarray:
        return self._sets[index]

    @property
    def total_entries(self) -> int:
        """Total node occurrences across all stored sets."""
        return self._total_entries

    @property
    def nbytes(self) -> int:
        """Retained RR-set bytes, O(1) (int32 entries; buffers excluded)."""
        return 4 * self._total_entries

    def memory_bytes(self, *, start: int = 0, end: int | None = None) -> int:
        """Retained bytes of RR-set storage (the paper's memory driver).

        ``start``/``end`` restrict the count to a set range, so a query
        served from a larger session pool can report the footprint of
        exactly the prefix it consumed (what a cold run would retain).
        """
        end = len(self._sets) if end is None else min(end, len(self._sets))
        return int(sum(arr.nbytes for arr in self._sets[start:end]))

    # ------------------------------------------------------------------
    # Flat compiled view
    # ------------------------------------------------------------------
    def _compile(self) -> tuple[np.ndarray, np.ndarray]:
        """(flat entries, set offsets) covering all current sets.

        Incremental: only sets appended since the last compile are copied
        into the flat buffer.  Buffers grow geometrically and are never
        mutated below ``_flat_len``, so previously returned views stay
        valid after further appends.
        """
        count = len(self._sets)
        if self._compiled_upto < count:
            new_sets = self._sets[self._compiled_upto :]
            added = sum(arr.size for arr in new_sets)
            need = self._flat_len + added
            if need > self._flat_buf.size:
                grown = np.empty(max(need, 2 * self._flat_buf.size, 1024), dtype=np.int32)
                grown[: self._flat_len] = self._flat_buf[: self._flat_len]
                self._flat_buf = grown
            if count + 1 > self._offsets_buf.size:
                grown = np.empty(max(count + 1, 2 * self._offsets_buf.size, 64), dtype=np.int64)
                grown[: self._compiled_upto + 1] = self._offsets_buf[: self._compiled_upto + 1]
                self._offsets_buf = grown
            cursor = self._flat_len
            for i, arr in enumerate(new_sets, start=self._compiled_upto):
                self._flat_buf[cursor : cursor + arr.size] = arr
                cursor += arr.size
                self._offsets_buf[i + 1] = cursor
            self._flat_len = cursor
            self._compiled_upto = count
        return self._flat_buf[: self._flat_len], self._offsets_buf[: count + 1]

    def flat_view(
        self, start: int = 0, end: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Flat entries and *local* offsets for the set range [start, end).

        Offsets are rebased so ``flat[offsets[i]:offsets[i+1]]`` is the
        i-th set of the range.
        """
        end = len(self._sets) if end is None else end
        if not 0 <= start <= end <= len(self._sets):
            raise SamplingError(f"invalid set range [{start}, {end}) of {len(self._sets)}")
        flat, offsets = self._compile()
        lo, hi = offsets[start], offsets[end]
        return flat[lo:hi], offsets[start : end + 1] - lo

    def truncate(self, keep: int) -> int:
        """Drop sets ``[keep, len)``, keeping the prefix ``[0, keep)``.

        Returns the number of sets dropped.  The compiled buffers are
        *replaced*, not rewound: snapshots handed out earlier keep their
        own (now orphaned) buffers, so truncation can never corrupt a
        reader — the caller only needs to serialize with writers, as for
        any append.
        """
        keep = int(keep)
        if not 0 <= keep <= len(self._sets):
            raise SamplingError(f"invalid truncation point {keep} of {len(self._sets)}")
        dropped = len(self._sets) - keep
        if dropped == 0:
            return 0
        del self._sets[keep:]
        self._total_entries = int(sum(arr.size for arr in self._sets))
        self._flat_buf = np.zeros(0, dtype=np.int32)
        self._flat_len = 0
        self._offsets_buf = np.zeros(1, dtype=np.int64)
        self._compiled_upto = 0
        return dropped

    def replace_many(self, updates: "dict[int, np.ndarray]") -> int:
        """Swap the stored sets at the given indices in place.

        The incremental-repair primitive (see :mod:`repro.dynamic`): after
        a graph mutation, the invalidated sets — and only those — are
        recomputed via seed-pure ``sample_at`` and written back here,
        leaving every other set untouched.  Returns the number of sets
        replaced.  Like :meth:`truncate`, the compiled buffers are
        replaced rather than patched, so snapshots handed out earlier
        keep their own (now orphaned) buffers and stay valid; the caller
        serializes with writers as for any append.
        """
        if not updates:
            return 0
        count = len(self._sets)
        for index in updates:
            if not 0 <= int(index) < count:
                raise SamplingError(
                    f"replace_many index {index} out of range [0, {count})"
                )
        for index, rr_set in updates.items():
            arr = np.asarray(rr_set, dtype=np.int32)
            self._total_entries += int(arr.size) - int(self._sets[int(index)].size)
            self._sets[int(index)] = arr
        self._flat_buf = np.zeros(0, dtype=np.int32)
        self._flat_len = 0
        self._offsets_buf = np.zeros(1, dtype=np.int64)
        self._compiled_upto = 0
        return len(updates)

    # ------------------------------------------------------------------
    # Snapshots
    # ------------------------------------------------------------------
    def snapshot(self, end: int | None = None) -> "RRSnapshot":
        """Immutable view of the prefix ``[0, end)`` (default: everything).

        The caller must hold whatever lock serializes appends while
        taking the snapshot (compilation mutates the internal buffers);
        the *returned* snapshot needs no lock — concurrent appends never
        touch the compiled region it references.
        """
        end = len(self._sets) if end is None else end
        if not 0 <= end <= len(self._sets):
            raise SamplingError(f"invalid snapshot prefix [0, {end}) of {len(self._sets)}")
        flat, offsets = self._compile()
        return RRSnapshot(
            self.n, flat[: int(offsets[end])], offsets[: end + 1],
            stream_id=self.stream_id,
        )


class RRSnapshot(_CoverageReadOps):
    """Immutable prefix view of an :class:`RRCollection`.

    Supports the full read API the algorithm bodies use (coverage
    queries, greedy max-coverage's ``flat_view``, ``memory_bytes``), so a
    query can run against a frozen prefix while the shared pool keeps
    growing under other queries' top-ups.
    """

    def __init__(
        self, n: int, flat: np.ndarray, offsets: np.ndarray,
        *, stream_id: str | None = None,
    ) -> None:
        self.n = int(n)
        self._flat = flat
        self._offsets = offsets
        self.stream_id = stream_id

    def __len__(self) -> int:
        return len(self._offsets) - 1

    def __getitem__(self, index: int) -> np.ndarray:
        count = len(self)
        if index < 0:
            index += count
        if not 0 <= index < count:
            raise IndexError(f"set index {index} out of range [0, {count})")
        return self._flat[self._offsets[index] : self._offsets[index + 1]]

    @property
    def total_entries(self) -> int:
        return int(self._offsets[-1]) if len(self._offsets) else 0

    @property
    def nbytes(self) -> int:
        return 4 * self.total_entries

    def memory_bytes(self, *, start: int = 0, end: int | None = None) -> int:
        end = len(self) if end is None else min(end, len(self))
        if not 0 <= start <= end:
            return 0
        return int(4 * (self._offsets[end] - self._offsets[start]))

    def flat_view(
        self, start: int = 0, end: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        end = len(self) if end is None else end
        if not 0 <= start <= end <= len(self):
            raise SamplingError(f"invalid set range [{start}, {end}) of {len(self)}")
        lo, hi = self._offsets[start], self._offsets[end]
        return self._flat[lo:hi], self._offsets[start : end + 1] - lo
