"""Parallel RR-set generation — the paper's distributed future work, real.

Section 1 notes the algorithms "are amenable to a distributed
implementation which is one of our future works": RR sets are i.i.d., so
W workers can sample independently and a coordinator can merge their
streams; every Stop-and-Stare guarantee only needs the merged stream to
be i.i.d. RR sets.

:class:`ShardedSampler` *is* that coordinator.  Stream set ``g`` is a
pure function of ``(seed, g)`` — its generator derives from the per-set
SeedSequence child ``g`` (:mod:`repro.sampling.seedstream`) and its root
is the first draw of that generator — so the coordinator's whole job is
to partition global indices round-robin across W workers and
re-interleave the results.  It hands the per-worker index batches to a
pluggable :class:`~repro.sampling.backends.base.ExecutionBackend`:

* ``serial`` — workers run sequentially in-process (default; the old
  simulated topology);
* ``thread`` — workers run on a persistent thread pool;
* ``process`` — workers are persistent OS processes that attach the CSR
  graph through shared memory and exchange only index/RR batches;
* ``network`` — workers are remote hosts over TCP that fetch the graph
  as a content-addressed blob and serve batches under heartbeat leases
  (hosts may join, crash, or expire mid-stream; the coordinator
  re-partitions over the live fleet and retries byte-identically).

Because workers hold no stream state, the merged stream is a pure
function of the **seed alone** — independent of the backend, of how
callers batch their demands, *and of the worker count*.  ``workers`` is
a throughput knob: :meth:`ShardedSampler.resize` grows or shrinks the
fleet mid-stream without changing a byte, and a pool sampled at W=4
continues at W=16.  That invariance is what lets a warm
:class:`~repro.engine.engine.InfluenceEngine` session reuse a cached RR
pool as the byte-exact prefix of any cold run.  :class:`ShardedSampler`
remains a drop-in :class:`~repro.sampling.base.RRSampler`, so
``ssa(...)`` / ``dssa(...)`` run on it unchanged; see
``tests/sampling/test_backends.py`` and
``tests/sampling/test_elastic.py`` for the equivalence and unbiasedness
checks.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.models import DiffusionModel
from repro.exceptions import SamplingError
from repro.graph.digraph import CSRGraph
from repro.sampling.backends import ExecutionBackend, WorkerSpec, make_backend
from repro.sampling.base import RRSampler, make_sampler
from repro.sampling.roots import UniformRoots, WeightedRoots


class ShardedSampler(RRSampler):
    """RR sampler that fans sampling out over W backend workers.

    Parameters
    ----------
    graph, model:
        As for :func:`repro.sampling.base.make_sampler`.
    workers:
        Initial worker count — pure throughput, resizable at runtime via
        :meth:`resize`; the stream is identical at every value.
    seed, roots:
        Stream seed (per-set SeedSequence children derive from it) and
        root distribution (shipped to workers — each set's root is drawn
        from the set's own generator, so WRIS shards exactly like RIS).
    backend:
        Backend name (``"serial"``, ``"thread"``, ``"process"``,
        ``"network"``) or a not-yet-started :class:`ExecutionBackend`
        instance.
    kernel:
        Reverse-sampling kernel (name or instance); every worker
        instantiates the same kernel, so the merged stream carries one
        ``stream_id``.
    """

    def __init__(
        self,
        graph: CSRGraph,
        model: "str | DiffusionModel",
        workers: int,
        seed=None,
        *,
        roots: "UniformRoots | WeightedRoots | None" = None,
        max_hops: int | None = None,
        backend: "str | ExecutionBackend | None" = None,
        kernel=None,
        graph_version: int = 0,
    ) -> None:
        if workers < 1:
            raise SamplingError(f"need at least one worker, got {workers}")
        super().__init__(
            graph, seed, roots=roots, max_hops=max_hops, kernel=kernel,
            graph_version=graph_version,
        )
        # Workers rebuild the kernel from its *name* (instances don't
        # cross process boundaries), so only registered kernels can
        # shard — an unregistered instance would be silently replaced by
        # whatever the registry holds under that name.
        from repro.sampling.kernels import make_kernel

        if make_kernel(self.kernel.name) is not self.kernel:
            raise SamplingError(
                f"kernel {self.kernel.name!r} is not the registered instance; "
                "sharded sampling rebuilds kernels by name in workers, so "
                "custom kernels must be registered in repro.sampling.kernels."
                "KERNELS first"
            )
        self.model = DiffusionModel.parse(model)
        self._workers = int(workers)
        self.backend = make_backend(backend)
        self.backend.start(
            WorkerSpec(
                graph=graph,
                model=self.model,
                entropy=self.seed_stream.entropy,
                spawn_key=self.seed_stream.spawn_key,
                workers=self._workers,
                roots=self.roots,
                max_hops=max_hops,
                kernel=self.kernel.name,
                graph_version=self.graph_version,
            )
        )
        self._loads = [0] * self._workers

    # ------------------------------------------------------------------
    # RRSampler interface
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Current worker count (a throughput knob; see :meth:`resize`)."""
        return self._workers

    def _reverse_sample(self, root: int) -> np.ndarray:  # pragma: no cover
        raise SamplingError(
            "ShardedSampler computes sets in workers; use sample()/"
            "sample_batch()/sample_at()"
        )

    def _sync_fleet(self) -> None:
        """Adopt the backend's live fleet size before partitioning.

        Local backends always report the nominal count, so this is a
        no-op for them.  A network fleet's membership can change between
        batches (hosts join and leave under their leases); seed-pure
        streams make that churn byte-invisible, so the coordinator simply
        re-partitions the next batch over whatever is alive.
        """
        live = self.backend.sync_fleet()
        if live != self._workers:
            self._workers = live
            self._loads = [0] * live

    def sample_at(self, index: int, root: int | None = None) -> np.ndarray:
        """Compute one stream set on a worker (round-robin by index)."""
        self._sync_fleet()
        shard = int(index) % self._workers
        index_batches = [np.zeros(0, dtype=np.int64) for _ in range(self._workers)]
        index_batches[shard] = np.asarray([index], dtype=np.int64)
        root_batches = None
        if root is not None:
            root_batches = [None] * self._workers
            root_batches[shard] = np.asarray([root], dtype=np.int64)
        result = self.backend.sample_shards(index_batches, root_batches)
        self._loads[shard] += 1
        return result[shard][0]

    def sample_block(self, indices, roots=None) -> list[np.ndarray]:
        """Compute an arbitrary index batch across the fleet.

        Routes index ``g`` to worker ``g mod W`` — the same round-robin
        convention as :meth:`sample_at`/:meth:`sample_batch` — and merges
        the shard results back into batch order.  Workers serve their
        shards through their own kernels' lockstep block path, so
        batch-composition invariance holds end to end: entry ``i`` equals
        ``sample_at(indices[i])`` byte for byte at any worker count.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return []
        self._sync_fleet()
        workers = self._workers
        shards = (indices % workers).astype(np.int64)
        index_batches = [indices[shards == w] for w in range(workers)]
        root_batches = None
        if roots is not None:
            roots = np.asarray(roots, dtype=np.int64)
            root_batches = [roots[shards == w] for w in range(workers)]
        shard_batches = self.backend.sample_shards(index_batches, root_batches)
        merged: list[np.ndarray | None] = [None] * int(indices.size)
        positions = np.arange(indices.size)
        for w, batch in enumerate(shard_batches):
            for pos, rr in zip(positions[shards == w], batch):
                merged[int(pos)] = rr
            self._loads[w] += len(batch)
        return merged

    def sample_batch(self, count: int) -> list[np.ndarray]:
        """Fan global indices out round-robin, merge back in index order.

        The batch covers global indices ``cursor .. cursor+count-1``;
        index ``g`` routes to worker ``g mod W``.  Every set is
        self-contained (its generator and root derive from ``g`` alone),
        so re-interleaving the shard results restores the stream order
        exactly and the merged stream is the same for any batching, any
        backend, and any worker count — including a :meth:`resize`
        between batches.
        """
        if count <= 0:
            return []
        self._sync_fleet()
        base = self._cursor
        workers = self._workers
        indices = np.arange(base, base + count, dtype=np.int64)
        offsets = [(w - base) % workers for w in range(workers)]
        index_batches = [indices[offsets[w] :: workers] for w in range(workers)]
        shard_batches = self.backend.sample_shards(index_batches)
        merged: list[np.ndarray | None] = [None] * count
        for w, batch in enumerate(shard_batches):
            merged[offsets[w] :: workers] = batch
            self._loads[w] += len(batch)
        self._cursor = base + count
        self.sets_generated += count
        self.entries_generated += int(sum(rr.size for rr in merged))
        return merged

    # ------------------------------------------------------------------
    # Elastic fleet
    # ------------------------------------------------------------------
    def resize(self, workers: int) -> None:
        """Change the worker count mid-stream (byte-invisible).

        Seed-pure derivation makes the fleet size pure throughput: the
        next batch simply shards over the new count.  Per-worker load
        counters reset (they describe the current fleet).
        """
        workers = int(workers)
        if workers < 1:
            raise SamplingError(f"need at least one worker, got {workers}")
        if workers == self._workers:
            return
        self.backend.resize(workers)
        self._workers = workers
        self._loads = [0] * workers

    # ------------------------------------------------------------------
    # Diagnostics / lifecycle
    # ------------------------------------------------------------------
    def per_worker_load(self) -> list[int]:
        """RR sets generated by each current worker since the last resize
        (load-balance diagnostics)."""
        return list(self._loads)

    def close(self) -> None:
        """Shut the backend down (terminates process-backend workers)."""
        self.backend.close()

    def __enter__(self) -> "ShardedSampler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def make_parallel_sampler(
    graph: CSRGraph,
    model: "str | DiffusionModel",
    seed=None,
    *,
    roots: "UniformRoots | WeightedRoots | None" = None,
    max_hops: int | None = None,
    backend: "str | ExecutionBackend | None" = None,
    workers: int | None = None,
    kernel=None,
    graph_version: int = 0,
) -> RRSampler:
    """Factory: a plain sampler, or a sharded one when parallelism is asked.

    With no ``backend`` (or an explicitly serial one) and a single worker
    this returns exactly what :func:`make_sampler` would — same stream
    (seed-pure streams are worker-count invariant anyway), no coordinator
    layer.  ``workers=None`` means "pick for me" (1 when serial, the CPU
    count otherwise); explicit values below 1 are rejected.  Callers
    should ``close()`` the returned sampler when done (a no-op except
    for the process backend).
    """
    if workers is not None and workers < 1:
        raise SamplingError(f"workers must be >= 1, got {workers}")
    from repro.sampling.backends import SerialBackend, default_worker_count

    is_serial = (
        backend is None
        or (isinstance(backend, str) and backend.strip().lower() == SerialBackend.name)
        or isinstance(backend, SerialBackend)
    )
    if is_serial and (workers is None or workers == 1):
        return make_sampler(
            graph, model, seed, roots=roots, max_hops=max_hops, kernel=kernel,
            graph_version=graph_version,
        )
    if workers is None:
        workers = default_worker_count()
    return ShardedSampler(
        graph,
        model,
        workers,
        seed,
        roots=roots,
        max_hops=max_hops,
        backend=backend,
        kernel=kernel,
        graph_version=graph_version,
    )
