"""Parallel RR-set generation — the paper's distributed future work, real.

Section 1 notes the algorithms "are amenable to a distributed
implementation which is one of our future works": RR sets are i.i.d., so
W workers can sample independently and a coordinator can merge their
streams; every Stop-and-Stare guarantee only needs the merged stream to
be i.i.d. RR sets, which holds as long as worker RNG streams are
independent.

:class:`ShardedSampler` *is* that coordinator.  It draws every root from
its own stream, partitions them round-robin across W workers, and hands
the per-worker batches to a pluggable
:class:`~repro.sampling.backends.base.ExecutionBackend`:

* ``serial`` — workers run sequentially in-process (default; the old
  simulated topology);
* ``thread`` — workers run on a persistent thread pool;
* ``process`` — workers are persistent OS processes that attach the CSR
  graph through shared memory and exchange only root/RR batches.

Worker streams are spawned from the coordinator's seed via the
SeedSequence protocol (independence by construction), and shard
assignment follows the *global* RR-set index (set ``g`` always goes to
worker ``g mod W``), so the merged stream is a pure function of
``(seed, workers)`` — independent of the backend *and* of how callers
batch their demands.  That second invariance is what lets a warm
:class:`~repro.engine.engine.InfluenceEngine` session reuse a cached RR
pool as the byte-exact prefix of any cold run.  :class:`ShardedSampler`
remains a drop-in :class:`~repro.sampling.base.RRSampler`, so
``ssa(...)`` / ``dssa(...)`` run on it unchanged; see
``tests/sampling/test_backends.py`` for the equivalence and
unbiasedness checks.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.models import DiffusionModel
from repro.exceptions import SamplingError
from repro.graph.digraph import CSRGraph
from repro.sampling.backends import ExecutionBackend, WorkerSpec, make_backend
from repro.sampling.base import RRSampler, make_sampler
from repro.sampling.kernels import check_stream_id
from repro.sampling.roots import UniformRoots, WeightedRoots


class ShardedSampler(RRSampler):
    """RR sampler that fans sampling out over W backend workers.

    Parameters
    ----------
    graph, model:
        As for :func:`repro.sampling.base.make_sampler`.
    workers:
        Number of workers (independent RNG shards).
    seed, roots:
        Root seed (spawned into per-worker streams) and root distribution
        (owned by the coordinator — WRIS shards the same way RIS does).
    backend:
        Backend name (``"serial"``, ``"thread"``, ``"process"``) or a
        not-yet-started :class:`ExecutionBackend` instance.
    kernel:
        Reverse-sampling kernel (name or instance); every worker
        instantiates the same kernel, so the merged stream carries one
        ``stream_id``.
    """

    def __init__(
        self,
        graph: CSRGraph,
        model: "str | DiffusionModel",
        workers: int,
        seed: int | np.random.Generator | None = None,
        *,
        roots: "UniformRoots | WeightedRoots | None" = None,
        max_hops: int | None = None,
        backend: "str | ExecutionBackend | None" = None,
        kernel=None,
    ) -> None:
        if workers < 1:
            raise SamplingError(f"need at least one worker, got {workers}")
        super().__init__(graph, seed, roots=roots, max_hops=max_hops, kernel=kernel)
        # Workers rebuild the kernel from its *name* (instances don't
        # cross process boundaries), so only registered kernels can
        # shard — an unregistered instance would be silently replaced by
        # whatever the registry holds under that name.
        from repro.sampling.kernels import make_kernel

        if make_kernel(self.kernel.name) is not self.kernel:
            raise SamplingError(
                f"kernel {self.kernel.name!r} is not the registered instance; "
                "sharded sampling rebuilds kernels by name in workers, so "
                "custom kernels must be registered in repro.sampling.kernels."
                "KERNELS first"
            )
        self.model = DiffusionModel.parse(model)
        self.workers = int(workers)
        seed_seqs = list(self.rng.bit_generator.seed_seq.spawn(self.workers))
        self.backend = make_backend(backend)
        self.backend.start(
            WorkerSpec(
                graph=graph,
                model=self.model,
                seed_seqs=seed_seqs,
                max_hops=max_hops,
                kernel=self.kernel.name,
            )
        )
        # Global RR-set index: set g is always worker g mod W's next job,
        # so shard assignment (hence each worker's stream consumption) is
        # independent of how callers batch their demands.
        self._cursor = 0
        self._loads = [0] * self.workers

    # ------------------------------------------------------------------
    # RRSampler interface
    # ------------------------------------------------------------------
    def _reverse_sample(self, root: int) -> np.ndarray:
        # Single draws take the next global index; the root was already
        # drawn by the coordinator (the base-class sample()).
        shard = self._cursor % self.workers
        self._cursor += 1
        batches = [np.zeros(0, dtype=np.int64) for _ in range(self.workers)]
        batches[shard] = np.asarray([root], dtype=np.int64)
        result = self.backend.sample_shards(batches)
        self._loads[shard] += 1
        return result[shard][0]

    def sample_batch(self, count: int) -> list[np.ndarray]:
        """Draw ``count`` roots, fan out by global index, merge in order.

        The batch covers global indices ``cursor .. cursor+count-1``;
        index ``g`` routes to worker ``g mod W`` and workers receive
        their roots in ascending global order.  Re-interleaving the shard
        results restores the coordinator's draw order exactly, and a
        worker's stream consumption depends only on its global indices —
        so the merged stream is the same whether callers ask for one
        batch of ``a+b`` sets or two batches of ``a`` and ``b``.
        """
        if count <= 0:
            return []
        roots = self.roots.sample_many(self.rng, count)
        base = self._cursor
        offsets = [(w - base) % self.workers for w in range(self.workers)]
        root_batches = [roots[offsets[w] :: self.workers] for w in range(self.workers)]
        shard_batches = self.backend.sample_shards(root_batches)
        merged: list[np.ndarray | None] = [None] * count
        for w, batch in enumerate(shard_batches):
            merged[offsets[w] :: self.workers] = batch
            self._loads[w] += len(batch)
        self._cursor = base + count
        self.sets_generated += count
        self.entries_generated += int(sum(rr.size for rr in merged))
        return merged

    # ------------------------------------------------------------------
    # Stream-position capture (pool spill / reattach)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """Coordinator + worker stream positions, JSON-serializable.

        Workers' RNG states are fetched through the backend (an
        in-process read for serial/thread, a control round-trip for
        process workers), so a spilled pool can be reattached on *any*
        backend — worker streams are identified by index, not by where
        they happen to execute.
        """
        return {
            "kind": "sharded",
            "stream_id": self.stream_id,
            "workers": self.workers,
            "rng": self.rng.bit_generator.state,
            "cursor": int(self._cursor),
            "loads": [int(x) for x in self._loads],
            "worker_rngs": self.backend.worker_states(),
            "sets_generated": int(self.sets_generated),
            "entries_generated": int(self.entries_generated),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a position captured by :meth:`state_dict`."""
        if state.get("kind") != "sharded":
            raise SamplingError(
                f"cannot load {state.get('kind')!r} state into a sharded sampler"
            )
        if int(state["workers"]) != self.workers:
            raise SamplingError(
                f"state was captured with {state['workers']} workers, "
                f"this sampler has {self.workers}"
            )
        check_stream_id(state, self.stream_id)
        self.rng.bit_generator.state = state["rng"]
        self._cursor = int(state["cursor"])
        self._loads = [int(x) for x in state["loads"]]
        self.backend.restore_worker_states(state["worker_rngs"])
        self.sets_generated = int(state["sets_generated"])
        self.entries_generated = int(state["entries_generated"])

    # ------------------------------------------------------------------
    # Diagnostics / lifecycle
    # ------------------------------------------------------------------
    def per_worker_load(self) -> list[int]:
        """RR sets generated by each worker (load-balance diagnostics)."""
        return list(self._loads)

    def close(self) -> None:
        """Shut the backend down (terminates process-backend workers)."""
        self.backend.close()

    def __enter__(self) -> "ShardedSampler":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def make_parallel_sampler(
    graph: CSRGraph,
    model: "str | DiffusionModel",
    seed: int | np.random.Generator | None = None,
    *,
    roots: "UniformRoots | WeightedRoots | None" = None,
    max_hops: int | None = None,
    backend: "str | ExecutionBackend | None" = None,
    workers: int | None = None,
    kernel=None,
) -> RRSampler:
    """Factory: a plain sampler, or a sharded one when parallelism is asked.

    With no ``backend`` (or an explicitly serial one) and a single worker
    this returns exactly what :func:`make_sampler` would — same RNG
    stream, no coordinator layer — so algorithm results are unchanged
    unless parallel execution is actually requested.  ``workers=None``
    means "pick for me" (1 when serial, the CPU count otherwise);
    explicit values below 1 are rejected.  Callers should ``close()``
    the returned sampler when done (a no-op except for the process
    backend).
    """
    if workers is not None and workers < 1:
        raise SamplingError(f"workers must be >= 1, got {workers}")
    from repro.sampling.backends import SerialBackend, default_worker_count

    is_serial = (
        backend is None
        or (isinstance(backend, str) and backend.strip().lower() == SerialBackend.name)
        or isinstance(backend, SerialBackend)
    )
    if is_serial and (workers is None or workers == 1):
        return make_sampler(
            graph, model, seed, roots=roots, max_hops=max_hops, kernel=kernel
        )
    if workers is None:
        workers = default_worker_count()
    return ShardedSampler(
        graph,
        model,
        workers,
        seed,
        roots=roots,
        max_hops=max_hops,
        backend=backend,
        kernel=kernel,
    )
