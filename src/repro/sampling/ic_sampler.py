"""RR-set generation under the Independent Cascade model.

An IC RR set anchored at root v is the set of nodes with a *live* reverse
path to v, where each edge (u, w) is live independently with probability
w(u, w).  Equivalently: run a reverse BFS from v, flipping one coin per
incoming edge the first time its target is expanded (deferred-decision
principle — coins for edges never reached need not be flipped).

*How* that BFS executes — per-node coin batches (``scalar``) or one coin
batch for the whole frontier per step (``vectorized``) — is the
sampler's :mod:`~repro.sampling.kernels` kernel; the sampler itself only
owns the RNG, the generation-stamp array, and the lifetime counters.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.models import DiffusionModel
from repro.sampling.base import RRSampler


class ICSampler(RRSampler):
    """Reverse-BFS sampler producing IC RR sets."""

    model = DiffusionModel.IC

    def _reverse_sample(self, root: int) -> np.ndarray:
        return self.kernel.ic_sample(self, root)

    def _reverse_sample_block(self, indices, roots):
        return self.kernel.ic_sample_block(self, indices, roots)
