"""RR-set generation under the Independent Cascade model.

An IC RR set anchored at root v is the set of nodes with a *live* reverse
path to v, where each edge (u, w) is live independently with probability
w(u, w).  Equivalently: run a reverse BFS from v, flipping one coin per
incoming edge the first time its target is expanded (deferred-decision
principle — coins for edges never reached need not be flipped).
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.models import DiffusionModel
from repro.sampling.base import RRSampler


class ICSampler(RRSampler):
    """Reverse-BFS sampler producing IC RR sets."""

    model = DiffusionModel.IC

    def _reverse_sample(self, root: int) -> np.ndarray:
        graph = self.graph
        stamp = self._visited_stamp
        gen = self._next_generation()
        rng = self.rng

        stamp[root] = gen
        result = [root]
        frontier = [root]
        indptr = graph.in_indptr
        indices = graph.in_indices
        weights = graph.in_weights
        hops_left = self.max_hops if self.max_hops is not None else -1

        while frontier:
            if hops_left == 0:
                break
            hops_left -= 1
            next_frontier: list[int] = []
            for v in frontier:
                lo, hi = indptr[v], indptr[v + 1]
                if lo == hi:
                    continue
                coins = rng.random(hi - lo)
                live = indices[lo:hi][coins < weights[lo:hi]]
                for u in live.tolist():
                    if stamp[u] != gen:
                        stamp[u] = gen
                        result.append(u)
                        next_frontier.append(u)
            frontier = next_frontier
        return np.asarray(result, dtype=np.int32)
