"""Root (source) distributions for RR-set generation.

Plain RIS draws the RR-set source uniformly from V (Definition 2).  The
TVM extension (Section 7.3) uses **WRIS**: the source is drawn
proportionally to per-node benefit weights, which makes the coverage
estimator unbiased for the *weighted* influence objective.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.digraph import CSRGraph


class UniformRoots:
    """Uniform source distribution over all n nodes (plain RIS)."""

    def __init__(self, n: int) -> None:
        if n <= 0:
            raise SamplingError(f"cannot sample roots from an empty graph (n={n})")
        self.n = int(n)

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one root uniformly."""
        return int(rng.integers(self.n))

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` roots uniformly (vectorized)."""
        return rng.integers(self.n, size=count, dtype=np.int64)

    @property
    def total_benefit(self) -> float:
        """Normalizing constant Γ; for uniform roots this is n."""
        return float(self.n)


class WeightedRoots:
    """WRIS source distribution: P[root = v] ∝ benefit(v).

    ``benefits`` is a non-negative vector over nodes; zero-benefit nodes
    are never chosen as roots (they can still *appear inside* RR sets,
    since they may influence targeted nodes).
    """

    def __init__(self, benefits: np.ndarray) -> None:
        benefits = np.asarray(benefits, dtype=np.float64)
        if benefits.ndim != 1 or benefits.size == 0:
            raise SamplingError("benefits must be a non-empty 1-D vector")
        if np.any(benefits < 0) or not np.all(np.isfinite(benefits)):
            raise SamplingError("benefits must be finite and non-negative")
        total = float(benefits.sum())
        if total <= 0:
            raise SamplingError("benefits must have positive total mass")
        self.benefits = benefits
        self.n = int(benefits.size)
        self._cumulative = np.cumsum(benefits)
        self._total = total

    @classmethod
    def from_graph_targets(cls, graph: CSRGraph, benefits: np.ndarray) -> "WeightedRoots":
        """Validate the benefit vector against a graph's node count."""
        benefits = np.asarray(benefits, dtype=np.float64)
        if benefits.size != graph.n:
            raise SamplingError(
                f"benefit vector has {benefits.size} entries but graph has {graph.n} nodes"
            )
        return cls(benefits)

    def sample(self, rng: np.random.Generator) -> int:
        """Draw one root with probability proportional to its benefit."""
        r = rng.random() * self._total
        return int(np.searchsorted(self._cumulative, r, side="right"))

    def sample_many(self, rng: np.random.Generator, count: int) -> np.ndarray:
        """Draw ``count`` roots (vectorized inverse-CDF sampling)."""
        r = rng.random(count) * self._total
        return np.searchsorted(self._cumulative, r, side="right").astype(np.int64)

    @property
    def total_benefit(self) -> float:
        """Normalizing constant Γ = Σ_v benefit(v).

        The weighted coverage estimator scales by Γ instead of n.
        """
        return self._total
