"""Common RR-sampler interface.

A sampler owns a graph, a root distribution, and an RNG, and produces RR
sets — int32 numpy arrays of the nodes that can reach a random root in a
random sampled subgraph (Definition 2).  Samplers also keep lifetime
counters (sets generated, total entries) which the experiment harness uses
for the paper's "number of RR sets" and memory reports.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.diffusion.models import DiffusionModel
from repro.graph.digraph import CSRGraph
from repro.sampling.kernels import SamplingKernel, check_stream_id, make_kernel
from repro.sampling.roots import UniformRoots, WeightedRoots
from repro.utils.rng import ensure_rng


class RRSampler(abc.ABC):
    """Abstract generator of random Reverse Reachable sets."""

    model: DiffusionModel

    def __init__(
        self,
        graph: CSRGraph,
        seed: int | np.random.Generator | None = None,
        *,
        roots: "UniformRoots | WeightedRoots | None" = None,
        max_hops: int | None = None,
        kernel: "str | SamplingKernel | None" = None,
    ) -> None:
        if max_hops is not None and max_hops < 0:
            raise ValueError(f"max_hops must be non-negative, got {max_hops}")
        self.graph = graph
        self.rng = ensure_rng(seed)
        self.roots = roots if roots is not None else UniformRoots(graph.n)
        # The reverse-sampling kernel defines the RNG draw order, hence
        # the stream identity (see repro.sampling.kernels).
        self.kernel = make_kernel(kernel)
        # Horizon for time-critical IM: an RR set only reaches nodes within
        # max_hops reverse steps, mirroring a cascade truncated after
        # max_hops rounds.  None = unbounded (the paper's setting).
        self.max_hops = max_hops
        self.sets_generated = 0
        self.entries_generated = 0
        # Generation-stamped visited marks: O(1) reset between samples.
        self._visited_stamp = np.zeros(graph.n, dtype=np.int64)
        self._generation = 0
        # Reusable kernel scratch buffers (e.g. the vectorized kernel's
        # node-flag array), keyed by the kernel that owns them.
        self._scratch: dict = {}

    @property
    def stream_id(self) -> str:
        """Stream-compatibility token of this sampler's kernel.

        Two samplers of the same configuration produce interchangeable
        (byte-identical) streams iff their ``stream_id`` matches; pools,
        spill stamps, and restored states all key on it.
        """
        return self.kernel.stream_id

    @property
    def scale(self) -> float:
        """Estimator scale Γ: n for RIS, total benefit for WRIS.

        ``Î(S) = Γ · Cov(S) / |R|`` is the (weighted) influence estimate.
        """
        return self.roots.total_benefit

    @abc.abstractmethod
    def _reverse_sample(self, root: int) -> np.ndarray:
        """Produce the RR set anchored at ``root`` (includes the root)."""

    def sample(self, root: int | None = None) -> np.ndarray:
        """Generate one RR set; a uniform/weighted random root by default."""
        if root is None:
            root = self.roots.sample(self.rng)
        rr = self._reverse_sample(int(root))
        self.sets_generated += 1
        self.entries_generated += int(rr.size)
        return rr

    def sample_batch(self, count: int) -> list[np.ndarray]:
        """Generate ``count`` RR sets.

        Each set draws its root immediately before its reverse traversal,
        so the stream is a pure function of the RNG state and the *number*
        of sets drawn — never of how the draws are batched:
        ``sample_batch(a); sample_batch(b)`` equals ``sample_batch(a+b)``
        set for set.  Warm query sessions rely on this prefix property to
        treat a cached pool as the exact head of any cold run's stream.
        """
        if count <= 0:
            return []
        batch: list[np.ndarray] = []
        for _ in range(count):
            root = self.roots.sample(self.rng)
            batch.append(self._reverse_sample(int(root)))
        self.sets_generated += count
        self.entries_generated += int(sum(rr.size for rr in batch))
        return batch

    def _next_generation(self) -> int:
        """Advance the visited-stamp generation (O(1) mark reset)."""
        self._generation += 1
        return self._generation

    # ------------------------------------------------------------------
    # Stream-position capture (pool spill / reattach)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable stream position: RNG state + lifetime counters.

        Because the RR stream is a pure function of the RNG state and the
        number of sets drawn, restoring this dict into a freshly
        constructed sampler of the same configuration continues the
        stream exactly where this one stopped — the contract pool
        spilling relies on.
        """
        return {
            "kind": "plain",
            "stream_id": self.stream_id,
            "rng": self.rng.bit_generator.state,
            "sets_generated": int(self.sets_generated),
            "entries_generated": int(self.entries_generated),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a position captured by :meth:`state_dict`."""
        if state.get("kind") != "plain":
            raise ValueError(f"cannot load {state.get('kind')!r} state into a plain sampler")
        check_stream_id(state, self.stream_id)
        self.rng.bit_generator.state = state["rng"]
        self.sets_generated = int(state["sets_generated"])
        self.entries_generated = int(state["entries_generated"])

    def close(self) -> None:
        """Release execution resources; no-op for in-process samplers.

        Parallel samplers (:class:`repro.sampling.sharded.ShardedSampler`
        on the process backend) override this to tear down worker pools,
        so algorithm code can unconditionally ``close()`` in a finally.
        """


def make_sampler(
    graph: CSRGraph,
    model: "str | DiffusionModel",
    seed: int | np.random.Generator | None = None,
    *,
    roots: "UniformRoots | WeightedRoots | None" = None,
    max_hops: int | None = None,
    kernel: "str | SamplingKernel | None" = None,
) -> RRSampler:
    """Factory: the right sampler class for a diffusion model.

    >>> from repro.graph import cycle_graph, assign_weighted_cascade
    >>> s = make_sampler(assign_weighted_cascade(cycle_graph(4)), "LT", seed=0)
    >>> s.model.value
    'LT'
    """
    from repro.sampling.ic_sampler import ICSampler
    from repro.sampling.lt_sampler import LTSampler

    parsed = DiffusionModel.parse(model)
    cls = ICSampler if parsed is DiffusionModel.IC else LTSampler
    return cls(graph, seed, roots=roots, max_hops=max_hops, kernel=kernel)
