"""Common RR-sampler interface.

A sampler owns a graph, a root distribution, and a seed-pure stream
derivation, and produces RR sets — int32 numpy arrays of the nodes that
can reach a random root in a random sampled subgraph (Definition 2).
Samplers also keep lifetime counters (sets generated, total entries)
which the experiment harness uses for the paper's "number of RR sets"
and memory reports.

**The seed-pure stream contract.**  Set ``g`` of a stream draws its
root and runs its reverse traversal on a generator derived from the
per-set SeedSequence child ``g`` (see
:mod:`repro.sampling.seedstream`), so the stream is a pure function of
the seed alone — independent of batching, of the execution backend, of
the worker count, and of any resize in between.  A sampler's resumable
position is therefore a single integer (the next global index), which
is what :meth:`RRSampler.state_dict` captures.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.diffusion.models import DiffusionModel
from repro.exceptions import SamplingError
from repro.graph.digraph import CSRGraph
from repro.sampling.kernels import (
    AUTO_KERNEL,
    SamplingKernel,
    check_stream_id,
    make_kernel,
)
from repro.sampling.roots import UniformRoots, WeightedRoots
from repro.sampling.seedstream import SeedStream

#: scalar pilot sets "auto" draws to observe the workload's RR size.
AUTO_PILOT_SETS = 48

#: mean pilot RR size at/below which per-set dispatch overhead dominates
#: the cost model's per-set term and the lockstep batched kernel wins;
#: larger sets amortize dispatch inside one frontier-at-once set, where
#: the vectorized kernel's single-set gathers are already the fast path.
AUTO_SMALL_SET_MEAN = 32.0

#: mean pilot *coin volume* (in-degree sum over the set's nodes — the
#: coins one IC expansion of the set flips) above which the multi-lane
#: RNG replica's per-coin cost outweighs the dispatch it amortizes.
#: Small RR sets on hub-heavy graphs expand high in-degree nodes, so
#: set size alone under-counts the work; both statistics come from the
#: same pilot sets.
AUTO_LANE_COIN_MEAN = 256.0


class RRSampler(abc.ABC):
    """Abstract generator of random Reverse Reachable sets."""

    model: DiffusionModel

    def __init__(
        self,
        graph: CSRGraph,
        seed: "int | np.random.Generator | np.random.SeedSequence | None" = None,
        *,
        roots: "UniformRoots | WeightedRoots | None" = None,
        max_hops: int | None = None,
        kernel: "str | SamplingKernel | None" = None,
        graph_version: int = 0,
    ) -> None:
        if max_hops is not None and max_hops < 0:
            raise ValueError(f"max_hops must be non-negative, got {max_hops}")
        self.graph = graph
        # Mutation-lineage position of `graph` (0 = the pristine snapshot;
        # see repro.dynamic).  Captured states refuse to restore across a
        # version mismatch — a cursor only means "prefix of *this* graph's
        # stream".
        self.graph_version = int(graph_version)
        # The stream identity: per-set generators derive from this and a
        # global set index, nothing else.  A Generator seed contributes
        # only its SeedSequence (the stream is seed-pure, not
        # generator-state-dependent).
        self.seed_stream = SeedStream(seed)
        # Generator for *explicit* `_reverse_sample` calls outside the
        # indexed stream (reference tests, ad-hoc probing); indexed
        # sampling rebinds this to the per-set generator before each set.
        self.rng = np.random.default_rng(self.seed_stream.seed_sequence)
        self.roots = roots if roots is not None else UniformRoots(graph.n)
        # The reverse-sampling kernel defines the RNG draw order, hence
        # the stream identity (see repro.sampling.kernels).  "auto" is a
        # selection policy, resolved here — deterministically in (seed,
        # graph, model, roots, max_hops) — so the stream identity and
        # everything stamped with it carry the concrete kernel name.
        if isinstance(kernel, str) and kernel.strip().lower() == AUTO_KERNEL:
            kernel = resolve_kernel(
                kernel, graph=graph, model=self.model, seed=self.seed_stream,
                roots=self.roots, max_hops=max_hops,
            )
        self.kernel = make_kernel(kernel)
        # Horizon for time-critical IM: an RR set only reaches nodes within
        # max_hops reverse steps, mirroring a cascade truncated after
        # max_hops rounds.  None = unbounded (the paper's setting).
        self.max_hops = max_hops
        self._cursor = 0  # global index of the next auto-indexed set
        self.sets_generated = 0
        self.entries_generated = 0
        # Generation-stamped visited marks: O(1) reset between samples.
        self._visited_stamp = np.zeros(graph.n, dtype=np.int64)
        self._generation = 0
        # Reusable kernel scratch buffers (e.g. the vectorized kernel's
        # node-flag array), keyed by the kernel that owns them.
        self._scratch: dict = {}

    @property
    def stream_id(self) -> str:
        """Stream-compatibility token of this sampler's kernel.

        Two samplers of the same configuration produce interchangeable
        (byte-identical) streams iff their ``stream_id`` matches; pools,
        spill stamps, and restored states all key on it.
        """
        return self.kernel.stream_id

    @property
    def scale(self) -> float:
        """Estimator scale Γ: n for RIS, total benefit for WRIS.

        ``Î(S) = Γ · Cov(S) / |R|`` is the (weighted) influence estimate.
        """
        return self.roots.total_benefit

    @property
    def workers(self) -> int:
        """Worker-fleet size; 1 for in-process samplers.

        Purely a throughput property — the stream is identical at any
        value (see :meth:`resize`).
        """
        return 1

    @abc.abstractmethod
    def _reverse_sample(self, root: int) -> np.ndarray:
        """Produce the RR set anchored at ``root`` (includes the root)."""

    def _reverse_sample_block(self, indices: np.ndarray, roots) -> "list[np.ndarray]":
        """Model-specific batch dispatch; the default is the per-set
        reference loop (subclasses route to the kernel's block hook)."""
        if roots is None:
            return [self.sample_at(int(g)) for g in indices]
        return [
            self.sample_at(int(g)) if int(r) < 0 else self.sample_at(int(g), int(r))
            for g, r in zip(indices, roots)
        ]

    def sample_block(self, indices, roots=None) -> "list[np.ndarray]":
        """Compute an arbitrary batch of stream sets by global index.

        The batch counterpart of :meth:`sample_at` and the hook batched
        kernels accelerate: a kernel may serve the whole batch in
        lockstep, but set ``g``'s bytes are always exactly
        ``sample_at(g)``'s — batch composition is unobservable
        (batch-composition invariance, ``docs/INVARIANTS.md``).
        ``roots`` optionally pins roots positionally; a negative entry
        means "this set draws its own root" (the backends' wire
        convention).  Pure in ``(seed, indices, roots)`` — cursor and
        lifetime counters are untouched.
        """
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            return []
        return self._reverse_sample_block(indices, roots)

    def sample_at(self, index: int, root: int | None = None) -> np.ndarray:
        """Compute stream set ``index``: derive its generator, draw its
        root (unless given), run the reverse traversal.

        Pure in ``(seed, index)`` — it neither reads nor advances the
        sampler's own cursor, so any worker anywhere can compute any
        set.  Lifetime counters are the caller's business.
        """
        rng = self.seed_stream.rng_at(index)
        self.rng = rng
        if root is None:
            root = self.roots.sample(rng)
        return self._reverse_sample(int(root))

    def sample(self, root: int | None = None) -> np.ndarray:
        """Generate the next stream set; a uniform/weighted random root
        drawn from the set's own generator by default."""
        rr = self.sample_at(self._cursor, root)
        self._cursor += 1
        self.sets_generated += 1
        self.entries_generated += int(rr.size)
        return rr

    def sample_batch(self, count: int) -> list[np.ndarray]:
        """Generate ``count`` RR sets.

        Each set is a pure function of ``(seed, global index)``, so the
        stream never depends on how draws are batched:
        ``sample_batch(a); sample_batch(b)`` equals ``sample_batch(a+b)``
        set for set.  Warm query sessions rely on this prefix property to
        treat a cached pool as the exact head of any cold run's stream.
        """
        if count <= 0:
            return []
        base = self._cursor
        self.seed_stream.prepare(base, count)
        batch = self.sample_block(np.arange(base, base + count, dtype=np.int64))
        self._cursor = base + count
        self.sets_generated += count
        self.entries_generated += int(sum(rr.size for rr in batch))
        return batch

    def _next_generation(self) -> int:
        """Advance the visited-stamp generation (O(1) mark reset)."""
        self._generation += 1
        return self._generation

    # ------------------------------------------------------------------
    # Stream-position capture (pool spill / reattach / suffix truncation)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-serializable stream position.

        Seed-pure streams make this a single integer: the next global
        set index.  Restoring it into any sampler of the same stream —
        plain or sharded, any backend, any worker count — continues the
        stream exactly where this one stopped, which is the contract
        pool spilling and suffix truncation rely on.
        """
        return {
            "kind": "seedpure",
            "stream_id": self.stream_id,
            "graph_version": int(self.graph_version),
            "cursor": int(self._cursor),
            "sets_generated": int(self.sets_generated),
            "entries_generated": int(self.entries_generated),
        }

    def load_state_dict(self, state: dict) -> None:
        """Restore a position captured by :meth:`state_dict`."""
        kind = state.get("kind")
        if kind != "seedpure":
            raise SamplingError(
                f"cannot restore a {kind!r} stream position: states of that "
                "shape were captured by the legacy (seed, workers)-derived "
                "streams, which are not byte-compatible with seed-pure "
                "streams — legacy spills are read-only "
                "(see repro.service.store.PoolStore.load_file)"
            )
        check_stream_id(state, self.stream_id)
        # Pre-dynamic-graphs states carry no graph_version: they were
        # captured against a static snapshot, i.e. version 0.
        state_version = int(state.get("graph_version", 0))
        if state_version != self.graph_version:
            raise SamplingError(
                f"stream position was captured at graph_version "
                f"{state_version} but this sampler's graph is at version "
                f"{self.graph_version}: refusing to continue a stream "
                "across graph mutations (repair or resample instead)"
            )
        self.seek(int(state["cursor"]))
        self.sets_generated = int(state["sets_generated"])
        self.entries_generated = int(state["entries_generated"])

    def seek(self, index: int, *, entries: int | None = None) -> None:
        """Reposition the stream so the next set generated is ``index``.

        Per-set derivation makes any position directly addressable — no
        replay, no RNG state.  Used by pool suffix truncation (continue
        from ``keep`` after dropping sets ``[keep, len)``) and by state
        restores.  ``entries`` optionally resets the lifetime entry
        counter to match a truncated pool.
        """
        index = int(index)
        if index < 0:
            raise SamplingError(f"stream index must be non-negative, got {index}")
        self._cursor = index
        self.sets_generated = index
        if entries is not None:
            self.entries_generated = int(entries)

    def resize(self, workers: int) -> None:
        """Set the worker-fleet size (a pure throughput knob).

        In-process samplers have no fleet; only ``workers=1`` is a
        no-op here.  :class:`~repro.sampling.sharded.ShardedSampler`
        overrides this with a real backend resize, and
        :meth:`repro.engine.context.SamplingContext.resize` upgrades a
        plain sampler in place when a session asks for parallelism.
        """
        if int(workers) == 1:
            return
        raise SamplingError(
            "this sampler has no worker fleet; construct a ShardedSampler "
            "(any backend) for elastic workers — the stream is identical"
        )

    def close(self) -> None:
        """Release execution resources; no-op for in-process samplers.

        Parallel samplers (:class:`repro.sampling.sharded.ShardedSampler`
        on the process backend) override this to tear down worker pools,
        so algorithm code can unconditionally ``close()`` in a finally.
        """


def make_sampler(
    graph: CSRGraph,
    model: "str | DiffusionModel",
    seed: "int | np.random.Generator | np.random.SeedSequence | None" = None,
    *,
    roots: "UniformRoots | WeightedRoots | None" = None,
    max_hops: int | None = None,
    kernel: "str | SamplingKernel | None" = None,
    graph_version: int = 0,
) -> RRSampler:
    """Factory: the right sampler class for a diffusion model.

    >>> from repro.graph import cycle_graph, assign_weighted_cascade
    >>> s = make_sampler(assign_weighted_cascade(cycle_graph(4)), "LT", seed=0)
    >>> s.model.value
    'LT'
    """
    from repro.sampling.ic_sampler import ICSampler
    from repro.sampling.lt_sampler import LTSampler

    parsed = DiffusionModel.parse(model)
    cls = ICSampler if parsed is DiffusionModel.IC else LTSampler
    return cls(
        graph, seed, roots=roots, max_hops=max_hops, kernel=kernel,
        graph_version=graph_version,
    )


def resolve_kernel(
    kernel: "str | SamplingKernel | None",
    *,
    graph: "CSRGraph | None" = None,
    model: "str | DiffusionModel | None" = None,
    seed=None,
    roots: "UniformRoots | WeightedRoots | None" = None,
    max_hops: int | None = None,
    batch_width: int | None = None,
) -> SamplingKernel:
    """Resolve a kernel selection — including ``"auto"`` — to a kernel.

    Anything but ``"auto"`` passes through :func:`make_kernel` (so this
    is safe to call wherever a kernel name becomes provenance).
    ``"auto"`` picks the fastest known kernel for the workload:

    * **LT** always takes ``lt-batched`` — the walk is per-set
      sequential, so the lockstep batch kernel strictly dominates.
    * **IC** draws :data:`AUTO_PILOT_SETS` scalar pilot sets — a pure
      function of ``(seed, graph, roots, max_hops)``, byte-identical on
      every caller — and reads off two statistics: the mean RR size and
      the mean *coin volume* (in-degree sum over the set's nodes, the
      coins expanding the set flips).  Small sets
      (``<=`` :data:`AUTO_SMALL_SET_MEAN`, the weighted-cascade regime)
      with small coin volume (``<=`` :data:`AUTO_LANE_COIN_MEAN`) mean
      per-set dispatch dominates: take ``batched``, unless the
      lane engine cannot serve the workload (exotic root distribution,
      ``n >= 2**32``) or the caller's ``batch_width`` is below 2 —
      lockstep over one lane amortizes nothing — in which case plain
      ``scalar`` wins.  Large sets — or small sets that expand
      high-in-degree hubs, where the lane replica's per-coin cost
      outweighs the dispatch it saves — take ``vectorized``, whose
      frontier-at-once gathers already amortize dispatch within a set.

    The resolution is deterministic, so every worker, every restart,
    and every provenance record lands on the same concrete name —
    ``"auto"`` itself never becomes a ``stream_id``.
    """
    if not (isinstance(kernel, str) and kernel.strip().lower() == AUTO_KERNEL):
        return make_kernel(kernel)
    if graph is None or model is None:
        raise SamplingError(
            "kernel='auto' resolves against a workload: a graph and a "
            "diffusion model are required"
        )
    parsed = DiffusionModel.parse(model)
    if parsed is DiffusionModel.LT:
        return make_kernel("lt-batched")
    from repro.sampling.kernels import _lane_roots_supported

    pilot = make_sampler(
        graph, parsed, seed, roots=roots, max_hops=max_hops, kernel="scalar"
    )
    in_degree = np.diff(graph.in_indptr)
    entries = 0
    coins = 0
    for g in range(AUTO_PILOT_SETS):
        rr = pilot.sample_at(g)
        entries += int(rr.size)
        coins += int(in_degree[rr].sum())
    mean_size = entries / AUTO_PILOT_SETS
    mean_coins = coins / AUTO_PILOT_SETS
    if mean_size > AUTO_SMALL_SET_MEAN or mean_coins > AUTO_LANE_COIN_MEAN:
        return make_kernel("vectorized")
    lanes_usable = _lane_roots_supported(
        roots if roots is not None else UniformRoots(graph.n)
    ) and (batch_width is None or batch_width >= 2)
    return make_kernel("batched" if lanes_usable else "scalar")
