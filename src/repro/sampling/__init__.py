"""Reverse Influence Sampling (RIS): RR-set generators and collections."""

from repro.sampling.roots import UniformRoots, WeightedRoots
from repro.sampling.ic_sampler import ICSampler
from repro.sampling.lt_sampler import LTSampler
from repro.sampling.base import RRSampler, make_sampler
from repro.sampling.rr_collection import RRCollection
from repro.sampling.sharded import ShardedSampler, make_parallel_sampler
from repro.sampling.backends import (
    BACKENDS,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    make_backend,
)
from repro.sampling.kernels import (
    KERNELS,
    SamplingKernel,
    ScalarKernel,
    VectorizedKernel,
    list_kernels,
    make_kernel,
)
from repro.sampling.seedstream import SeedStream

__all__ = [
    "RRSampler",
    "make_sampler",
    "make_parallel_sampler",
    "ICSampler",
    "LTSampler",
    "ShardedSampler",
    "RRCollection",
    "UniformRoots",
    "WeightedRoots",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "BACKENDS",
    "make_backend",
    "SamplingKernel",
    "ScalarKernel",
    "VectorizedKernel",
    "KERNELS",
    "make_kernel",
    "list_kernels",
    "SeedStream",
]
