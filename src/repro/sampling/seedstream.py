"""Per-set SeedSequence derivation — the seed-pure RR stream identity.

The Stop-and-Stare guarantees are statements about one logical i.i.d.
RR-set stream.  Version 1 of this library tied that stream's identity to
``(seed, workers)``: worker RNG streams were spawned per worker, so
changing the worker count silently changed every sample, fragmented pool
reuse, and pinned the fleet size at construction.  Version 2 derives an
independent child :class:`numpy.random.SeedSequence` *per RR set*,
indexed by the set's global stream position::

    child(g) = SeedSequence(entropy, spawn_key=spawn_key + (g,))

Set ``g`` draws its root and runs its reverse traversal on a generator
seeded from ``child(g)`` and nothing else, so the merged stream is a
pure function of the seed alone:

* **worker count is a throughput knob** — any worker may compute any
  set; sharding, backend choice, and mid-stream resizes are
  byte-invisible;
* **stream position is one integer** — a sampler's resumable state is
  just the next global index (no RNG state blobs, no per-worker state
  capture), which makes spills, reattaches, and pool suffix truncation
  trivially exact;
* **independence is by construction** — the SeedSequence spawning
  protocol guarantees non-overlapping child streams, the same property
  the per-worker spawning relied on, now at set granularity.

Deriving a child SeedSequence + PCG64 generator through the numpy API
costs ~12µs per set, which is comparable to sampling a small RR set.
:class:`SeedStream` therefore computes child seed material in vectorized
blocks — an exact clone of numpy's SeedSequence hashmix over an index
vector — and reuses one bit-generator object, re-seeded per set, which
cuts the overhead to ~2µs/set.  The fast path is self-verified against
``numpy.random.SeedSequence`` at construction (and pinned by
``tests/sampling/test_seedstream.py``); if it ever disagrees — an
exotic platform, a changed numpy — the stream falls back to the
reference derivation, never to a different stream.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SamplingError

# ----------------------------------------------------------------------
# numpy SeedSequence hashmix constants (stable public algorithm; their
# values are part of numpy's stream-compatibility guarantee).
# ----------------------------------------------------------------------
_XSHIFT = np.uint32(16)
_INIT_A = np.uint32(0x43B0D7E5)
_MULT_A = np.uint32(0x931E8875)
_INIT_B = np.uint32(0x8B51F9DD)
_MULT_B = np.uint32(0x58F38DED)
_MIX_MULT_L = np.uint32(0xCA01F9DD)
_MIX_MULT_R = np.uint32(0x4973F715)
_POOL_SIZE = 4

#: PCG64's 128-bit LCG multiplier (pcg_setseq_128_srandom replication).
_PCG_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_MASK_128 = (1 << 128) - 1

#: per-set indices are one uint32 spawn-key word; 4e9 sets per stream.
MAX_STREAM_INDEX = 1 << 32

#: block size for vectorized child-seed precomputation.
_CHUNK = 4096


def _uint32_words(value: int) -> "list[int]":
    """An int as little-endian uint32 words (numpy's coercion, verbatim)."""
    if value < 0:
        raise SamplingError(f"seed entropy must be non-negative, got {value}")
    if value == 0:
        return [0]
    words = []
    while value > 0:
        words.append(value & 0xFFFFFFFF)
        value >>= 32
    return words


def _assembled_prefix_words(entropy: int, spawn_key: tuple) -> "list[int]":
    """The uint32 words a child SeedSequence hashes before its index word.

    Mirrors ``SeedSequence._get_assembled_entropy``: entropy words are
    zero-padded to the pool size whenever a spawn key is present (child
    sequences always have one — ours end with the set index), then the
    spawn-key words follow.
    """
    words = _uint32_words(int(entropy))
    if len(words) < _POOL_SIZE:
        words = words + [0] * (_POOL_SIZE - len(words))
    for key in spawn_key:
        words.extend(_uint32_words(int(key)))
    return words


def _children_seed_words(prefix_words: "list[int]", indices: np.ndarray) -> np.ndarray:
    """PCG64 seed material for a vector of child SeedSequences.

    For each index ``g`` this computes exactly
    ``SeedSequence(entropy, spawn_key + (g,)).generate_state(4, uint64)``
    — the four words PCG64 seeds from — but vectorized over ``g``: the
    hashmix constants evolve identically for every child, so the whole
    pool mix runs as uint32 array arithmetic.  Returns ``(n, 4)`` uint64.
    """
    g = np.asarray(indices, dtype=np.uint32)
    n = g.size
    with np.errstate(over="ignore"):
        hash_const = np.full(n, _INIT_A, dtype=np.uint32)

        def _hash(value: np.ndarray) -> np.ndarray:
            nonlocal hash_const
            value = value ^ hash_const
            hash_const = hash_const * _MULT_A
            value = value * hash_const
            return value ^ (value >> _XSHIFT)

        def _mix(x: np.ndarray, y: np.ndarray) -> np.ndarray:
            result = x * _MIX_MULT_L - y * _MIX_MULT_R
            return result ^ (result >> _XSHIFT)

        words = [np.full(n, np.uint32(w), dtype=np.uint32) for w in prefix_words]
        words.append(g)
        pool = np.zeros((n, _POOL_SIZE), dtype=np.uint32)
        for i in range(_POOL_SIZE):
            source = words[i] if i < len(words) else np.zeros(n, dtype=np.uint32)
            pool[:, i] = _hash(source)
        for i_src in range(_POOL_SIZE):
            for i_dst in range(_POOL_SIZE):
                if i_src != i_dst:
                    pool[:, i_dst] = _mix(pool[:, i_dst], _hash(pool[:, i_src]))
        for i_src in range(_POOL_SIZE, len(words)):
            for i_dst in range(_POOL_SIZE):
                pool[:, i_dst] = _mix(pool[:, i_dst], _hash(words[i_src]))

        out = np.empty((n, 8), dtype=np.uint32)
        hash_const = np.full(n, _INIT_B, dtype=np.uint32)
        for i_dst in range(8):
            value = pool[:, i_dst % _POOL_SIZE] ^ hash_const
            hash_const = hash_const * _MULT_B
            value = value * hash_const
            out[:, i_dst] = value ^ (value >> _XSHIFT)
    words64 = np.ascontiguousarray(out).view(np.uint64)
    if not np.little_endian:  # pragma: no cover - matches numpy's handling
        words64 = words64.byteswap()
    return words64


def _pcg64_state(words: np.ndarray) -> "tuple[int, int]":
    """PCG64's post-seed internal ``(state, inc)`` from four seed words.

    Replicates ``pcg_setseq_128_srandom``: the bit generator does not
    store the seed words directly, it folds them through one LCG step.
    """
    initstate = (int(words[0]) << 64) | int(words[1])
    initseq = (int(words[2]) << 64) | int(words[3])
    inc = ((initseq << 1) | 1) & _MASK_128
    state = ((inc + initstate) * _PCG_MULT + inc) & _MASK_128
    return state, inc


def resolve_seed_sequence(seed) -> np.random.SeedSequence:
    """Coerce ``seed`` (int | Generator | SeedSequence | None) to the
    root SeedSequence that defines a stream's identity.

    A Generator contributes only its construction SeedSequence — the
    stream is a pure function of the seed derivation, never of how far
    a generator object happens to have been advanced.
    """
    if isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, np.random.Generator):
        seed_seq = getattr(seed.bit_generator, "seed_seq", None)
        if not isinstance(seed_seq, np.random.SeedSequence):
            raise SamplingError(
                "generator seeds must carry a numpy SeedSequence "
                "(use numpy.random.default_rng); seed-pure RR streams are "
                "derived per set from the SeedSequence spawning protocol"
            )
        return seed_seq
    return np.random.SeedSequence(seed)  # int or None (fresh entropy)


class SeedStream:
    """Random-access derivation of one generator per global set index.

    The stream identity is ``(entropy, spawn_key)`` of the root
    SeedSequence; :meth:`rng_at` positions a reused generator at the
    origin of child ``index``'s stream.  The returned generator is
    shared — callers must finish one set's draws before asking for the
    next index (exactly the sampler inner-loop discipline).
    """

    def __init__(self, seed=None) -> None:
        if isinstance(seed, SeedStream):
            root = seed.seed_sequence
        else:
            root = resolve_seed_sequence(seed)
        self.entropy = int(root.entropy)
        self.spawn_key = tuple(int(k) for k in root.spawn_key)
        self._prefix_words = _assembled_prefix_words(self.entropy, self.spawn_key)
        self._bit_generator = np.random.PCG64(0)
        self._shared = np.random.Generator(self._bit_generator)
        self._template = self._bit_generator.state
        self._block: np.ndarray | None = None
        self._block_start = 0
        # The fast path is an exact clone of numpy's derivation; verify
        # once against the reference and fall back rather than ever
        # producing a different stream.
        self._fast = bool(
            root.pool_size == _POOL_SIZE
            and np.array_equal(
                _children_seed_words(self._prefix_words, np.asarray([0, 1]))[1],
                self.child(1).generate_state(4, np.uint64),
            )
        )

    @property
    def seed_sequence(self) -> np.random.SeedSequence:
        """The root SeedSequence (reconstructs the stream identity)."""
        return np.random.SeedSequence(entropy=self.entropy, spawn_key=self.spawn_key)

    def child(self, index: int) -> np.random.SeedSequence:
        """Reference derivation: the child SeedSequence of set ``index``."""
        index = self._check_index(index)
        return np.random.SeedSequence(
            entropy=self.entropy, spawn_key=self.spawn_key + (index,)
        )

    def generator_at(self, index: int) -> np.random.Generator:
        """A *fresh* generator at child ``index``'s origin (reference path)."""
        return np.random.default_rng(self.child(index))

    def prepare(self, start: int, count: int) -> None:
        """Precompute child seed material for ``[start, start+count)``.

        One vectorized hash pass instead of ``count`` SeedSequence
        constructions; :meth:`rng_at` consumes the block and recomputes
        on a miss, so calling this is purely an optimization.
        """
        if not self._fast or count <= 0:
            return
        start = self._check_index(start)
        count = min(int(count), _CHUNK * 16, MAX_STREAM_INDEX - start)
        self._block = _children_seed_words(
            self._prefix_words, np.arange(start, start + count, dtype=np.uint64)
        )
        self._block_start = start

    def rng_at(self, index: int) -> np.random.Generator:
        """The shared generator, re-seeded to child ``index``'s origin."""
        index = self._check_index(index)
        if not self._fast:
            return self.generator_at(index)
        block = self._block
        if block is None or not self._block_start <= index < self._block_start + len(block):
            self.prepare(index, _CHUNK)
            block = self._block
        state, inc = _pcg64_state(block[index - self._block_start])
        template = self._template
        template["state"]["state"] = state
        template["state"]["inc"] = inc
        self._bit_generator.state = template
        return self._shared

    @staticmethod
    def _check_index(index: int) -> int:
        index = int(index)
        if not 0 <= index < MAX_STREAM_INDEX:
            raise SamplingError(
                f"stream index {index} outside [0, 2**32) — one stream holds "
                "at most 2**32 RR sets; start a new seed for more"
            )
        return index
