"""TCP network execution backend: a crash-proof multi-host sampling fleet.

This is ROADMAP item 1 — "one box, N cores" becomes "N boxes" — built on
the two invariants the earlier PRs established:

* **seed-pure streams** (PR 5): RR set ``g`` is a pure function of
  ``(seed, g)``, so any worker anywhere can compute any set and the
  merged stream has no memory of *which* host computed what;
* **content-addressed graphs** (:mod:`repro.graph.shm`): the graph is
  one hashed blob, so a host fetches it at most once and a rejoining
  host warm-starts from its disk cache.

Topology: the coordinator (this backend) listens on a TCP port; worker
hosts dial in (``repro worker --connect HOST:PORT``), register under a
**heartbeat lease**, fetch the graph blob by content hash if they do not
already cache it, and then serve global-index batches over
length-prefixed frames (:mod:`repro.sampling.backends.netproto`).

Fault tolerance falls out of statelessness:

* hosts may **join and leave mid-stream** — the coordinator simply
  re-partitions the next index batch over the live lease set, and the
  merged stream cannot tell the difference (byte-invisible churn);
* a crashed or lease-expired host's **in-flight indices are retried on
  survivors byte-identically**; the crash context (lease, label, pid,
  stderr tail for locally spawned hosts) lands in
  :attr:`~repro.sampling.backends.base.ExecutionBackend.fault_log`
  instead of raising, and :attr:`respawns` counts replacement workers;
* only a fleet with **no live hosts after a join grace period** — or a
  worker *reply* reporting an application error, which would recur on
  any host — surfaces a :class:`~repro.exceptions.SamplingError`.

By default the backend is **self-hosting**: ``start`` spawns
``spec.workers`` loopback ``repro worker`` subprocesses, so
``--backend network`` works with zero orchestration and exercises the
full TCP + blob-fetch + lease stack.  Pass ``spawn=0`` (CLI:
``--hosts HOST:PORT,min=K``) to instead listen for externally started
worker hosts.  The transport trusts its peers (pickle frames — see
:mod:`~repro.sampling.backends.netproto`); keep fleet ports inside one
security boundary.
"""

from __future__ import annotations

import os
import queue
import shutil
import socket
import subprocess
import sys
import tempfile
import threading
import time
from dataclasses import replace
from typing import Sequence

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.shm import pack_csr_graph, unpack_csr_graph, verify_blob
from repro.sampling.backends.base import (
    ExecutionBackend,
    WorkerSpec,
    build_worker_sampler,
    flatten_rr_batch,
    unflatten_rr_batch,
)
from repro.sampling.backends.netproto import (
    ConnectionClosed,
    load_cached_blob,
    parse_address,
    recv_frame,
    send_frame,
    store_cached_blob,
)

_STDERR_TAIL_BYTES = 2048
# Consecutive all-fault dispatch rounds tolerated before the accumulated
# crash context is raised (a crash *loop* must not retry forever).
_MAX_BARREN_ROUNDS = 3

#: Module-level defaults for :class:`NetworkBackend` construction.  The
#: CLI's ``--hosts`` flag rewrites these (via :func:`set_network_defaults`)
#: so every ``make_backend("network")`` in the process — engine pools,
#: benchmarks, services — picks up one fleet configuration without
#: threading constructor arguments through every layer.
_DEFAULTS: dict = {
    "listen": "127.0.0.1:0",
    "spawn": None,  # None = auto: spawn spec.workers loopback workers
    "min_hosts": None,  # None = spawn target when self-hosting, else 0
    "lease_ttl": 10.0,
    "cache_dir": None,  # None = per-backend temp dir for spawned workers
    "start_timeout": 60.0,
    "join_grace": 30.0,
}


def set_network_defaults(**overrides) -> dict:
    """Update the process-wide :class:`NetworkBackend` defaults.

    Returns the previous values of the overridden keys so callers (tests)
    can restore them.  Unknown keys are rejected loudly — a typo here
    would otherwise silently configure nothing.
    """
    unknown = set(overrides) - set(_DEFAULTS)
    if unknown:
        raise SamplingError(f"unknown network backend option(s): {sorted(unknown)}")
    previous = {key: _DEFAULTS[key] for key in overrides}
    _DEFAULTS.update(overrides)
    return previous


def parse_hosts_spec(spec: "str | None") -> dict:
    """Parse the CLI ``--hosts`` flag into :func:`set_network_defaults` kwargs.

    Comma-separated tokens, each one of:

    * an integer ``N`` — self-host: spawn N loopback ``repro worker``
      subprocesses (``--hosts 2``);
    * ``HOST:PORT`` — listen there for externally started workers
      (``--hosts 0.0.0.0:8700``), implying ``spawn=0``;
    * ``min=K`` — wait for K registered hosts before sampling starts;
    * ``ttl=SECONDS`` — heartbeat lease time-to-live;
    * ``cache=DIR`` — blob cache directory handed to spawned workers.
    """
    options: dict = {}
    if spec is None or not str(spec).strip():
        return options
    for token in str(spec).split(","):
        token = token.strip()
        if not token:
            continue
        if token.isdigit():
            options["spawn"] = int(token)
        elif token.startswith("min="):
            options["min_hosts"] = int(token[len("min="):])
        elif token.startswith("ttl="):
            options["lease_ttl"] = float(token[len("ttl="):])
        elif token.startswith("cache="):
            options["cache_dir"] = token[len("cache="):]
        else:
            host, port = parse_address(token)  # raises ValueError on junk
            options["listen"] = f"{host}:{port}"
            options.setdefault("spawn", 0)
    return options


class _HostLease:
    """One registered worker host: socket, lease clock, reply queue."""

    def __init__(self, lease_id: int, sock: socket.socket, peer: str) -> None:
        self.lease_id = lease_id
        self.sock = sock
        self.peer = peer
        self.label = "?"
        self.pid: "int | None" = None
        self.ready = False
        self.dead = False
        self.death_reason = ""
        self.last_beat = time.monotonic()
        self.batches_dispatched = 0
        self.replies: "queue.Queue[tuple]" = queue.Queue()
        self._send_lock = threading.Lock()
        self._death_lock = threading.Lock()

    def send(self, message: tuple) -> None:
        try:
            with self._send_lock:
                # The whole point of this lock is to hold it across the
                # socket write: frames from the dispatcher and the
                # heartbeat/abort paths must not interleave mid-frame.
                send_frame(self.sock, message)  # repro: allow[lock-discipline]
        except OSError as exc:
            raise ConnectionClosed(str(exc)) from exc

    def mark_dead(self, reason: str) -> bool:
        """Retire the lease exactly once; returns True on the first call."""
        with self._death_lock:
            if self.dead:
                return False
            self.dead = True
            self.death_reason = reason
        # shutdown() before close(): close alone does not send FIN while
        # the reader thread is blocked in recv on this socket (the
        # in-flight syscall keeps the kernel socket alive), which would
        # leave both the reader and the remote worker hanging forever.
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        try:
            self.sock.close()
        except OSError:
            pass
        self.replies.put(("gone", reason))
        return True

    def describe(self) -> str:
        return f"host {self.label!r} (lease {self.lease_id}, pid {self.pid}, {self.peer})"


class NetworkBackend(ExecutionBackend):
    """Coordinator for a TCP worker-host fleet under heartbeat leases."""

    name = "network"

    def __init__(
        self,
        *,
        listen: "str | None" = None,
        spawn: "int | None" = None,
        min_hosts: "int | None" = None,
        lease_ttl: "float | None" = None,
        cache_dir: "str | None" = None,
        start_timeout: "float | None" = None,
        join_grace: "float | None" = None,
    ) -> None:
        super().__init__()
        pick = lambda value, key: _DEFAULTS[key] if value is None else value  # noqa: E731
        self._listen_spec = pick(listen, "listen")
        self._spawn_cfg = pick(spawn, "spawn")
        self._min_hosts_cfg = pick(min_hosts, "min_hosts")
        self._lease_ttl = float(pick(lease_ttl, "lease_ttl"))
        self._cache_dir = pick(cache_dir, "cache_dir")
        self._start_timeout = float(pick(start_timeout, "start_timeout"))
        self._join_grace = float(pick(join_grace, "join_grace"))
        self._owns_cache_dir = False
        self._spawn_managed = True
        # Intended self-hosted fleet size.  Deliberately separate from
        # _spec.workers: sync_fleet shrinks the *partition width* to the
        # live host count after a death, but the fleet must still heal
        # back to the size it was asked for.
        self._fleet_target = 0
        self._lock = threading.RLock()
        self._cond = threading.Condition(self._lock)
        self._hosts: dict[int, _HostLease] = {}
        self._lease_seq = 0
        self._batch_seq = 0
        self._spawn_seq = 0
        self._spawn_procs: list[dict] = []
        self._listener_sock: "socket.socket | None" = None
        self._threads: list[threading.Thread] = []
        self._stopping = threading.Event()
        self._blob: "bytes | None" = None
        self._manifest = None
        self._wire_spec: "WorkerSpec | None" = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def address(self) -> "tuple[str, int]":
        """The coordinator's bound ``(host, port)`` (after ``start``)."""
        if self._listener_sock is None:
            raise SamplingError("network backend is not listening (start it first)")
        return self._listener_sock.getsockname()[:2]

    def _start(self, spec: WorkerSpec) -> None:
        self._blob, self._manifest = pack_csr_graph(
            spec.graph, graph_version=spec.graph_version
        )
        # The graph travels as the content-addressed blob, never pickled
        # inside the spec.
        self._wire_spec = replace(spec, graph=None)
        self._spawn_managed = self._spawn_cfg is None or self._spawn_cfg > 0
        spawn_target = spec.workers if self._spawn_cfg is None else int(self._spawn_cfg)
        self._fleet_target = spawn_target if self._spawn_managed else 0
        min_hosts = self._min_hosts_cfg
        if min_hosts is None:
            min_hosts = spawn_target if self._spawn_managed else 0
        if self._spawn_managed and self._cache_dir is None:
            self._cache_dir = tempfile.mkdtemp(prefix="rr-graph-cache-")
            self._owns_cache_dir = True
        try:
            host, port = parse_address(self._listen_spec)
        except ValueError as exc:
            raise SamplingError(str(exc)) from exc
        try:
            self._stopping.clear()
            listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            listener.bind((host, port))
            listener.listen(64)
            self._listener_sock = listener
            self._spawn_thread(self._accept_loop, "rr-net-accept")
            self._spawn_thread(self._reaper_loop, "rr-net-reaper")
            if self._spawn_managed:
                for _ in range(spawn_target):
                    self._spawn_local_worker()
            if min_hosts > 0:
                deadline = time.monotonic() + self._start_timeout
                with self._cond:
                    while len(self._ready_hosts_locked()) < min_hosts:
                        remaining = deadline - time.monotonic()
                        if remaining <= 0:
                            raise SamplingError(
                                f"network fleet startup timed out: "
                                f"{len(self._ready_hosts_locked())}/{min_hosts} "
                                f"host(s) registered on {self.address[0]}:"
                                f"{self.address[1]} within {self._start_timeout:.0f}s"
                                + self._fault_suffix()
                            )
                        self._cond.wait(min(0.1, remaining))
        except Exception:
            self._teardown()
            raise

    def _resize(self, workers: int) -> None:
        """Grow or shrink the fleet (self-hosted workers only).

        For an externally populated fleet, membership belongs to the
        hosts — resize is bookkeeping, and the dispatcher follows the
        live lease set regardless.
        """
        live = self.live_hosts()
        if self._spawn_managed:
            self._fleet_target = workers
        if workers > len(live):
            if self._spawn_managed:
                for _ in range(workers - len(live)):
                    self._spawn_local_worker()
            return
        for host in live[workers:]:
            self._retire_host(host, "retired by resize")

    def sync_fleet(self) -> int:
        """Adopt the live lease count as the nominal worker count."""
        if not self.started:
            raise SamplingError(f"{type(self).__name__} is not running (start it first)")
        with self._cond:
            live = len(self._ready_hosts_locked())
        if live > 0 and live != self._spec.workers:
            self._spec = replace(self._spec, workers=live)
        return self._spec.workers

    def _close(self) -> None:
        self._teardown()

    def _teardown(self) -> None:
        self._stopping.set()
        if self._listener_sock is not None:
            try:
                self._listener_sock.close()
            except OSError:
                pass
        with self._cond:
            hosts = list(self._hosts.values())
        for host in hosts:
            if not host.dead:
                try:
                    host.send(("close",))
                except ConnectionClosed:
                    pass
            host.mark_dead("backend closed")
        for entry in self._spawn_procs:
            proc = entry["proc"]
            try:
                proc.wait(timeout=5)
            except subprocess.TimeoutExpired:
                proc.kill()
                try:
                    proc.wait(timeout=5)
                except subprocess.TimeoutExpired:
                    pass
            self._remove_file(entry["stderr"])
        for thread in self._threads:
            thread.join(timeout=5)
        self._threads = []
        self._spawn_procs = []
        with self._cond:
            self._hosts.clear()
        self._listener_sock = None
        self._blob = None
        self._manifest = None
        if self._owns_cache_dir and self._cache_dir is not None:
            shutil.rmtree(self._cache_dir, ignore_errors=True)
            self._cache_dir = None
            self._owns_cache_dir = False

    def __del__(self) -> None:
        # Safety net for abandoned backends; normal paths call close().
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------
    # Fleet plumbing (threads)
    # ------------------------------------------------------------------
    def _spawn_thread(self, target, name: str) -> None:
        thread = threading.Thread(target=target, name=name, daemon=True)
        thread.start()
        self._threads.append(thread)

    def _accept_loop(self) -> None:
        while not self._stopping.is_set():
            try:
                sock, peer = self._listener_sock.accept()
            except OSError:
                return  # listener closed during teardown
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            threading.Thread(
                target=self._conn_loop,
                args=(sock, f"{peer[0]}:{peer[1]}"),
                name=f"rr-net-host-{peer[1]}",
                daemon=True,
            ).start()

    def _conn_loop(self, sock: socket.socket, peer: str) -> None:
        """Serve one worker host: handshake, blob fetch, replies, beats."""
        host: "_HostLease | None" = None
        try:
            hello = recv_frame(sock)
            if not (isinstance(hello, tuple) and hello and hello[0] == "hello"):
                sock.close()
                return
            with self._cond:
                self._lease_seq += 1
                host = _HostLease(self._lease_seq, sock, peer)
                info = hello[1] if len(hello) > 1 and isinstance(hello[1], dict) else {}
                host.label = str(info.get("label") or f"host-{self._lease_seq}")
                host.pid = info.get("pid")
                self._hosts[host.lease_id] = host
            host.send(
                (
                    "welcome",
                    {
                        "lease_id": host.lease_id,
                        "lease_ttl": self._lease_ttl,
                        "spec": self._wire_spec,
                        "manifest": self._manifest,
                    },
                )
            )
            while not self._stopping.is_set():
                message = recv_frame(sock)
                kind = message[0]
                if kind == "fetch":
                    host.send(("blob", self._blob))
                elif kind == "ready":
                    with self._cond:
                        host.ready = True
                        self._cond.notify_all()
                elif kind == "heartbeat":
                    host.last_beat = time.monotonic()
                elif kind in ("result", "error"):
                    host.replies.put(message)
                # anything else: ignore (forward-compatible)
        except (ConnectionClosed, OSError) as exc:
            if host is not None:
                self._retire_host(host, f"connection lost: {exc}")
            else:
                try:
                    sock.close()
                except OSError:
                    pass
        except Exception as exc:  # defensive: a handler bug must not hang a lease
            if host is not None:
                self._retire_host(host, f"coordinator-side fault: {exc!r}")

    def _reaper_loop(self) -> None:
        """Expire leases whose heartbeats stopped arriving."""
        interval = max(0.05, self._lease_ttl / 4)
        while not self._stopping.wait(interval):
            now = time.monotonic()
            with self._cond:
                expired = [
                    host
                    for host in self._hosts.values()
                    if not host.dead and now - host.last_beat > self._lease_ttl
                ]
            for host in expired:
                reason = (
                    f"lease expired: no heartbeat for "
                    f"{now - host.last_beat:.1f}s (ttl {self._lease_ttl:.1f}s)"
                )
                if host.ready:
                    self._record_fault(host, reason)
                self._retire_host(host, reason)

    def _retire_host(self, host: _HostLease, reason: str) -> None:
        if host.mark_dead(reason):
            with self._cond:
                self._cond.notify_all()

    # ------------------------------------------------------------------
    # Self-hosted loopback workers
    # ------------------------------------------------------------------
    def _spawn_local_worker(self) -> None:
        """Launch one loopback ``repro worker`` subprocess."""
        self._spawn_seq += 1
        label = f"local-{self._spawn_seq}"
        handle = tempfile.NamedTemporaryFile(
            prefix=f"rr-nethost-{label}-", suffix=".stderr", delete=False
        )
        handle.close()
        host, port = self.address
        command = [
            sys.executable,
            "-m",
            "repro",
            "worker",
            "--connect",
            f"{host}:{port}",
            "--label",
            label,
            "--retry",
            "30",
        ]
        if self._cache_dir is not None:
            command += ["--cache-dir", self._cache_dir]
        env = dict(os.environ)
        src_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))
        )
        env["PYTHONPATH"] = os.pathsep.join(
            part for part in (src_root, env.get("PYTHONPATH")) if part
        )
        with open(handle.name, "ab") as stderr_handle:
            proc = subprocess.Popen(
                command,
                stdout=subprocess.DEVNULL,
                stderr=stderr_handle,
                env=env,
            )
        self._spawn_procs.append({"proc": proc, "label": label, "stderr": handle.name})

    def _reap_spawned(self) -> None:
        """Replace dead self-hosted workers up to the nominal fleet size."""
        if not self._spawn_managed or self._stopping.is_set():
            return
        for entry in [e for e in self._spawn_procs if e["proc"].poll() is not None]:
            self._remove_file(entry["stderr"])
            self._spawn_procs.remove(entry)
        while len(self._spawn_procs) < self._fleet_target:
            self._spawn_local_worker()
            self.respawns += 1

    @staticmethod
    def _remove_file(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    def _stderr_tail_for(self, label: str) -> str:
        for entry in self._spawn_procs:
            if entry["label"] != label:
                continue
            try:
                with open(entry["stderr"], "rb") as handle:
                    handle.seek(0, os.SEEK_END)
                    size = handle.tell()
                    handle.seek(max(0, size - _STDERR_TAIL_BYTES))
                    return handle.read().decode("utf-8", errors="replace").strip()
            except OSError:
                return ""
        return ""

    # ------------------------------------------------------------------
    # Live-set queries and fault context
    # ------------------------------------------------------------------
    def _ready_hosts_locked(self) -> list[_HostLease]:
        return sorted(
            (h for h in self._hosts.values() if h.ready and not h.dead),
            key=lambda h: h.lease_id,
        )

    def live_hosts(self) -> list[_HostLease]:
        """Snapshot of ready, living hosts (lease order)."""
        with self._cond:
            return self._ready_hosts_locked()

    def hosts_info(self) -> list[dict]:
        """Diagnostics: one dict per ever-registered host."""
        with self._cond:
            return [
                {
                    "lease_id": h.lease_id,
                    "label": h.label,
                    "pid": h.pid,
                    "peer": h.peer,
                    "ready": h.ready,
                    "dead": h.dead,
                    "batches_dispatched": h.batches_dispatched,
                }
                for h in sorted(self._hosts.values(), key=lambda h: h.lease_id)
            ]

    def _record_fault(self, host: _HostLease, why: str) -> str:
        fault = f"{host.describe()} {why}; batches dispatched to it: {host.batches_dispatched}"
        tail = self._stderr_tail_for(host.label)
        if tail:
            fault += f"; stderr tail:\n{tail}"
        self.fault_log.append(fault)
        del self.fault_log[:-32]
        return fault

    def _fault_suffix(self) -> str:
        return ("; recent faults: " + " | ".join(self.fault_log[-3:])) if self.fault_log else ""

    def _await_ready_hosts(self) -> list[_HostLease]:
        """Block until at least one host is ready (or the grace expires)."""
        deadline = time.monotonic() + self._join_grace
        while True:
            # Reap outside the lock: replacing a dead self-hosted worker
            # forks a subprocess, far too slow to hold the fleet lock
            # across (reader/reaper threads would stall behind the fork).
            self._reap_spawned()
            with self._cond:
                hosts = self._ready_hosts_locked()
                if hosts:
                    return hosts
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise SamplingError(
                        "network fleet has no live worker hosts (waited "
                        f"{self._join_grace:.0f}s for a host to join)"
                        + self._fault_suffix()
                    )
                self._cond.wait(min(0.1, remaining))

    # ------------------------------------------------------------------
    # Test hooks (fault injection)
    # ------------------------------------------------------------------
    def inject_abort(self, index: int = 0, reason: str = "injected abort") -> None:
        """Ask the ``index``-th live host to die hard (crash tests)."""
        self.live_hosts()[index].send(("abort", reason))

    def pause_heartbeat(self, index: int = 0) -> None:
        """Silence the ``index``-th live host's heartbeats (lease-expiry tests)."""
        self.live_hosts()[index].send(("pause_heartbeat",))

    def add_local_worker(self) -> None:
        """Spawn one more loopback worker (mid-stream join tests / CLI)."""
        self._fleet_target += 1
        self._spawn_local_worker()

    def wait_for_hosts(self, count: int, timeout: float = 30.0) -> None:
        """Block until ``count`` hosts are registered and ready."""
        deadline = time.monotonic() + timeout
        while True:
            # As in _await_ready_hosts: subprocess respawn happens
            # outside the lock, readiness is re-checked under it.
            self._reap_spawned()
            with self._cond:
                ready = len(self._ready_hosts_locked())
                if ready >= count:
                    return
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise SamplingError(
                        f"waited {timeout:.0f}s but only "
                        f"{ready}/{count} host(s) joined"
                        + self._fault_suffix()
                    )
                self._cond.wait(min(0.1, remaining))

    # ------------------------------------------------------------------
    # Fan-out
    # ------------------------------------------------------------------
    def _sample_shards(
        self,
        index_batches: Sequence[np.ndarray],
        root_batches: "Sequence[np.ndarray | None] | None",
    ) -> list[list[np.ndarray]]:
        # Flatten the coordinator's nominal partition into one pending map
        # and re-partition it over the *live* lease set — possibly several
        # times, as hosts crash, expire, or join mid-call.  Seed purity
        # makes any assignment byte-equivalent, so retry is just
        # reassignment.  Roots are carried per-index (-1 = "draw from the
        # set's own generator") so mixed batches survive re-partitioning.
        pending: dict[int, int] = {}
        for w, batch in enumerate(index_batches):
            roots = None if root_batches is None else root_batches[w]
            for position, g in enumerate(batch):
                pinned = -1 if roots is None else int(roots[position])
                pending[int(g)] = pinned
        results_by_index: dict[int, np.ndarray] = {}

        barren_rounds = 0
        while pending:
            hosts = self._await_ready_hosts()
            chunks = [
                chunk
                for chunk in np.array_split(
                    np.asarray(sorted(pending), dtype=np.int64), len(hosts)
                )
                if len(chunk)
            ]
            engaged: list[tuple[_HostLease, int, np.ndarray]] = []
            app_errors: list[str] = []
            crashed = False
            for host, chunk in zip(hosts, chunks):
                roots = np.asarray([pending[int(g)] for g in chunk], dtype=np.int64)
                if (roots < 0).all():
                    roots = None
                self._batch_seq += 1
                seq = self._batch_seq
                try:
                    host.send(("sample", seq, chunk, roots))
                except ConnectionClosed as exc:
                    self._record_fault(host, f"is gone: {exc}")
                    self._retire_host(host, f"send failed: {exc}")
                    crashed = True
                    continue
                host.batches_dispatched += 1
                engaged.append((host, seq, chunk))
            completed = 0
            for host, seq, chunk in engaged:
                reply = host.replies.get()
                if reply[0] == "gone":
                    self._record_fault(host, f"died mid-batch: {reply[1]}")
                    crashed = True
                    continue
                if reply[0] == "error":
                    app_errors.append(f"{host.describe()} failed: {reply[2]}")
                    continue
                if reply[1] != seq:
                    # A lease never has two batches in flight, so a stale
                    # sequence number means protocol corruption, not lag.
                    self._record_fault(host, f"answered batch {reply[1]}, expected {seq}")
                    self._retire_host(host, "out-of-sequence reply")
                    crashed = True
                    continue
                for g, rr in zip(chunk, unflatten_rr_batch(reply[2], reply[3])):
                    results_by_index[int(g)] = rr
                    del pending[int(g)]
                completed += len(chunk)
            if app_errors:
                # Deterministic worker-side failures recur on any host; all
                # engaged replies were drained above, so raising is clean.
                raise SamplingError("; ".join(app_errors))
            if crashed:
                self._reap_spawned()
            barren_rounds = 0 if completed else barren_rounds + 1
            if pending and barren_rounds > _MAX_BARREN_ROUNDS:
                raise SamplingError(
                    "network fleet crash loop, retry budget exhausted"
                    + self._fault_suffix()
                )
        return [
            [results_by_index[int(g)] for g in batch] for batch in index_batches
        ]


# ----------------------------------------------------------------------
# Worker-host runtime (the `repro worker` subcommand)
# ----------------------------------------------------------------------
def _run_indexed_batch(sampler, indices: np.ndarray, roots: "np.ndarray | None"):
    """Batch sampling with optional pinned roots (-1 = unpinned).

    Routes through ``sample_block`` so worker hosts get the batched
    kernels' lockstep fast path; the -1 convention is the block API's
    own, and the bytes per set equal ``sample_at``'s regardless.
    """
    return sampler.sample_block(np.asarray(indices, dtype=np.int64), roots)


def run_worker(
    connect: str,
    *,
    cache_dir: "str | None" = None,
    label: "str | None" = None,
    retry_for: float = 0.0,
) -> int:
    """Join a sampling fleet as one worker host; returns an exit code.

    Dials the coordinator (retrying for ``retry_for`` seconds, so workers
    may be launched before the coordinator is up), registers under a
    heartbeat lease, fetches the graph blob unless ``cache_dir`` already
    holds its content hash, and then serves index batches until the
    coordinator closes the connection.  The worker holds **no stream
    state** — it is safe to kill at any time and to start late.
    """
    address = parse_address(connect)
    deadline = time.monotonic() + max(0.0, float(retry_for))
    while True:
        try:
            sock = socket.create_connection(address, timeout=10.0)
            break
        except OSError as exc:
            if time.monotonic() >= deadline:
                raise SamplingError(
                    f"cannot reach fleet coordinator at {address[0]}:{address[1]}: {exc}"
                ) from exc
            time.sleep(0.2)
    sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    sock.settimeout(None)
    send_lock = threading.Lock()
    stop_beats = threading.Event()
    pause_beats = threading.Event()

    def send(message: tuple) -> None:
        with send_lock:
            send_frame(sock, message)

    try:
        send(("hello", {"pid": os.getpid(), "label": label or socket.gethostname()}))
        welcome = recv_frame(sock)
        if not (isinstance(welcome, tuple) and welcome[0] == "welcome"):
            raise SamplingError(f"coordinator sent {welcome!r} instead of a welcome")
        details = welcome[1]
        spec: WorkerSpec = details["spec"]
        manifest = details["manifest"]
        lease_ttl = float(details["lease_ttl"])

        blob = load_cached_blob(cache_dir, manifest)
        if blob is None:
            send(("fetch",))
            reply = recv_frame(sock)
            if not (isinstance(reply, tuple) and reply[0] == "blob"):
                raise SamplingError(f"coordinator sent {reply!r} instead of the graph blob")
            blob = reply[1]
            verify_blob(manifest, blob)  # never sample over a corrupt fetch
            store_cached_blob(cache_dir, manifest, blob)
        graph = unpack_csr_graph(manifest, blob)
        sampler = build_worker_sampler(spec, graph=graph)

        def heartbeat_loop() -> None:
            interval = max(0.05, lease_ttl / 3.0)
            while not stop_beats.wait(interval):
                if pause_beats.is_set():
                    continue
                try:
                    send(("heartbeat",))
                except OSError:
                    return

        threading.Thread(target=heartbeat_loop, name="rr-worker-beat", daemon=True).start()
        send(("ready",))

        while True:
            try:
                message = recv_frame(sock)
            except ConnectionClosed:
                return 0  # coordinator gone: a stateless worker just leaves
            kind = message[0]
            if kind == "sample":
                _, seq, indices, roots = message
                try:
                    rr_sets = _run_indexed_batch(sampler, indices, roots)
                    send(("result", seq) + flatten_rr_batch(rr_sets))
                except Exception as exc:  # surface worker faults, keep serving
                    send(("error", seq, f"{type(exc).__name__}: {exc}"))
            elif kind == "abort":
                # Fault injection for crash tests: die hard, leaving only
                # stderr behind (no protocol goodbye) — like a real crash.
                print(message[1], file=sys.stderr, flush=True)
                os._exit(70)
            elif kind == "pause_heartbeat":
                pause_beats.set()  # fault injection for lease-expiry tests
            elif kind == "close":
                return 0
            # anything else: ignore (forward-compatible)
    finally:
        stop_beats.set()
        try:
            sock.close()
        except OSError:
            pass
