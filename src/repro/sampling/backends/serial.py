"""Serial execution backend — workers run one after another, in-process.

This is the default and the reference implementation.  Seed-pure streams
make workers stateless, so the "fleet" is a single plain sampler that
computes every shard's batch in worker order; resizing is free.  It
carries zero startup or transport cost, so it is also what
single-worker :class:`~repro.sampling.sharded.ShardedSampler` instances
and small graphs should use.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sampling.backends.base import (
    ExecutionBackend,
    WorkerSpec,
    build_worker_sampler,
    run_worker_batch,
)


class SerialBackend(ExecutionBackend):
    """Run every worker's batch sequentially on the calling thread."""

    name = "serial"

    def _start(self, spec: WorkerSpec) -> None:
        # One sampler serves every shard: workers hold no stream state,
        # so distinct sampler objects would be pure overhead here.
        self._sampler = build_worker_sampler(spec)

    def _resize(self, workers: int) -> None:
        pass  # fleet size is bookkeeping only; the sampler is shared

    def _sample_shards(
        self,
        index_batches: Sequence[np.ndarray],
        root_batches: "Sequence[np.ndarray | None] | None",
    ) -> list[list[np.ndarray]]:
        return [
            run_worker_batch(
                self._sampler,
                batch,
                None if root_batches is None else root_batches[w],
            )
            for w, batch in enumerate(index_batches)
        ]

    def _close(self) -> None:
        self._sampler = None
