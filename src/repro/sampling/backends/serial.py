"""Serial execution backend — workers run one after another, in-process.

This is the default and the reference implementation: the worker fleet
is a list of plain samplers iterated in worker order.  It carries zero
startup or transport cost, so it is also what single-worker
:class:`~repro.sampling.sharded.ShardedSampler` instances and small
graphs should use.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.sampling.backends.base import ExecutionBackend, WorkerSpec, build_worker_sampler


class SerialBackend(ExecutionBackend):
    """Run every worker's batch sequentially on the calling thread."""

    name = "serial"

    def _start(self, spec: WorkerSpec) -> None:
        self._samplers = [build_worker_sampler(spec, w) for w in range(spec.workers)]

    def _sample_shards(self, root_batches: Sequence[np.ndarray]) -> list[list[np.ndarray]]:
        return [
            [sampler._reverse_sample(int(root)) for root in batch]
            for sampler, batch in zip(self._samplers, root_batches)
        ]

    def _worker_states(self) -> list:
        return [sampler.rng.bit_generator.state for sampler in self._samplers]

    def _restore_worker_states(self, states: list) -> None:
        for sampler, state in zip(self._samplers, states):
            sampler.rng.bit_generator.state = state

    def _close(self) -> None:
        self._samplers = []
