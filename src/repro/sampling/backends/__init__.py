"""Pluggable execution backends for parallel RR-set sampling.

``serial`` (default), ``thread``, ``process``, and ``network`` all
implement the :class:`ExecutionBackend` contract; see
:mod:`repro.sampling.backends.base` for the coordinator/worker protocol
and the determinism guarantee (backend choice never changes the sampled
RR stream).
"""

from __future__ import annotations

from repro.exceptions import SamplingError
from repro.sampling.backends.base import ExecutionBackend, WorkerSpec
from repro.sampling.backends.network import (
    NetworkBackend,
    parse_hosts_spec,
    run_worker,
    set_network_defaults,
)
from repro.sampling.backends.process import ProcessBackend, default_worker_count
from repro.sampling.backends.serial import SerialBackend
from repro.sampling.backends.thread import ThreadBackend

#: registry keyed by CLI / API name.
BACKENDS: dict[str, type[ExecutionBackend]] = {
    SerialBackend.name: SerialBackend,
    ThreadBackend.name: ThreadBackend,
    ProcessBackend.name: ProcessBackend,
    NetworkBackend.name: NetworkBackend,
}


def make_backend(backend: "str | ExecutionBackend | None") -> ExecutionBackend:
    """Coerce a backend name (or pass through an instance) to a backend.

    ``None`` means the default (:class:`SerialBackend`).
    """
    if backend is None:
        return SerialBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    key = str(backend).strip().lower()
    if key not in BACKENDS:
        raise SamplingError(
            f"unknown execution backend {backend!r}; known: {sorted(BACKENDS)}"
        )
    return BACKENDS[key]()


__all__ = [
    "ExecutionBackend",
    "WorkerSpec",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "NetworkBackend",
    "BACKENDS",
    "make_backend",
    "default_worker_count",
    "parse_hosts_spec",
    "run_worker",
    "set_network_defaults",
]
