"""Thread-pool execution backend.

One long-lived :class:`~concurrent.futures.ThreadPoolExecutor` runs each
worker's batch as a task.  Each worker's sampler object is only ever
touched by the one task holding its batch, so results are byte-identical
to :class:`~repro.sampling.backends.serial.SerialBackend` — threads change
*when* a shard is computed, never *what* it computes.

CPython's GIL limits the speedup to the fraction of sampling spent in
GIL-releasing numpy kernels, but the backend exercises the exact fan-out
/ merge topology of the process backend with none of its transport cost,
which makes it the right default for moderate graphs and the reference
for equivalence tests.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

import numpy as np

from repro.sampling.backends.base import ExecutionBackend, WorkerSpec, build_worker_sampler


class ThreadBackend(ExecutionBackend):
    """Run worker batches concurrently on a persistent thread pool."""

    name = "thread"

    def __init__(self) -> None:
        super().__init__()
        self._pool: ThreadPoolExecutor | None = None
        self._samplers: list = []

    def _start(self, spec: WorkerSpec) -> None:
        self._samplers = [build_worker_sampler(spec, w) for w in range(spec.workers)]
        self._pool = ThreadPoolExecutor(
            max_workers=spec.workers, thread_name_prefix="rr-worker"
        )

    @staticmethod
    def _run_shard(sampler, batch: np.ndarray) -> list[np.ndarray]:
        return [sampler._reverse_sample(int(root)) for root in batch]

    def _sample_shards(self, root_batches: Sequence[np.ndarray]) -> list[list[np.ndarray]]:
        futures = [
            self._pool.submit(self._run_shard, sampler, batch)
            for sampler, batch in zip(self._samplers, root_batches)
        ]
        return [future.result() for future in futures]

    def _worker_states(self) -> list:
        # Safe without pool involvement: states are only captured/restored
        # while no fan-out is in flight (the coordinator is idle).
        return [sampler.rng.bit_generator.state for sampler in self._samplers]

    def _restore_worker_states(self, states: list) -> None:
        for sampler, state in zip(self._samplers, states):
            sampler.rng.bit_generator.state = state

    def _close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._samplers = []
