"""Thread-pool execution backend.

One long-lived :class:`~concurrent.futures.ThreadPoolExecutor` runs each
worker's batch as a task.  Each worker owns a private sampler object
(scratch buffers and generator state must not be shared across
concurrent tasks), but samplers carry no stream state — every per-set
generator derives from the set's global index — so results are
byte-identical to :class:`~repro.sampling.backends.serial.SerialBackend`
at any fleet size: threads change *when* a shard is computed, never
*what* it computes.

CPython's GIL limits the speedup to the fraction of sampling spent in
GIL-releasing numpy kernels, but the backend exercises the exact fan-out
/ merge topology of the process backend with none of its transport cost,
which makes it the right default for moderate graphs and the reference
for equivalence tests.
"""

from __future__ import annotations

from concurrent.futures import ThreadPoolExecutor
from typing import Sequence

import numpy as np

from repro.sampling.backends.base import (
    ExecutionBackend,
    WorkerSpec,
    build_worker_sampler,
    run_worker_batch,
)


class ThreadBackend(ExecutionBackend):
    """Run worker batches concurrently on a persistent thread pool."""

    name = "thread"

    def __init__(self) -> None:
        super().__init__()
        self._pool: ThreadPoolExecutor | None = None
        self._samplers: list = []

    def _start(self, spec: WorkerSpec) -> None:
        self._samplers = [build_worker_sampler(spec) for _ in range(spec.workers)]
        self._pool = ThreadPoolExecutor(
            max_workers=spec.workers, thread_name_prefix="rr-worker"
        )

    def _resize(self, workers: int) -> None:
        # Workers are stateless; grow or shrink the sampler list and
        # swap the executor so the pool width tracks the fleet.
        if workers > len(self._samplers):
            self._samplers.extend(
                build_worker_sampler(self._spec)
                for _ in range(workers - len(self._samplers))
            )
        else:
            del self._samplers[workers:]
        old = self._pool
        self._pool = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="rr-worker"
        )
        if old is not None:
            old.shutdown(wait=True)

    def _sample_shards(
        self,
        index_batches: Sequence[np.ndarray],
        root_batches: "Sequence[np.ndarray | None] | None",
    ) -> list[list[np.ndarray]]:
        futures = [
            self._pool.submit(
                run_worker_batch,
                sampler,
                batch,
                None if root_batches is None else root_batches[w],
            )
            for w, (sampler, batch) in enumerate(zip(self._samplers, index_batches))
        ]
        return [future.result() for future in futures]

    def _close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._samplers = []
