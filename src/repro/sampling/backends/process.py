"""Multi-process execution backend over shared-memory CSR graphs.

This is the real distributed topology the paper names as future work,
scaled down to one machine:

* **startup** — the coordinator lays the CSR graph out in a POSIX
  shared-memory segment (:func:`repro.graph.shm.share_csr_graph`) and
  spawns W persistent worker processes.  Each worker attaches the
  segment zero-copy, rebuilds a validated :class:`CSRGraph` view, and
  constructs its sampler from the stream's seed material — workers hold
  no per-worker stream state, so any worker can compute any set;
* **steady state** — the only traffic per fan-out is one batch of
  global set indices down each worker's pipe and one packed
  ``(flat, sizes)`` RR-batch reply back up.  The graph never crosses a
  pipe again;
* **elasticity** — :meth:`ProcessBackend.resize` spawns extra workers
  against the existing segment or retires surplus ones; the stream is
  seed-pure, so a resize is byte-invisible;
* **teardown** — workers get a ``None`` sentinel, detach, and exit; the
  coordinator joins them, then closes *and unlinks* the segment.

Each worker's stderr is redirected to a scratch file the coordinator
keeps; when a worker dies its crash context — worker id, pid, exit code,
how many batches it had been dispatched, and the tail of its stderr — is
recorded in :attr:`ProcessBackend.fault_log`.  A crash is **not** a
user-facing failure: because every RR set is a pure function of its
global stream index, the coordinator quarantines the dead worker,
respawns a replacement against the live shared-memory segment, and
replays the lost index batch byte-identically (:attr:`respawns` counts
replacements).  Only a crash loop that exhausts the per-call retry
budget — or a worker *reply* reporting an application error, which would
recur deterministically — raises :class:`~repro.exceptions.SamplingError`,
and the raised error carries the same crash context.

The default start method is ``spawn``: it is portable, and it proves the
architecture (a spawned child shares no memory with its parent, so the
graph really does arrive via the segment — the same property a future
network transport needs).  Pass ``start_method="fork"`` to trade that
isolation for faster startup on POSIX.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import sys
import tempfile
from typing import Sequence

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.shm import SharedCSRSpec, attach_csr_graph, close_segment, share_csr_graph
from repro.sampling.backends.base import (
    ExecutionBackend,
    WorkerSpec,
    build_worker_sampler,
    flatten_rr_batch,
    run_worker_batch,
    unflatten_rr_batch,
)

_JOIN_TIMEOUT = 5.0
_STDERR_TAIL_BYTES = 2048
# Worker replacements allowed within one sample_shards call before the
# accumulated faults are raised: a crash loop (bad graph memory, OOM
# killer) must not retry forever.
_MAX_RESPAWNS_PER_CALL = 3
# fault_log is diagnostics, not an audit trail; keep it bounded.
_FAULT_LOG_LIMIT = 32


def _worker_main(
    conn,
    graph_spec: SharedCSRSpec,
    worker_spec: WorkerSpec,
    worker_id: int,
    stderr_path: str | None,
) -> None:
    """Worker process entry point: attach graph, serve index batches.

    ``worker_spec.graph`` is ``None`` on the wire (the graph travels via
    shared memory, not pickle); everything else — model, seed material,
    root distribution, hop cap — rides the spec unchanged so worker
    construction is the same code path as the in-process backends.
    """
    if stderr_path is not None:
        # Everything the worker (or a crashing libc/numpy) writes to fd 2
        # lands in the coordinator's scratch file, so worker death comes
        # with a stderr tail attached to the coordinator's exception.
        err_file = open(stderr_path, "a", buffering=1)
        os.dup2(err_file.fileno(), 2)
        sys.stderr = err_file
    shm = None
    try:
        graph, shm = attach_csr_graph(graph_spec)
        sampler = build_worker_sampler(worker_spec, graph=graph)
        while True:
            message = conn.recv()
            if message is None:
                break
            try:
                if message[0] == "sample":
                    _, indices, roots = message
                    rr_sets = run_worker_batch(sampler, indices, roots)
                    conn.send(("ok",) + flatten_rr_batch(rr_sets))
                elif message[0] == "abort":
                    # Fault injection for crash-context tests: die hard,
                    # leaving only stderr behind (no protocol reply).
                    print(message[1], file=sys.stderr, flush=True)
                    os._exit(70)
                else:
                    conn.send(("err", f"unknown message {message[0]!r}"))
            except Exception as exc:  # surface worker faults to the coordinator
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        # Drop the graph views before detaching so mmap can actually close.
        sampler = graph = None
        if shm is not None:
            close_segment(shm)
        conn.close()


class ProcessBackend(ExecutionBackend):
    """Persistent ``multiprocessing`` worker pool fed over pipes."""

    name = "process"

    def __init__(self, *, start_method: str | None = None) -> None:
        super().__init__()
        self._start_method = start_method or "spawn"
        self._shm = None
        self._graph_spec: SharedCSRSpec | None = None
        self._wire_spec: WorkerSpec | None = None
        self._procs: list[mp.process.BaseProcess] = []
        self._conns: list = []
        self._stderr_paths: list[str] = []
        self._batches_dispatched: list[int] = []

    def _build_worker(self, worker_id: int):
        """Spawn one worker process attached to the live shm segment."""
        ctx = mp.get_context(self._start_method)
        handle = tempfile.NamedTemporaryFile(
            prefix=f"rr-worker-{worker_id}-", suffix=".stderr", delete=False
        )
        handle.close()
        parent_conn, child_conn = ctx.Pipe(duplex=True)
        proc = ctx.Process(
            target=_worker_main,
            args=(child_conn, self._graph_spec, self._wire_spec, worker_id, handle.name),
            name=f"rr-worker-{worker_id}",
            daemon=True,
        )
        proc.start()
        child_conn.close()
        return proc, parent_conn, handle.name

    def _spawn_worker(self, worker_id: int) -> None:
        proc, conn, stderr_path = self._build_worker(worker_id)
        self._procs.append(proc)
        self._conns.append(conn)
        self._stderr_paths.append(stderr_path)
        self._batches_dispatched.append(0)

    def _respawn_worker(self, worker_id: int) -> None:
        """Quarantine a dead worker and stand a replacement up in its slot.

        The shared-memory segment outlives any individual worker, so the
        replacement attaches exactly as the original fleet did; seed-pure
        per-set derivation means re-dispatching the lost indices to it is
        byte-identical to the crash-free run.
        """
        old = self._procs[worker_id]
        old.join(timeout=_JOIN_TIMEOUT)
        if old.is_alive():
            old.terminate()
            old.join(timeout=_JOIN_TIMEOUT)
        try:
            self._conns[worker_id].close()
        except OSError:
            pass
        self._remove_stderr_file(self._stderr_paths[worker_id])
        proc, conn, stderr_path = self._build_worker(worker_id)
        self._procs[worker_id] = proc
        self._conns[worker_id] = conn
        self._stderr_paths[worker_id] = stderr_path
        self._batches_dispatched[worker_id] = 0
        self.respawns += 1

    def _record_fault(self, worker_id: int, why: str) -> str:
        """Append one crash description to the bounded fault log."""
        fault = self._fault(worker_id, why)
        self.fault_log.append(fault)
        del self.fault_log[:-_FAULT_LOG_LIMIT]
        return fault

    def _start(self, spec: WorkerSpec) -> None:
        self._shm, self._graph_spec = share_csr_graph(
            spec.graph, graph_version=spec.graph_version
        )
        # The graph is in the segment now; the pickled spec must not drag
        # a second copy of it through every worker's bootstrap.
        self._wire_spec = WorkerSpec(
            graph=None,
            model=spec.model,
            entropy=spec.entropy,
            spawn_key=spec.spawn_key,
            workers=spec.workers,
            roots=spec.roots,
            max_hops=spec.max_hops,
            kernel=spec.kernel,
            graph_version=spec.graph_version,
        )
        try:
            for worker_id in range(spec.workers):
                self._spawn_worker(worker_id)
        except Exception:
            self._teardown()
            raise

    def _resize(self, workers: int) -> None:
        if workers > len(self._procs):
            # The shared-memory segment is already up; new workers attach
            # it exactly as the original fleet did.
            for worker_id in range(len(self._procs), workers):
                self._spawn_worker(worker_id)
            return
        # Retire the surplus: sentinel, join, release pipe + stderr file.
        for worker_id in range(workers, len(self._procs)):
            try:
                self._conns[worker_id].send(None)
            except (BrokenPipeError, OSError):
                pass
        for worker_id in range(workers, len(self._procs)):
            proc = self._procs[worker_id]
            proc.join(timeout=_JOIN_TIMEOUT)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=_JOIN_TIMEOUT)
            self._conns[worker_id].close()
            self._remove_stderr_file(self._stderr_paths[worker_id])
        del self._procs[workers:]
        del self._conns[workers:]
        del self._stderr_paths[workers:]
        del self._batches_dispatched[workers:]

    # ------------------------------------------------------------------
    # Fault context
    # ------------------------------------------------------------------
    def _stderr_tail(self, worker_id: int) -> str:
        try:
            with open(self._stderr_paths[worker_id], "rb") as handle:
                handle.seek(0, os.SEEK_END)
                size = handle.tell()
                handle.seek(max(0, size - _STDERR_TAIL_BYTES))
                tail = handle.read().decode("utf-8", errors="replace").strip()
        except OSError:
            return ""
        return tail

    def _fault(self, worker_id: int, why: str) -> str:
        """One worker-failure description with full crash context."""
        proc = self._procs[worker_id]
        message = (
            f"worker {worker_id} (pid {proc.pid}, exitcode {proc.exitcode}) {why}; "
            f"batches dispatched to it: {self._batches_dispatched[worker_id]}"
        )
        tail = self._stderr_tail(worker_id)
        if tail:
            message += f"; stderr tail:\n{tail}"
        return message

    # ------------------------------------------------------------------
    # Fan-out
    # ------------------------------------------------------------------
    def _sample_shards(
        self,
        index_batches: Sequence[np.ndarray],
        root_batches: "Sequence[np.ndarray | None] | None",
    ) -> list[list[np.ndarray]]:
        # Ship all batches first so workers overlap, then collect in order.
        # Faults on either leg are accumulated, never raised mid-protocol:
        # every successfully-sent batch must be drained before raising or
        # retrying, or a retry would pair stale replies with new indices.
        #
        # A *crashed* worker (broken pipe, EOF) is quarantined, respawned
        # against the live shm segment, and its batch re-dispatched — the
        # retry is byte-identical because each set derives from its global
        # index alone.  A worker *reply* reporting an error is an
        # application fault that would recur on replay, so it raises.
        results: list[list[np.ndarray]] = [[] for _ in index_batches]
        pending: dict[int, tuple[np.ndarray, "np.ndarray | None"]] = {}
        for worker_id, batch in enumerate(index_batches):
            if len(batch) == 0:
                continue
            roots = None if root_batches is None else root_batches[worker_id]
            pending[worker_id] = (
                np.asarray(batch, dtype=np.int64),
                None if roots is None else np.asarray(roots, dtype=np.int64),
            )

        call_faults: list[str] = []
        respawned_this_call = 0
        while pending:
            engaged, crashed, app_errors = [], [], []
            for worker_id, (batch, roots) in pending.items():
                try:
                    self._conns[worker_id].send(("sample", batch, roots))
                except (BrokenPipeError, OSError) as exc:
                    crashed.append((worker_id, f"is gone: {exc}"))
                    continue
                self._batches_dispatched[worker_id] += 1
                engaged.append(worker_id)
            for worker_id in engaged:
                try:
                    reply = self._conns[worker_id].recv()
                except (EOFError, OSError) as exc:
                    crashed.append((worker_id, f"died mid-batch: {exc}"))
                    continue
                if reply[0] != "ok":
                    app_errors.append(f"worker {worker_id} failed: {reply[1]}")
                    continue
                results[worker_id] = unflatten_rr_batch(reply[1], reply[2])
                del pending[worker_id]
            # Respawn crashed workers before raising anything: a dead pipe
            # left in the fleet would wedge every later call on this
            # backend (the historical failure mode this loop exists for).
            for worker_id, why in crashed:
                call_faults.append(self._record_fault(worker_id, why))
                self._respawn_worker(worker_id)
                respawned_this_call += 1
            if app_errors:
                raise SamplingError("; ".join(app_errors))
            if crashed and respawned_this_call > _MAX_RESPAWNS_PER_CALL:
                raise SamplingError(
                    "worker crash loop, retry budget exhausted: "
                    + "; ".join(call_faults)
                )
        return results

    # ------------------------------------------------------------------
    # Teardown
    # ------------------------------------------------------------------
    def _close(self) -> None:
        self._teardown()

    @staticmethod
    def _remove_stderr_file(path: str) -> None:
        try:
            os.unlink(path)
        except OSError:
            pass

    def _teardown(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=_JOIN_TIMEOUT)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=_JOIN_TIMEOUT)
        for conn in self._conns:
            conn.close()
        for path in self._stderr_paths:
            self._remove_stderr_file(path)
        self._procs = []
        self._conns = []
        self._stderr_paths = []
        self._batches_dispatched = []
        if self._shm is not None:
            close_segment(self._shm, unlink=True)
            self._shm = None

    def __del__(self) -> None:
        # Safety net for abandoned backends; normal paths call close().
        try:
            self.close()
        except Exception:
            pass


def default_worker_count() -> int:
    """A sensible worker count for this machine (scheduler affinity aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # non-Linux
        return max(1, os.cpu_count() or 1)
