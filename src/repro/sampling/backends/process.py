"""Multi-process execution backend over shared-memory CSR graphs.

This is the real distributed topology the paper names as future work,
scaled down to one machine:

* **startup** — the coordinator lays the CSR graph out in a POSIX
  shared-memory segment (:func:`repro.graph.shm.share_csr_graph`) and
  spawns W persistent worker processes.  Each worker attaches the
  segment zero-copy, rebuilds a validated :class:`CSRGraph` view, and
  constructs its sampler from its own spawned
  :class:`~numpy.random.SeedSequence`;
* **steady state** — the only traffic per fan-out is one ``root_batch``
  array down each worker's pipe and one packed ``(flat, sizes)``
  RR-batch reply back up.  The graph never crosses a pipe again;
* **teardown** — workers get a ``None`` sentinel, detach, and exit; the
  coordinator joins them, then closes *and unlinks* the segment.

The default start method is ``spawn``: it is portable, and it proves the
architecture (a spawned child shares no memory with its parent, so the
graph really does arrive via the segment — the same property a future
network transport needs).  Pass ``start_method="fork"`` to trade that
isolation for faster startup on POSIX.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from typing import Sequence

import numpy as np

from repro.exceptions import SamplingError
from repro.graph.shm import SharedCSRSpec, attach_csr_graph, close_segment, share_csr_graph
from repro.sampling.backends.base import (
    ExecutionBackend,
    WorkerSpec,
    build_worker_sampler,
    flatten_rr_batch,
    unflatten_rr_batch,
)

_JOIN_TIMEOUT = 5.0


def _worker_main(conn, graph_spec: SharedCSRSpec, worker_spec: WorkerSpec, worker_id: int) -> None:
    """Worker process entry point: attach graph, serve root batches.

    ``worker_spec.graph`` is ``None`` on the wire (the graph travels via
    shared memory, not pickle); everything else — model, seed sequences,
    hop cap — rides the spec unchanged so worker construction is the
    same code path as the in-process backends.
    """
    shm = None
    try:
        graph, shm = attach_csr_graph(graph_spec)
        sampler = build_worker_sampler(worker_spec, worker_id, graph=graph)
        while True:
            message = conn.recv()
            if message is None:
                break
            if isinstance(message, tuple):
                # Control messages: ("get_state",) / ("set_state", state).
                # They ride the same pipe as root batches, so ordering with
                # sampling work is inherited from the coordinator's calls.
                try:
                    if message[0] == "get_state":
                        conn.send(("ok", sampler.rng.bit_generator.state))
                    elif message[0] == "set_state":
                        sampler.rng.bit_generator.state = message[1]
                        conn.send(("ok",))
                    else:
                        conn.send(("err", f"unknown control message {message[0]!r}"))
                except Exception as exc:
                    conn.send(("err", f"{type(exc).__name__}: {exc}"))
                continue
            try:
                rr_sets = [sampler._reverse_sample(int(root)) for root in message]
                conn.send(("ok",) + flatten_rr_batch(rr_sets))
            except Exception as exc:  # surface worker faults to the coordinator
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
    except (EOFError, KeyboardInterrupt):
        pass
    finally:
        # Drop the graph views before detaching so mmap can actually close.
        sampler = graph = None
        if shm is not None:
            close_segment(shm)
        conn.close()


class ProcessBackend(ExecutionBackend):
    """Persistent ``multiprocessing`` worker pool fed over pipes."""

    name = "process"

    def __init__(self, *, start_method: str | None = None) -> None:
        super().__init__()
        self._start_method = start_method or "spawn"
        self._shm = None
        self._procs: list[mp.process.BaseProcess] = []
        self._conns: list = []

    def _start(self, spec: WorkerSpec) -> None:
        ctx = mp.get_context(self._start_method)
        self._shm, graph_spec = share_csr_graph(spec.graph)
        # The graph is in the segment now; the pickled spec must not drag
        # a second copy of it through every worker's bootstrap.
        wire_spec = WorkerSpec(
            graph=None,
            model=spec.model,
            seed_seqs=spec.seed_seqs,
            max_hops=spec.max_hops,
            kernel=spec.kernel,
        )
        try:
            for worker_id in range(spec.workers):
                parent_conn, child_conn = ctx.Pipe(duplex=True)
                proc = ctx.Process(
                    target=_worker_main,
                    args=(child_conn, graph_spec, wire_spec, worker_id),
                    name=f"rr-worker-{worker_id}",
                    daemon=True,
                )
                proc.start()
                child_conn.close()
                self._procs.append(proc)
                self._conns.append(parent_conn)
        except Exception:
            self._teardown()
            raise

    def _sample_shards(self, root_batches: Sequence[np.ndarray]) -> list[list[np.ndarray]]:
        # Ship all batches first so workers overlap, then collect in order.
        # Faults on either leg are accumulated, never raised mid-protocol:
        # every successfully-sent batch must be drained before raising, or
        # a retry would pair this call's stale replies with new roots.
        engaged = []
        faults: list[str] = []
        for worker_id, (conn, batch) in enumerate(zip(self._conns, root_batches)):
            if len(batch) == 0:
                continue
            try:
                conn.send(np.asarray(batch, dtype=np.int64))
            except (BrokenPipeError, OSError) as exc:
                faults.append(
                    f"worker {worker_id} (pid {self._procs[worker_id].pid}) is gone: {exc}"
                )
                continue
            engaged.append(worker_id)

        results: list[list[np.ndarray]] = [[] for _ in root_batches]
        for worker_id in engaged:
            try:
                reply = self._conns[worker_id].recv()
            except (EOFError, OSError) as exc:
                faults.append(
                    f"worker {worker_id} died mid-batch "
                    f"(exitcode {self._procs[worker_id].exitcode}): {exc}"
                )
                continue
            if reply[0] != "ok":
                faults.append(f"worker {worker_id} failed: {reply[1]}")
                continue
            results[worker_id] = unflatten_rr_batch(reply[1], reply[2])
        if faults:
            raise SamplingError("; ".join(faults))
        return results

    def _control_round(self, messages: "list[tuple]") -> list:
        """One control request per worker; returns the payloads in order."""
        replies = []
        for worker_id, (conn, message) in enumerate(zip(self._conns, messages)):
            try:
                conn.send(message)
                reply = conn.recv()
            except (BrokenPipeError, EOFError, OSError) as exc:
                raise SamplingError(
                    f"worker {worker_id} unreachable for control message: {exc}"
                ) from exc
            if reply[0] != "ok":
                raise SamplingError(f"worker {worker_id} control failure: {reply[1]}")
            replies.append(reply[1] if len(reply) > 1 else None)
        return replies

    def _worker_states(self) -> list:
        return self._control_round([("get_state",)] * len(self._conns))

    def _restore_worker_states(self, states: list) -> None:
        self._control_round([("set_state", state) for state in states])

    def _close(self) -> None:
        self._teardown()

    def _teardown(self) -> None:
        for conn in self._conns:
            try:
                conn.send(None)
            except (BrokenPipeError, OSError):
                pass
        for proc in self._procs:
            proc.join(timeout=_JOIN_TIMEOUT)
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=_JOIN_TIMEOUT)
        for conn in self._conns:
            conn.close()
        self._procs = []
        self._conns = []
        if self._shm is not None:
            close_segment(self._shm, unlink=True)
            self._shm = None

    def __del__(self) -> None:
        # Safety net for abandoned backends; normal paths call close().
        try:
            self.close()
        except Exception:
            pass


def default_worker_count() -> int:
    """A sensible worker count for this machine (scheduler affinity aware)."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except AttributeError:  # non-Linux
        return max(1, os.cpu_count() or 1)
