"""Execution-backend protocol for parallel RR-set sampling.

The Stop-and-Stare estimators only need the merged RR stream to be
i.i.d., so *where* each set is computed is an execution detail.  This
module pins down the contract between the coordinator
(:class:`repro.sampling.sharded.ShardedSampler`) and the workers:

* the coordinator owns the merge order — it assigns each RR set's
  *global stream index* to a worker and re-interleaves the results;
* each worker owns a plain :class:`~repro.sampling.base.RRSampler`
  built from the stream's seed material (``entropy`` + ``spawn_key``)
  and computes any set it is handed via
  :meth:`~repro.sampling.base.RRSampler.sample_at` — the per-set
  SeedSequence derivation (:mod:`repro.sampling.seedstream`) makes set
  ``g`` a pure function of ``(seed, g)``, with its root drawn from its
  own generator.

Workers therefore carry **no stream state**: any worker can compute any
set, the merged output is a pure function of the seed alone, and the
fleet can be resized mid-stream (:meth:`ExecutionBackend.resize`)
without changing a byte.  A backend swap (serial ↔ thread ↔ process)
cannot change the stream either.  ``tests/sampling/test_backends.py``
and ``tests/sampling/test_elastic.py`` enforce all of this.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, replace
from typing import Sequence

import numpy as np

from repro.diffusion.models import DiffusionModel
from repro.exceptions import SamplingError
from repro.graph.digraph import CSRGraph


@dataclass
class WorkerSpec:
    """Everything a backend needs to stand up its worker fleet.

    ``entropy``/``spawn_key`` identify the stream (the root SeedSequence
    every per-set child derives from); ``workers`` is the fleet size —
    pure throughput, no stream meaning.  ``roots`` is the root
    distribution (``None`` = uniform over the graph's nodes); workers
    draw each set's root from the set's own generator, so the
    distribution object must ship to them (picklable: it crosses the
    process boundary once, at startup).  The spec itself is cheap — only
    the process backend pays the cost of shipping ``graph`` (once, via
    shared memory).
    """

    graph: CSRGraph | None
    model: DiffusionModel
    entropy: int = 0
    spawn_key: tuple = ()
    workers: int = 1
    roots: object | None = None
    max_hops: int | None = None
    # Kernel *name* (not instance): it must survive pickling to process
    # workers, and every worker must instantiate the same kernel or the
    # merged stream would silently mix draw orders.
    kernel: str | None = None
    # Mutation-lineage position of ``graph`` (see repro.dynamic); 0 is
    # the pristine snapshot.  Stamped into graph manifests so remote
    # workers re-fetch the blob only when the content hash changed.
    graph_version: int = 0


class ExecutionBackend(abc.ABC):
    """Lifecycle + fan-out contract shared by all execution backends.

    Usage::

        backend = make_backend("process")
        backend.start(spec)            # stand up workers, ship the graph
        shards = backend.sample_shards(index_batches)
        backend.resize(16)             # elastic: stream is unchanged
        backend.close()                # tear down workers, free resources

    ``sample_shards`` takes one *global-index* batch per worker (empty
    batches are allowed and produce empty shard results) and returns,
    per worker, the RR sets for its indices *in batch order*.
    """

    #: registry key / CLI name, overridden by each implementation.
    name = "abstract"

    def __init__(self) -> None:
        self._spec: WorkerSpec | None = None
        self._closed = False
        #: workers replaced after a crash (fault-tolerant backends bump
        #: this; serial/thread have nothing to respawn and keep it 0).
        self.respawns = 0
        #: crash context retained from faults that were retried instead of
        #: raised (each entry is one worker-failure description).
        self.fault_log: list[str] = []

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, spec: WorkerSpec) -> None:
        """Stand up the worker fleet for ``spec`` (idempotence not allowed)."""
        if self._spec is not None:
            raise SamplingError(f"{type(self).__name__} already started")
        if spec.workers < 1:
            raise SamplingError(f"need at least one worker, got {spec.workers}")
        self._closed = False
        self._start(spec)
        # Only a fully stood-up fleet counts as started: a _start that
        # raises leaves the backend restartable instead of wedged.
        self._spec = spec

    def close(self) -> None:
        """Tear down workers and release resources (idempotent).

        Marked closed only after teardown succeeds, so a failed teardown
        can be retried (by the caller or the ``__del__`` safety net)
        instead of silently leaking workers or shared-memory segments.
        """
        if self._closed:
            return
        if self._spec is None:
            # Never started (or _start raised and start() never recorded a
            # spec): there is no fleet or shared resource to tear down, and
            # backend _close() hooks are entitled to assume a stood-up
            # fleet — calling them here would poke half-initialized state.
            self._closed = True
            return
        self._close()
        self._closed = True

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def workers(self) -> int:
        """Fleet size (0 before :meth:`start`)."""
        return self._spec.workers if self._spec is not None else 0

    @property
    def started(self) -> bool:
        return self._spec is not None and not self._closed

    def resize(self, workers: int) -> None:
        """Grow or shrink the fleet mid-stream.

        Seed-pure streams make this safe by construction: workers hold
        no stream state, so the only effect is throughput.  The next
        ``sample_shards`` call must pass batches for the new count.
        """
        if not self.started:
            raise SamplingError(f"{type(self).__name__} is not running (start it first)")
        workers = int(workers)
        if workers < 1:
            raise SamplingError(f"need at least one worker, got {workers}")
        if workers == self._spec.workers:
            return
        self._resize(workers)
        self._spec = replace(self._spec, workers=workers)

    def sync_fleet(self) -> int:
        """Reconcile the nominal worker count with the live fleet.

        Local backends own their fleet, so the answer is simply
        ``workers``.  Backends whose membership can change underneath the
        coordinator (remote hosts joining or leaving a network fleet)
        override this to report the current live size — the coordinator
        calls it before partitioning each batch and re-shards over
        whatever answer comes back.  Seed-pure streams make the answer a
        pure throughput concern: any value yields the same bytes.
        """
        if not self.started:
            raise SamplingError(f"{type(self).__name__} is not running (start it first)")
        return self.workers

    # ------------------------------------------------------------------
    # Fan-out
    # ------------------------------------------------------------------
    def sample_shards(
        self,
        index_batches: Sequence[np.ndarray],
        root_batches: "Sequence[np.ndarray | None] | None" = None,
    ) -> list[list[np.ndarray]]:
        """Sample RR sets for each worker's batch of global set indices.

        ``index_batches[w]`` are the stream indices assigned to worker
        ``w``; the result keeps the same shape: ``result[w][i]`` is the
        RR set of stream index ``index_batches[w][i]``.  ``root_batches``
        optionally pins explicit roots (aligned with the indices);
        ``None`` — the normal case — draws each root from its set's own
        generator.
        """
        if not self.started:
            raise SamplingError(f"{type(self).__name__} is not running (start it first)")
        if len(index_batches) != self.workers:
            raise SamplingError(
                f"got {len(index_batches)} index batches for {self.workers} workers"
            )
        if root_batches is not None and len(root_batches) != len(index_batches):
            raise SamplingError("root batches must align with index batches")
        return self._sample_shards(index_batches, root_batches)

    # ------------------------------------------------------------------
    # Implementation hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _start(self, spec: WorkerSpec) -> None:
        """Backend-specific fleet startup."""

    @abc.abstractmethod
    def _resize(self, workers: int) -> None:
        """Backend-specific fleet resize; called only while started and
        only for an actual size change."""

    @abc.abstractmethod
    def _sample_shards(
        self,
        index_batches: Sequence[np.ndarray],
        root_batches: "Sequence[np.ndarray | None] | None",
    ) -> list[list[np.ndarray]]:
        """Backend-specific fan-out; called only while started."""

    @abc.abstractmethod
    def _close(self) -> None:
        """Backend-specific teardown; called at most once."""


def build_worker_sampler(spec: WorkerSpec, graph: CSRGraph | None = None):
    """Construct one worker's sampler from a spec.

    Workers are interchangeable (no per-worker stream state), so there
    is no worker id: every backend builds samplers from the same seed
    material and byte-identical per-set derivation follows.  ``graph``
    overrides the spec's graph for workers that attached their own
    shared-memory copy.
    """
    from repro.sampling.base import make_sampler

    return make_sampler(
        graph if graph is not None else spec.graph,
        spec.model,
        np.random.SeedSequence(entropy=spec.entropy, spawn_key=spec.spawn_key),
        roots=spec.roots,
        max_hops=spec.max_hops,
        kernel=spec.kernel,
        graph_version=spec.graph_version,
    )


def run_worker_batch(
    sampler, indices: np.ndarray, roots: "np.ndarray | None" = None
) -> list[np.ndarray]:
    """Compute one worker's shard of RR sets by global stream index.

    Shared by every backend so in-process and out-of-process paths run
    byte-identical code.  Routes through
    :meth:`~repro.sampling.base.RRSampler.sample_block` — the batched
    kernels' lockstep fast path — which guarantees entry ``i`` equals
    ``sample_at(indices[i])`` byte for byte (batch-composition
    invariance).  A negative root entry means "this set draws its own
    root" (the wire convention for unpinned sets in a pinned batch).
    """
    return sampler.sample_block(np.asarray(indices, dtype=np.int64), roots)


def flatten_rr_batch(rr_sets: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Pack a list of RR sets into one ``(flat, sizes)`` message.

    Inter-process replies ship two arrays instead of N small ones, which
    keeps pickling overhead per batch O(1) in the number of sets.
    """
    sizes = np.fromiter((rr.size for rr in rr_sets), dtype=np.int64, count=len(rr_sets))
    flat = np.concatenate(rr_sets) if rr_sets else np.zeros(0, dtype=np.int32)
    return flat.astype(np.int32, copy=False), sizes


def unflatten_rr_batch(flat: np.ndarray, sizes: np.ndarray) -> list[np.ndarray]:
    """Invert :func:`flatten_rr_batch` (views into ``flat``, no copies)."""
    if sizes.size == 0:
        return []
    return np.split(flat, np.cumsum(sizes[:-1]))
