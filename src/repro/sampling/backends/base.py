"""Execution-backend protocol for parallel RR-set sampling.

The Stop-and-Stare estimators only need the merged RR stream to be
i.i.d., so *where* each set is computed is an execution detail.  This
module pins down the contract between the coordinator
(:class:`repro.sampling.sharded.ShardedSampler`) and the workers:

* the coordinator owns the root distribution and the merge order — it
  draws every root itself and partitions them into per-worker batches;
* each worker owns one RNG stream (spawned from the coordinator's
  :class:`~numpy.random.SeedSequence`, independent by construction) and
  turns its root batch into RR sets with a plain
  :class:`~repro.sampling.base.RRSampler`.

Because workers only consume the roots they are handed and their own
stream, the merged output is a pure function of ``(seed, workers)`` — a
backend swap (serial ↔ thread ↔ process) cannot change a single byte of
the RR stream.  ``tests/sampling/test_backends.py`` enforces this.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.diffusion.models import DiffusionModel
from repro.exceptions import SamplingError
from repro.graph.digraph import CSRGraph


@dataclass
class WorkerSpec:
    """Everything a backend needs to stand up its worker fleet.

    ``seed_seqs`` has one entry per worker; its length defines the fleet
    size.  The spec itself is cheap — only the process backend pays the
    cost of shipping ``graph`` (once, via shared memory).
    """

    graph: CSRGraph
    model: DiffusionModel
    seed_seqs: list = field(default_factory=list)
    max_hops: int | None = None
    # Kernel *name* (not instance): it must survive pickling to process
    # workers, and every worker must instantiate the same kernel or the
    # merged stream would silently mix draw orders.
    kernel: str | None = None

    @property
    def workers(self) -> int:
        return len(self.seed_seqs)


class ExecutionBackend(abc.ABC):
    """Lifecycle + fan-out contract shared by all execution backends.

    Usage::

        backend = make_backend("process")
        backend.start(spec)            # stand up workers, ship the graph
        shards = backend.sample_shards(root_batches)
        backend.close()                # tear down workers, free resources

    ``sample_shards`` takes one root batch per worker (empty batches are
    allowed and produce empty shard results) and returns, per worker, the
    RR sets for its roots *in root order*.
    """

    #: registry key / CLI name, overridden by each implementation.
    name = "abstract"

    def __init__(self) -> None:
        self._spec: WorkerSpec | None = None
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self, spec: WorkerSpec) -> None:
        """Stand up the worker fleet for ``spec`` (idempotence not allowed)."""
        if self._spec is not None:
            raise SamplingError(f"{type(self).__name__} already started")
        if spec.workers < 1:
            raise SamplingError(f"need at least one worker seed, got {spec.workers}")
        self._closed = False
        self._start(spec)
        # Only a fully stood-up fleet counts as started: a _start that
        # raises leaves the backend restartable instead of wedged.
        self._spec = spec

    def close(self) -> None:
        """Tear down workers and release resources (idempotent).

        Marked closed only after teardown succeeds, so a failed teardown
        can be retried (by the caller or the ``__del__`` safety net)
        instead of silently leaking workers or shared-memory segments.
        """
        if self._closed:
            return
        self._close()
        self._closed = True

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def workers(self) -> int:
        """Fleet size (0 before :meth:`start`)."""
        return self._spec.workers if self._spec is not None else 0

    @property
    def started(self) -> bool:
        return self._spec is not None and not self._closed

    # ------------------------------------------------------------------
    # Fan-out
    # ------------------------------------------------------------------
    def sample_shards(self, root_batches: Sequence[np.ndarray]) -> list[list[np.ndarray]]:
        """Sample RR sets for each worker's root batch.

        ``root_batches[w]`` are the roots assigned to worker ``w``; the
        result keeps the same shape: ``result[w][i]`` is the RR set for
        ``root_batches[w][i]``.
        """
        if not self.started:
            raise SamplingError(f"{type(self).__name__} is not running (start it first)")
        if len(root_batches) != self.workers:
            raise SamplingError(
                f"got {len(root_batches)} root batches for {self.workers} workers"
            )
        return self._sample_shards(root_batches)

    # ------------------------------------------------------------------
    # Worker stream positions (pool spill / reattach)
    # ------------------------------------------------------------------
    def worker_states(self) -> list:
        """Per-worker RNG states (JSON-serializable), in worker order.

        Worker RNG streams are identified by worker *index*, so a state
        list captured on one backend restores onto another — the stream
        is a pure function of ``(seed, workers)``, never of where the
        workers run.
        """
        if not self.started:
            raise SamplingError(f"{type(self).__name__} is not running (start it first)")
        return self._worker_states()

    def restore_worker_states(self, states: list) -> None:
        """Restore states captured by :meth:`worker_states`."""
        if not self.started:
            raise SamplingError(f"{type(self).__name__} is not running (start it first)")
        if len(states) != self.workers:
            raise SamplingError(
                f"got {len(states)} worker states for {self.workers} workers"
            )
        self._restore_worker_states(states)

    # ------------------------------------------------------------------
    # Implementation hooks
    # ------------------------------------------------------------------
    @abc.abstractmethod
    def _start(self, spec: WorkerSpec) -> None:
        """Backend-specific fleet startup."""

    def _worker_states(self) -> list:
        """Backend-specific state fetch; called only while started."""
        raise SamplingError(f"{type(self).__name__} does not support state capture")

    def _restore_worker_states(self, states: list) -> None:
        """Backend-specific state restore; called only while started."""
        raise SamplingError(f"{type(self).__name__} does not support state restore")

    @abc.abstractmethod
    def _sample_shards(self, root_batches: Sequence[np.ndarray]) -> list[list[np.ndarray]]:
        """Backend-specific fan-out; called only while started."""

    @abc.abstractmethod
    def _close(self) -> None:
        """Backend-specific teardown; called at most once."""


def build_worker_sampler(spec: WorkerSpec, worker_id: int, graph: CSRGraph | None = None):
    """Construct worker ``worker_id``'s sampler from a spec.

    Shared by every backend so the in-process and out-of-process paths
    use byte-identical RNG construction (``default_rng`` over the spawned
    SeedSequence).  ``graph`` overrides the spec's graph for workers that
    attached their own shared-memory copy.
    """
    from repro.sampling.base import make_sampler

    return make_sampler(
        graph if graph is not None else spec.graph,
        spec.model,
        np.random.default_rng(spec.seed_seqs[worker_id]),
        max_hops=spec.max_hops,
        kernel=spec.kernel,
    )


def flatten_rr_batch(rr_sets: list[np.ndarray]) -> tuple[np.ndarray, np.ndarray]:
    """Pack a list of RR sets into one ``(flat, sizes)`` message.

    Inter-process replies ship two arrays instead of N small ones, which
    keeps pickling overhead per batch O(1) in the number of sets.
    """
    sizes = np.fromiter((rr.size for rr in rr_sets), dtype=np.int64, count=len(rr_sets))
    flat = np.concatenate(rr_sets) if rr_sets else np.zeros(0, dtype=np.int32)
    return flat.astype(np.int32, copy=False), sizes


def unflatten_rr_batch(flat: np.ndarray, sizes: np.ndarray) -> list[np.ndarray]:
    """Invert :func:`flatten_rr_batch` (views into ``flat``, no copies)."""
    if sizes.size == 0:
        return []
    return np.split(flat, np.cumsum(sizes[:-1]))
