"""Wire plumbing for the network execution backend.

Frames are length-prefixed: an 8-byte big-endian payload size followed by
a pickled Python object (numpy index/RR arrays ride pickle's buffer
protocol, so a batch costs one serialization pass, same as the process
backend's pipes).  Pickle makes this a **trusted-cluster** transport —
the coordinator and its workers must live inside one security boundary,
exactly like the rest of a sampling fleet (they already share graph
bytes and code versions).  Do not expose a fleet port to untrusted
networks.

The module also holds the worker-side **blob cache**: graph blobs are
content-addressed (:class:`repro.graph.shm.GraphManifest`), so a worker
host stores each fetched blob under its hash and never fetches the same
graph twice — a rejoining host warm-starts from disk.  Cache entries are
verified against the manifest hash on load; a corrupt entry is dropped
and re-fetched rather than trusted.
"""

from __future__ import annotations

import os
import pickle
import socket
import struct
import tempfile

from repro.graph.shm import GraphManifest, blob_hash

_HEADER = struct.Struct(">Q")
# A frame is at most one graph blob or one RR batch; anything past this
# is a corrupt stream, not a bigger graph.
_MAX_FRAME = 1 << 34


class ConnectionClosed(Exception):
    """The peer closed the connection (EOF mid-frame or before one)."""


def send_frame(sock: socket.socket, message: object) -> None:
    """Serialize one message as a length-prefixed pickle frame."""
    payload = pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    sock.sendall(_HEADER.pack(len(payload)) + payload)


def _recv_exact(sock: socket.socket, count: int) -> bytes:
    chunks = []
    while count:
        chunk = sock.recv(min(count, 1 << 20))
        if not chunk:
            raise ConnectionClosed("peer closed the connection")
        chunks.append(chunk)
        count -= len(chunk)
    return b"".join(chunks)


def recv_frame(sock: socket.socket) -> object:
    """Read one length-prefixed frame; raises :class:`ConnectionClosed` on EOF."""
    size = _HEADER.unpack(_recv_exact(sock, _HEADER.size))[0]
    if size > _MAX_FRAME:
        raise ConnectionClosed(f"frame of {size} bytes exceeds the protocol maximum")
    return pickle.loads(_recv_exact(sock, size))


# ----------------------------------------------------------------------
# Content-addressed blob cache (worker side)
# ----------------------------------------------------------------------
def blob_cache_path(cache_dir: str, content_hash: str) -> str:
    """Where a blob with this content hash lives inside ``cache_dir``."""
    return os.path.join(cache_dir, f"csr-{content_hash}.blob")


def load_cached_blob(cache_dir: str | None, manifest: GraphManifest) -> "bytes | None":
    """Return the cached blob for ``manifest`` if present and intact.

    A cache entry whose bytes no longer hash to its name (torn write,
    disk corruption) is deleted and ``None`` returned, forcing a fresh
    fetch instead of sampling over garbage.
    """
    if cache_dir is None or not manifest.content_hash:
        return None
    path = blob_cache_path(cache_dir, manifest.content_hash)
    try:
        with open(path, "rb") as handle:
            blob = handle.read()
    except OSError:
        return None
    if blob_hash(blob) != manifest.content_hash:
        try:
            os.unlink(path)
        except OSError:
            pass
        return None
    return blob


def store_cached_blob(cache_dir: str | None, manifest: GraphManifest, blob: bytes) -> None:
    """Atomically store a verified blob under its content hash.

    Write-to-temp + rename keeps concurrent workers on one host safe: a
    reader either sees no entry or a complete one, never a torn write.
    """
    if cache_dir is None or not manifest.content_hash:
        return
    os.makedirs(cache_dir, exist_ok=True)
    path = blob_cache_path(cache_dir, manifest.content_hash)
    fd, tmp_path = tempfile.mkstemp(dir=cache_dir, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(tmp_path, path)
    except OSError:
        try:
            os.unlink(tmp_path)
        except OSError:
            pass


def parse_address(text: str) -> "tuple[str, int]":
    """``"HOST:PORT"`` -> ``(host, port)`` with a clear error on junk."""
    host, _, port = str(text).rpartition(":")
    if not host or not port.isdigit():
        raise ValueError(f"expected HOST:PORT, got {text!r}")
    return host, int(port)
