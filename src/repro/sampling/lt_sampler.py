"""RR-set generation under the Linear Threshold model.

Under LT, the random sample graph keeps *at most one* incoming edge per
node: edge (u, v) is kept with probability w(u, v), and no edge with
probability 1 - Σ_u w(u, v).  The reverse reachable set from root v is
therefore a random walk: from the current node, either stop (with the
residual probability) or hop to one in-neighbour drawn proportionally to
edge weight; the walk also stops when it would revisit a node (the kept
subgraph is a function, so the walk enters a cycle and nothing new can be
reached).

With weighted-cascade weights (Σ = 1) the walk always hops until a revisit
— matching Fig. 1's example construction.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.models import DiffusionModel
from repro.sampling.base import RRSampler
from repro.graph.digraph import CSRGraph


class LTSampler(RRSampler):
    """Reverse random-walk sampler producing LT RR sets."""

    model = DiffusionModel.LT

    def __init__(self, graph: CSRGraph, seed=None, *, roots=None, max_hops=None) -> None:
        super().__init__(graph, seed, roots=roots, max_hops=max_hops)
        # Global prefix-sum of in-edge weights: a single binary search per
        # hop finds the chosen in-neighbour (in-edges of v occupy the
        # contiguous range [in_indptr[v], in_indptr[v+1])).
        self._weight_prefix = np.concatenate(
            ([0.0], np.cumsum(graph.in_weights))
        )

    def _reverse_sample(self, root: int) -> np.ndarray:
        graph = self.graph
        stamp = self._visited_stamp
        gen = self._next_generation()
        rng = self.rng
        indptr = graph.in_indptr
        indices = graph.in_indices
        prefix = self._weight_prefix

        current = root
        stamp[root] = gen
        result = [root]
        hops_left = self.max_hops if self.max_hops is not None else -1
        while True:
            if hops_left == 0:
                break
            hops_left -= 1
            lo, hi = indptr[current], indptr[current + 1]
            if lo == hi:
                break
            draw = rng.random()
            if draw >= graph.in_weight_totals[current]:
                break  # the kept subgraph has no incoming edge here
            # Invert the CDF of this node's in-edge weights.
            pos = int(np.searchsorted(prefix, prefix[lo] + draw, side="right")) - 1
            pos = min(max(pos, lo), hi - 1)
            nxt = int(indices[pos])
            if stamp[nxt] == gen:
                break  # walk closed a cycle; nothing new reachable
            stamp[nxt] = gen
            result.append(nxt)
            current = nxt
        return np.asarray(result, dtype=np.int32)
