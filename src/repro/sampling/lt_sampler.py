"""RR-set generation under the Linear Threshold model.

Under LT, the random sample graph keeps *at most one* incoming edge per
node: edge (u, v) is kept with probability w(u, v), and no edge with
probability 1 - Σ_u w(u, v).  The reverse reachable set from root v is
therefore a random walk: from the current node, either stop (with the
residual probability) or hop to one in-neighbour drawn proportionally to
edge weight; the walk also stops when it would revisit a node (the kept
subgraph is a function, so the walk enters a cycle and nothing new can be
reached).

With weighted-cascade weights (Σ = 1) the walk always hops until a revisit
— matching Fig. 1's example construction.

The walk is one node per step — sequential *within* a set — so every
registered :mod:`~repro.sampling.kernels` kernel shares the same per-set
walk; the ``lt-batched`` kernel additionally advances a whole batch of
walks in lockstep (batch-parallel, byte-identical per set).  The sampler
dispatches through its kernel either way so the stream identity
(``stream_id``) is uniform across models.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.models import DiffusionModel
from repro.sampling.base import RRSampler
from repro.graph.digraph import CSRGraph


class LTSampler(RRSampler):
    """Reverse random-walk sampler producing LT RR sets."""

    model = DiffusionModel.LT

    def __init__(
        self,
        graph: CSRGraph,
        seed=None,
        *,
        roots=None,
        max_hops=None,
        kernel=None,
        graph_version: int = 0,
    ) -> None:
        super().__init__(
            graph, seed, roots=roots, max_hops=max_hops, kernel=kernel,
            graph_version=graph_version,
        )
        # Global prefix-sum of in-edge weights: a single binary search per
        # hop finds the chosen in-neighbour (in-edges of v occupy the
        # contiguous range [in_indptr[v], in_indptr[v+1])).
        self._weight_prefix = np.concatenate(
            ([0.0], np.cumsum(graph.in_weights))
        )

    def _reverse_sample(self, root: int) -> np.ndarray:
        return self.kernel.lt_sample(self, root)

    def _reverse_sample_block(self, indices, roots):
        return self.kernel.lt_sample_block(self, indices, roots)
