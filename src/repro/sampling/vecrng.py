"""Vectorized multi-lane PCG64 — many per-set generators stepped at once.

The batched kernels (:mod:`repro.sampling.kernels`) expand a whole root
batch per BFS step, which needs *per-lane* random draws: lane ``g``'s
coins must be byte-identical to what ``numpy.random.Generator(PCG64
(child(g)))`` would produce, in the same order, regardless of which
other lanes share the batch — the batch-composition-invariance half of
the seed-purity contract (``docs/INVARIANTS.md``).  numpy's Generator
is a scalar object; stepping 64 of them in a Python loop would cost
more than the batching saves.  This module replicates the exact PCG64
draw pipeline as numpy array arithmetic over a *vector* of generator
states:

* **seeding** — per-lane ``(state, inc)`` from the per-set SeedSequence
  child words (:func:`repro.sampling.seedstream._children_seed_words`),
  folded through ``pcg_setseq_128_srandom`` exactly as ``PCG64``'s
  constructor folds them;
* **stepping** — the 128-bit LCG ``s' = A·s + c (mod 2^128)`` runs in
  32-bit limbs stored in uint64 arrays (32×32 products are exact in 64
  bits; carries propagate limb by limb), so one numpy pass advances
  every lane;
* **jumps** — lane ``l`` needs ``k_l`` doubles per BFS step (its own
  frontier's edge count).  The LCG has closed-form jumps ``s_j = A^j·s
  + D_j·c`` with ``D_j = A·D_{j-1} + 1``, so per-*edge* states come
  from one gather of precomputed ``(A^j, D_j)`` tables by within-lane
  ordinal — no per-lane sequential loop — and the lane's advanced state
  is simply its last edge's state;
* **output** — PCG64's step-then-output XSL-RR (``rotr64(hi ^ lo,
  state >> 122)``), doubles as ``(out >> 11) · 2^-53``, and the bounded
  ``integers`` path as numpy's 32-bit Lemire rejection sampler with
  PCG64's low-half-first uint32 buffering (root draws).

Like :class:`~repro.sampling.seedstream.SeedStream`'s fast path, the
replication is **self-verified at construction** against real numpy
generators; on any disagreement (an exotic platform, a changed numpy)
:attr:`LaneEngine.ok` turns False and the batched kernels fall back to
per-set sampling — a slower path producing the *same bytes*, never a
different stream.
"""

from __future__ import annotations

import threading

import numpy as np

from repro.sampling.seedstream import SeedStream, _children_seed_words

#: PCG64's 128-bit LCG multiplier (matches seedstream._PCG_MULT).
_MULT = 0x2360ED051FC65DA44385DF649FCCF645
_M128 = (1 << 128) - 1
_M32 = np.uint64(0xFFFFFFFF)
_U32 = np.uint64(32)
_U64_1 = np.uint64(1)
_INV_2_53 = 2.0 ** -53

#: lanes per lockstep chunk in the batched kernels.  Each lockstep BFS
#: step costs a fixed number of numpy dispatches regardless of lane
#: count, so wider chunks amortize better; the cap only bounds peak
#: temporary memory (per-edge limb gathers).  Batch-composition
#: invariance makes the chunking unobservable in the stream.
MAX_LANES = 1024


def _int_to_limbs(value: int) -> np.ndarray:
    """One 128-bit int as a (4,) uint64 array of 32-bit limbs (LE)."""
    return np.asarray(
        [(value >> (32 * k)) & 0xFFFFFFFF for k in range(4)], dtype=np.uint64
    )


def _limbs_to_int(limbs: np.ndarray) -> int:
    return (
        int(limbs[0])
        | (int(limbs[1]) << 32)
        | (int(limbs[2]) << 64)
        | (int(limbs[3]) << 96)
    )


def _mul128(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise 128-bit product mod 2^128 of two (n, 4) limb arrays.

    32×32-bit limb products are exact in uint64; each column accumulates
    at most seven 32-bit halves (< 2^35), so the sums cannot overflow
    before the final carry propagation.
    """
    p00 = a[:, 0] * b[:, 0]
    p01 = a[:, 0] * b[:, 1]
    p10 = a[:, 1] * b[:, 0]
    p02 = a[:, 0] * b[:, 2]
    p11 = a[:, 1] * b[:, 1]
    p20 = a[:, 2] * b[:, 0]
    p03 = a[:, 0] * b[:, 3]
    p12 = a[:, 1] * b[:, 2]
    p21 = a[:, 2] * b[:, 1]
    p30 = a[:, 3] * b[:, 0]
    c1 = (p00 >> _U32) + (p01 & _M32) + (p10 & _M32)
    c2 = (p01 >> _U32) + (p10 >> _U32) + (p02 & _M32) + (p11 & _M32) + (p20 & _M32)
    c3 = (
        (p02 >> _U32)
        + (p11 >> _U32)
        + (p20 >> _U32)
        + (p03 & _M32)
        + (p12 & _M32)
        + (p21 & _M32)
        + (p30 & _M32)
    )
    out = np.empty_like(a)
    out[:, 0] = p00 & _M32
    s = c1
    out[:, 1] = s & _M32
    s = c2 + (s >> _U32)
    out[:, 2] = s & _M32
    s = c3 + (s >> _U32)
    out[:, 3] = s & _M32
    return out


def _add128(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Row-wise 128-bit sum mod 2^128 of two (n, 4) limb arrays."""
    out = np.empty_like(a)
    s = a[:, 0] + b[:, 0]
    out[:, 0] = s & _M32
    s = a[:, 1] + b[:, 1] + (s >> _U32)
    out[:, 1] = s & _M32
    s = a[:, 2] + b[:, 2] + (s >> _U32)
    out[:, 2] = s & _M32
    s = a[:, 3] + b[:, 3] + (s >> _U32)
    out[:, 3] = s & _M32
    return out


def _output64(state: np.ndarray) -> np.ndarray:
    """PCG64's XSL-RR output of each (n, 4) limb state: one uint64 per row."""
    lo = state[:, 0] | (state[:, 1] << _U32)
    hi = state[:, 2] | (state[:, 3] << _U32)
    rot = hi >> np.uint64(58)
    x = hi ^ lo
    return (x >> rot) | (x << ((np.uint64(64) - rot) & np.uint64(63)))


class _JumpTables:
    """Shared, growable tables of ``(A^j, D_j)`` limb rows, ``j ≤ cap``.

    The tables depend only on the PCG64 multiplier, so one copy serves
    every engine in the process.  Growth builds *new* arrays and swaps
    the references under a lock; readers snapshot the references first,
    so concurrent growth can never hand a reader a half-filled row.
    """

    def __init__(self, cap: int = 512) -> None:
        self._lock = threading.Lock()
        self._build(cap)

    def _build(self, cap: int) -> None:
        a_rows = np.empty((cap + 1, 4), dtype=np.uint64)
        d_rows = np.empty((cap + 1, 4), dtype=np.uint64)
        a_val, d_val = 1, 0
        for j in range(cap + 1):
            a_rows[j] = _int_to_limbs(a_val)
            d_rows[j] = _int_to_limbs(d_val)
            a_val = (a_val * _MULT) & _M128
            d_val = (d_val * _MULT + 1) & _M128
        self.a_rows = a_rows
        self.d_rows = d_rows
        self.cap = cap

    def rows(self, max_ordinal: int) -> "tuple[np.ndarray, np.ndarray]":
        """Table references covering ordinals up to ``max_ordinal``."""
        if max_ordinal > self.cap:
            with self._lock:
                if max_ordinal > self.cap:
                    cap = self.cap
                    while cap < max_ordinal:
                        cap *= 2
                    self._build(cap)
        return self.a_rows, self.d_rows


_TABLES = _JumpTables()


class LaneState:
    """Mutable per-lane generator states: ``(n, 4)`` limb arrays."""

    __slots__ = ("states", "incs")

    def __init__(self, states: np.ndarray, incs: np.ndarray) -> None:
        self.states = states
        self.incs = incs

    def __len__(self) -> int:
        return self.states.shape[0]


class LaneEngine:
    """Vectorized per-set PCG64 draws for one seed stream.

    Stateless apart from the stream's child-seed prefix; one engine per
    sampler (cached in ``sampler._scratch``) serves every batch.  All
    methods are exact replications of the numpy draw pipeline, verified
    at construction (:attr:`ok`); callers must fall back to per-set
    sampling when :attr:`ok` is False.
    """

    def __init__(self, seed_stream: SeedStream) -> None:
        self._prefix_words = seed_stream._prefix_words
        self.ok = bool(getattr(seed_stream, "_fast", False)) and self._verify(
            seed_stream
        )

    # ------------------------------------------------------------------
    # Seeding
    # ------------------------------------------------------------------
    def seed_lanes(self, indices: np.ndarray) -> LaneState:
        """Fresh generator states for the given global set indices.

        Vectorized ``pcg_setseq_128_srandom``: child seed words → 128-bit
        ``initstate``/``initseq`` → ``inc = (initseq << 1) | 1`` and one
        folding LCG step, per lane.
        """
        words = _children_seed_words(
            self._prefix_words, np.asarray(indices, dtype=np.uint64)
        )
        n = words.shape[0]
        initstate = np.empty((n, 4), dtype=np.uint64)
        initstate[:, 0] = words[:, 1] & _M32
        initstate[:, 1] = words[:, 1] >> _U32
        initstate[:, 2] = words[:, 0] & _M32
        initstate[:, 3] = words[:, 0] >> _U32
        initseq = np.empty((n, 4), dtype=np.uint64)
        initseq[:, 0] = words[:, 3] & _M32
        initseq[:, 1] = words[:, 3] >> _U32
        initseq[:, 2] = words[:, 2] & _M32
        initseq[:, 3] = words[:, 2] >> _U32
        # inc = (initseq << 1) | 1, limb-shifted with cross-limb carries.
        incs = np.empty((n, 4), dtype=np.uint64)
        incs[:, 0] = ((initseq[:, 0] << _U64_1) & _M32) | _U64_1
        incs[:, 1] = ((initseq[:, 1] << _U64_1) & _M32) | (initseq[:, 0] >> np.uint64(31))
        incs[:, 2] = ((initseq[:, 2] << _U64_1) & _M32) | (initseq[:, 1] >> np.uint64(31))
        incs[:, 3] = ((initseq[:, 3] << _U64_1) & _M32) | (initseq[:, 2] >> np.uint64(31))
        mult = np.broadcast_to(_int_to_limbs(_MULT), (n, 4))
        states = _add128(_mul128(_add128(incs, initstate), mult), incs)
        return LaneState(states, incs)

    # ------------------------------------------------------------------
    # Doubles
    # ------------------------------------------------------------------
    def fill_doubles(
        self,
        lane_state: LaneState,
        draw_lanes: np.ndarray,
        lane_counts: np.ndarray,
    ) -> np.ndarray:
        """One double per entry of ``draw_lanes``, in array order.

        ``draw_lanes`` must be lane-major (all of lane ``l``'s draws
        contiguous, in order) and ``lane_counts[l]`` its total draws.
        Lane states advance by their own counts — exactly as if each
        lane's Generator had produced its ``random()`` values alone.
        """
        total = draw_lanes.shape[0]
        if total == 0:
            return np.zeros(0, dtype=np.float64)
        lane_counts = np.asarray(lane_counts, dtype=np.int64)
        offsets = np.cumsum(lane_counts) - lane_counts
        ordinals = np.arange(1, total + 1, dtype=np.int64) - offsets[draw_lanes]
        a_rows, d_rows = _TABLES.rows(int(lane_counts.max()))
        s = lane_state.states[draw_lanes]
        c = lane_state.incs[draw_lanes]
        stepped = _add128(_mul128(a_rows[ordinals], s), _mul128(d_rows[ordinals], c))
        active = np.flatnonzero(lane_counts)
        last = offsets[active] + lane_counts[active] - 1
        lane_state.states[active] = stepped[last]
        return (_output64(stepped) >> np.uint64(11)) * _INV_2_53

    def one_double(self, lane_state: LaneState, lanes: np.ndarray) -> np.ndarray:
        """One double per listed lane (each advances one LCG step)."""
        if lanes.shape[0] == 0:
            return np.zeros(0, dtype=np.float64)
        s = lane_state.states[lanes]
        c = lane_state.incs[lanes]
        mult = np.broadcast_to(_int_to_limbs(_MULT), s.shape)
        stepped = _add128(_mul128(s, mult), c)
        lane_state.states[lanes] = stepped
        return (_output64(stepped) >> np.uint64(11)) * _INV_2_53

    # ------------------------------------------------------------------
    # Root draws
    # ------------------------------------------------------------------
    def draw_uniform_roots(
        self, lane_state: LaneState, n: int, lanes: "np.ndarray | None" = None
    ) -> np.ndarray:
        """``Generator.integers(n)`` per lane, on *freshly seeded* lanes.

        Replicates numpy's 32-bit Lemire rejection path (the one
        ``integers`` takes for ranges below 2^32): the first uint32 is
        the low half of one ``next64``; its buffered high half is only
        consumed by a rejection redraw, and is discarded by the doubles
        that follow — exactly PCG64's ``has_uint32`` semantics.  Lanes
        advance by ``ceil(half_draws / 2)`` LCG steps.  ``n`` must be in
        ``[2, 2^32 - 1]`` (callers guard; graphs larger than that cannot
        take this path).
        """
        if lanes is None:
            lanes = np.arange(len(lane_state), dtype=np.int64)
        if lanes.shape[0] == 0:
            return np.zeros(0, dtype=np.int64)
        s = lane_state.states[lanes]
        c = lane_state.incs[lanes]
        mult = np.broadcast_to(_int_to_limbs(_MULT), s.shape)
        stepped = _add128(_mul128(s, mult), c)
        lane_state.states[lanes] = stepped
        out = _output64(stepped)
        low32 = out & _M32
        m = low32 * np.uint64(n)
        leftover = m & _M32
        threshold = np.uint64((0x100000000 - n) % n)
        roots = (m >> _U32).astype(np.int64)
        rejected = np.flatnonzero(leftover < threshold)
        for pos in rejected:  # astronomically rare; replayed exactly
            lane = int(lanes[pos])
            state = _limbs_to_int(lane_state.states[lane])
            inc = _limbs_to_int(lane_state.incs[lane])
            buffered, has32 = int(out[pos]) >> 32, True
            while True:
                if has32:
                    u32, has32 = buffered, False
                else:
                    state = (state * _MULT + inc) & _M128
                    word = _output_int(state)
                    u32, buffered, has32 = word & 0xFFFFFFFF, word >> 32, True
                m_i = u32 * n
                if (m_i & 0xFFFFFFFF) >= int(threshold):
                    roots[pos] = m_i >> 32
                    break
            lane_state.states[lane] = _int_to_limbs(state)
        return roots

    def draw_weighted_roots(
        self,
        lane_state: LaneState,
        cumulative: np.ndarray,
        total: float,
        lanes: "np.ndarray | None" = None,
    ) -> np.ndarray:
        """``WeightedRoots.sample`` per lane: one double, inverse CDF."""
        if lanes is None:
            lanes = np.arange(len(lane_state), dtype=np.int64)
        draws = self.one_double(lane_state, lanes)
        return np.searchsorted(cumulative, draws * total, side="right").astype(
            np.int64
        )

    # ------------------------------------------------------------------
    # Self-verification
    # ------------------------------------------------------------------
    def _verify(self, seed_stream: SeedStream) -> bool:
        """Compare every draw path against real numpy generators once.

        Covers seeding, jump-table doubles with uneven lane counts, the
        single-step double, and the Lemire root draw (including the
        discarded-buffer interaction between ``integers`` and
        ``random``).  Any mismatch disables the engine — the kernels
        then produce the same stream per set, just without the batch
        fast path.
        """
        try:
            probe = np.asarray([0, 3], dtype=np.int64)
            n_probe = 12347
            refs = [seed_stream.generator_at(int(i)) for i in probe]
            want_roots = [int(r.integers(n_probe)) for r in refs]
            want_coins = [r.random(k) for r, k in zip(refs, (3, 5))]
            want_single = [float(r.random()) for r in refs]

            state = self.seed_lanes(probe)
            got_roots = self.draw_uniform_roots(state, n_probe)
            lane_counts = np.asarray([3, 5], dtype=np.int64)
            draw_lanes = np.repeat(np.arange(2), lane_counts)
            got_coins = self.fill_doubles(state, draw_lanes, lane_counts)
            got_single = self.one_double(state, np.arange(2))
            return (
                list(got_roots) == want_roots
                and np.array_equal(got_coins[:3], want_coins[0])
                and np.array_equal(got_coins[3:], want_coins[1])
                and list(got_single) == want_single
            )
        except Exception:
            return False

    @classmethod
    def for_sampler(cls, sampler) -> "LaneEngine":
        """The sampler's cached engine (constructed on first use)."""
        engine = sampler._scratch.get("lane_engine")
        if engine is None:
            engine = cls(sampler.seed_stream)
            sampler._scratch["lane_engine"] = engine
        return engine


def _output_int(state: int) -> int:
    """Scalar XSL-RR output (Python ints; the rare rejection path)."""
    hi, lo = state >> 64, state & 0xFFFFFFFFFFFFFFFF
    rot = state >> 122
    x = hi ^ lo
    return ((x >> rot) | (x << ((64 - rot) & 63))) & 0xFFFFFFFFFFFFFFFF
