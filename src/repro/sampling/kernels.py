"""Pluggable reverse-sampling kernels: how one RR set gets computed.

The paper's cost model is ``time = number of RR sets × cost per RR set``.
The execution backends (:mod:`repro.sampling.backends`) attack the first
factor by sharding sets across workers; a *kernel* attacks the second —
it is the inner loop that turns one root into one RR set.  Two kernels
ship:

* ``scalar`` — the reference implementation: reverse BFS expanding one
  frontier node at a time, flipping one coin batch per node (the
  library's historical draw order within a set).
* ``vectorized`` — frontier-at-once expansion: each BFS step gathers the
  in-adjacency slices of the *entire* frontier with CSR range arithmetic
  (``np.repeat`` over degrees + a flat ``arange``), flips a single
  ``rng.random(total_edges)`` coin batch, filters live edges against the
  edge weights, and dedupes newly visited nodes against the
  generation-stamp array — no Python inner loop anywhere.

Both kernels sample the *same distribution* over RR sets (each in-edge
of an expanded node gets exactly one coin, by the deferred-decision
principle), but they consume the RNG in different orders, so their
streams are **not** byte-compatible.  Every kernel therefore carries a
``stream_id`` (name + version); samplers stamp it into their
``state_dict``, pools key on it, and the spill store refuses to reattach
a pool onto a different stream.  Byte-identity guarantees — backend,
batching, and worker-count invariance, warm-vs-cold equality — hold
exactly *within* a stream_id; *across* kernels agreement is
distributional and is verified statistically
(``tests/sampling/test_kernels.py``).

The version component covers the whole stream derivation, not just the
kernel's inner loop.  ``*-v1`` streams derived per-set RNGs from
per-*worker* spawned generators (identity ``(seed, workers)``); ``*-v2``
streams derive one SeedSequence child per RR set
(:mod:`repro.sampling.seedstream`), making the stream a pure function of
the seed alone.  v1 state blobs and spill stamps are therefore not
restorable onto v2 samplers — a clean refusal / cache miss, never silent
mixing; :data:`LEGACY_STREAM_ID` names what an unstamped legacy state
means.

Under the LT model an RR set is a reverse random walk — one node per
step, nothing to batch — so both kernels share the walk implementation
(their LT streams coincide); the ``stream_id`` still differs, which
keeps pooling conservative and the contract simple.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SamplingError

_EMPTY_INT32 = np.zeros(0, dtype=np.int32)


class SamplingKernel:
    """One reverse-sampling strategy, shared stateless across samplers.

    A kernel owns no RNG and no scratch memory — it operates on the
    sampler handed to it (its graph, its generation-stamp array, its
    generator), so one registered instance serves every sampler in the
    process.  ``ic_sample`` must implement IC reverse BFS;
    :meth:`lt_sample` defaults to the shared LT reverse walk.
    """

    #: registry / CLI name, overridden by implementations.
    name = "abstract"
    #: bumped whenever the stream changes — the kernel's RNG draw order
    #: *or* the library-wide seed derivation (v2 = seed-pure per-set
    #: SeedSequence children; v1 = legacy per-worker spawned streams).
    version = 2

    @property
    def stream_id(self) -> str:
        """Stream-compatibility token: two samplers interoperate (pool
        sharing, spill reattach, state restore) iff their ``stream_id``
        matches."""
        return f"{self.name}-v{self.version}"

    def ic_sample(self, sampler, root: int) -> np.ndarray:
        """Produce the IC RR set anchored at ``root`` (includes the root)."""
        raise NotImplementedError

    def lt_sample(self, sampler, root: int) -> np.ndarray:
        """Produce the LT RR set anchored at ``root``: the reverse walk.

        The walk draws one uniform per hop (stop with the residual
        probability, else hop to an in-neighbour by inverse-CDF over the
        prefix-summed edge weights) and stops on a revisit.  Sequential
        by nature, so every kernel shares this implementation.
        """
        graph = sampler.graph
        stamp = sampler._visited_stamp
        gen = sampler._next_generation()
        rng = sampler.rng
        indptr = graph.in_indptr
        indices = graph.in_indices
        prefix = sampler._weight_prefix

        current = root
        stamp[root] = gen
        result = [root]
        hops_left = sampler.max_hops if sampler.max_hops is not None else -1
        while True:
            if hops_left == 0:
                break
            hops_left -= 1
            lo, hi = indptr[current], indptr[current + 1]
            if lo == hi:
                break
            draw = rng.random()
            if draw >= graph.in_weight_totals[current]:
                break  # the kept subgraph has no incoming edge here
            # Invert the CDF of this node's in-edge weights.
            pos = int(np.searchsorted(prefix, prefix[lo] + draw, side="right")) - 1
            pos = min(max(pos, lo), hi - 1)
            nxt = int(indices[pos])
            if stamp[nxt] == gen:
                break  # walk closed a cycle; nothing new reachable
            stamp[nxt] = gen
            result.append(nxt)
            current = nxt
        return np.asarray(result, dtype=np.int32)


class ScalarKernel(SamplingKernel):
    """Reference kernel: per-node frontier expansion.

    One ``rng.random(deg)`` coin batch per expanded node, in frontier
    order — the draw order the library has always used *within* one RR
    set.  Stamping and result growth are numpy mask operations (no
    per-element Python loop), which changes nothing about the stream.
    """

    name = "scalar"
    version = 2

    def ic_sample(self, sampler, root: int) -> np.ndarray:
        graph = sampler.graph
        stamp = sampler._visited_stamp
        gen = sampler._next_generation()
        rng = sampler.rng

        indptr = graph.in_indptr
        indices = graph.in_indices
        weights = graph.in_weights
        hops_left = sampler.max_hops if sampler.max_hops is not None else -1

        stamp[root] = gen
        pieces = [np.asarray([root], dtype=np.int32)]
        frontier = pieces[0]
        while frontier.size:
            if hops_left == 0:
                break
            hops_left -= 1
            step_pieces = []
            for v in frontier:
                lo, hi = indptr[v], indptr[v + 1]
                if lo == hi:
                    continue
                coins = rng.random(hi - lo)
                live = indices[lo:hi][coins < weights[lo:hi]]
                fresh = live[stamp[live] != gen]
                if fresh.size:
                    stamp[fresh] = gen
                    step_pieces.append(fresh)
            frontier = (
                np.concatenate(step_pieces) if step_pieces else _EMPTY_INT32
            )
            if frontier.size:
                pieces.append(frontier)
        return np.concatenate(pieces) if len(pieces) > 1 else pieces[0]


class VectorizedKernel(SamplingKernel):
    """Frontier-at-once kernel: one coin batch per BFS *step*.

    Each step gathers every frontier node's in-edge slice from the CSR
    arrays in one shot: with per-node degrees ``deg = indptr[f+1] -
    indptr[f]``, the flat edge positions are ``np.arange(deg.sum()) +
    np.repeat(starts - cumulative_offsets, deg)`` — pure range
    arithmetic, no loop.  A single ``rng.random(total_edges)`` batch
    decides liveness against ``in_weights``, and the surviving endpoints
    are deduped against the generation-stamp array (``np.unique`` for
    batch-internal repeats, a stamp mask for earlier generations).

    Per-edge work is identical to the scalar kernel — every in-edge of
    an expanded node flips exactly one coin — so the RR-set distribution
    is unchanged; only the RNG draw *order* (and the within-step node
    order, which is sorted) differs, hence the distinct ``stream_id``.

    Size-adaptive shortcuts keep small cascades cheap without touching
    the stream: tiny frontiers gather per node (numpy's
    ``Generator.random`` draws doubles sequentially with no buffering,
    so per-node coin batches consume byte-for-byte the same draws as one
    step-wide batch — ``tests/sampling/test_kernels.py`` pins this
    batch-split invariance), and batch dedup switches from ``np.unique``
    (sort) to a reusable node-flag array once the candidate batch is
    large enough for O(E log E) sorting to lose to O(n) flag scans.
    Either way each step's output is the same sorted fresh-node array,
    so the stream is a pure function of the seed alone.
    """

    name = "vectorized"
    version = 2

    #: frontier size up to which per-node CSR slicing beats the gather.
    _PER_NODE_MAX = 4
    #: candidate-batch size above which flag-array dedup beats sorting.
    _FLAG_DEDUP_MIN = 64

    def ic_sample(self, sampler, root: int) -> np.ndarray:
        graph = sampler.graph
        stamp = sampler._visited_stamp
        gen = sampler._next_generation()
        rng = sampler.rng

        indptr = graph.in_indptr
        indices = graph.in_indices
        weights = graph.in_weights
        hops_left = sampler.max_hops if sampler.max_hops is not None else -1
        flags = sampler._scratch.get("vectorized_flags")

        stamp[root] = gen
        pieces = [np.asarray([root], dtype=np.int32)]
        frontier = pieces[0]
        while frontier.size:
            if hops_left == 0:
                break
            hops_left -= 1
            if frontier.size == 1:
                # One-node frontier: its slice *is* the gathered range.
                lo, hi = indptr[frontier[0]], indptr[frontier[0] + 1]
                if lo == hi:
                    break
                coins = rng.random(hi - lo)
                candidates = indices[lo:hi][coins < weights[lo:hi]]
            elif frontier.size <= self._PER_NODE_MAX:
                # Tiny frontier: per-node slices, same draws as the batch
                # (batch-split invariance of Generator.random).
                parts = []
                for v in frontier:
                    lo, hi = indptr[v], indptr[v + 1]
                    if lo == hi:
                        continue
                    coins = rng.random(hi - lo)
                    sel = indices[lo:hi][coins < weights[lo:hi]]
                    if sel.size:
                        parts.append(sel)
                candidates = (
                    np.concatenate(parts) if len(parts) > 1
                    else parts[0] if parts else _EMPTY_INT32
                )
            else:
                starts = indptr[frontier]
                degs = indptr[frontier + 1] - starts
                total = int(degs.sum())
                if total == 0:
                    break
                # Flat positions of every frontier in-edge: node i's slice
                # lands at [offsets[i], offsets[i+1]) of the gathered
                # range, and position j inside the range maps back to
                # starts[i] + (j - offsets[i]).
                offsets = np.cumsum(degs) - degs
                positions = np.arange(total, dtype=np.int64) + np.repeat(
                    starts - offsets, degs
                )
                coins = rng.random(total)
                live = positions[coins < weights[positions]]
                candidates = indices[live]
            if candidates.size == 0:
                break
            # Dedup batch-internal repeats and drop already-visited nodes —
            # numpy only, output sorted either way.
            if candidates.size > self._FLAG_DEDUP_MIN:
                if flags is None:
                    flags = np.zeros(graph.n, dtype=bool)
                    sampler._scratch["vectorized_flags"] = flags
                flags[candidates] = True
                fresh = np.flatnonzero(flags).astype(np.int32, copy=False)
                flags[fresh] = False
            else:
                fresh = np.unique(candidates)
            fresh = fresh[stamp[fresh] != gen]
            if fresh.size == 0:
                break
            stamp[fresh] = gen
            pieces.append(fresh)
            frontier = fresh
        return np.concatenate(pieces) if len(pieces) > 1 else pieces[0]


#: registry keyed by CLI / API name.
KERNELS: dict[str, SamplingKernel] = {
    ScalarKernel.name: ScalarKernel(),
    VectorizedKernel.name: VectorizedKernel(),
}

#: the historical draw order — the default everywhere a kernel is not named.
DEFAULT_KERNEL = ScalarKernel.name

#: stream token of the default kernel at the current derivation version.
DEFAULT_STREAM_ID = KERNELS[DEFAULT_KERNEL].stream_id

#: what an *unstamped* legacy state/spill means: the scalar draw order
#: under the v1 (per-worker spawned) derivation.  Not restorable onto
#: current samplers — kept so mismatches are named, not mysterious.
LEGACY_STREAM_ID = "scalar-v1"


def make_kernel(kernel: "str | SamplingKernel | None") -> SamplingKernel:
    """Coerce a kernel name (or pass through an instance) to a kernel.

    ``None`` means the default (:class:`ScalarKernel`) — the stream the
    library produced before kernels existed.
    """
    if kernel is None:
        return KERNELS[DEFAULT_KERNEL]
    if isinstance(kernel, SamplingKernel):
        return kernel
    key = str(kernel).strip().lower()
    if key not in KERNELS:
        raise SamplingError(
            f"unknown sampling kernel {kernel!r}; known: {sorted(KERNELS)}"
        )
    return KERNELS[key]


def list_kernels() -> tuple:
    """Registered kernel names in registration order."""
    return tuple(KERNELS)


def check_stream_id(state: dict, expected: str) -> None:
    """Reject restoring a stream position onto a different stream.

    States captured before kernels existed carry no ``stream_id``; they
    were produced by the historical scalar draw order under the legacy
    v1 derivation, so a missing field means :data:`LEGACY_STREAM_ID`.
    """
    got = state.get("stream_id", LEGACY_STREAM_ID)
    if got != expected:
        raise SamplingError(
            f"stream position was captured on stream {got!r}; this "
            f"sampler produces {expected!r} — the streams are not "
            "byte-compatible"
        )
