"""Pluggable reverse-sampling kernels: how RR sets get computed.

The paper's cost model is ``time = number of RR sets × cost per RR set``.
The execution backends (:mod:`repro.sampling.backends`) attack the first
factor by sharding sets across workers; a *kernel* attacks the second —
it is the inner loop that turns roots into RR sets.  Four kernels ship:

* ``scalar`` — the reference implementation: reverse BFS expanding one
  frontier node at a time, flipping one coin batch per node (the
  library's historical draw order within a set).
* ``vectorized`` — frontier-at-once expansion: each BFS step gathers the
  in-adjacency slices of the *entire* frontier with CSR range arithmetic
  (``np.repeat`` over degrees + a flat ``arange``), flips a single
  ``rng.random(total_edges)`` coin batch, filters live edges against the
  edge weights, and dedupes newly visited nodes against the
  generation-stamp array — no Python inner loop anywhere.
* ``batched`` — batch-at-once expansion: a whole block of sets (up to
  :data:`~repro.sampling.vecrng.MAX_LANES` "lanes") runs its reverse
  BFS in lockstep.  Frontier arrays carry a set-id *lane* column; each step
  does a single CSR gather across every live set's frontier and flips
  all lanes' coins in one vectorized multi-lane PCG64 pass
  (:mod:`repro.sampling.vecrng`) — per-*set* dispatch cost (generator
  derivation, Python/numpy call overhead) amortizes to near zero, which
  is where weighted-cascade workloads (mean RR size ~6) spend their
  time.  Per set, the draws and bytes are exactly the ``vectorized``
  stream.
* ``lt-batched`` — ``batched`` plus a lockstep LT kernel: a batch of
  reverse random walks advances one hop per step for all still-walking
  lanes, inverting per-node in-edge CDFs with one vectorized
  ``searchsorted`` across lanes.  Per set, the walk draws exactly the
  shared scalar-walk stream.

All kernels sample the *same distribution* over RR sets (each in-edge
of an expanded node gets exactly one coin, by the deferred-decision
principle), but they may consume the RNG in different orders, so their
streams are **not** byte-compatible in general.  Every kernel therefore
carries a ``stream_id`` (name + version); samplers stamp it into their
``state_dict``, pools key on it, and the spill store refuses to reattach
a pool onto a different stream.  Byte-identity guarantees — backend,
batching, and worker-count invariance, warm-vs-cold equality — hold
exactly *within* a stream_id; *across* kernels agreement is
distributional and is verified statistically
(``tests/sampling/test_kernels.py``).

**Batch-composition invariance.**  The batched kernels serve whole
index blocks (:meth:`SamplingKernel.ic_sample_block`), but batching is
a *throughput* property, never a stream property: lane ``g`` draws
every coin from its own per-set SeedSequence child in a pinned
per-step order, so set ``g``'s bytes are a pure function of the seed
alone — identical at batch sizes 1, 7, or 64, under any neighbours,
on any backend (``docs/INVARIANTS.md``; pinned by
``tests/sampling/test_kernels.py``).  The multi-lane RNG self-verifies
against numpy at construction and the kernels fall back to per-set
sampling — same bytes, no fast path — if it ever disagrees.

``"auto"`` (:data:`AUTO_KERNEL`) is a *selection policy*, not a kernel:
:func:`repro.sampling.base.resolve_kernel` resolves it against a graph
and model (LT → ``lt-batched``; IC → ``batched`` or ``vectorized`` by
observed mean RR size from a deterministic scalar pilot), and only the
resolved name ever reaches streams, pools, or provenance.

The version component covers the whole stream derivation, not just the
kernel's inner loop.  ``*-v1`` streams derived per-set RNGs from
per-*worker* spawned generators (identity ``(seed, workers)``); ``*-v2``
streams derive one SeedSequence child per RR set
(:mod:`repro.sampling.seedstream`), making the stream a pure function of
the seed alone.  v1 state blobs and spill stamps are therefore not
restorable onto v2 samplers — a clean refusal / cache miss, never silent
mixing; :data:`LEGACY_STREAM_ID` names what an unstamped legacy state
means.

Under the LT model an RR set is a reverse random walk — one node per
step, nothing to batch — so both kernels share the walk implementation
(their LT streams coincide); the ``stream_id`` still differs, which
keeps pooling conservative and the contract simple.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import SamplingError
from repro.sampling.roots import UniformRoots, WeightedRoots
from repro.sampling.vecrng import MAX_LANES, LaneEngine

_EMPTY_INT32 = np.zeros(0, dtype=np.int32)


class _LaneVisited:
    """Visited set of a lockstep chunk: sorted ``lane * n + node`` keys.

    RR sets in the batched kernels' target regime are small, so the
    whole chunk's visited set stays tiny; a sorted key array gives
    vectorized membership (one ``searchsorted``) and vectorized insert
    (merge two sorted runs) with no per-lane bit budget — which is what
    lets a chunk carry hundreds of lanes instead of 64.
    """

    __slots__ = ("keys",)

    def __init__(self, keys: np.ndarray) -> None:
        self.keys = keys  # sorted, unique

    def seen(self, keys: np.ndarray) -> np.ndarray:
        """Membership mask for (unique) candidate keys."""
        acc = self.keys
        pos = np.minimum(np.searchsorted(acc, keys), acc.shape[0] - 1)
        return acc[pos] == keys

    def add(self, keys: np.ndarray) -> None:
        """Insert sorted keys known to be absent."""
        # Two sorted runs: mergesort (timsort) detects and merges them.
        self.keys = np.sort(np.concatenate([self.keys, keys]), kind="mergesort")


def _sorted_unique(values: np.ndarray) -> np.ndarray:
    """``np.unique`` minus its Python-level wrapper overhead.

    The wc-regime hot path dedups a handful of candidates per BFS step;
    profiling shows ``np.unique``'s dispatch layer (masked-array checks,
    tuple packing) costing several times the actual sort at those sizes.
    Same output — sorted, duplicates dropped — so streams are unchanged
    (dedup consumes no RNG draws).
    """
    if values.size <= 1:
        return values
    values = np.sort(values)
    keep = np.empty(values.shape, dtype=bool)
    keep[0] = True
    np.not_equal(values[1:], values[:-1], out=keep[1:])
    return values[keep]


def _per_set_block(sampler, indices, roots) -> "list[np.ndarray]":
    """Reference batch semantics: one :meth:`sample_at` per index.

    A negative root entry means "this set draws its own root" (the
    backends' wire convention for unpinned sets in a pinned batch).
    """
    if roots is None:
        return [sampler.sample_at(int(g)) for g in indices]
    out = []
    for g, r in zip(indices, roots):
        r = int(r)
        out.append(
            sampler.sample_at(int(g)) if r < 0 else sampler.sample_at(int(g), r)
        )
    return out


def _lane_roots_supported(roots) -> bool:
    """Can the lane engine replicate this root distribution's draws?

    Exact-type checks: a subclass may override ``sample``, and the
    engine replicates the base implementations bit for bit — anything
    else falls back to per-set sampling (same bytes, no fast path).
    The uniform cap is the engine's 32-bit Lemire range.
    """
    if type(roots) is UniformRoots:
        return roots.n <= 0xFFFFFFFF
    return type(roots) is WeightedRoots


def _lane_roots(engine, state, roots, pinned) -> np.ndarray:
    """Per-lane root column: pinned where given, else each lane draws
    its own root from its own generator (replicating ``roots.sample``)."""
    if pinned is None:
        return _draw_lane_roots(engine, state, roots, None)
    pinned = np.asarray(pinned, dtype=np.int64)
    unpinned = np.flatnonzero(pinned < 0)
    out = pinned.copy()
    if unpinned.size:
        out[unpinned] = _draw_lane_roots(engine, state, roots, unpinned)
    return out


def _draw_lane_roots(engine, state, roots, lanes) -> np.ndarray:
    if type(roots) is UniformRoots:
        if roots.n == 1:  # numpy's integers(1) draws nothing
            k = len(state) if lanes is None else lanes.shape[0]
            return np.zeros(k, dtype=np.int64)
        return engine.draw_uniform_roots(state, roots.n, lanes)
    return engine.draw_weighted_roots(state, roots._cumulative, roots._total, lanes)


def _lt_walk_tables(sampler) -> tuple:
    """Per-node LT walk tables, built once per sampler and cached.

    ``views[v]`` is node ``v``'s slice of the graph-wide weight prefix
    (``prefix[lo : hi + 1]``, a view — no copy), ``neighbours`` /
    ``totals`` / ``starts`` are plain Python lists so the hot loop never
    pays numpy scalar-indexing overhead.  Keyed in ``sampler._scratch``,
    which graph rebinds invalidate along with every other graph-shaped
    buffer.
    """
    tables = sampler._scratch.get("lt_walk_tables")
    if tables is None:
        graph = sampler.graph
        prefix = sampler._weight_prefix
        bounds = graph.in_indptr.tolist()
        views = [
            prefix[lo : hi + 1] for lo, hi in zip(bounds[:-1], bounds[1:])
        ]
        tables = (
            views,
            graph.in_indices.tolist(),
            graph.in_weight_totals.tolist(),
            bounds,
        )
        sampler._scratch["lt_walk_tables"] = tables
    return tables


class SamplingKernel:
    """One reverse-sampling strategy, shared stateless across samplers.

    A kernel owns no RNG and no scratch memory — it operates on the
    sampler handed to it (its graph, its generation-stamp array, its
    generator), so one registered instance serves every sampler in the
    process.  ``ic_sample`` must implement IC reverse BFS;
    :meth:`lt_sample` defaults to the shared LT reverse walk.
    """

    #: registry / CLI name, overridden by implementations.
    name = "abstract"
    #: bumped whenever the stream changes — the kernel's RNG draw order
    #: *or* the library-wide seed derivation (v2 = seed-pure per-set
    #: SeedSequence children; v1 = legacy per-worker spawned streams).
    version = 2

    @property
    def stream_id(self) -> str:
        """Stream-compatibility token: two samplers interoperate (pool
        sharing, spill reattach, state restore) iff their ``stream_id``
        matches."""
        return f"{self.name}-v{self.version}"

    def ic_sample(self, sampler, root: int) -> np.ndarray:
        """Produce the IC RR set anchored at ``root`` (includes the root)."""
        raise NotImplementedError

    def ic_sample_block(self, sampler, indices, roots=None) -> "list[np.ndarray]":
        """IC RR sets for a batch of global stream indices.

        The batch-level hook the backends dispatch through.  Entry ``i``
        must be byte-identical to ``sampler.sample_at(indices[i])`` —
        batching is a throughput property, not a stream property (batch-
        composition invariance, ``docs/INVARIANTS.md``).  ``roots[i] >=
        0`` pins set ``i``'s root; negative or absent means the set
        draws its own.  The default is the per-set reference loop;
        batched kernels override it with a lockstep fast path.
        """
        return _per_set_block(sampler, indices, roots)

    def lt_sample_block(self, sampler, indices, roots=None) -> "list[np.ndarray]":
        """LT counterpart of :meth:`ic_sample_block` (same contract)."""
        return _per_set_block(sampler, indices, roots)

    def lt_sample(self, sampler, root: int) -> np.ndarray:
        """Produce the LT RR set anchored at ``root``: the reverse walk.

        The walk draws one uniform per hop (stop with the residual
        probability, else hop to an in-neighbour by inverse-CDF over the
        prefix-summed edge weights) and stops on a revisit.  Sequential
        by nature, so every kernel shares this implementation.

        The hop body works on per-node tables built once per sampler
        (:func:`_lt_walk_tables`): CDF inversion searches the node's own
        prefix *slice* (a view — same floats, same ``side="right"``
        result as searching the graph-wide prefix and clipping, since
        the prefix is non-decreasing and the target lands inside the
        node's range), and neighbour/total lookups are plain-list reads
        instead of per-hop numpy scalar indexing.  Draw count and draw
        order are unchanged, so the stream is byte-identical to the
        historical implementation.
        """
        stamp = sampler._visited_stamp
        gen = sampler._next_generation()
        rng = sampler.rng
        views, neighbours, totals, starts = _lt_walk_tables(sampler)

        current = root
        stamp[root] = gen
        result = [root]
        random = rng.random
        hops_left = sampler.max_hops if sampler.max_hops is not None else -1
        while hops_left != 0:
            hops_left -= 1
            view = views[current]
            deg = view.shape[0] - 1
            if deg == 0:
                break
            draw = random()
            if draw >= totals[current]:
                break  # the kept subgraph has no incoming edge here
            # Invert the CDF of this node's in-edge weights on its slice.
            j = view.searchsorted(view[0] + draw, side="right") - 1
            if j < 0:
                j = 0
            elif j >= deg:
                j = deg - 1
            nxt = neighbours[starts[current] + j]
            if stamp[nxt] == gen:
                break  # walk closed a cycle; nothing new reachable
            stamp[nxt] = gen
            result.append(nxt)
            current = nxt
        return np.asarray(result, dtype=np.int32)


class ScalarKernel(SamplingKernel):
    """Reference kernel: per-node frontier expansion.

    One ``rng.random(deg)`` coin batch per expanded node, in frontier
    order — the draw order the library has always used *within* one RR
    set.  Stamping and result growth are numpy mask operations (no
    per-element Python loop), which changes nothing about the stream.
    """

    name = "scalar"
    version = 2

    def ic_sample(self, sampler, root: int) -> np.ndarray:
        graph = sampler.graph
        stamp = sampler._visited_stamp
        gen = sampler._next_generation()
        rng = sampler.rng

        indptr = graph.in_indptr
        indices = graph.in_indices
        weights = graph.in_weights
        hops_left = sampler.max_hops if sampler.max_hops is not None else -1

        stamp[root] = gen
        pieces = [np.asarray([root], dtype=np.int32)]
        frontier = pieces[0]
        while frontier.size:
            if hops_left == 0:
                break
            hops_left -= 1
            step_pieces = []
            for v in frontier:
                lo, hi = indptr[v], indptr[v + 1]
                if lo == hi:
                    continue
                coins = rng.random(hi - lo)
                live = indices[lo:hi][coins < weights[lo:hi]]
                fresh = live[stamp[live] != gen]
                if fresh.size:
                    stamp[fresh] = gen
                    step_pieces.append(fresh)
            frontier = (
                np.concatenate(step_pieces) if step_pieces else _EMPTY_INT32
            )
            if frontier.size:
                pieces.append(frontier)
        return np.concatenate(pieces) if len(pieces) > 1 else pieces[0]


class VectorizedKernel(SamplingKernel):
    """Frontier-at-once kernel: one coin batch per BFS *step*.

    Each step gathers every frontier node's in-edge slice from the CSR
    arrays in one shot: with per-node degrees ``deg = indptr[f+1] -
    indptr[f]``, the flat edge positions are ``np.arange(deg.sum()) +
    np.repeat(starts - cumulative_offsets, deg)`` — pure range
    arithmetic, no loop.  A single ``rng.random(total_edges)`` batch
    decides liveness against ``in_weights``, and the surviving endpoints
    are deduped against the generation-stamp array (``np.unique`` for
    batch-internal repeats, a stamp mask for earlier generations).

    Per-edge work is identical to the scalar kernel — every in-edge of
    an expanded node flips exactly one coin — so the RR-set distribution
    is unchanged; only the RNG draw *order* (and the within-step node
    order, which is sorted) differs, hence the distinct ``stream_id``.

    Size-adaptive shortcuts keep small cascades cheap without touching
    the stream: tiny frontiers gather per node (numpy's
    ``Generator.random`` draws doubles sequentially with no buffering,
    so per-node coin batches consume byte-for-byte the same draws as one
    step-wide batch — ``tests/sampling/test_kernels.py`` pins this
    batch-split invariance), and batch dedup switches from a raw
    sort-and-mask pass (:func:`_sorted_unique` — ``np.unique`` without
    its wrapper overhead) to a reusable node-flag array once the
    candidate batch is large enough for O(E log E) sorting to lose to
    O(n) flag scans.
    Either way each step's output is the same sorted fresh-node array,
    so the stream is a pure function of the seed alone.
    """

    name = "vectorized"
    version = 2

    #: frontier size up to which per-node CSR slicing beats the gather.
    _PER_NODE_MAX = 4
    #: candidate-batch size above which flag-array dedup beats sorting.
    _FLAG_DEDUP_MIN = 64

    def ic_sample(self, sampler, root: int) -> np.ndarray:
        graph = sampler.graph
        stamp = sampler._visited_stamp
        gen = sampler._next_generation()
        rng = sampler.rng

        indptr = graph.in_indptr
        indices = graph.in_indices
        weights = graph.in_weights
        hops_left = sampler.max_hops if sampler.max_hops is not None else -1
        flags = sampler._scratch.get("vectorized_flags")

        stamp[root] = gen
        pieces = [np.asarray([root], dtype=np.int32)]
        frontier = pieces[0]
        while frontier.size:
            if hops_left == 0:
                break
            hops_left -= 1
            if frontier.size == 1:
                # One-node frontier: its slice *is* the gathered range.
                lo, hi = indptr[frontier[0]], indptr[frontier[0] + 1]
                if lo == hi:
                    break
                coins = rng.random(hi - lo)
                candidates = indices[lo:hi][coins < weights[lo:hi]]
            elif frontier.size <= self._PER_NODE_MAX:
                # Tiny frontier: per-node slices, same draws as the batch
                # (batch-split invariance of Generator.random).
                parts = []
                for v in frontier:
                    lo, hi = indptr[v], indptr[v + 1]
                    if lo == hi:
                        continue
                    coins = rng.random(hi - lo)
                    sel = indices[lo:hi][coins < weights[lo:hi]]
                    if sel.size:
                        parts.append(sel)
                candidates = (
                    np.concatenate(parts) if len(parts) > 1
                    else parts[0] if parts else _EMPTY_INT32
                )
            else:
                starts = indptr[frontier]
                degs = indptr[frontier + 1] - starts
                total = int(degs.sum())
                if total == 0:
                    break
                # Flat positions of every frontier in-edge: node i's slice
                # lands at [offsets[i], offsets[i+1]) of the gathered
                # range, and position j inside the range maps back to
                # starts[i] + (j - offsets[i]).
                offsets = np.cumsum(degs) - degs
                positions = np.arange(total, dtype=np.int64) + np.repeat(
                    starts - offsets, degs
                )
                coins = rng.random(total)
                live = positions[coins < weights[positions]]
                candidates = indices[live]
            if candidates.size == 0:
                break
            # Dedup batch-internal repeats and drop already-visited nodes —
            # numpy only, output sorted either way.
            if candidates.size > self._FLAG_DEDUP_MIN:
                if flags is None:
                    flags = np.zeros(graph.n, dtype=bool)
                    sampler._scratch["vectorized_flags"] = flags
                flags[candidates] = True
                fresh = np.flatnonzero(flags).astype(np.int32, copy=False)
                flags[fresh] = False
            else:
                fresh = _sorted_unique(candidates)
            fresh = fresh[stamp[fresh] != gen]
            if fresh.size == 0:
                break
            stamp[fresh] = gen
            pieces.append(fresh)
            frontier = fresh
        return np.concatenate(pieces) if len(pieces) > 1 else pieces[0]


class BatchedKernel(VectorizedKernel):
    """Batch-at-once IC kernel: a root batch's BFS runs in lockstep.

    :meth:`ic_sample_block` expands the frontiers of up to
    :data:`~repro.sampling.vecrng.MAX_LANES` sets ("lanes") per step:
    frontier arrays carry a lane column, one CSR gather (``np.repeat``
    over degrees + a flat ``arange``) collects *every* lane's frontier
    in-edges, and one multi-lane PCG64 pass flips all their coins —
    lane ``g``'s coins come from its own per-set child generator via
    closed-form LCG jumps (:class:`repro.sampling.vecrng.LaneEngine`),
    in exactly the per-set ``vectorized`` draw order.  Visited marks
    and cross-step dedup live in a sorted ``(lane, node)`` key set
    (:class:`_LaneVisited`), and within-step dedup sorts the same keys,
    so each lane's frontier stays the sorted fresh-node array the
    per-set kernel produces.  Per-set sampling (:meth:`ic_sample`,
    inherited) *is* the vectorized kernel; the block path emits the
    same bytes, so batch composition is unobservable — only throughput
    changes.  Distinct ``stream_id`` all the same: conservative
    pooling, simple contract.
    """

    name = "batched"
    version = 2

    def ic_sample_block(self, sampler, indices, roots=None) -> "list[np.ndarray]":
        engine = LaneEngine.for_sampler(sampler)
        if not engine.ok or not _lane_roots_supported(sampler.roots):
            return _per_set_block(sampler, indices, roots)
        indices = np.asarray(indices, dtype=np.int64)
        pinned = None if roots is None else np.asarray(roots, dtype=np.int64)
        out: list[np.ndarray] = []
        for s in range(0, indices.shape[0], MAX_LANES):
            out.extend(
                self._ic_lockstep(
                    sampler,
                    engine,
                    indices[s : s + MAX_LANES],
                    None if pinned is None else pinned[s : s + MAX_LANES],
                )
            )
        return out

    @staticmethod
    def _assemble(lane_pieces, node_pieces, n_lanes) -> "list[np.ndarray]":
        """Split step-ordered (lane, node) pieces into per-lane RR sets.

        A stable sort by lane preserves step order within each lane —
        root first, then each step's sorted fresh nodes — exactly the
        per-set kernel's concatenation order.
        """
        all_lanes = np.concatenate(lane_pieces)
        all_nodes = np.concatenate(node_pieces)
        order = np.argsort(all_lanes, kind="stable")
        sorted_nodes = all_nodes[order].astype(np.int32, copy=False)
        counts = np.bincount(all_lanes, minlength=n_lanes)
        return np.split(sorted_nodes, np.cumsum(counts[:-1]))

    def _ic_lockstep(self, sampler, engine, idx, pinned) -> "list[np.ndarray]":
        graph = sampler.graph
        n = graph.n
        indptr = graph.in_indptr
        neighbours = graph.in_indices
        weights = graph.in_weights
        n_lanes = idx.shape[0]

        state = engine.seed_lanes(idx)
        root_nodes = _lane_roots(engine, state, sampler.roots, pinned)
        lanes0 = np.arange(n_lanes, dtype=np.int64)
        # lane * n + node keys are strictly increasing in lane here.
        visited = _LaneVisited(lanes0 * n + root_nodes)

        lane_pieces = [lanes0]
        node_pieces = [root_nodes]
        f_nodes, f_lanes = root_nodes, lanes0
        hops_left = sampler.max_hops if sampler.max_hops is not None else -1
        while f_nodes.size and hops_left != 0:
            hops_left -= 1
            starts = indptr[f_nodes].astype(np.int64, copy=False)
            degs = indptr[f_nodes + 1].astype(np.int64, copy=False) - starts
            total = int(degs.sum())
            if total == 0:
                break  # every lane's frontier is in-edge-free: all dead
            # One gather across all lanes' frontiers: flat edge positions
            # by CSR range arithmetic, lane of each edge by repeat.
            offsets = np.cumsum(degs) - degs
            positions = np.repeat(starts - offsets, degs)
            positions += np.arange(total, dtype=np.int64)
            edge_lanes = np.repeat(f_lanes, degs)
            # Frontiers are lane-major, so each lane's edges are
            # contiguous and in its own per-set draw order.
            lane_counts = np.bincount(f_lanes, weights=degs, minlength=n_lanes)
            coins = engine.fill_doubles(state, edge_lanes, lane_counts.astype(np.int64))
            alive = coins < weights[positions]
            cand_nodes = neighbours[positions[alive]].astype(np.int64, copy=False)
            cand_lanes = edge_lanes[alive]
            if cand_nodes.size == 0:
                break
            # Batch-internal dedup per lane: unique (lane, node) keys,
            # sorted — lane-major, node-sorted within a lane, matching
            # the per-set kernel's sorted fresh array — then the chunk
            # visited-set filter.
            uniq = _sorted_unique(cand_lanes * n + cand_nodes)
            uniq = uniq[~visited.seen(uniq)]
            if uniq.size == 0:
                break
            visited.add(uniq)
            u_lanes = uniq // n
            u_nodes = uniq - u_lanes * n
            lane_pieces.append(u_lanes)
            node_pieces.append(u_nodes)
            f_nodes, f_lanes = u_nodes, u_lanes
        return self._assemble(lane_pieces, node_pieces, n_lanes)


class LTBatchedKernel(BatchedKernel):
    """Lockstep LT kernel: a batch of reverse walks, one hop per step.

    Adds :meth:`lt_sample_block` on top of the batched IC kernel: all
    still-walking lanes advance together — one multi-lane draw, one
    vectorized ``searchsorted`` over the graph-wide weight prefix (the
    same floats, hence the same hop, as the per-node slice search the
    scalar walk uses), one sorted-key revisit check.  Per lane the
    draws and stops replicate the shared scalar walk exactly, so each
    set's bytes equal :meth:`~SamplingKernel.lt_sample`'s — batch
    composition stays unobservable.
    """

    name = "lt-batched"
    version = 2

    def lt_sample_block(self, sampler, indices, roots=None) -> "list[np.ndarray]":
        engine = LaneEngine.for_sampler(sampler)
        if not engine.ok or not _lane_roots_supported(sampler.roots):
            return _per_set_block(sampler, indices, roots)
        indices = np.asarray(indices, dtype=np.int64)
        pinned = None if roots is None else np.asarray(roots, dtype=np.int64)
        out: list[np.ndarray] = []
        for s in range(0, indices.shape[0], MAX_LANES):
            out.extend(
                self._lt_lockstep(
                    sampler,
                    engine,
                    indices[s : s + MAX_LANES],
                    None if pinned is None else pinned[s : s + MAX_LANES],
                )
            )
        return out

    def _lt_lockstep(self, sampler, engine, idx, pinned) -> "list[np.ndarray]":
        graph = sampler.graph
        n = graph.n
        indptr = graph.in_indptr
        neighbours = graph.in_indices
        totals = graph.in_weight_totals
        prefix = sampler._weight_prefix
        n_lanes = idx.shape[0]

        state = engine.seed_lanes(idx)
        root_nodes = _lane_roots(engine, state, sampler.roots, pinned)
        lanes0 = np.arange(n_lanes, dtype=np.int64)
        visited = _LaneVisited(lanes0 * n + root_nodes)

        lane_pieces = [lanes0]
        node_pieces = [root_nodes]
        cursor = root_nodes.copy()  # lane -> current walk node
        walking = lanes0
        hops_left = sampler.max_hops if sampler.max_hops is not None else -1
        while walking.size and hops_left != 0:
            hops_left -= 1
            nodes = cursor[walking]
            lo = indptr[nodes].astype(np.int64, copy=False)
            hi = indptr[nodes + 1].astype(np.int64, copy=False)
            has_edges = lo < hi
            if not has_edges.all():
                # In-edge-free nodes end their walks *before* drawing.
                walking = walking[has_edges]
                lo = lo[has_edges]
                hi = hi[has_edges]
                if walking.size == 0:
                    break
            draws = engine.one_double(state, walking)
            kept = draws < totals[cursor[walking]]
            if not kept.all():
                # Residual mass: those lanes' draws are consumed, walk over.
                walking = walking[kept]
                lo = lo[kept]
                hi = hi[kept]
                draws = draws[kept]
                if walking.size == 0:
                    break
            # Invert each walk node's in-edge CDF — one searchsorted over
            # the shared prefix for all lanes, clipped into each node's
            # range (same hop as the per-node slice search).
            pos = np.searchsorted(prefix, prefix[lo] + draws, side="right") - 1
            np.clip(pos, lo, hi - 1, out=pos)
            nxt = neighbours[pos].astype(np.int64, copy=False)
            # `walking` is strictly increasing, so these keys are sorted.
            keys = walking * n + nxt
            revisit = visited.seen(keys)
            if revisit.any():
                fresh = ~revisit
                walking = walking[fresh]
                nxt = nxt[fresh]
                keys = keys[fresh]
                if walking.size == 0:
                    break
            visited.add(keys)
            lane_pieces.append(walking)
            node_pieces.append(nxt)
            cursor[walking] = nxt
        return self._assemble(lane_pieces, node_pieces, n_lanes)


#: registry keyed by CLI / API name.
KERNELS: dict[str, SamplingKernel] = {
    ScalarKernel.name: ScalarKernel(),
    VectorizedKernel.name: VectorizedKernel(),
    BatchedKernel.name: BatchedKernel(),
    LTBatchedKernel.name: LTBatchedKernel(),
}

#: the historical draw order — the default everywhere a kernel is not named.
DEFAULT_KERNEL = ScalarKernel.name

#: selection-policy token: not a kernel, resolved against a graph and
#: model by :func:`repro.sampling.base.resolve_kernel` before anything
#: stream-identity-bearing (pools, spills, provenance) sees a name.
AUTO_KERNEL = "auto"

#: stream token of the default kernel at the current derivation version.
DEFAULT_STREAM_ID = KERNELS[DEFAULT_KERNEL].stream_id

#: what an *unstamped* legacy state/spill means: the scalar draw order
#: under the v1 (per-worker spawned) derivation.  Not restorable onto
#: current samplers — kept so mismatches are named, not mysterious.
LEGACY_STREAM_ID = "scalar-v1"


def make_kernel(kernel: "str | SamplingKernel | None") -> SamplingKernel:
    """Coerce a kernel name (or pass through an instance) to a kernel.

    ``None`` means the default (:class:`ScalarKernel`) — the stream the
    library produced before kernels existed.
    """
    if kernel is None:
        return KERNELS[DEFAULT_KERNEL]
    if isinstance(kernel, SamplingKernel):
        return kernel
    key = str(kernel).strip().lower()
    if key == AUTO_KERNEL:
        raise SamplingError(
            "kernel 'auto' is a selection policy, not a stream identity; "
            "resolve it against a graph and model first "
            "(repro.sampling.base.resolve_kernel)"
        )
    if key not in KERNELS:
        raise SamplingError(
            f"unknown sampling kernel {kernel!r}; known: {sorted(KERNELS)}"
        )
    return KERNELS[key]


def list_kernels() -> tuple:
    """Registered kernel names in registration order."""
    return tuple(KERNELS)


def check_stream_id(state: dict, expected: str) -> None:
    """Reject restoring a stream position onto a different stream.

    States captured before kernels existed carry no ``stream_id``; they
    were produced by the historical scalar draw order under the legacy
    v1 derivation, so a missing field means :data:`LEGACY_STREAM_ID`.
    """
    got = state.get("stream_id", LEGACY_STREAM_ID)
    if got != expected:
        raise SamplingError(
            f"stream position was captured on stream {got!r}; this "
            f"sampler produces {expected!r} — the streams are not "
            "byte-compatible"
        )
