"""Exception hierarchy for the :mod:`repro` library.

Every error raised intentionally by this package derives from
:class:`ReproError`, so callers can catch one type to handle all library
failures while letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class GraphError(ReproError):
    """Raised for structurally invalid graphs or graph operations."""


class WeightError(GraphError):
    """Raised when edge weights violate a model's constraints.

    For example the Linear Threshold model requires the incoming weights of
    every node to sum to at most 1.
    """


class GraphIOError(ReproError):
    """Raised when a graph cannot be parsed from or serialized to disk."""


class ParameterError(ReproError):
    """Raised for invalid algorithm parameters (epsilon, delta, k, ...)."""


class SamplingError(ReproError):
    """Raised when RR-set sampling is asked to do something impossible."""


class BudgetExceededError(ReproError):
    """Raised when an algorithm exceeds a caller-imposed resource budget."""

    def __init__(self, message: str, *, samples_used: int | None = None) -> None:
        super().__init__(message)
        self.samples_used = samples_used


class DatasetError(ReproError):
    """Raised when a named dataset stand-in cannot be materialized."""


class RangeConditionWarning(UserWarning):
    """Emitted when parameters leave the paper's range conditions.

    The approximation guarantee still holds; only the sample-*optimality*
    proofs (Theorems 3, 4, 6) assume ε ≤ 1/4, OPT_k ≤ n/2 and 1/δ = Ω(n).
    """
