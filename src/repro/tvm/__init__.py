"""Targeted Viral Marketing (Section 7.3): weighted-influence maximization."""

from repro.tvm.targets import TargetedGroup
from repro.tvm.algorithms import kb_tim, tvm_dssa, tvm_ssa, weighted_spread

__all__ = ["TargetedGroup", "tvm_ssa", "tvm_dssa", "kb_tim", "weighted_spread"]
