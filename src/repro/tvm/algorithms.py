"""TVM algorithms: Stop-and-Stare over WRIS, and the KB-TIM baseline.

Section 7.3.1: WRIS differs from RIS only in root selection (proportional
to benefit), so SSA and D-SSA carry over unchanged with their
``(1-1/e-ε)`` guarantee for the *weighted* objective.  KB-TIM (Li et al.,
VLDB 2015) is WRIS integrated into TIM+ — the best prior method, which
Fig. 8 shows losing to SSA/D-SSA by up to 500×.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.core.dssa import dssa
from repro.core.ssa import ssa
from repro.core.result import IMResult
from repro.baselines.tim import tim_on_context
from repro.engine.context import SamplingContext
from repro.diffusion.models import DiffusionModel
from repro.diffusion.spread import simulate_cascade
from repro.graph.digraph import CSRGraph
from repro.tvm.targets import TargetedGroup
from repro.utils.rng import ensure_rng


def tvm_ssa(
    graph: CSRGraph,
    k: int,
    group: TargetedGroup,
    *,
    epsilon: float = 0.1,
    delta: float | None = None,
    model: "str | DiffusionModel" = "LT",
    seed: int | np.random.Generator | None = None,
    max_samples: int | None = None,
) -> IMResult:
    """SSA for Targeted Viral Marketing (WRIS roots)."""
    result = ssa(
        graph,
        k,
        epsilon=epsilon,
        delta=delta,
        model=model,
        seed=seed,
        roots=group.roots_for(graph),
        max_samples=max_samples,
    )
    result.algorithm = "TVM-SSA"
    result.extras["group"] = group.name
    return result


def tvm_dssa(
    graph: CSRGraph,
    k: int,
    group: TargetedGroup,
    *,
    epsilon: float = 0.1,
    delta: float | None = None,
    model: "str | DiffusionModel" = "LT",
    seed: int | np.random.Generator | None = None,
    max_samples: int | None = None,
) -> IMResult:
    """D-SSA for Targeted Viral Marketing (WRIS roots)."""
    result = dssa(
        graph,
        k,
        epsilon=epsilon,
        delta=delta,
        model=model,
        seed=seed,
        roots=group.roots_for(graph),
        max_samples=max_samples,
    )
    result.algorithm = "TVM-D-SSA"
    result.extras["group"] = group.name
    return result


def kb_tim(
    graph: CSRGraph,
    k: int,
    group: TargetedGroup,
    *,
    epsilon: float = 0.1,
    delta: float | None = None,
    model: "str | DiffusionModel" = "LT",
    seed: int | np.random.Generator | None = None,
    max_samples: int | None = None,
) -> IMResult:
    """KB-TIM: weighted RIS sampling inside the TIM+ threshold machinery."""
    ctx = SamplingContext(graph, model, seed=seed, roots=group.roots_for(graph))
    try:
        result = tim_on_context(
            ctx, k, epsilon=epsilon, delta=delta, max_samples=max_samples, refine=True
        )
    finally:
        ctx.close()
    result.algorithm = "KB-TIM"
    result.extras["group"] = group.name
    return result


def weighted_spread(
    graph: CSRGraph,
    seeds: Sequence[int],
    group: TargetedGroup,
    model: "str | DiffusionModel" = "LT",
    *,
    simulations: int = 500,
    seed: int | np.random.Generator | None = None,
) -> float:
    """Monte Carlo estimate of the benefit-weighted spread of ``seeds``.

    Runs forward cascades and sums the benefits of activated nodes; this
    is the TVM objective the algorithms above maximize, used by tests and
    quality reports.
    """
    rng = ensure_rng(seed)
    parsed = DiffusionModel.parse(model)
    total = 0.0
    for _ in range(simulations):
        total += _weighted_cascade(graph, seeds, group, parsed, rng)
    return total / simulations


def _weighted_cascade(
    graph: CSRGraph,
    seeds: Sequence[int],
    group: TargetedGroup,
    model: DiffusionModel,
    rng: np.random.Generator,
) -> float:
    """One cascade's activated-benefit total (shares the forward simulators)."""
    from repro.diffusion.independent_cascade import simulate_ic_trace
    from repro.diffusion.linear_threshold import simulate_lt_trace

    trace = (
        simulate_ic_trace(graph, seeds, rng)
        if model is DiffusionModel.IC
        else simulate_lt_trace(graph, seeds, rng)
    )
    benefit = 0.0
    for round_nodes in trace:
        benefit += float(group.benefits[round_nodes].sum())
    return benefit
