"""Targeted groups: per-node benefit weights for the TVM objective.

In TVM (Li, Zhang, Tan — VLDB 2015; Section 7.3 of our paper) each node v
has a benefit b(v) ≥ 0 expressing its relevance to a topic, and the
objective is the expected *benefit-weighted* number of activated nodes.
The RIS machinery adapts by drawing RR-set roots proportionally to b(v)
(WRIS) — everything else is unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.digraph import CSRGraph
from repro.sampling.roots import WeightedRoots


@dataclass
class TargetedGroup:
    """A named benefit vector over the nodes of a graph.

    ``benefits[v]`` is node v's relevance to the topic (e.g. how often the
    user tweeted the topic's keywords); nodes outside the group have
    benefit 0.
    """

    name: str
    benefits: np.ndarray
    keywords: tuple[str, ...] = field(default_factory=tuple)

    def __post_init__(self) -> None:
        self.benefits = np.asarray(self.benefits, dtype=np.float64)
        if self.benefits.ndim != 1:
            raise ParameterError("benefits must be a 1-D vector over nodes")
        if np.any(self.benefits < 0) or not np.all(np.isfinite(self.benefits)):
            raise ParameterError("benefits must be finite and non-negative")
        if float(self.benefits.sum()) <= 0:
            raise ParameterError(f"targeted group {self.name!r} has zero total benefit")

    @classmethod
    def from_members(
        cls,
        name: str,
        n: int,
        members: "list[int] | np.ndarray",
        weights: "list[float] | np.ndarray | None" = None,
        *,
        keywords: tuple[str, ...] = (),
    ) -> "TargetedGroup":
        """Build a group from member node ids (+ optional per-member weights)."""
        members = np.asarray(members, dtype=np.int64)
        if members.size == 0:
            raise ParameterError("targeted group needs at least one member")
        if members.min() < 0 or members.max() >= n:
            raise ParameterError("member node id out of range")
        benefits = np.zeros(n, dtype=np.float64)
        if weights is None:
            benefits[members] = 1.0
        else:
            weights = np.asarray(weights, dtype=np.float64)
            if weights.shape != members.shape:
                raise ParameterError("weights must match members in length")
            benefits[members] = weights
        return cls(name=name, benefits=benefits, keywords=keywords)

    @property
    def size(self) -> int:
        """Number of nodes with positive benefit (Table 4's #Users)."""
        return int(np.count_nonzero(self.benefits))

    @property
    def total_benefit(self) -> float:
        """Γ — the normalizing constant for weighted influence."""
        return float(self.benefits.sum())

    def members(self) -> np.ndarray:
        """Node ids with positive benefit."""
        return np.nonzero(self.benefits)[0]

    def roots_for(self, graph: CSRGraph) -> WeightedRoots:
        """WRIS root distribution for this group on ``graph``."""
        return WeightedRoots.from_graph_targets(graph, self.benefits)
