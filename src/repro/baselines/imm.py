"""IMM — Influence Maximization via Martingales (Tang et al., SIGMOD 2015).

IMM is the strongest published competitor the paper compares against
(Section 7).  Two phases:

1. **Sampling / LB estimation.**  For x = n/2, n/4, ... it generates
   ``θ_i = λ' / x`` RR sets and runs greedy max-coverage; if the candidate's
   estimated influence clears ``(1+ε')·x`` the loop stops with the lower
   bound ``LB = Î(S_k)/(1+ε')``.  The statistical price of checking *all*
   seed sets at once is the ``ln C(n,k)`` union-bound baked into λ'.
2. **Node selection.**  It tops the pool up to ``θ = λ* / LB`` RR sets and
   returns greedy max-coverage over them.

The two weaknesses the Stop-and-Stare paper targets are visible right in
the structure: λ' and λ* both carry ``ln C(n,k)``, and θ probes a
threshold that was never shown minimal — so IMM's sample count is the
yardstick our Table 3 benchmark compares SSA/D-SSA against.

Following the published IMM, phase 2 *reuses* the phase-1 RR sets.  (The
post-publication erratum showing this reuse slightly breaks independence
is acknowledged in DESIGN.md; it does not affect sample-count comparisons.)

Like the Stop-and-Stare algorithms, the body (:func:`imm_on_context`)
only consumes a prefix of its context's RR stream, so IMM queries share
a warm engine session's pool with D-SSA/TIM — same stream derivation,
same prefix semantics.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.max_coverage import max_coverage
from repro.core.result import IMResult
from repro.core.thresholds import _E_FACTOR  # shared (1 - 1/e) constant
from repro.diffusion.models import DiffusionModel
from repro.engine.context import SamplingContext
from repro.engine.registry import register_algorithm
from repro.exceptions import ParameterError
from repro.graph.digraph import CSRGraph
from repro.sampling.backends import ExecutionBackend
from repro.sampling.roots import UniformRoots, WeightedRoots
from repro.utils.mathstats import binomial_coefficient_ln
from repro.utils.timer import Timer
from repro.utils.validation import check_delta, check_epsilon, check_k


def imm_on_context(
    ctx: SamplingContext,
    k: int,
    *,
    epsilon: float = 0.1,
    delta: float | None = None,
    max_samples: int | None = None,
) -> IMResult:
    """IMM's two phases against a (possibly warm) sampling context."""
    graph = ctx.graph
    n = graph.n
    check_k(k, n)
    check_epsilon(epsilon)
    delta = check_delta(delta if delta is not None else 1.0 / max(n, 2))

    scale = ctx.scale
    ln_binom = binomial_coefficient_ln(n, k)
    ln_inv_delta = math.log(1.0 / delta)

    # Phase-1 constants (Section 4.2 of the IMM paper, with n^{-l} -> delta).
    eps_prime = math.sqrt(2.0) * epsilon
    rounds = max(1, int(math.ceil(math.log2(n))) - 1)
    lambda_prime = (
        (2.0 + 2.0 * eps_prime / 3.0)
        * (ln_binom + ln_inv_delta + math.log(max(math.log2(max(n, 2)), 1.0)))
        * n
        / (eps_prime * eps_prime)
    )
    # Phase-2 constant λ* (Eq. 13 of our paper / Theorem 1 of IMM).
    alpha = math.sqrt(math.log(2.0 / delta))
    beta = math.sqrt(_E_FACTOR * (ln_binom + math.log(2.0 / delta)))
    lambda_star = 2.0 * n * (_E_FACTOR * alpha + beta) ** 2 / (epsilon * epsilon)

    with Timer() as timer:
        used = 0
        lower_bound = 1.0
        iterations = 0
        for i in range(1, rounds + 1):
            iterations += 1
            x = n / (2.0**i)
            theta_i = int(math.ceil(lambda_prime / x))
            if max_samples is not None:
                theta_i = min(theta_i, max_samples)
            used = max(used, theta_i)
            pool = ctx.require(used)
            cover = max_coverage(pool, k, start=0, end=used)
            estimate = cover.influence_estimate(scale)
            if estimate >= (1.0 + eps_prime) * x:
                lower_bound = estimate / (1.0 + eps_prime)
                break
            if max_samples is not None and used >= max_samples:
                lower_bound = max(estimate / (1.0 + eps_prime), 1.0)
                break

        theta = int(math.ceil(lambda_star / lower_bound))
        if max_samples is not None:
            theta = min(theta, max_samples)
        used = max(used, theta)
        pool = ctx.require(used)
        cover = max_coverage(pool, k, start=0, end=theta)

    return IMResult(
        algorithm="IMM",
        seeds=cover.seeds,
        influence=cover.influence_estimate(scale),
        samples=used,
        optimization_samples=used,
        iterations=iterations + 1,
        stopped_by="theta",
        elapsed_seconds=timer.elapsed,
        memory_bytes=ctx.pool.memory_bytes(end=used) + graph.memory_bytes(),
        extras={
            "lower_bound": lower_bound,
            "theta": theta,
            "lambda_prime": lambda_prime,
            "lambda_star": lambda_star,
        },
    )


@register_algorithm(
    "IMM",
    aliases=("imm",),
    description="IMM (Tang et al. 2015): martingale LB estimation + fixed theta",
    engine_func=imm_on_context,
    stream="direct",
    needs_rr_sets=True,
    supports_backend=True,
    supports_horizon=False,
    accepts=(
        "epsilon",
        "delta",
        "model",
        "seed",
        "roots",
        "max_samples",
        "backend",
        "workers",
        "kernel",
    ),
)
def imm(
    graph: CSRGraph,
    k: int,
    *,
    epsilon: float = 0.1,
    delta: float | None = None,
    model: "str | DiffusionModel" = "IC",
    seed: int | np.random.Generator | None = None,
    roots: "UniformRoots | WeightedRoots | None" = None,
    max_samples: int | None = None,
    backend: "str | ExecutionBackend | None" = None,
    workers: int | None = None,
    kernel=None,
) -> IMResult:
    """Run IMM and return a ``(1-1/e-ε)``-approximate seed set w.h.p.

    ``backend``/``workers`` parallelize RR-set generation (IMM batch
    samples in both phases, so it shards the same way SSA does).  This
    is the one-shot convenience over a throwaway session; use
    :class:`~repro.engine.engine.InfluenceEngine` for warm repeat
    queries.
    """
    ctx = SamplingContext(
        graph, model, seed=seed, roots=roots, backend=backend, workers=workers,
        kernel=kernel,
    )
    try:
        return imm_on_context(
            ctx, k, epsilon=epsilon, delta=delta, max_samples=max_samples
        )
    finally:
        ctx.close()


def imm_sample_requirement(
    n: int, k: int, epsilon: float, delta: float, opt_k: float
) -> float:
    """Analytic θ IMM would need given a *known* OPT_k (for tests/benches)."""
    if opt_k <= 0:
        raise ParameterError(f"opt_k must be positive, got {opt_k}")
    alpha = math.sqrt(math.log(2.0 / delta))
    beta = math.sqrt(
        _E_FACTOR * (binomial_coefficient_ln(n, k) + math.log(2.0 / delta))
    )
    return 2.0 * n * (_E_FACTOR * alpha + beta) ** 2 / (epsilon * epsilon * opt_k)
