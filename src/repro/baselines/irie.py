"""IRIE — Influence Ranking + Influence Estimation (Jung, Heo, Chen 2012).

A scalable heuristic the paper's related-work section cites among the
methods that are "often faster in practice [but] fail to retain the
(1-1/e-ε) guarantee".  IRIE ranks nodes by a damped linear system

    r(u) = 1 + α · Σ_v w(u, v) · (1 - ap(v)) · r(v)

where ``r`` is each node's estimated marginal influence and ``ap(v)`` is
the probability v is already activated by the current seed set
(approximated here, as in the original, by one-hop activation from the
chosen seeds).  After each seed selection the ranks are recomputed with
the updated ``ap`` — that coupling is what lets IRIE avoid picking
redundant adjacent hubs, unlike plain degree.

IRIE carries no approximation guarantee; it exists in the library as the
quality foil for the guaranteed methods in the figures.
"""

from __future__ import annotations

import numpy as np

from repro.core.result import IMResult
from repro.engine.registry import register_algorithm
from repro.exceptions import ParameterError
from repro.graph.digraph import CSRGraph
from repro.utils.timer import Timer
from repro.utils.validation import check_k


def _influence_rank(
    graph: CSRGraph,
    already_active: np.ndarray,
    alpha: float,
    iterations: int,
) -> np.ndarray:
    """Solve the damped rank iteration given activation probabilities."""
    rank = np.ones(graph.n, dtype=np.float64)
    sources = np.repeat(
        np.arange(graph.n, dtype=np.int64), np.diff(graph.out_indptr)
    )
    targets = graph.out_indices.astype(np.int64)
    weights = graph.out_weights
    for _ in range(iterations):
        contribution = weights * (1.0 - already_active[targets]) * rank[targets]
        new_rank = np.ones(graph.n, dtype=np.float64)
        np.add.at(new_rank, sources, alpha * contribution)
        if np.allclose(new_rank, rank, rtol=1e-6, atol=1e-9):
            rank = new_rank
            break
        rank = new_rank
    return rank


@register_algorithm(
    "IRIE",
    aliases=("irie",),
    description="IRIE influence-rank heuristic (Jung 2012; no guarantee)",
)
def irie(
    graph: CSRGraph,
    k: int,
    *,
    alpha: float = 0.7,
    iterations: int = 20,
) -> IMResult:
    """IRIE heuristic seed selection (no approximation guarantee).

    ``alpha`` is the damping factor (the original paper recommends 0.7);
    ``iterations`` caps the rank iteration, which usually converges much
    earlier on WC-weighted graphs.
    """
    check_k(k, graph.n)
    if not 0.0 < alpha < 1.0:
        raise ParameterError(f"alpha must be in (0, 1), got {alpha}")
    if iterations < 1:
        raise ParameterError(f"iterations must be at least 1, got {iterations}")

    with Timer() as timer:
        already_active = np.zeros(graph.n, dtype=np.float64)
        selected = np.zeros(graph.n, dtype=bool)
        seeds: list[int] = []
        total_rank = 0.0
        for _ in range(k):
            rank = _influence_rank(graph, already_active, alpha, iterations)
            rank[selected] = -np.inf
            v = int(np.argmax(rank))
            seeds.append(v)
            selected[v] = True
            total_rank += float(rank[v])
            # One-hop activation-probability update (IRIE's IE step):
            # v is now certainly active; its out-neighbours are activated
            # with at least the edge probability.
            already_active[v] = 1.0
            lo, hi = graph.out_indptr[v], graph.out_indptr[v + 1]
            neighbors = graph.out_indices[lo:hi]
            edge_p = graph.out_weights[lo:hi]
            already_active[neighbors] = 1.0 - (1.0 - already_active[neighbors]) * (
                1.0 - edge_p
            )

    return IMResult(
        algorithm="IRIE",
        seeds=seeds,
        influence=total_rank,  # rank units, not calibrated influence
        samples=0,
        stopped_by="heuristic",
        elapsed_seconds=timer.elapsed,
        memory_bytes=graph.memory_bytes(),
        extras={"alpha": alpha, "iterations": iterations},
    )
