"""CELF / CELF++ — lazy greedy on Monte Carlo spread estimates.

The classic simulation-based greedy (Kempe 2003) recomputes every node's
marginal gain each round; CELF (Leskovec 2007) exploits submodularity —
a node's marginal gain never increases as the seed set grows — so a stale
heap entry is re-evaluated only when it reaches the top, and accepted
immediately if it stays there.  CELF++ (Goyal 2011) additionally caches
the marginal gain w.r.t. (seeds + the round's current best), sharing the
cascade samples of one evaluation; in this Monte Carlo implementation we
realize that sharing by evaluating ``spread(S + {best, u})`` against the
*same* RNG substream, so the cache costs one evaluation and saves one
whenever the predicted best wins the round.

These are the paper's "fastest greedy with guarantees" baselines; they are
asymptotically hopeless at scale (the paper observed D-SSA beating CELF++
by 2·10⁹×), which our Figure 4/5 benchmarks reproduce in miniature by
running CELF only on the smallest stand-in.
"""

from __future__ import annotations

import heapq

import numpy as np

from repro.core.result import IMResult
from repro.diffusion.models import DiffusionModel
from repro.diffusion.spread import estimate_spread
from repro.engine.registry import register_algorithm
from repro.exceptions import ParameterError
from repro.graph.digraph import CSRGraph
from repro.utils.rng import ensure_rng
from repro.utils.timer import Timer
from repro.utils.validation import check_k


@register_algorithm(
    "CELF++",
    aliases=("celf++", "celfpp"),
    description="CELF++ lazy greedy on Monte Carlo spread (Goyal 2011)",
    accepts=("model", "simulations", "seed"),
    extra_kwargs=(("plus_plus", True),),
)
@register_algorithm(
    "CELF",
    description="CELF lazy greedy on Monte Carlo spread (Leskovec 2007)",
    accepts=("model", "simulations", "seed"),
    extra_kwargs=(("plus_plus", False),),
)
def celf(
    graph: CSRGraph,
    k: int,
    *,
    model: "str | DiffusionModel" = "IC",
    simulations: int = 200,
    seed: int | np.random.Generator | None = None,
    plus_plus: bool = False,
) -> IMResult:
    """Lazy-greedy influence maximization with MC spread estimation.

    ``simulations`` controls the Monte Carlo accuracy of each spread
    evaluation (the greedy's (1-1/e) guarantee assumes exact spread; in
    practice a few hundred simulations give a stable ordering).  With
    ``plus_plus=True``, re-evaluations also cache the gain conditioned on
    the round's front-runner (CELF++), trading one extra evaluation for a
    saved one when the front-runner is indeed selected.
    """
    n = graph.n
    check_k(k, n)
    if simulations <= 0:
        raise ParameterError(f"simulations must be positive, got {simulations}")
    parsed = DiffusionModel.parse(model)
    rng = ensure_rng(seed)

    evaluations = 0

    def spread(seed_set: list[int]) -> float:
        nonlocal evaluations
        evaluations += 1
        return estimate_spread(
            graph, seed_set, parsed, simulations=simulations, seed=rng
        ).mean

    with Timer() as timer:
        # Heap entries: (-gain, node, round_evaluated, gain_if_front_runner_wins).
        heap: list[list[float | int]] = []
        for v in range(n):
            gain = spread([v])
            heap.append([-gain, v, 0, -1.0])
        heapq.heapify(heap)

        seeds: list[int] = []
        current_spread = 0.0
        round_no = 0

        while len(seeds) < k and heap:
            round_no += 1
            while True:
                neg_gain, node, evaluated_at, cached_cond_gain = heapq.heappop(heap)
                if evaluated_at == round_no:
                    break  # freshly evaluated and still the best: take it
                prev_pick = seeds[-1] if seeds else None
                if (
                    plus_plus
                    and cached_cond_gain >= 0.0
                    and evaluated_at == round_no - 1
                    and prev_pick is not None
                ):
                    # CELF++ cache hit: cached value conditioned on the node
                    # that actually got picked last round.
                    fresh = float(cached_cond_gain)
                else:
                    fresh = spread(seeds + [int(node)]) - current_spread
                cond_gain = -1.0
                if plus_plus and heap:
                    front = int(heap[0][1])
                    if front != node:
                        cond_gain = spread(seeds + [front, int(node)]) - spread(
                            seeds + [front]
                        )
                heapq.heappush(heap, [-fresh, node, round_no, cond_gain])
            seeds.append(int(node))
            current_spread += -float(neg_gain)

    return IMResult(
        algorithm="CELF++" if plus_plus else "CELF",
        seeds=seeds,
        influence=current_spread,
        samples=0,
        iterations=round_no,
        stopped_by="greedy",
        elapsed_seconds=timer.elapsed,
        memory_bytes=graph.memory_bytes(),
        extras={"spread_evaluations": evaluations, "simulations": simulations},
    )
