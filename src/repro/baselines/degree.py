"""Degree-based heuristics (no approximation guarantee).

Cheap sanity baselines: they make the guaranteed algorithms' quality
advantage visible in the figures and give tests an ordering oracle
("guaranteed methods should beat or match plain degree on spread").
"""

from __future__ import annotations

import numpy as np

from repro.core.result import IMResult
from repro.engine.registry import register_algorithm
from repro.graph.digraph import CSRGraph
from repro.utils.timer import Timer
from repro.utils.validation import check_k


@register_algorithm(
    "degree",
    description="highest out-degree heuristic (no guarantee)",
)
def degree_heuristic(graph: CSRGraph, k: int) -> IMResult:
    """Pick the k nodes with the highest out-degree."""
    check_k(k, graph.n)
    with Timer() as timer:
        out_degrees = np.diff(graph.out_indptr)
        seeds = np.argsort(-out_degrees, kind="stable")[:k].tolist()
    return IMResult(
        algorithm="degree",
        seeds=[int(s) for s in seeds],
        influence=0.0,  # heuristic provides no estimate; evaluate externally
        samples=0,
        stopped_by="heuristic",
        elapsed_seconds=timer.elapsed,
        memory_bytes=graph.memory_bytes(),
    )


@register_algorithm(
    "degree-discount",
    aliases=("degree_discount", "degreediscount"),
    description="DegreeDiscountIC (Chen et al. 2009; no guarantee)",
)
def degree_discount(graph: CSRGraph, k: int, *, probability: float | None = None) -> IMResult:
    """DegreeDiscountIC (Chen, Wang, Yang — KDD 2009).

    After a neighbour of ``v`` is seeded, v's effective degree is
    discounted: ``dd_v = d_v - 2 t_v - (d_v - t_v) · t_v · p`` where t_v
    counts already-seeded in-neighbours of v's targets... in the original
    formulation t_v counts v's seeded neighbours.  ``probability`` defaults
    to the graph's mean edge weight (the heuristic assumes uniform IC).
    """
    check_k(k, graph.n)
    with Timer() as timer:
        p = probability if probability is not None else (
            float(graph.out_weights.mean()) if graph.m else 0.0
        )
        degrees = np.diff(graph.out_indptr).astype(np.float64)
        discounted = degrees.copy()
        seeded_neighbors = np.zeros(graph.n, dtype=np.float64)
        selected = np.zeros(graph.n, dtype=bool)
        seeds: list[int] = []
        for _ in range(k):
            candidates = np.where(selected, -np.inf, discounted)
            v = int(np.argmax(candidates))
            seeds.append(v)
            selected[v] = True
            for u in graph.out_neighbors(v).tolist():
                if selected[u]:
                    continue
                seeded_neighbors[u] += 1.0
                t = seeded_neighbors[u]
                d = degrees[u]
                discounted[u] = d - 2.0 * t - (d - t) * t * p
    return IMResult(
        algorithm="degree-discount",
        seeds=seeds,
        influence=0.0,
        samples=0,
        stopped_by="heuristic",
        elapsed_seconds=timer.elapsed,
        memory_bytes=graph.memory_bytes(),
        extras={"probability": p},
    )
