"""TIM and TIM+ (Tang, Xiao, Shi — SIGMOD 2014).

TIM is the two-step RIS skeleton with an explicit sample threshold
``θ = λ / KPT``, where λ carries the ``ln C(n,k)`` union bound (Eq. 12 of
the Stop-and-Stare paper) and KPT is a lower bound on OPT_k obtained by
the KPT-estimation procedure (Alg. 2 of the TIM paper): RR sets are
generated in doubling batches, and each set R contributes
``κ(R) = 1 - (1 - width(R)/m)^k`` — the probability a random size-k seed
set covers R — until the running mean clears the current scale's bar.

Because ``KPT ≤ OPT_k`` with no matching upper bound, θ overshoots by the
unbounded ratio ``OPT_k / KPT`` — precisely shortcoming (1) the
Stop-and-Stare paper lists for prior art.

TIM+ adds an intermediate refinement: greedy on a small pool proposes a
seed set whose influence is estimated on fresh samples, and
``KPT+ = max(KPT, Î/(1+ε'))`` tightens θ before the main run.

Both variants run on an engine-provided sampling context
(:func:`tim_on_context`), consuming only stream prefixes — so warm
:class:`~repro.engine.engine.InfluenceEngine` sessions share one pool
between TIM, TIM+, IMM, and D-SSA.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.max_coverage import max_coverage
from repro.core.result import IMResult
from repro.diffusion.models import DiffusionModel
from repro.engine.context import SamplingContext
from repro.engine.registry import register_algorithm
from repro.graph.digraph import CSRGraph
from repro.sampling.backends import ExecutionBackend
from repro.utils.mathstats import binomial_coefficient_ln
from repro.utils.timer import Timer
from repro.utils.validation import check_delta, check_epsilon, check_k


def _rr_width(graph: CSRGraph, rr_set: np.ndarray) -> int:
    """width(R): number of edges of G entering nodes of R."""
    return int(np.diff(graph.in_indptr)[rr_set].sum())


def _kpt_estimation(
    ctx: SamplingContext,
    k: int,
    delta: float,
    *,
    max_samples: int | None,
) -> tuple[float, int]:
    """KPT lower-bound estimation (TIM paper, Algorithm 2).

    Consumes a stream prefix of ``ctx`` and returns ``(KPT, used)`` —
    the sets it consumed stay in the pool for the later phases (and for
    any other query of the session) to reuse.  KPT ≥ 1 (the trivial
    lower bound when estimation falls through).
    """
    graph = ctx.graph
    n, m = graph.n, graph.m
    if m == 0:
        return 1.0, 0
    log_n = max(math.log2(n), 2.0)
    base_count = 6.0 * math.log(1.0 / delta) + 6.0 * math.log(log_n)
    used = 0
    for i in range(1, int(log_n)):
        c_i = int(math.ceil(base_count * (2.0**i)))
        if max_samples is not None:
            c_i = min(c_i, max_samples)
        start = used
        used += c_i
        pool = ctx.require(used)
        kappa_sum = 0.0
        for j in range(start, used):
            width_fraction = _rr_width(graph, pool[j]) / m
            kappa_sum += 1.0 - (1.0 - width_fraction) ** k
        if kappa_sum / c_i > 1.0 / (2.0**i):
            return max(1.0, n * kappa_sum / (2.0 * c_i)), used
        if max_samples is not None and used >= max_samples:
            break
    return 1.0, used


def tim_on_context(
    ctx: SamplingContext,
    k: int,
    *,
    epsilon: float = 0.1,
    delta: float | None = None,
    max_samples: int | None = None,
    refine: bool = False,
) -> IMResult:
    """TIM (``refine=False``) / TIM+ (``refine=True``) on a context."""
    graph = ctx.graph
    n = graph.n
    check_k(k, n)
    check_epsilon(epsilon)
    delta = check_delta(delta if delta is not None else 1.0 / max(n, 2))

    scale = ctx.scale
    ln_binom = binomial_coefficient_ln(n, k)
    ln_inv_delta = math.log(1.0 / delta)

    with Timer() as timer:
        kpt, used = _kpt_estimation(ctx, k, delta, max_samples=max_samples)
        kpt_refined = kpt

        if refine and used > 0:
            # TIM+ intermediate step: propose seeds from the existing pool,
            # then bound their influence from a fresh batch of the same size.
            eps_prime = min(0.9, math.sqrt(2.0) * epsilon)
            proposal = max_coverage(ctx.pool, k, start=0, end=used)
            fresh_count = min(used, max_samples or used)
            fresh_start = used
            used += fresh_count
            pool = ctx.require(used)
            fresh_cov = pool.coverage(proposal.seeds, start=fresh_start, end=used)
            estimate = scale * fresh_cov / fresh_count
            kpt_refined = max(kpt, estimate / (1.0 + eps_prime))

        lam = (8.0 + 2.0 * epsilon) * n * (ln_inv_delta + ln_binom + math.log(2.0)) / (
            epsilon * epsilon
        )
        theta = int(math.ceil(lam / kpt_refined))
        if max_samples is not None:
            theta = min(theta, max_samples)
        theta = max(theta, 1)
        used = max(used, theta)
        pool = ctx.require(used)
        cover = max_coverage(pool, k, start=0, end=theta)

    return IMResult(
        algorithm="TIM+" if refine else "TIM",
        seeds=cover.seeds,
        influence=cover.influence_estimate(scale),
        samples=used,
        optimization_samples=used,
        iterations=1,
        stopped_by="theta",
        elapsed_seconds=timer.elapsed,
        memory_bytes=ctx.pool.memory_bytes(end=used) + graph.memory_bytes(),
        extras={"kpt": kpt, "kpt_refined": kpt_refined, "theta": theta},
    )


def _one_shot(
    graph, k, *, refine, epsilon, delta, model, seed, max_samples, backend, workers,
    kernel,
):
    ctx = SamplingContext(
        graph, model, seed=seed, backend=backend, workers=workers, kernel=kernel
    )
    try:
        return tim_on_context(
            ctx, k, epsilon=epsilon, delta=delta, max_samples=max_samples, refine=refine
        )
    finally:
        ctx.close()


def tim_plus_on_context(ctx, k, **kwargs) -> IMResult:
    """TIM+ body (``tim_on_context`` with the refinement step on)."""
    return tim_on_context(ctx, k, refine=True, **kwargs)


_TIM_ACCEPTS = (
    "epsilon", "delta", "model", "seed", "max_samples", "backend", "workers", "kernel"
)


@register_algorithm(
    "TIM",
    aliases=("tim",),
    description="TIM (Tang et al. 2014): KPT estimation + one-shot RIS at theta",
    engine_func=tim_on_context,
    stream="direct",
    needs_rr_sets=True,
    supports_backend=True,
    supports_horizon=False,
    accepts=_TIM_ACCEPTS,
)
def tim(
    graph: CSRGraph,
    k: int,
    *,
    epsilon: float = 0.1,
    delta: float | None = None,
    model: "str | DiffusionModel" = "IC",
    seed: int | np.random.Generator | None = None,
    max_samples: int | None = None,
    backend: "str | ExecutionBackend | None" = None,
    workers: int | None = None,
    kernel=None,
) -> IMResult:
    """TIM: KPT estimation, then one-shot RIS at ``θ = λ/KPT``."""
    return _one_shot(
        graph, k, refine=False, epsilon=epsilon, delta=delta, model=model,
        seed=seed, max_samples=max_samples, backend=backend, workers=workers,
        kernel=kernel,
    )


@register_algorithm(
    "TIM+",
    aliases=("tim+", "tim_plus", "timplus"),
    description="TIM+ : TIM with the intermediate KPT refinement step",
    engine_func=tim_plus_on_context,
    stream="direct",
    needs_rr_sets=True,
    supports_backend=True,
    supports_horizon=False,
    accepts=_TIM_ACCEPTS,
)
def tim_plus(
    graph: CSRGraph,
    k: int,
    *,
    epsilon: float = 0.1,
    delta: float | None = None,
    model: "str | DiffusionModel" = "IC",
    seed: int | np.random.Generator | None = None,
    max_samples: int | None = None,
    backend: "str | ExecutionBackend | None" = None,
    workers: int | None = None,
    kernel=None,
) -> IMResult:
    """TIM+: TIM with the intermediate KPT refinement step."""
    return _one_shot(
        graph, k, refine=True, epsilon=epsilon, delta=delta, model=model,
        seed=seed, max_samples=max_samples, backend=backend, workers=workers,
        kernel=kernel,
    )
