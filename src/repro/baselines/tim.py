"""TIM and TIM+ (Tang, Xiao, Shi — SIGMOD 2014).

TIM is the two-step RIS skeleton with an explicit sample threshold
``θ = λ / KPT``, where λ carries the ``ln C(n,k)`` union bound (Eq. 12 of
the Stop-and-Stare paper) and KPT is a lower bound on OPT_k obtained by
the KPT-estimation procedure (Alg. 2 of the TIM paper): RR sets are
generated in doubling batches, and each set R contributes
``κ(R) = 1 - (1 - width(R)/m)^k`` — the probability a random size-k seed
set covers R — until the running mean clears the current scale's bar.

Because ``KPT ≤ OPT_k`` with no matching upper bound, θ overshoots by the
unbounded ratio ``OPT_k / KPT`` — precisely shortcoming (1) the
Stop-and-Stare paper lists for prior art.

TIM+ adds an intermediate refinement: greedy on a small pool proposes a
seed set whose influence is estimated on fresh samples, and
``KPT+ = max(KPT, Î/(1+ε'))`` tightens θ before the main run.
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.max_coverage import max_coverage
from repro.core.result import IMResult
from repro.diffusion.models import DiffusionModel
from repro.graph.digraph import CSRGraph
from repro.sampling.backends import ExecutionBackend
from repro.sampling.base import RRSampler
from repro.sampling.rr_collection import RRCollection
from repro.sampling.sharded import make_parallel_sampler
from repro.utils.mathstats import binomial_coefficient_ln
from repro.utils.timer import Timer
from repro.utils.validation import check_delta, check_epsilon, check_k


def _rr_width(graph: CSRGraph, rr_set: np.ndarray) -> int:
    """width(R): number of edges of G entering nodes of R."""
    return int(np.diff(graph.in_indptr)[rr_set].sum())


def _kpt_estimation(
    graph: CSRGraph,
    sampler: RRSampler,
    k: int,
    delta: float,
    pool: RRCollection,
    *,
    max_samples: int | None,
) -> float:
    """KPT lower-bound estimation (TIM paper, Algorithm 2).

    Generated RR sets are appended to ``pool`` so later phases reuse them.
    Returns KPT ≥ 1 (the trivial lower bound when estimation falls through).
    """
    n, m = graph.n, graph.m
    if m == 0:
        return 1.0
    log_n = max(math.log2(n), 2.0)
    base_count = 6.0 * math.log(1.0 / delta) + 6.0 * math.log(log_n)
    for i in range(1, int(log_n)):
        c_i = int(math.ceil(base_count * (2.0**i)))
        if max_samples is not None:
            c_i = min(c_i, max_samples)
        batch = sampler.sample_batch(c_i)
        pool.extend(batch)
        kappa_sum = 0.0
        for rr in batch:
            width_fraction = _rr_width(graph, rr) / m
            kappa_sum += 1.0 - (1.0 - width_fraction) ** k
        if kappa_sum / c_i > 1.0 / (2.0**i):
            return max(1.0, n * kappa_sum / (2.0 * c_i))
        if max_samples is not None and len(pool) >= max_samples:
            break
    return 1.0


def _run_tim(
    graph: CSRGraph,
    k: int,
    epsilon: float,
    delta: float,
    model: "str | DiffusionModel",
    seed,
    *,
    refine: bool,
    max_samples: int | None,
    roots=None,
    backend: "str | ExecutionBackend | None" = None,
    workers: int | None = None,
) -> IMResult:
    n = graph.n
    check_k(k, n)
    check_epsilon(epsilon)
    delta = check_delta(delta)

    sampler = make_parallel_sampler(graph, model, seed, roots=roots, backend=backend, workers=workers)
    scale = sampler.scale
    ln_binom = binomial_coefficient_ln(n, k)
    ln_inv_delta = math.log(1.0 / delta)

    try:
        with Timer() as timer:
            pool = RRCollection(n)
            kpt = _kpt_estimation(graph, sampler, k, delta, pool, max_samples=max_samples)
            kpt_refined = kpt

            if refine and len(pool) > 0:
                # TIM+ intermediate step: propose seeds from the existing pool,
                # then bound their influence from a fresh batch of the same size.
                eps_prime = min(0.9, math.sqrt(2.0) * epsilon)
                proposal = max_coverage(pool, k)
                fresh_count = min(len(pool), max_samples or len(pool))
                fresh_start = len(pool)
                pool.extend(sampler.sample_batch(fresh_count))
                fresh_cov = pool.coverage(proposal.seeds, start=fresh_start)
                estimate = scale * fresh_cov / fresh_count
                kpt_refined = max(kpt, estimate / (1.0 + eps_prime))

            lam = (8.0 + 2.0 * epsilon) * n * (ln_inv_delta + ln_binom + math.log(2.0)) / (
                epsilon * epsilon
            )
            theta = int(math.ceil(lam / kpt_refined))
            if max_samples is not None:
                theta = min(theta, max_samples)
            theta = max(theta, 1)
            if theta > len(pool):
                pool.extend(sampler.sample_batch(theta - len(pool)))
            cover = max_coverage(pool, k, start=0, end=theta)
    finally:
        sampler.close()

    return IMResult(
        algorithm="TIM+" if refine else "TIM",
        seeds=cover.seeds,
        influence=cover.influence_estimate(scale),
        samples=sampler.sets_generated,
        optimization_samples=sampler.sets_generated,
        iterations=1,
        stopped_by="theta",
        elapsed_seconds=timer.elapsed,
        memory_bytes=pool.memory_bytes() + graph.memory_bytes(),
        extras={"kpt": kpt, "kpt_refined": kpt_refined, "theta": theta},
    )


def tim(
    graph: CSRGraph,
    k: int,
    *,
    epsilon: float = 0.1,
    delta: float | None = None,
    model: "str | DiffusionModel" = "IC",
    seed: int | np.random.Generator | None = None,
    max_samples: int | None = None,
    backend: "str | ExecutionBackend | None" = None,
    workers: int | None = None,
) -> IMResult:
    """TIM: KPT estimation, then one-shot RIS at ``θ = λ/KPT``."""
    delta = delta if delta is not None else 1.0 / max(graph.n, 2)
    return _run_tim(
        graph, k, epsilon, delta, model, seed,
        refine=False, max_samples=max_samples, backend=backend, workers=workers,
    )


def tim_plus(
    graph: CSRGraph,
    k: int,
    *,
    epsilon: float = 0.1,
    delta: float | None = None,
    model: "str | DiffusionModel" = "IC",
    seed: int | np.random.Generator | None = None,
    max_samples: int | None = None,
    backend: "str | ExecutionBackend | None" = None,
    workers: int | None = None,
) -> IMResult:
    """TIM+: TIM with the intermediate KPT refinement step."""
    delta = delta if delta is not None else 1.0 / max(graph.n, 2)
    return _run_tim(
        graph, k, epsilon, delta, model, seed,
        refine=True, max_samples=max_samples, backend=backend, workers=workers,
    )
