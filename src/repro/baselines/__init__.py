"""Comparison algorithms from prior work, implemented from their papers.

* :func:`repro.baselines.imm.imm` — IMM (Tang, Shi, Xiao — SIGMOD 2015),
  the paper's main comparator.
* :func:`repro.baselines.tim.tim_plus` / :func:`repro.baselines.tim.tim`
  — TIM/TIM+ (Tang, Xiao, Shi — SIGMOD 2014).
* :func:`repro.baselines.celf.celf` — CELF / CELF++ lazy greedy on Monte
  Carlo spread (Leskovec 2007 / Goyal 2011).
* :mod:`repro.baselines.degree` — degree and degree-discount heuristics
  (no guarantee; sanity baselines).
"""

from repro.baselines.imm import imm
from repro.baselines.tim import tim, tim_plus
from repro.baselines.celf import celf
from repro.baselines.degree import degree_heuristic, degree_discount
from repro.baselines.irie import irie

__all__ = ["imm", "tim", "tim_plus", "celf", "degree_heuristic", "degree_discount", "irie"]
