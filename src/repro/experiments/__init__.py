"""Experiment harness: runners, figure/table series, report rendering."""

from repro.experiments.runner import RunRecord, evaluate_quality, run_algorithm
from repro.experiments.figures import (
    influence_vs_k,
    memory_vs_k,
    runtime_vs_k,
    table3_rows,
    tvm_runtime_vs_k,
)
from repro.experiments.report import render_series, render_table3

__all__ = [
    "RunRecord",
    "run_algorithm",
    "evaluate_quality",
    "influence_vs_k",
    "runtime_vs_k",
    "memory_vs_k",
    "table3_rows",
    "tvm_runtime_vs_k",
    "render_series",
    "render_table3",
]
