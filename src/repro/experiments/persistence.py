"""Persist experiment records to disk (JSON) and reload them.

Long sweeps are expensive; the harness writes every run's
:class:`~repro.experiments.runner.RunRecord` so reports can be
regenerated, diffed across library versions, and aggregated across
machines without re-running algorithms.
"""

from __future__ import annotations

import json
import os
from dataclasses import MISSING, fields
from pathlib import Path

from repro.exceptions import ReproError
from repro.experiments.runner import RunRecord

_FORMAT_VERSION = 1


class PersistenceError(ReproError):
    """Raised when an experiment record file cannot be read or written."""


def save_records(records: "list[RunRecord]", path: str | os.PathLike) -> Path:
    """Write records as a versioned JSON document."""
    payload = {
        "format_version": _FORMAT_VERSION,
        "records": [record.as_dict() for record in records],
    }
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=1, sort_keys=True)
    return path


def load_records(path: str | os.PathLike) -> "list[RunRecord]":
    """Reload records written by :func:`save_records`.

    Unknown keys are ignored (forward compatibility); missing required
    keys raise :class:`PersistenceError`.
    """
    try:
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
    except (OSError, json.JSONDecodeError) as exc:
        raise PersistenceError(f"cannot read records from {path}: {exc}") from exc

    if not isinstance(payload, dict) or "records" not in payload:
        raise PersistenceError(f"{path} is not a repro experiment record file")
    version = payload.get("format_version")
    if version != _FORMAT_VERSION:
        raise PersistenceError(
            f"{path} has format_version {version!r}; this library reads {_FORMAT_VERSION}"
        )

    known = {f.name for f in fields(RunRecord)}
    # Fields with defaults (quality, seeds, provenance, ...) are optional,
    # so files written before a field existed keep loading.
    required = {
        f.name
        for f in fields(RunRecord)
        if f.default is MISSING and f.default_factory is MISSING
    }
    records = []
    for i, raw in enumerate(payload["records"]):
        missing = required - set(raw)
        if missing:
            raise PersistenceError(f"{path}: record {i} missing fields {sorted(missing)}")
        filtered = {k: v for k, v in raw.items() if k in known}
        records.append(RunRecord(**filtered))
    return records


def merge_record_files(paths: "list[str | os.PathLike]") -> "list[RunRecord]":
    """Concatenate records from several files (multi-machine sweeps)."""
    merged: list[RunRecord] = []
    for path in paths:
        merged.extend(load_records(path))
    return merged
