"""Render experiment records as the paper's tables and series."""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Sequence

from repro.experiments.runner import RunRecord
from repro.utils.tables import format_series_chart, format_table


def render_series(
    records: Sequence[RunRecord],
    value: str = "seconds",
    *,
    title: str = "",
    log_y: bool = True,
) -> str:
    """Render records as per-algorithm (k, value) series (figure style).

    ``value`` picks the y-axis: ``"seconds"`` (Figs. 4-5), ``"quality"``
    (Figs. 2-3), ``"memory_bytes"`` (Figs. 6-7), or ``"rr_sets"``.
    """
    series: dict[str, list[tuple[float, float]]] = defaultdict(list)
    for record in records:
        y = getattr(record, value)
        if y is None:
            continue
        series[record.algorithm].append((float(record.k), float(y)))
    for points in series.values():
        points.sort()
    return format_series_chart(dict(series), title=title)


def render_table3(records: Sequence[RunRecord]) -> str:
    """Render Table 3: per dataset × k, each algorithm's time and #RR sets."""
    keyed: dict[tuple[str, int], dict[str, RunRecord]] = defaultdict(dict)
    algorithms: list[str] = []
    for record in records:
        keyed[(record.dataset, record.k)][record.algorithm] = record
        if record.algorithm not in algorithms:
            algorithms.append(record.algorithm)

    headers = ["dataset", "k"]
    for algo in algorithms:
        headers += [f"{algo} time(s)", f"{algo} #RR"]
    rows = []
    for (dataset, k), by_algo in sorted(keyed.items()):
        row: list[object] = [dataset, k]
        for algo in algorithms:
            record = by_algo.get(algo)
            if record is None:
                row += ["n/a", "n/a"]
            else:
                row += [round(record.seconds, 3), record.rr_sets]
        rows.append(row)
    return format_table(headers, rows, title="Table 3: running time and number of RR sets")


def render_comparison(records: Sequence[RunRecord], *, title: str = "") -> str:
    """Generic record dump: one row per run with the headline metrics."""
    headers = ["algorithm", "dataset", "model", "k", "time(s)", "#RR sets", "mem(MB)", "influence", "quality"]
    rows = []
    for r in records:
        rows.append(
            [
                r.algorithm,
                r.dataset,
                r.model,
                r.k,
                round(r.seconds, 4),
                r.rr_sets,
                round(r.memory_bytes / 1e6, 2),
                round(r.influence_estimate, 1),
                "n/a" if r.quality is None else round(r.quality, 1),
            ]
        )
    return format_table(headers, rows, title=title)


def speedup_summary(records: Sequence[RunRecord], *, baseline: str = "IMM") -> str:
    """Per (dataset, k) speedup of every algorithm over ``baseline``.

    This is the "up to 1200x faster than IMM" headline number.
    """
    keyed: dict[tuple[str, int], dict[str, RunRecord]] = defaultdict(dict)
    for record in records:
        keyed[(record.dataset, record.k)][record.algorithm] = record
    headers = ["dataset", "k", "algorithm", "speedup vs " + baseline]
    rows = []
    for (dataset, k), by_algo in sorted(keyed.items()):
        base = by_algo.get(baseline)
        if base is None or base.seconds <= 0:
            continue
        for algo, record in by_algo.items():
            if algo == baseline or record.seconds <= 0:
                continue
            rows.append([dataset, k, algo, round(base.seconds / record.seconds, 2)])
    return format_table(headers, rows, title=f"Speedup over {baseline}")


__all__ = ["render_series", "render_table3", "render_comparison", "speedup_summary", "format_series_chart", "format_table"]
