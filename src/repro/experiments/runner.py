"""Uniform algorithm runner used by every figure/table benchmark.

``run_algorithm`` dispatches on the algorithm name the paper uses in its
legends ("D-SSA", "SSA", "IMM", "TIM+", "TIM", "CELF++", "degree") and
returns a flat :class:`RunRecord` holding exactly the quantities the
paper reports: wall time, RR-set count, memory, and the seed set whose
quality the influence figures evaluate by Monte Carlo.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from repro.baselines.celf import celf
from repro.baselines.degree import degree_discount, degree_heuristic
from repro.baselines.imm import imm
from repro.baselines.irie import irie
from repro.baselines.tim import tim, tim_plus
from repro.core.dssa import dssa
from repro.core.ssa import ssa
from repro.core.result import IMResult
from repro.diffusion.spread import estimate_spread
from repro.exceptions import ParameterError
from repro.graph.digraph import CSRGraph

ALGORITHMS = (
    "D-SSA",
    "SSA",
    "IMM",
    "TIM+",
    "TIM",
    "CELF++",
    "CELF",
    "IRIE",
    "degree",
    "degree-discount",
)


@dataclass
class RunRecord:
    """One algorithm run's metrics, flattened for table rendering."""

    algorithm: str
    dataset: str
    model: str
    k: int
    epsilon: float
    seconds: float
    rr_sets: int
    memory_bytes: int
    influence_estimate: float
    seeds: list[int] = field(default_factory=list)
    iterations: int = 1
    stopped_by: str = ""
    quality: float | None = None  # filled by evaluate_quality

    def as_dict(self) -> dict:
        return asdict(self)


def run_algorithm(
    name: str,
    graph: CSRGraph,
    k: int,
    *,
    model: str = "LT",
    epsilon: float = 0.1,
    delta: float | None = None,
    seed: int | np.random.Generator | None = None,
    dataset: str = "?",
    max_samples: int | None = None,
    celf_simulations: int = 100,
    backend: str | None = None,
    workers: int | None = None,
) -> RunRecord:
    """Run one named algorithm and collect its metrics.

    ``backend``/``workers`` select the RR-sampling execution backend for
    the RIS algorithms (D-SSA/SSA/IMM/TIM+/TIM); the simulation-based
    baselines ignore them.
    """
    key = name.strip()
    if key not in ALGORITHMS:
        raise ParameterError(f"unknown algorithm {name!r}; known: {ALGORITHMS}")

    common = dict(
        epsilon=epsilon,
        delta=delta,
        model=model,
        seed=seed,
        max_samples=max_samples,
        backend=backend,
        workers=workers,
    )
    if key == "D-SSA":
        result = dssa(graph, k, **common)
    elif key == "SSA":
        result = ssa(graph, k, **common)
    elif key == "IMM":
        result = imm(graph, k, **common)
    elif key == "TIM+":
        result = tim_plus(graph, k, **common)
    elif key == "TIM":
        result = tim(graph, k, **common)
    elif key in ("CELF++", "CELF"):
        result = celf(
            graph,
            k,
            model=model,
            simulations=celf_simulations,
            seed=seed,
            plus_plus=(key == "CELF++"),
        )
    elif key == "IRIE":
        result = irie(graph, k)
    elif key == "degree":
        result = degree_heuristic(graph, k)
    else:  # degree-discount
        result = degree_discount(graph, k)

    return _to_record(result, dataset=dataset, model=model, k=k, epsilon=epsilon)


def _to_record(result: IMResult, *, dataset: str, model: str, k: int, epsilon: float) -> RunRecord:
    return RunRecord(
        algorithm=result.algorithm,
        dataset=dataset,
        model=model,
        k=k,
        epsilon=epsilon,
        seconds=result.elapsed_seconds,
        rr_sets=result.samples,
        memory_bytes=result.memory_bytes,
        influence_estimate=result.influence,
        seeds=list(result.seeds),
        iterations=result.iterations,
        stopped_by=result.stopped_by,
    )


def evaluate_quality(
    record: RunRecord,
    graph: CSRGraph,
    *,
    simulations: int = 300,
    seed: int | np.random.Generator | None = None,
) -> RunRecord:
    """Fill ``record.quality`` with a Monte Carlo spread of its seed set.

    This is the y-axis of Figs. 2–3: the *actual* expected influence of
    the returned seeds, measured by forward simulation, independent of
    each algorithm's internal estimate.
    """
    estimate = estimate_spread(
        graph, record.seeds, record.model, simulations=simulations, seed=seed
    )
    record.quality = estimate.mean
    return record
