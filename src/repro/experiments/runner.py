"""Uniform algorithm runner used by every figure/table benchmark.

``run_algorithm`` resolves the algorithm name the paper uses in its
legends ("D-SSA", "SSA", "IMM", "TIM+", "TIM", "CELF++", "degree")
through the :mod:`repro.engine.registry` — capability metadata decides
which knobs each algorithm receives, so there is no dispatch chain to
maintain — and returns a flat :class:`RunRecord` holding exactly the
quantities the paper reports (wall time, RR-set count, memory, the seed
set whose quality the influence figures evaluate by Monte Carlo) plus
the execution provenance (``seed``, ``backend``, ``workers``) needed to
reproduce the row.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

import numpy as np

from repro.core.result import IMResult
from repro.diffusion.spread import estimate_spread
from repro.engine.registry import get_algorithm, list_algorithms
from repro.graph.digraph import CSRGraph
from repro.sampling.backends import ExecutionBackend

#: canonical algorithm names, resolved from the registry.
ALGORITHMS = list_algorithms()


@dataclass
class RunRecord:
    """One algorithm run's metrics, flattened for table rendering.

    ``seed``/``backend``/``workers`` record the execution provenance:
    together with ``algorithm``/``dataset``/``model``/``k``/``epsilon``
    they are sufficient to re-run the row and get byte-identical seeds.
    """

    algorithm: str
    dataset: str
    model: str
    k: int
    epsilon: float
    seconds: float
    rr_sets: int
    memory_bytes: int
    influence_estimate: float
    seeds: list[int] = field(default_factory=list)
    iterations: int = 1
    stopped_by: str = ""
    quality: float | None = None  # filled by evaluate_quality
    seed: int | None = None
    backend: str | None = None
    # Worker count is runtime provenance only: seed-pure streams are
    # byte-identical at any count, so it documents throughput, not the
    # result.  ``seed`` (+ kernel/stream_id) alone replays the row.
    workers: int | None = None
    # Sampling-kernel stream the RR sets came from; None for pre-kernel
    # records and non-sampling algorithms (the scalar stream either way).
    kernel: str | None = None
    # Full stream token (kernel + derivation version, e.g. "scalar-v2");
    # None for records written before seed-pure streams.
    stream_id: str | None = None
    # Mutation lineage position of the graph the run sampled on; None
    # for records written before dynamic graphs (and for one-shot runs
    # on a pristine graph, where it means graph_version 0).
    graph_version: int | None = None

    def as_dict(self) -> dict:
        return asdict(self)


def _provenance_seed(seed) -> int | None:
    """An int seed is replayable provenance; a Generator is not."""
    return int(seed) if isinstance(seed, (int, np.integer)) else None


def _provenance_backend(backend) -> str | None:
    if backend is None:
        return None
    if isinstance(backend, ExecutionBackend):
        return backend.name
    return str(backend)


def run_algorithm(
    name: str,
    graph: CSRGraph,
    k: int,
    *,
    model: str = "LT",
    epsilon: float = 0.1,
    delta: float | None = None,
    seed: int | np.random.Generator | None = None,
    dataset: str = "?",
    max_samples: int | None = None,
    celf_simulations: int = 100,
    backend: str | None = None,
    workers: int | None = None,
    kernel: str | None = None,
) -> RunRecord:
    """Run one named algorithm and collect its metrics.

    ``backend``/``workers`` select the RR-sampling execution backend and
    ``kernel`` the reverse-sampling kernel for the algorithms whose
    registry entry declares the capability; the simulation-based
    baselines ignore them.  Unknown names raise
    :class:`~repro.exceptions.ParameterError`.
    """
    from repro.sampling.base import resolve_kernel

    spec = get_algorithm(name)
    # Resolve "auto" once, here, against the actual workload: the run
    # executes on the concrete kernel and provenance records its real
    # name/stream_id — "auto" never appears in a RunRecord.
    resolved = resolve_kernel(
        kernel, graph=graph, model=model, seed=_provenance_seed(seed)
    ) if spec.supports_kernel else None
    options = {
        "epsilon": epsilon,
        "delta": delta,
        "model": model,
        "seed": seed,
        "max_samples": max_samples,
        "backend": backend,
        "workers": workers,
        "kernel": resolved.name if resolved is not None else kernel,
        "simulations": celf_simulations,
    }
    result = spec.run_one_shot(graph, k, options)
    return _to_record(
        result,
        dataset=dataset,
        model=model,
        k=k,
        epsilon=epsilon,
        seed=_provenance_seed(seed),
        backend=_provenance_backend(backend) if spec.supports_backend else None,
        workers=workers if spec.supports_backend else None,
        kernel=resolved.name if resolved is not None else None,
        stream_id=resolved.stream_id if resolved is not None else None,
        graph_version=None,  # one-shot runs sample the pristine snapshot
    )


def _to_record(
    result: IMResult,
    *,
    dataset: str,
    model: str,
    k: int,
    epsilon: float,
    seed: int | None = None,
    backend: str | None = None,
    workers: int | None = None,
    kernel: str | None = None,
    stream_id: str | None = None,
    graph_version: int | None = None,
) -> RunRecord:
    return RunRecord(
        algorithm=result.algorithm,
        dataset=dataset,
        model=model,
        k=k,
        epsilon=epsilon,
        seconds=result.elapsed_seconds,
        rr_sets=result.samples,
        memory_bytes=result.memory_bytes,
        influence_estimate=result.influence,
        seeds=list(result.seeds),
        iterations=result.iterations,
        stopped_by=result.stopped_by,
        seed=seed,
        backend=backend,
        workers=workers,
        kernel=kernel,
        stream_id=stream_id,
        graph_version=graph_version,
    )


def evaluate_quality(
    record: RunRecord,
    graph: CSRGraph,
    *,
    simulations: int = 300,
    seed: int | np.random.Generator | None = None,
) -> RunRecord:
    """Fill ``record.quality`` with a Monte Carlo spread of its seed set.

    This is the y-axis of Figs. 2–3: the *actual* expected influence of
    the returned seeds, measured by forward simulation, independent of
    each algorithm's internal estimate.
    """
    estimate = estimate_spread(
        graph, record.seeds, record.model, simulations=simulations, seed=seed
    )
    record.quality = estimate.mean
    return record
