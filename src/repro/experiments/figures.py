"""Series builders: one function per figure/table of the evaluation section.

Each builder runs the relevant algorithms over the relevant sweep and
returns plain data structures (lists of :class:`RunRecord`) that the
benchmarks print via :mod:`repro.experiments.report`.  Keeping them here —
rather than inside the benchmark files — makes every experiment scriptable
from the public API and from the CLI.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.datasets.synthetic import load_dataset
from repro.datasets.twitter_topics import build_topic_group
from repro.experiments.runner import RunRecord, evaluate_quality, run_algorithm
from repro.graph.digraph import CSRGraph
from repro.tvm.algorithms import kb_tim, tvm_dssa, tvm_ssa
from repro.utils.rng import ensure_rng, spawn_rngs

DEFAULT_ALGORITHMS = ("D-SSA", "SSA", "IMM", "TIM+")


def influence_vs_k(
    graph: CSRGraph,
    k_values: Sequence[int],
    *,
    model: str = "LT",
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    epsilon: float = 0.1,
    dataset: str = "?",
    seed: int | None = 7,
    quality_simulations: int = 200,
    max_samples: int | None = None,
) -> list[RunRecord]:
    """Figs. 2 (LT) and 3 (IC): expected influence of each method vs k."""
    records = []
    rng = ensure_rng(seed)
    for k in k_values:
        for algo in algorithms:
            record = run_algorithm(
                algo,
                graph,
                k,
                model=model,
                epsilon=epsilon,
                seed=rng.spawn(1)[0],
                dataset=dataset,
                max_samples=max_samples,
            )
            evaluate_quality(
                record, graph, simulations=quality_simulations, seed=rng.spawn(1)[0]
            )
            records.append(record)
    return records


def runtime_vs_k(
    graph: CSRGraph,
    k_values: Sequence[int],
    *,
    model: str = "LT",
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    epsilon: float = 0.1,
    dataset: str = "?",
    seed: int | None = 7,
    max_samples: int | None = None,
) -> list[RunRecord]:
    """Figs. 4 (LT) and 5 (IC): wall-clock running time vs k."""
    records = []
    rng = ensure_rng(seed)
    for k in k_values:
        for algo in algorithms:
            records.append(
                run_algorithm(
                    algo,
                    graph,
                    k,
                    model=model,
                    epsilon=epsilon,
                    seed=rng.spawn(1)[0],
                    dataset=dataset,
                    max_samples=max_samples,
                )
            )
    return records


def memory_vs_k(
    graph: CSRGraph,
    k_values: Sequence[int],
    *,
    model: str = "LT",
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    epsilon: float = 0.1,
    dataset: str = "?",
    seed: int | None = 7,
    max_samples: int | None = None,
) -> list[RunRecord]:
    """Figs. 6 (LT) and 7 (IC): memory usage vs k.

    Memory follows the analytic model of DESIGN.md §3: retained RR-set
    bytes plus graph bytes — the quantity that dominated the paper's
    measurements (e.g. IMM 172 GB vs D-SSA 69 GB on Friendster).
    """
    return runtime_vs_k(
        graph,
        k_values,
        model=model,
        algorithms=algorithms,
        epsilon=epsilon,
        dataset=dataset,
        seed=seed,
        max_samples=max_samples,
    )


def table3_rows(
    dataset_names: Sequence[str],
    k_values: Sequence[int] = (1, 500, 1000),
    *,
    algorithms: Sequence[str] = ("D-SSA", "SSA", "IMM"),
    model: str = "LT",
    epsilon: float = 0.1,
    scale: float = 1.0,
    seed: int | None = 11,
    max_samples: int | None = None,
) -> list[RunRecord]:
    """Table 3: running time and #RR sets on Enron/Epinions/Orkut/Friendster.

    ``k_values`` above the stand-in's node count are clamped (the paper's
    k=500/1000 presume million-node graphs).
    """
    records = []
    rng = ensure_rng(seed)
    for name in dataset_names:
        graph = load_dataset(name, scale=scale)
        for k in k_values:
            effective_k = min(k, max(1, graph.n // 4))
            for algo in algorithms:
                record = run_algorithm(
                    algo,
                    graph,
                    effective_k,
                    model=model,
                    epsilon=epsilon,
                    seed=rng.spawn(1)[0],
                    dataset=name,
                    max_samples=max_samples,
                )
                record.k = k  # report under the paper's nominal k
                records.append(record)
    return records


def tvm_runtime_vs_k(
    graph: CSRGraph,
    topic: int,
    k_values: Sequence[int],
    *,
    model: str = "LT",
    epsilon: float = 0.1,
    seed: int | None = 13,
    max_samples: int | None = None,
) -> list[RunRecord]:
    """Fig. 8: TVM running time of SSA/D-SSA vs KB-TIM on a topic group."""
    group = build_topic_group(graph, topic, seed=seed)
    rng = ensure_rng(seed)
    records = []
    runners = {
        "TVM-D-SSA": tvm_dssa,
        "TVM-SSA": tvm_ssa,
        "KB-TIM": kb_tim,
    }
    for k in k_values:
        for label, fn in runners.items():
            child = rng.spawn(1)[0]
            result = fn(
                graph,
                k,
                group,
                epsilon=epsilon,
                model=model,
                seed=child,
                max_samples=max_samples,
            )
            records.append(
                RunRecord(
                    algorithm=label,
                    dataset=f"twitter/{group.name}",
                    model=model,
                    k=k,
                    epsilon=epsilon,
                    seconds=result.elapsed_seconds,
                    rr_sets=result.samples,
                    memory_bytes=result.memory_bytes,
                    influence_estimate=result.influence,
                    seeds=list(result.seeds),
                    iterations=result.iterations,
                    stopped_by=result.stopped_by,
                    # TVM runs derive per-row child generators from the
                    # sweep seed, so the row itself is replayed via the
                    # sweep-level seed; the spawned child is not an int.
                    seed=None,
                    backend=None,
                    workers=None,
                    kernel=None,
                    stream_id=None,
                    graph_version=None,
                )
            )
    return records
