"""Declarative experiment grids.

The figure benchmarks hand-roll their sweeps; downstream users replaying
the paper on their own graphs want one object that says *what* to run and
a function that runs it, resumably.  ``ExperimentGrid`` is the cartesian
product of datasets × algorithms × k × model, and ``run_grid`` executes
it with deterministic per-cell seeds, optionally skipping cells already
present in a persisted record file (crash-resumable sweeps).
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np

from repro.datasets.synthetic import load_dataset
from repro.exceptions import ParameterError
from repro.experiments.persistence import load_records, save_records
from repro.experiments.runner import ALGORITHMS, RunRecord, evaluate_quality, run_algorithm


@dataclass(frozen=True)
class ExperimentGrid:
    """A fully specified sweep: every combination is one run.

    ``seed`` anchors determinism: cell (dataset, algorithm, k, model)
    always gets the same derived RNG regardless of execution order, so
    partial re-runs produce identical records.
    """

    datasets: Sequence[str]
    algorithms: Sequence[str]
    k_values: Sequence[int]
    models: Sequence[str] = ("LT",)
    epsilon: float = 0.2
    scale: float = 1.0
    seed: int = 2016
    quality_simulations: int = 0  # 0 = skip Monte Carlo evaluation
    max_samples: int | None = None

    def __post_init__(self) -> None:
        if not self.datasets or not self.algorithms or not self.k_values:
            raise ParameterError("grid axes must be non-empty")
        unknown = [a for a in self.algorithms if a not in ALGORITHMS]
        if unknown:
            raise ParameterError(f"unknown algorithms in grid: {unknown}")
        if any(m not in ("LT", "IC") for m in self.models):
            raise ParameterError(f"models must be LT/IC, got {self.models}")

    def cells(self) -> "list[tuple[str, str, int, str]]":
        """All (dataset, algorithm, k, model) combinations, row-major."""
        return [
            (d, a, k, m)
            for d in self.datasets
            for m in self.models
            for k in self.k_values
            for a in self.algorithms
        ]

    def cell_seed(self, dataset: str, algorithm: str, k: int, model: str) -> int:
        """Deterministic per-cell seed, independent of execution order."""
        mix = hash((self.seed, dataset, algorithm, k, model))
        return abs(mix) % (2**31)

    def size(self) -> int:
        """Number of runs the grid describes."""
        return len(self.cells())


def run_grid(
    grid: ExperimentGrid,
    *,
    resume_path: "str | None" = None,
    progress: "callable | None" = None,
) -> "list[RunRecord]":
    """Execute every cell of ``grid`` and return the records.

    With ``resume_path``, records are loaded from / checkpointed to that
    JSON file after every cell, and cells already present (matched on
    dataset/algorithm/k/model) are skipped — interrupting and re-invoking
    continues where the sweep stopped.
    """
    done: list[RunRecord] = []
    have: set[tuple[str, str, int, str]] = set()
    if resume_path is not None:
        try:
            done = load_records(resume_path)
            have = {(r.dataset, r.algorithm, r.k, r.model) for r in done}
        except Exception:
            done, have = [], set()

    graphs: dict[str, object] = {}
    for dataset, algorithm, k, model in grid.cells():
        if (dataset, algorithm, k, model) in have:
            continue
        if dataset not in graphs:
            graphs[dataset] = load_dataset(dataset, scale=grid.scale)
        graph = graphs[dataset]
        cell_seed = grid.cell_seed(dataset, algorithm, k, model)
        record = run_algorithm(
            algorithm,
            graph,
            min(k, graph.n),
            model=model,
            epsilon=grid.epsilon,
            seed=cell_seed,
            dataset=dataset,
            max_samples=grid.max_samples,
        )
        record.k = k
        if grid.quality_simulations > 0:
            evaluate_quality(
                record,
                graph,
                simulations=grid.quality_simulations,
                seed=np.random.default_rng(cell_seed ^ 0xA5A5),
            )
        done.append(record)
        have.add((dataset, algorithm, k, model))
        if resume_path is not None:
            save_records(done, resume_path)
        if progress is not None:
            progress(record)
    return done
