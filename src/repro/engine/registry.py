"""First-class algorithm registry with capability metadata.

Every influence-maximization algorithm in the library registers itself
here with :func:`register_algorithm`, declaring what it *is* (one-shot
entry point, optional engine-aware body) and what it *supports*
(RR-set sampling, execution backends, time-critical horizons, which
keyword arguments its one-shot signature accepts).  The
:class:`~repro.engine.engine.InfluenceEngine`,
:func:`repro.experiments.runner.run_algorithm`, the ``compare``
experiment path, and the CLI all resolve algorithm names through this
table instead of hand-rolled ``if/elif`` chains, so adding an algorithm
is one decorator — no dispatch sites to update.

Names are matched case-insensitively and through declared aliases
(``"dssa"`` resolves to ``"D-SSA"``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.exceptions import ParameterError

#: keyword arguments the experiment runner can supply; specs declare the
#: subset their one-shot signature accepts via ``accepts``.
KNOWN_OPTIONS = (
    "epsilon",
    "delta",
    "model",
    "seed",
    "roots",
    "max_samples",
    "horizon",
    "backend",
    "workers",
    "kernel",
    "simulations",
    "split",
)


@dataclass(frozen=True)
class AlgorithmSpec:
    """One registered algorithm: entry points plus capability metadata.

    Attributes
    ----------
    name / aliases:
        Canonical display name (the paper's legend label) and extra
        case-insensitive lookup keys.
    func:
        The one-shot entry point ``func(graph, k, **kwargs)``.
    engine_func:
        Engine-aware body ``engine_func(ctx, k, *, epsilon, delta,
        max_samples, ...)`` run against a warm
        :class:`~repro.engine.context.SamplingContext`; ``None`` for
        algorithms that do not sample RR sets (the engine falls back to
        the one-shot entry point, with no pool reuse).
    stream:
        Which stream derivation the engine's warm context must use:
        ``"direct"`` (sampler seeded with the session seed, shared by
        D-SSA/IMM/TIM) or ``"split"`` (SSA's two-stream derivation via
        ``spawn_rngs(seed, 2)``).
    needs_rr_sets / supports_backend / supports_horizon /
    supports_kernel:
        Capability flags the engine and docs surface.
        ``supports_kernel`` marks algorithms whose RR sampling accepts a
        :mod:`~repro.sampling.kernels` kernel selection (``--kernel``);
        the vectorized kernel makes their hot loop multi-x faster on
        dense/viral graphs (see ``BENCH_sampler.json``).
    concurrency:
        How concurrent queries for this algorithm interact in a serving
        session: ``"shared-pool"`` (engine-bodied RIS algorithms — all
        in-flight queries read snapshots of one RR pool, answers are
        correlated but byte-identical to sequential runs) or
        ``"isolated"`` (one-shot fallbacks — each query runs on private
        state, concurrency-safe but with no reuse).  The
        :class:`~repro.service.service.InfluenceService` surfaces this
        so clients know which queries share conditioning.
    accepts:
        Keyword names of :data:`KNOWN_OPTIONS` the one-shot signature
        takes; the runner filters its option dict through this set.
    extra_kwargs:
        Fixed keyword arguments bound at registration (e.g. CELF++'s
        ``plus_plus=True``).
    """

    name: str
    func: Callable
    description: str
    engine_func: Callable | None = None
    stream: str = "direct"
    needs_rr_sets: bool = False
    supports_backend: bool = False
    supports_horizon: bool = False
    supports_kernel: bool = False
    concurrency: str = "isolated"
    accepts: frozenset = frozenset()
    extra_kwargs: tuple = ()
    aliases: tuple = ()

    def one_shot_kwargs(self, options: dict) -> dict:
        """Filter a runner option dict down to what ``func`` accepts."""
        kwargs = {key: val for key, val in options.items() if key in self.accepts}
        kwargs.update(dict(self.extra_kwargs))
        return kwargs

    def run_one_shot(self, graph, k: int, options: dict):
        """Invoke the one-shot entry point with filtered options."""
        return self.func(graph, k, **self.one_shot_kwargs(options))


_REGISTRY: dict[str, AlgorithmSpec] = {}
_LOOKUP: dict[str, str] = {}  # lowercase name/alias -> canonical name
_BUILTINS_LOADED = False


def register_algorithm(
    name: str,
    *,
    description: str,
    engine_func: Callable | None = None,
    stream: str = "direct",
    needs_rr_sets: bool = False,
    supports_backend: bool = False,
    supports_horizon: bool = False,
    supports_kernel: bool | None = None,
    concurrency: str | None = None,
    accepts: tuple = (),
    extra_kwargs: tuple = (),
    aliases: tuple = (),
):
    """Class-of-one decorator: register ``func`` under ``name``.

    Returns the function unchanged, so registrations stack (CELF and
    CELF++ are two specs over one implementation).  Unknown ``accepts``
    keys and duplicate names are rejected at import time — a misdeclared
    algorithm fails fast, not at query time.  ``concurrency`` defaults
    from the engine body: ``"shared-pool"`` when one exists,
    ``"isolated"`` otherwise; ``supports_kernel`` defaults from the
    declared ``accepts`` (an algorithm that takes ``kernel=`` selects
    sampling kernels).
    """
    if supports_kernel is None:
        supports_kernel = "kernel" in accepts
    unknown = set(accepts) - set(KNOWN_OPTIONS)
    if unknown:
        raise ParameterError(f"algorithm {name!r} declares unknown options {sorted(unknown)}")
    if stream not in ("direct", "split"):
        raise ParameterError(f"algorithm {name!r}: stream must be 'direct' or 'split'")
    if concurrency is None:
        concurrency = "shared-pool" if engine_func is not None else "isolated"
    if concurrency not in ("shared-pool", "isolated"):
        raise ParameterError(
            f"algorithm {name!r}: concurrency must be 'shared-pool' or 'isolated'"
        )

    def decorator(func: Callable) -> Callable:
        spec = AlgorithmSpec(
            name=name,
            func=func,
            description=description,
            engine_func=engine_func,
            stream=stream,
            needs_rr_sets=needs_rr_sets,
            supports_backend=supports_backend,
            supports_horizon=supports_horizon,
            supports_kernel=supports_kernel,
            concurrency=concurrency,
            accepts=frozenset(accepts),
            extra_kwargs=tuple(extra_kwargs),
            aliases=tuple(aliases),
        )
        _register(spec)
        return func

    return decorator


def _register(spec: AlgorithmSpec) -> None:
    if spec.name in _REGISTRY:
        raise ParameterError(f"algorithm {spec.name!r} is already registered")
    for key in (spec.name, *spec.aliases):
        lower = key.strip().lower()
        if lower in _LOOKUP:
            raise ParameterError(
                f"algorithm name {key!r} collides with registered {_LOOKUP[lower]!r}"
            )
    _REGISTRY[spec.name] = spec
    for key in (spec.name, *spec.aliases):
        _LOOKUP[key.strip().lower()] = spec.name


def _load_builtins() -> None:
    """Import the library's algorithm modules so their decorators run."""
    global _BUILTINS_LOADED
    if _BUILTINS_LOADED:
        return
    _BUILTINS_LOADED = True
    import repro.core.dssa  # noqa: F401
    import repro.core.ssa  # noqa: F401
    import repro.baselines.imm  # noqa: F401
    import repro.baselines.tim  # noqa: F401
    import repro.baselines.celf  # noqa: F401
    import repro.baselines.irie  # noqa: F401
    import repro.baselines.degree  # noqa: F401


def get_algorithm(name: str) -> AlgorithmSpec:
    """Resolve a name or alias (case-insensitive) to its spec."""
    _load_builtins()
    canonical = _LOOKUP.get(str(name).strip().lower())
    if canonical is None:
        raise ParameterError(
            f"unknown algorithm {name!r}; known: {tuple(_REGISTRY)}"
        )
    return _REGISTRY[canonical]


def list_algorithms() -> tuple:
    """Canonical algorithm names in registration order."""
    _load_builtins()
    return tuple(_REGISTRY)


def registry_table() -> str:
    """Render the registry as an aligned capability table.

    Auto-generated from the registered metadata — the README and the
    ``repro-im algorithms`` subcommand both print this, so docs cannot
    drift from the code.
    """
    from repro.utils.tables import format_table

    _load_builtins()
    rows = []
    for spec in _REGISTRY.values():
        rows.append(
            [
                spec.name,
                "yes" if spec.engine_func is not None else "one-shot only",
                "yes" if spec.needs_rr_sets else "no",
                "yes" if spec.supports_backend else "-",
                "yes" if spec.supports_horizon else "-",
                "yes" if spec.supports_kernel else "-",
                spec.concurrency,
                spec.description,
            ]
        )
    from repro.sampling.kernels import AUTO_KERNEL, KERNELS

    table = format_table(
        ["algorithm", "engine reuse", "RR sets", "backends", "horizon", "kernels", "concurrency", "description"],
        rows,
        title="Registered influence-maximization algorithms",
    )
    names = ", ".join(sorted(KERNELS))
    return (
        f"{table}\n"
        f"kernels: {names}, or '{AUTO_KERNEL}' (resolved per workload; "
        "provenance records the concrete kernel)"
    )
