"""`InfluenceEngine` — a session that answers many IM queries cheaply.

One-shot calls pay the full setup bill every time: re-validate the
graph, re-spawn the execution backend (for the process backend that is a
shared-memory segment plus a worker fleet), sample every RR set from
zero, throw it all away.  An engine session pays each of those costs
once:

>>> from repro import InfluenceEngine, load_dataset
>>> with InfluenceEngine(load_dataset("nethept"), model="LT", seed=7) as eng:
...     a = eng.maximize(10, epsilon=0.2)              # cold: samples RR sets
...     b = eng.maximize(20, epsilon=0.2)              # warm: tops the pool up
...     curve = eng.sweep([1, 5, 10], epsilon=0.2)     # mostly cache hits
...     spread = eng.estimate(a.seeds)                 # free-ride on the pool
>>> eng.stats.cache_hits > 0
True

Reuse is *exact*, not approximate: the RR stream is a pure function of
the session seed — independent of batching, backend, and worker count
(``workers`` is a runtime throughput knob; see :meth:`resize`) — so
every query returns byte-identical seeds/samples to the corresponding
one-shot function at the same seed — the cache only removes duplicated
sampling work.  The
price of sharing is statistical, and worth naming: queries answered from
one pool are correlated with each other (the "condition once, query many
times" trade of probabilistic databases); each individual answer still
carries its algorithm's guarantee.

Sessions are **thread-safe**: every query runs against an immutable
prefix snapshot of the shared pool (see
:class:`~repro.service.pool.PoolManager`), so concurrent callers get the
same byte-identical answers sequential callers would.  ``pool_budget``
bounds retained RR-set bytes with LRU eviction, and ``spill_dir`` makes
pools survive process restarts — both default off, preserving the
original unbounded in-memory behaviour.  A shared
:class:`~repro.service.pool.PoolManager` can be injected by a
multi-session :class:`~repro.service.service.InfluenceService`, which
then owns one budget across all sessions.
"""

from __future__ import annotations

import threading
import uuid
from dataclasses import dataclass, replace

import numpy as np

from repro.core.result import IMResult
from repro.diffusion.models import DiffusionModel
from repro.engine.context import SamplingContext
from repro.engine.registry import AlgorithmSpec, get_algorithm
from repro.exceptions import ParameterError

#: pool floor for :meth:`InfluenceEngine.estimate` on an empty session.
_DEFAULT_ESTIMATE_SAMPLES = 4096


@dataclass
class EngineStats:
    """Aggregate query/cache counters for one engine session."""

    queries: int = 0
    rr_requested: int = 0  # RR sets queries demanded (cache hits included)
    rr_sampled: int = 0  # RR sets actually generated
    pool_bytes: int = 0  # retained RR-set bytes across the session's pools
    evictions: int = 0  # pools dropped by the byte-budget enforcer
    mutations: int = 0  # graph mutation batches applied this session
    invalidated_sets: int = 0  # pooled RR sets invalidated by mutations
    repairs: int = 0  # invalidated sets resampled in place (vs dropped)
    repair_fraction: float = 0.0  # invalidated/total of the last mutation

    @property
    def cache_hits(self) -> int:
        """Demanded sets served from the cached pool instead of sampled."""
        return self.rr_requested - self.rr_sampled

    @property
    def hit_rate(self) -> float:
        """Fraction of demanded RR sets served from cache."""
        return self.cache_hits / self.rr_requested if self.rr_requested else 0.0

    def as_dict(self) -> dict:
        return {
            "queries": self.queries,
            "rr_requested": self.rr_requested,
            "rr_sampled": self.rr_sampled,
            "cache_hits": self.cache_hits,
            "hit_rate": self.hit_rate,
            "pool_bytes": self.pool_bytes,
            "evictions": self.evictions,
            "mutations": self.mutations,
            "invalidated_sets": self.invalidated_sets,
            "repairs": self.repairs,
            "repair_fraction": self.repair_fraction,
        }


class InfluenceEngine:
    """Context-managed IM query session with warm backends and RR reuse.

    Parameters
    ----------
    graph:
        The influence graph every query runs against.
    model:
        Session-default diffusion model (queries may override).
    seed:
        Session seed; must be an ``int`` or ``None`` (a fresh entropy
        integer is drawn) so per-query stream derivations are
        replayable.  Pass the same seed to a one-shot function to get
        byte-identical output.
    backend, workers, roots:
        Execution backend, initial worker count, and root distribution
        shared by every warm sampling context the session opens.
        ``workers`` is pure throughput — the stream is identical at any
        value — and can be changed per query (``maximize(...,
        workers=)``) or session-wide at runtime (:meth:`resize`).
    kernel:
        Reverse-sampling kernel for every context the session opens
        (``"scalar"`` — the default, historical stream —
        ``"vectorized"``, the lockstep batch kernels ``"batched"`` /
        ``"lt-batched"``, or ``"auto"`` to pick per workload; see
        :mod:`repro.sampling.kernels`).  ``"auto"`` resolves **once**,
        at session construction, against the session's graph and model;
        the concrete kernel is what provenance and pool keys record.
        Pools are keyed by the kernel's ``stream_id``, so sessions on
        different kernels never share or reattach each other's pools.
    pool_budget:
        Optional byte budget over the session's RR pools; exceeding it
        evicts idle pools least-recently-used first (spilling them to
        ``spill_dir`` when configured).  ``None`` keeps pools unbounded.
    spill_dir:
        Optional directory for cross-session pool persistence: closed
        and evicted pools are written there and transparently
        reattached by any later session with the same stream identity.
    pool_manager:
        A shared :class:`~repro.service.pool.PoolManager` (normally
        injected by an :class:`~repro.service.service.InfluenceService`)
        — mutually exclusive with ``pool_budget``/``spill_dir``, which
        configure a private manager.
    session:
        Namespace for this session's pools inside the manager; defaults
        to a unique generated name.

    The engine lazily opens one pool per distinct ``(stream derivation,
    model, horizon)`` — D-SSA, IMM, TIM, and TIM+ share a single pool
    (they consume the same stream prefix), SSA's split-stream derivation
    gets its own.  All queries are safe to issue from multiple threads.
    """

    def __init__(
        self,
        graph,
        *,
        model: "str | DiffusionModel" = "IC",
        seed: int | None = None,
        backend=None,
        workers: int | None = None,
        roots=None,
        kernel=None,
        pool_budget: int | None = None,
        spill_dir=None,
        pool_manager=None,
        session: str | None = None,
    ) -> None:
        from repro.dynamic import MutableGraphView
        from repro.sampling.base import resolve_kernel
        from repro.service.pool import PoolManager

        # The session's graph lives behind a versioned mutable view:
        # `self.graph` always reads the current snapshot, and `mutate`
        # advances it (repairing warm pools in place).  Accepting a
        # ready-made view lets callers share one live graph across
        # engines of one service.
        if isinstance(graph, MutableGraphView):
            self._graph_view = graph
        else:
            self._graph_view = MutableGraphView(graph)
        self.model = DiffusionModel.parse(model)
        if seed is None:
            seed = int(np.random.SeedSequence().entropy)
        elif not isinstance(seed, (int, np.integer)):
            raise ParameterError(
                "InfluenceEngine needs a replayable session seed (int or None); "
                "pass a Generator to the one-shot functions instead"
            )
        self.seed = int(seed)
        # "auto" resolves here, once per session, against the session's
        # graph/model/seed; every context, pool key, and provenance
        # record then carries the concrete kernel.
        self.kernel = resolve_kernel(
            kernel,
            graph=self._graph_view.graph,
            model=self.model,
            seed=self.seed,
            roots=roots,
        )
        self.backend = backend
        self.workers = workers
        self.roots = roots
        self.session = session if session is not None else f"engine-{uuid.uuid4().hex[:8]}"
        if pool_manager is not None:
            if pool_budget is not None or spill_dir is not None:
                raise ParameterError(
                    "pool_budget/spill_dir are owned by the shared PoolManager; "
                    "configure them there"
                )
            self._pools = pool_manager
            self._owns_pools = False
        else:
            self._pools = PoolManager(budget_bytes=pool_budget, spill_dir=spill_dir)
            self._owns_pools = True
        self.stats = EngineStats()
        self._stats_lock = threading.Lock()
        self._mutation_lock = threading.Lock()
        self._closed = False

    # ------------------------------------------------------------------
    # Graph access
    # ------------------------------------------------------------------
    @property
    def graph(self):
        """The current immutable graph snapshot (see :meth:`mutate`)."""
        return self._graph_view.graph

    @property
    def graph_version(self) -> int:
        """Monotone mutation counter of the session's graph (0 = pristine)."""
        return self._graph_view.version

    @property
    def graph_view(self):
        """The session's :class:`~repro.dynamic.MutableGraphView`."""
        return self._graph_view

    # ------------------------------------------------------------------
    # Pool plumbing
    # ------------------------------------------------------------------
    @property
    def pool_manager(self):
        """The (private or shared) :class:`~repro.service.pool.PoolManager`."""
        return self._pools

    def _check_open(self) -> None:
        if self._closed:
            raise ParameterError("InfluenceEngine session is closed")

    def _pool_key(self, *, stream: str, model: DiffusionModel, horizon: int | None):
        from repro.service.pool import PoolKey

        return PoolKey(
            self.session, stream, model.value, horizon, self.kernel.stream_id,
            self.graph_version,
        )

    def _pool_factory(self, *, stream: str, model: DiffusionModel, horizon: int | None):
        def factory():
            graph, graph_version = self._graph_view.snapshot()
            ctx = SamplingContext(
                graph,
                model,
                seed=self.seed,
                split_verify=(stream == "split"),
                roots=self.roots,
                horizon=horizon,
                backend=self.backend,
                workers=self.workers,
                kernel=self.kernel,
                graph_version=graph_version,
            )
            return ctx, self.seed

        return factory

    def _query_pool(self, *, stream: str, model: DiffusionModel, horizon: int | None):
        return self._pools.query(
            self._pool_key(stream=stream, model=model, horizon=horizon),
            self._pool_factory(stream=stream, model=model, horizon=horizon),
        )

    def stats_snapshot(self) -> EngineStats:
        """A consistent copy of :attr:`stats`, taken under the stats lock.

        Concurrent readers (the service's ``stats``/``sessions`` surface)
        should use this instead of reading :attr:`stats` directly: the
        copy can't observe a query's counters half-applied.
        """
        with self._stats_lock:
            return replace(self.stats)

    def _account(self, *, demand: int, sampled: int) -> None:
        with self._stats_lock:
            self.stats.queries += 1
            self.stats.rr_requested += demand
            self.stats.rr_sampled += sampled
            self.stats.pool_bytes = self._pools.bytes_for(self.session)
            self.stats.evictions = self._pools.evictions_for(self.session)

    def _resolve(self, algorithm: "str | AlgorithmSpec") -> AlgorithmSpec:
        if isinstance(algorithm, AlgorithmSpec):
            return algorithm
        return get_algorithm(algorithm)

    def pool_sizes(self) -> dict:
        """Cached RR sets per open pool, keyed ``(stream, model, horizon,
        stream_id, graph_version)``."""
        return self._pools.pool_sizes(self.session)

    def pool_occupancy(
        self, *, stream: str, model=None, horizon: int | None = None
    ) -> tuple[int, int]:
        """``(sets, bytes)`` this session has pooled for one query shape.

        The admission cost model reads this before a query runs: pooled
        sets are served from cache for free, so only demand beyond the
        occupancy is billed (see :mod:`repro.service.admission`).
        """
        query_model = self.model if model is None else DiffusionModel.parse(model)
        return self._pools.occupancy(
            self._pool_key(stream=stream, model=query_model, horizon=horizon)
        )

    @property
    def active_workers(self) -> int:
        """The worker count this session actually runs at.

        Reads the live pool samplers (so per-query ``workers=``
        overrides and resizes show through); with no pool open yet it
        reports what the first pool would be built with — 1 for serial
        sessions, the configured count (or this machine's CPU count)
        for parallel backends.
        """
        counts = self._pools.workers_for(self.session)
        if counts:
            return max(counts)
        from repro.sampling.backends import SerialBackend, default_worker_count

        is_serial = (
            self.backend is None
            or (isinstance(self.backend, str)
                and self.backend.strip().lower() == SerialBackend.name)
            or isinstance(self.backend, SerialBackend)
        )
        if is_serial and self.workers is None:
            return 1
        return int(self.workers) if self.workers is not None else default_worker_count()

    def resize(self, workers: int) -> int:
        """Set the session's worker count at runtime; returns pools resized.

        Seed-pure streams make ``workers`` a pure throughput knob: every
        open pool's sampler is resized in place and *continues the same
        stream byte-exactly*, and pools opened later start at the new
        count.  Queries in flight are unaffected (they read immutable
        snapshots; top-ups serialize on the pool lock).
        """
        workers = int(workers)
        if workers < 1:
            raise ParameterError(f"workers must be >= 1, got {workers}")
        self._check_open()
        self.workers = workers
        return self._pools.resize_namespace(self.session, workers)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def maximize(
        self,
        k: int,
        *,
        epsilon: float = 0.1,
        delta: float | None = None,
        algorithm: "str | AlgorithmSpec" = "D-SSA",
        model: "str | DiffusionModel | None" = None,
        horizon: int | None = None,
        max_samples: int | None = None,
        workers: int | None = None,
        **algorithm_kwargs,
    ) -> IMResult:
        """Answer one influence-maximization query.

        RIS algorithms run on the session's warm sampling pools —
        repeat and overlapping queries top up the cached RR pool instead
        of resampling.  Algorithms without an engine body (CELF, degree,
        IRIE) still resolve here for a uniform query surface, but run
        one-shot.  ``workers`` overrides the pool's worker count for
        this query onward — a pure throughput knob (seed-pure streams
        are worker-invariant), so the answer is byte-identical at any
        value.  Extra keyword arguments are forwarded to the algorithm
        body (e.g. ``split=`` for SSA).
        """
        self._check_open()
        spec = self._resolve(algorithm)
        query_model = self.model if model is None else DiffusionModel.parse(model)
        if horizon is not None and not spec.supports_horizon:
            raise ParameterError(f"{spec.name} does not support a time-critical horizon")

        if spec.engine_func is None:
            options = {
                "epsilon": epsilon,
                "delta": delta,
                "model": query_model.value,
                "seed": self.seed,
                "max_samples": max_samples,
                "kernel": self.kernel.name,
                **algorithm_kwargs,
            }
            result = spec.run_one_shot(self.graph, k, options)
            self._account(demand=0, sampled=0)
            return result

        with self._query_pool(
            stream=spec.stream, model=query_model, horizon=horizon
        ) as view:
            if workers is not None:
                view.resize(workers)
            result = spec.engine_func(
                view, k, epsilon=epsilon, delta=delta, max_samples=max_samples, **algorithm_kwargs
            )
            demand = int(result.optimization_samples)
            view.note_query(demand)
            sampled = view.sampled
        self._account(demand=demand, sampled=sampled)
        return result

    def sweep(
        self,
        ks,
        *,
        epsilon: float = 0.1,
        delta: float | None = None,
        algorithm: "str | AlgorithmSpec" = "D-SSA",
        **query_kwargs,
    ) -> list[IMResult]:
        """Run one :meth:`maximize` query per budget in ``ks`` (ascending).

        Each query is byte-identical to its one-shot counterpart, but
        the session's pool grows monotonically with the largest demand
        seen — a 5-point sweep samples barely more than its single most
        demanding query instead of 5× from zero.
        """
        if not ks:
            raise ParameterError("ks must be non-empty")
        budgets = sorted(set(int(k) for k in ks))
        return [
            self.maximize(
                k, epsilon=epsilon, delta=delta, algorithm=algorithm, **query_kwargs
            )
            for k in budgets
        ]

    def estimate(
        self,
        seeds,
        *,
        samples: int | None = None,
        model: "str | DiffusionModel | None" = None,
        horizon: int | None = None,
        workers: int | None = None,
    ) -> float:
        """RIS estimate ``Î(S) = Γ·Cov(S)/|R|`` over the session pool.

        Rides the ``direct``-stream pool the RIS algorithms grow, so
        after a ``maximize`` query this is typically pure cache.  On an
        empty session it samples ``samples`` sets (default
        ``_DEFAULT_ESTIMATE_SAMPLES``) first.
        """
        self._check_open()
        query_model = self.model if model is None else DiffusionModel.parse(model)
        if samples is not None and int(samples) < 1:
            raise ParameterError(f"samples must be positive, got {samples}")
        with self._query_pool(stream="direct", model=query_model, horizon=horizon) as view:
            if workers is not None:
                view.resize(workers)
            target = (
                int(samples)
                if samples is not None
                else max(len(view.pool), _DEFAULT_ESTIMATE_SAMPLES)
            )
            pool = view.require(target)
            view.note_query(target)
            sampled = view.sampled
            estimate = view.scale * pool.coverage(seeds, start=0, end=target) / target
        self._account(demand=target, sampled=sampled)
        return estimate

    # ------------------------------------------------------------------
    # Graph mutation
    # ------------------------------------------------------------------
    def mutate(self, delta=None, *, add=(), remove=(), reweight=()) -> dict:
        """Apply one mutation batch to the session's graph, repairing pools.

        Accepts a ready :class:`~repro.dynamic.GraphDelta` or raw edge
        tuples (``add``/``reweight``: ``(u, v, weight)``; ``remove``:
        ``(u, v)``).  The batch compiles into a new graph snapshot
        (``graph_version`` bumps by one), and every warm pool in the
        session is repaired in place: exactly the invalidated RR sets —
        those containing a mutated edge's target — are resampled
        seed-purely on the new graph, byte-identical to a cold resample
        (see :mod:`repro.dynamic`).  Mutation is a **barrier operation**:
        it requires no queries in flight and blocks new ones until the
        repair completes.

        Returns a report dict: ``graph_version``, ``content_hash``,
        ``n``, ``m``, ``pools``, ``sets_total``, ``invalidated``,
        ``repaired``, ``repair_fraction``, ``pools_retired``.
        """
        self._check_open()
        from repro.dynamic import as_delta

        batch = as_delta(delta, add=add, remove=remove, reweight=reweight)
        if batch.is_empty:
            raise ParameterError("mutate needs at least one edge operation")
        with self._mutation_lock:
            new_graph = self._graph_view.apply(batch)
            version = self._graph_view.version
            report = self._pools.mutate_namespace(
                self.session, new_graph, version, batch
            )
        with self._stats_lock:
            self.stats.mutations += 1
            self.stats.invalidated_sets += report["invalidated"]
            self.stats.repairs += report["repaired"]
            self.stats.repair_fraction = report["repair_fraction"]
            self.stats.pool_bytes = self._pools.bytes_for(self.session)
        report.update(
            graph_version=version,
            content_hash=new_graph.fingerprint(),
            n=new_graph.n,
            m=new_graph.m,
        )
        return report

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release every warm backend (idempotent).

        Private pool managers are closed outright; a shared manager only
        drops (and spills, when configured) this session's namespace.
        """
        if self._closed:
            return
        self._closed = True
        if self._owns_pools:
            self._pools.close(spill=True)
        else:
            self._pools.release_namespace(self.session, spill=True)

    def __enter__(self) -> "InfluenceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
