"""`InfluenceEngine` — a session that answers many IM queries cheaply.

One-shot calls pay the full setup bill every time: re-validate the
graph, re-spawn the execution backend (for the process backend that is a
shared-memory segment plus a worker fleet), sample every RR set from
zero, throw it all away.  An engine session pays each of those costs
once:

>>> from repro import InfluenceEngine, load_dataset
>>> with InfluenceEngine(load_dataset("nethept"), model="LT", seed=7) as eng:
...     a = eng.maximize(10, epsilon=0.2)              # cold: samples RR sets
...     b = eng.maximize(20, epsilon=0.2)              # warm: tops the pool up
...     curve = eng.sweep([1, 5, 10], epsilon=0.2)     # mostly cache hits
...     spread = eng.estimate(a.seeds)                 # free-ride on the pool
>>> eng.stats.cache_hits > 0
True

Reuse is *exact*, not approximate: the RR stream is a pure function of
``(seed, workers)`` independent of batching, so every query returns
byte-identical seeds/samples to the corresponding one-shot function at
the same seed — the cache only removes duplicated sampling work.  The
price of sharing is statistical, and worth naming: queries answered from
one pool are correlated with each other (the "condition once, query many
times" trade of probabilistic databases); each individual answer still
carries its algorithm's guarantee.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.result import IMResult
from repro.diffusion.models import DiffusionModel
from repro.engine.context import SamplingContext
from repro.engine.registry import AlgorithmSpec, get_algorithm
from repro.exceptions import ParameterError

#: pool floor for :meth:`InfluenceEngine.estimate` on an empty session.
_DEFAULT_ESTIMATE_SAMPLES = 4096


@dataclass
class EngineStats:
    """Aggregate query/cache counters for one engine session."""

    queries: int = 0
    rr_requested: int = 0  # RR sets queries demanded (cache hits included)
    rr_sampled: int = 0  # RR sets actually generated

    @property
    def cache_hits(self) -> int:
        """Demanded sets served from the cached pool instead of sampled."""
        return self.rr_requested - self.rr_sampled

    @property
    def hit_rate(self) -> float:
        """Fraction of demanded RR sets served from cache."""
        return self.cache_hits / self.rr_requested if self.rr_requested else 0.0

    def as_dict(self) -> dict:
        return {
            "queries": self.queries,
            "rr_requested": self.rr_requested,
            "rr_sampled": self.rr_sampled,
            "cache_hits": self.cache_hits,
            "hit_rate": self.hit_rate,
        }


class InfluenceEngine:
    """Context-managed IM query session with warm backends and RR reuse.

    Parameters
    ----------
    graph:
        The influence graph every query runs against.
    model:
        Session-default diffusion model (queries may override).
    seed:
        Session seed; must be an ``int`` or ``None`` (a fresh entropy
        integer is drawn) so per-query stream derivations are
        replayable.  Pass the same seed to a one-shot function to get
        byte-identical output.
    backend, workers, roots:
        Execution backend, worker count, and root distribution shared by
        every warm sampling context the session opens.

    The engine lazily opens one :class:`SamplingContext` per distinct
    ``(stream derivation, model, horizon)`` — D-SSA, IMM, TIM, and TIM+
    share a single pool (they consume the same stream prefix), SSA's
    split-stream derivation gets its own.
    """

    def __init__(
        self,
        graph,
        *,
        model: "str | DiffusionModel" = "IC",
        seed: int | None = None,
        backend=None,
        workers: int | None = None,
        roots=None,
    ) -> None:
        self.graph = graph
        self.model = DiffusionModel.parse(model)
        if seed is None:
            seed = int(np.random.SeedSequence().entropy)
        elif not isinstance(seed, (int, np.integer)):
            raise ParameterError(
                "InfluenceEngine needs a replayable session seed (int or None); "
                "pass a Generator to the one-shot functions instead"
            )
        self.seed = int(seed)
        self.backend = backend
        self.workers = workers
        self.roots = roots
        self.stats = EngineStats()
        self._contexts: dict[tuple, SamplingContext] = {}
        self._closed = False

    # ------------------------------------------------------------------
    # Context plumbing
    # ------------------------------------------------------------------
    def _check_open(self) -> None:
        if self._closed:
            raise ParameterError("InfluenceEngine session is closed")

    def _context(self, *, stream: str, model: DiffusionModel, horizon: int | None) -> SamplingContext:
        key = (stream, model.value, horizon)
        ctx = self._contexts.get(key)
        if ctx is None:
            ctx = SamplingContext(
                self.graph,
                model,
                seed=self.seed,
                split_verify=(stream == "split"),
                roots=self.roots,
                horizon=horizon,
                backend=self.backend,
                workers=self.workers,
            )
            self._contexts[key] = ctx
        return ctx

    def _resolve(self, algorithm: "str | AlgorithmSpec") -> AlgorithmSpec:
        if isinstance(algorithm, AlgorithmSpec):
            return algorithm
        return get_algorithm(algorithm)

    def pool_sizes(self) -> dict:
        """Cached RR sets per open context, keyed ``(stream, model, horizon)``."""
        return {key: len(ctx.pool) for key, ctx in self._contexts.items()}

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def maximize(
        self,
        k: int,
        *,
        epsilon: float = 0.1,
        delta: float | None = None,
        algorithm: "str | AlgorithmSpec" = "D-SSA",
        model: "str | DiffusionModel | None" = None,
        horizon: int | None = None,
        max_samples: int | None = None,
        **algorithm_kwargs,
    ) -> IMResult:
        """Answer one influence-maximization query.

        RIS algorithms run on the session's warm sampling context —
        repeat and overlapping queries top up the cached RR pool instead
        of resampling.  Algorithms without an engine body (CELF, degree,
        IRIE) still resolve here for a uniform query surface, but run
        one-shot.  Extra keyword arguments are forwarded to the
        algorithm body (e.g. ``split=`` for SSA).
        """
        self._check_open()
        spec = self._resolve(algorithm)
        query_model = self.model if model is None else DiffusionModel.parse(model)
        if horizon is not None and not spec.supports_horizon:
            raise ParameterError(f"{spec.name} does not support a time-critical horizon")

        if spec.engine_func is None:
            options = {
                "epsilon": epsilon,
                "delta": delta,
                "model": query_model.value,
                "seed": self.seed,
                "max_samples": max_samples,
                **algorithm_kwargs,
            }
            self.stats.queries += 1
            return spec.run_one_shot(self.graph, k, options)

        ctx = self._context(stream=spec.stream, model=query_model, horizon=horizon)
        sampled_before = ctx.sampled
        result = spec.engine_func(
            ctx, k, epsilon=epsilon, delta=delta, max_samples=max_samples, **algorithm_kwargs
        )
        demand = int(result.optimization_samples)
        ctx.note_query(demand)
        self.stats.queries += 1
        self.stats.rr_requested += demand
        self.stats.rr_sampled += ctx.sampled - sampled_before
        return result

    def sweep(
        self,
        ks,
        *,
        epsilon: float = 0.1,
        delta: float | None = None,
        algorithm: "str | AlgorithmSpec" = "D-SSA",
        **query_kwargs,
    ) -> list[IMResult]:
        """Run one :meth:`maximize` query per budget in ``ks`` (ascending).

        Each query is byte-identical to its one-shot counterpart, but
        the session's pool grows monotonically with the largest demand
        seen — a 5-point sweep samples barely more than its single most
        demanding query instead of 5× from zero.
        """
        if not ks:
            raise ParameterError("ks must be non-empty")
        budgets = sorted(set(int(k) for k in ks))
        return [
            self.maximize(
                k, epsilon=epsilon, delta=delta, algorithm=algorithm, **query_kwargs
            )
            for k in budgets
        ]

    def estimate(
        self,
        seeds,
        *,
        samples: int | None = None,
        model: "str | DiffusionModel | None" = None,
        horizon: int | None = None,
    ) -> float:
        """RIS estimate ``Î(S) = Γ·Cov(S)/|R|`` over the session pool.

        Rides the ``direct``-stream pool the RIS algorithms grow, so
        after a ``maximize`` query this is typically pure cache.  On an
        empty session it samples ``samples`` sets (default
        ``_DEFAULT_ESTIMATE_SAMPLES``) first.
        """
        self._check_open()
        query_model = self.model if model is None else DiffusionModel.parse(model)
        ctx = self._context(stream="direct", model=query_model, horizon=horizon)
        target = int(samples) if samples is not None else max(len(ctx.pool), _DEFAULT_ESTIMATE_SAMPLES)
        if target < 1:
            raise ParameterError(f"samples must be positive, got {target}")
        sampled_before = ctx.sampled
        pool = ctx.require(target)
        ctx.note_query(target)
        self.stats.queries += 1
        self.stats.rr_requested += target
        self.stats.rr_sampled += ctx.sampled - sampled_before
        return ctx.scale * pool.coverage(seeds, start=0, end=target) / target

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release every warm backend (idempotent)."""
        if self._closed:
            return
        self._closed = True
        errors = []
        for ctx in self._contexts.values():
            try:
                ctx.close()
            except Exception as exc:  # keep releasing the rest
                errors.append(exc)
        if errors:
            raise errors[0]

    def __enter__(self) -> "InfluenceEngine":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
