"""Warm sampling state shared by a session's queries.

A :class:`SamplingContext` owns exactly what the one-shot algorithms
used to rebuild per call: a parallel sampler (and with it the execution
backend — acquired once here, released once in :meth:`close`) plus a
persistent :class:`~repro.sampling.rr_collection.RRCollection` pool.
Algorithm bodies ask for *prefixes* of the RR stream via
:meth:`require`; because the stream is a pure function of the seed
alone — independent of batching, backend, and worker count (see
:mod:`repro.sampling.seedstream`) — serving a query from the cached
pool is byte-identical to resampling it cold, and :meth:`resize` can
change the worker fleet mid-session without touching a byte.  Reuse is
free of statistical or reproducibility surprises beyond the documented
cross-query correlation of shared samples.

The one-shot wrappers (``dssa(...)``, ``ssa(...)``, ...) build a
throwaway context per call, which both guarantees backend teardown on
any exception path (``try/finally``) and makes "one-shot" literally the
single-query special case of the engine — equivalence by construction.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion.models import DiffusionModel
from repro.exceptions import SamplingError
from repro.sampling.base import RRSampler, make_sampler
from repro.sampling.rr_collection import RRCollection
from repro.sampling.sharded import make_parallel_sampler
from repro.utils.rng import spawn_rngs


class SamplingContext:
    """One warm RR stream + pool, shared by every query that fits its key.

    Parameters
    ----------
    graph, model, roots, horizon, backend, workers:
        As for :func:`repro.sampling.sharded.make_parallel_sampler`.
    seed:
        Session seed.  An ``int`` (or ``None``) keeps the context fully
        replayable; a :class:`numpy.random.Generator` is accepted for
        one-shot use but cannot re-derive verification streams across
        queries.
    split_verify:
        ``True`` for SSA's two-stream derivation: the main sampler is
        seeded with ``spawn_rngs(seed, 2)[0]`` and each query gets a
        fresh verification sampler derived exactly as a cold ``ssa``
        call would derive it.
    kernel:
        Reverse-sampling kernel (see :mod:`repro.sampling.kernels`);
        defines the stream's ``stream_id``, shared by the main sampler,
        the pool, and every verification sampler the context derives.
    """

    def __init__(
        self,
        graph,
        model: "str | DiffusionModel",
        *,
        seed=None,
        split_verify: bool = False,
        roots=None,
        horizon: int | None = None,
        backend=None,
        workers: int | None = None,
        kernel=None,
        graph_version: int = 0,
    ) -> None:
        self.graph = graph
        self.graph_version = int(graph_version)
        self.model = DiffusionModel.parse(model)
        self.roots = roots
        self.horizon = horizon
        self._seed = seed
        self._backend = backend
        self._split_verify = split_verify
        self._stored_verify = None
        if split_verify:
            main_rng, self._stored_verify = spawn_rngs(seed, 2)
        else:
            main_rng = seed
        self.sampler: RRSampler = make_parallel_sampler(
            graph,
            model,
            main_rng,
            roots=roots,
            max_hops=horizon,
            backend=backend,
            workers=workers,
            kernel=kernel,
            graph_version=self.graph_version,
        )
        self.kernel = self.sampler.kernel
        self.pool = RRCollection(graph.n, stream_id=self.sampler.stream_id)
        self.sampled = 0  # RR sets actually generated into the pool
        self.served = 0  # RR sets demanded by queries (cache hits included)
        self.queries = 0
        self._closed = False

    # ------------------------------------------------------------------
    # Stream access
    # ------------------------------------------------------------------
    @property
    def scale(self) -> float:
        """Estimator scale Γ (n for RIS, total benefit for WRIS)."""
        return self.sampler.scale

    def require(self, total: int) -> RRCollection:
        """Top the pool up to ``total`` sets and return it.

        Cached sets are served as-is; only the deficit is sampled — and
        the deficit continues the session's pure stream, so the returned
        prefix ``[0, total)`` matches what a cold run would sample.
        """
        if self._closed:
            raise SamplingError("sampling context is closed")
        deficit = int(total) - len(self.pool)
        if deficit > 0:
            self.pool.extend(self.sampler.sample_batch(deficit))
            self.sampled += deficit
        return self.pool

    def note_query(self, demand: int) -> None:
        """Record one finished query and its total RR-set demand."""
        self.queries += 1
        self.served += int(demand)

    def fresh_verifier(self) -> RRSampler:
        """A verification-stream sampler, derived as a cold run derives it.

        For replayable (int) seeds this re-computes
        ``spawn_rngs(seed, 2)[1]`` per query — the same generator state a
        cold ``ssa(seed=...)`` call spawns — so engine queries stay
        byte-identical to one-shots.  Generator-seeded (one-shot)
        contexts hand out the child spawned at construction.
        """
        if not self._split_verify:
            raise SamplingError("context was built without a verification stream")
        if isinstance(self._seed, (int, np.integer)):
            rng = spawn_rngs(int(self._seed), 2)[1]
        elif self._stored_verify is not None:
            rng, self._stored_verify = self._stored_verify, None
        else:  # non-replayable session past its first query: fresh entropy
            rng = None
        return make_sampler(
            self.graph, self.model, rng, roots=self.roots, max_hops=self.horizon,
            kernel=self.kernel, graph_version=self.graph_version,
        )

    # ------------------------------------------------------------------
    # Elastic workers
    # ------------------------------------------------------------------
    @property
    def workers(self) -> int:
        """Current worker count of the context's sampler."""
        return self.sampler.workers

    def resize(self, workers: int) -> None:
        """Set the sampler's worker count mid-session (byte-invisible).

        Seed-pure streams make ``workers`` a pure throughput knob, so a
        resize never changes what any query returns.  A context built
        without a coordinator (plain in-process sampler) is upgraded in
        place to a :class:`~repro.sampling.sharded.ShardedSampler`,
        continuing the stream at the same position — on its configured
        backend, or on the thread backend when the session never chose
        one (``backend=None`` means "no parallelism yet", and resizing
        to W>1 onto a serial fleet would be a silent no-op).
        """
        from repro.sampling.sharded import ShardedSampler

        if self._closed:
            raise SamplingError("sampling context is closed")
        workers = int(workers)
        if workers < 1:
            raise SamplingError(f"workers must be >= 1, got {workers}")
        if isinstance(self.sampler, ShardedSampler):
            self.sampler.resize(workers)
            return
        if workers == 1:
            return  # a plain sampler already is the one-worker topology
        state = self.sampler.state_dict()
        upgraded = ShardedSampler(
            self.graph,
            self.model,
            workers,
            self.sampler.seed_stream,
            roots=self.roots,
            max_hops=self.horizon,
            backend=self._backend if self._backend is not None else "thread",
            kernel=self.kernel,
        )
        upgraded.load_state_dict(state)
        old, self.sampler = self.sampler, upgraded
        old.close()

    # ------------------------------------------------------------------
    # Graph mutation (see repro.dynamic)
    # ------------------------------------------------------------------
    def rebind_graph(self, graph, graph_version: int) -> None:
        """Move the context onto a mutated graph snapshot, mid-stream.

        The sampler is rebuilt on ``graph`` from the *same* seed stream
        and continues at the same cursor — seed purity makes position
        portable across graphs; what changes is which bytes future sets
        contain.  The pool is left as-is: the caller owns repairing the
        invalidated sets (:func:`repro.dynamic.repair.repair_context`)
        before serving any query from it.  A node-count change is
        refused while the pool holds sets — no targeted repair exists
        (root selection draws over ``n``); retire the pool instead.
        """
        from repro.sampling.sharded import ShardedSampler

        if self._closed:
            raise SamplingError("sampling context is closed")
        graph_version = int(graph_version)
        if graph.n != self.graph.n and len(self.pool):
            raise SamplingError(
                f"node count changed ({self.graph.n} -> {graph.n}): every "
                "stored set is invalid, retire the pool instead of rebinding"
            )
        old = self.sampler
        state = old.state_dict()
        state["graph_version"] = graph_version
        seed_stream = old.seed_stream
        workers = old.workers
        if isinstance(old, ShardedSampler):
            backend = self._backend
            if backend is not None and not isinstance(backend, str):
                # The original backend *instance* was consumed (started and
                # now closed) by the old sampler; rebuild by name.
                backend = getattr(backend, "name", None)
            old.close()  # free ports/shm before the replacement fleet starts
            replacement: RRSampler = ShardedSampler(
                graph,
                self.model,
                workers,
                seed_stream,
                roots=self.roots,
                max_hops=self.horizon,
                backend=backend if backend is not None else "thread",
                kernel=self.kernel,
                graph_version=graph_version,
            )
        else:
            old.close()
            replacement = make_sampler(
                graph, self.model, seed_stream, roots=self.roots,
                max_hops=self.horizon, kernel=self.kernel,
                graph_version=graph_version,
            )
        replacement.load_state_dict(state)
        self.sampler = replacement
        self.graph = graph
        self.graph_version = graph_version
        if graph.n != self.pool.n:
            # Empty pool on a grown/shrunk graph: restart it at the new n.
            self.pool = RRCollection(graph.n, stream_id=self.sampler.stream_id)

    def truncate(self, keep: int) -> int:
        """Drop pool sets ``[keep, len)`` and reposition the stream.

        Per-set seed derivation makes any prefix resumable: the sampler
        simply seeks to ``keep``, so the next :meth:`require` past the
        kept prefix re-continues the stream byte-exactly.  Returns the
        number of sets dropped.  Used by the pool manager's suffix
        eviction under byte pressure.
        """
        if self._closed:
            raise SamplingError("sampling context is closed")
        dropped = self.pool.truncate(keep)
        if dropped:
            self.sampler.seek(len(self.pool), entries=self.pool.total_entries)
        return dropped

    # ------------------------------------------------------------------
    # Stream position (pool spill / reattach)
    # ------------------------------------------------------------------
    def state_dict(self) -> dict:
        """The sampler's stream position (see :meth:`RRSampler.state_dict`)."""
        return self.sampler.state_dict()

    def load_state_dict(self, state: dict) -> None:
        """Restore a stream position captured by :meth:`state_dict`."""
        self.sampler.load_state_dict(state)

    def preload(self, rr_sets) -> int:
        """Seed an *empty* pool with previously spilled RR sets.

        The sets are served as cache without counting as sampled this
        session; the caller must also :meth:`load_state_dict` the
        matching sampler position so later top-ups continue the stream.
        """
        if len(self.pool):
            raise SamplingError("can only preload an empty pool")
        self.pool.extend(rr_sets)
        # Keep the stream position consistent even if the caller skips
        # load_state_dict: top-ups must continue after the preloaded
        # prefix, never resample over it.
        self.sampler.seek(len(self.pool), entries=self.pool.total_entries)
        return len(self.pool)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the backend (idempotent); the pool stays readable."""
        if self._closed:
            return
        self._closed = True
        self.sampler.close()

    def __enter__(self) -> "SamplingContext":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
