"""Session-oriented query engine for influence maximization.

The paper's Stop-and-Stare algorithms exist to answer IM *queries* at
scale, but one-shot functions pay the full setup cost — graph
validation, execution-backend spawn, RR sampling from zero — on every
call.  This package turns that around with the "condition once, query
many times" economics of probabilistic databases:

* :class:`~repro.engine.engine.InfluenceEngine` — a context-managed
  session bound to ``(graph, model, seed, backend, workers)`` that keeps
  its execution backend warm and serves ``maximize`` / ``sweep`` /
  ``estimate`` queries against persistent RR-set pools;
* :class:`~repro.engine.context.SamplingContext` — the warm sampling
  state (one backend acquire, one growing
  :class:`~repro.sampling.rr_collection.RRCollection`) that both the
  engine and the one-shot wrappers run algorithm bodies on;
* the **algorithm registry**
  (:func:`~repro.engine.registry.register_algorithm`) — first-class
  algorithm metadata (needs-RR-sets, supported backends, horizon
  support) that the engine, ``run_algorithm``, ``compare``, and the CLI
  all resolve through.

Because the RR stream is a pure function of the seed alone —
independent of batching, backend, and worker count (per-set SeedSequence
derivation; see :mod:`repro.sampling.seedstream`) — a warm session's
cached pool is the byte-exact prefix of any cold run's stream, so
repeated queries *top up* instead of resampling while returning
byte-identical results to the one-shot functions at equal seeds, and
``workers`` can be retuned per query or mid-session
(:meth:`~repro.engine.engine.InfluenceEngine.resize`) for free.

Sessions are thread-safe and bounded: pool state lives in a
:class:`~repro.service.pool.PoolManager` (immutable per-query
snapshots, byte budget with LRU eviction, disk spill/reattach); the
multi-user front — named sessions, futures, TCP — is
:mod:`repro.service`.
"""

from repro.engine.context import SamplingContext
from repro.engine.engine import EngineStats, InfluenceEngine
from repro.engine.registry import (
    AlgorithmSpec,
    get_algorithm,
    list_algorithms,
    register_algorithm,
    registry_table,
)

__all__ = [
    "InfluenceEngine",
    "EngineStats",
    "SamplingContext",
    "AlgorithmSpec",
    "register_algorithm",
    "get_algorithm",
    "list_algorithms",
    "registry_table",
]
