"""Extensions beyond the paper's core scope.

* :mod:`repro.extensions.budgeted` — cost-aware seed selection (the
  direction of the authors' companion work, "Cost-aware Targeted Viral
  Marketing", reference [12] of the paper).
* :mod:`repro.extensions.sweep` — amortized multi-k sweeps exploiting the
  nested structure of greedy seed sets.
"""

from repro.extensions.budgeted import budgeted_dssa, budgeted_max_coverage
from repro.extensions.sweep import SweepResult, influence_sweep

__all__ = [
    "budgeted_max_coverage",
    "budgeted_dssa",
    "influence_sweep",
    "SweepResult",
]
