"""Budgeted (cost-aware) influence maximization over RR sets.

The paper's companion work (reference [12], "Cost-aware Targeted Viral
Marketing in billion-scale networks") replaces the cardinality constraint
|S| ≤ k with a knapsack constraint Σ c(v) ≤ B: celebrity endorsements
cost more than micro-influencers.  The RIS reduction is unchanged — only
the coverage subproblem becomes *budgeted* max-coverage, solved here with
the classic Khuller–Moss–Naor scheme (reference [27] of the paper):

* greedy by coverage-per-cost ratio within budget, and
* the best single affordable node,

taking the better of the two, which guarantees a (1-1/√e) fraction of the
optimal coverage (and (1-1/e)/2 in general).

``budgeted_dssa`` runs the D-SSA sampling loop with this selector — a
pragmatic extension: the stopping analysis is calibrated for the
cardinality-constrained greedy, so the approximation constant here is the
budgeted one, not the paper's (1-1/e-ε).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.max_coverage import MaxCoverageResult
from repro.core.result import IMResult
from repro.core.thresholds import max_iterations, sample_cap
from repro.diffusion.models import DiffusionModel
from repro.exceptions import ParameterError
from repro.graph.digraph import CSRGraph
from repro.sampling.base import make_sampler
from repro.sampling.rr_collection import RRCollection
from repro.utils.mathstats import upsilon
from repro.utils.timer import Timer
from repro.utils.validation import check_delta, check_epsilon


def budgeted_max_coverage(
    collection: RRCollection,
    costs: np.ndarray,
    budget: float,
    *,
    start: int = 0,
    end: int | None = None,
) -> MaxCoverageResult:
    """Budgeted greedy max-coverage (Khuller–Moss–Naor).

    ``costs[v] > 0`` is node v's seeding cost; the returned seed set
    satisfies ``Σ costs ≤ budget``.
    """
    n = collection.n
    costs = np.asarray(costs, dtype=np.float64)
    if costs.shape != (n,):
        raise ParameterError(f"costs must have shape ({n},), got {costs.shape}")
    if np.any(costs <= 0) or not np.all(np.isfinite(costs)):
        raise ParameterError("costs must be positive and finite")
    if budget <= 0:
        raise ParameterError(f"budget must be positive, got {budget}")

    flat, offsets = collection.flat_view(start, end)
    num_sets = len(offsets) - 1
    base_counts = np.bincount(flat, minlength=n).astype(np.float64)

    # Candidate 1: ratio greedy.
    counts = base_counts.copy()
    covered = np.zeros(num_sets, dtype=bool)
    order = np.argsort(flat, kind="stable") if flat.size else np.zeros(0, dtype=np.int64)
    sorted_nodes = flat[order] if flat.size else flat
    node_starts = np.searchsorted(sorted_nodes, np.arange(n + 1))
    set_of_entry = (
        np.repeat(np.arange(num_sets, dtype=np.int64), np.diff(offsets))
        if num_sets
        else np.zeros(0, dtype=np.int64)
    )

    greedy_seeds: list[int] = []
    greedy_marginals: list[int] = []
    remaining = float(budget)
    excluded = np.zeros(n, dtype=bool)
    while True:
        affordable = (~excluded) & (costs <= remaining)
        if not affordable.any():
            break
        ratios = np.where(affordable, counts / costs, -np.inf)
        v = int(np.argmax(ratios))
        if ratios[v] <= 0:
            break
        positions = order[node_starts[v] : node_starts[v + 1]]
        containing = set_of_entry[positions]
        newly = containing[~covered[containing]]
        greedy_seeds.append(v)
        greedy_marginals.append(int(newly.size))
        covered[newly] = True
        if newly.size:
            lengths = offsets[newly + 1] - offsets[newly]
            touched = flat[_concat(offsets[newly], lengths)]
            np.subtract.at(counts, touched, 1)
        excluded[v] = True
        remaining -= float(costs[v])
    greedy_cov = int(sum(greedy_marginals))

    # Candidate 2: the best single affordable node.
    single_mask = costs <= budget
    single_cov = 0
    single_seed: list[int] = []
    if single_mask.any():
        masked = np.where(single_mask, base_counts, -1.0)
        best_single = int(np.argmax(masked))
        if masked[best_single] > 0:
            single_cov = int(base_counts[best_single])
            single_seed = [best_single]

    if single_cov > greedy_cov:
        return MaxCoverageResult(
            seeds=single_seed,
            coverage=single_cov,
            num_sets=num_sets,
            marginal_coverage=[single_cov],
        )
    return MaxCoverageResult(
        seeds=greedy_seeds,
        coverage=greedy_cov,
        num_sets=num_sets,
        marginal_coverage=greedy_marginals,
    )


def _concat(starts: np.ndarray, lengths: np.ndarray) -> np.ndarray:
    total = int(lengths.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64)
    out = np.ones(total, dtype=np.int64)
    out[0] = starts[0]
    boundaries = np.cumsum(lengths)[:-1]
    out[boundaries] = starts[1:] - (starts[:-1] + lengths[:-1]) + 1
    return np.cumsum(out)


def budgeted_dssa(
    graph: CSRGraph,
    costs: np.ndarray,
    budget: float,
    *,
    epsilon: float = 0.1,
    delta: float | None = None,
    model: "str | DiffusionModel" = "IC",
    seed: int | np.random.Generator | None = None,
    max_samples: int | None = None,
) -> IMResult:
    """D-SSA's sampling loop with a knapsack seed constraint.

    The stopping rule mirrors Algorithm 4 with the budgeted selector in
    place of Algorithm 2; the quality guarantee inherits the budgeted
    greedy's constant (see module docstring) rather than (1-1/e-ε).
    """
    n = graph.n
    check_epsilon(epsilon)
    delta = check_delta(delta if delta is not None else 1.0 / max(n, 2))
    costs = np.asarray(costs, dtype=np.float64)
    if costs.shape != (n,):
        raise ParameterError(f"costs must have shape ({n},), got {costs.shape}")
    min_cost = float(costs.min()) if n else 0.0
    if budget < min_cost:
        raise ParameterError(
            f"budget {budget} cannot afford any node (cheapest costs {min_cost})"
        )

    # Thresholds are computed against the effective max seed count.
    k_effective = max(1, min(n, int(budget // max(min_cost, 1e-12))))
    n_max = sample_cap(n, min(k_effective, n), epsilon, delta)
    if max_samples is not None:
        n_max = min(n_max, float(max_samples))
    t_max = max_iterations(n, min(k_effective, n), epsilon, delta)
    per_iter_delta = delta / (3.0 * t_max)
    lambda_base = int(math.ceil(upsilon(epsilon, per_iter_delta)))
    lambda_1 = 1.0 + (1.0 + epsilon) * upsilon(epsilon, per_iter_delta)

    sampler = make_sampler(graph, model, seed)
    scale = sampler.scale

    with Timer() as timer:
        stream = RRCollection(n)
        cover = None
        influence_hat = 0.0
        iterations = 0
        stopped_by = "cap"
        while True:
            iterations += 1
            half = lambda_base * (2 ** (iterations - 1))
            need = 2 * half
            if need > len(stream):
                stream.extend(sampler.sample_batch(need - len(stream)))
            cover = budgeted_max_coverage(stream, costs, budget, start=0, end=half)
            influence_hat = cover.influence_estimate(scale)
            verify_cov = stream.coverage(cover.seeds, start=half, end=need) if cover.seeds else 0
            if verify_cov >= lambda_1:
                influence_check = scale * verify_cov / half
                e1 = influence_hat / influence_check - 1.0
                e2 = epsilon * math.sqrt(
                    scale * (1.0 + epsilon) / (2 ** (iterations - 1) * influence_check)
                )
                if (e1 + e2 + e1 * e2) <= epsilon:
                    stopped_by = "conditions"
                    break
            if len(stream) >= n_max:
                break

    return IMResult(
        algorithm="budgeted-D-SSA",
        seeds=cover.seeds,
        influence=influence_hat,
        samples=sampler.sets_generated,
        optimization_samples=sampler.sets_generated,
        iterations=iterations,
        stopped_by=stopped_by,
        elapsed_seconds=timer.elapsed,
        memory_bytes=stream.memory_bytes() + graph.memory_bytes(),
        extras={
            "budget": float(budget),
            "spent": float(costs[cover.seeds].sum()) if cover.seeds else 0.0,
        },
    )
