"""Amortized multi-k influence sweeps.

The figures of the paper sweep k over a wide range, re-running each
algorithm per k.  Greedy max-coverage has a *nested* structure: the
seeds chosen for budget k are a prefix of the seeds chosen for any
k' > k on the same RR pool.  So one D-SSA run at k_max yields, for free,
a coverage-consistent seed prefix and influence estimate for every
smaller k — the cheap way to produce "influence vs k" curves for
planning dashboards.

The guarantee caveat is surfaced honestly: only the k_max point carries
D-SSA's (1-1/e-ε) certificate; prefix points are greedy-on-the-same-pool
estimates (in practice indistinguishable from per-k runs, which
``tests/extensions/test_sweep.py`` checks statistically).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.dssa import dssa
from repro.core.max_coverage import max_coverage
from repro.diffusion.models import DiffusionModel
from repro.exceptions import ParameterError
from repro.graph.digraph import CSRGraph
from repro.sampling.base import make_sampler
from repro.sampling.rr_collection import RRCollection


@dataclass(frozen=True)
class SweepResult:
    """Influence-vs-k curve from one amortized run.

    ``seeds`` is the k_max greedy ordering; the seed set for any smaller
    k is ``seeds[:k]`` and ``influence_at[k]`` its coverage estimate.
    """

    seeds: list[int]
    influence_at: dict[int, float]
    samples: int
    k_max: int

    def marginal_gains(self) -> list[float]:
        """Influence gain per added seed along the greedy ordering."""
        ks = sorted(self.influence_at)
        values = [self.influence_at[k] for k in ks]
        return [b - a for a, b in zip([0.0] + values, values)]


def influence_sweep(
    graph: CSRGraph,
    k_values: "list[int]",
    *,
    epsilon: float = 0.1,
    delta: float | None = None,
    model: "str | DiffusionModel" = "IC",
    seed: int | np.random.Generator | None = None,
    max_samples: int | None = None,
    engine=None,
) -> SweepResult:
    """One D-SSA run at max(k_values); prefix estimates for the rest.

    Pass a warm :class:`~repro.engine.engine.InfluenceEngine` as
    ``engine`` to serve the k_max run from its session pool (byte-
    identical to the one-shot run at the engine's seed; ``model`` and
    ``seed`` are then taken from the session).  For a sweep where every
    point carries its own certificate, use ``engine.sweep(ks)`` instead
    — one guaranteed query per k, amortized through the shared pool.
    """
    if not k_values:
        raise ParameterError("k_values must be non-empty")
    k_values = sorted(set(int(k) for k in k_values))
    if k_values[0] < 1 or k_values[-1] > graph.n:
        raise ParameterError(f"k values must lie in [1, {graph.n}], got {k_values}")
    k_max = k_values[-1]

    if engine is not None:
        result = engine.maximize(
            k_max,
            epsilon=epsilon,
            delta=delta,
            algorithm="D-SSA",
            max_samples=max_samples,
        )
    else:
        result = dssa(
            graph,
            k_max,
            epsilon=epsilon,
            delta=delta,
            model=model,
            seed=seed,
            max_samples=max_samples,
        )

    # Recover the greedy ordering's prefix coverages on a fresh pool of
    # the same size D-SSA ended with: unbiased prefix estimates that do
    # not reuse the stopping-correlated samples.
    pool_size = max(1000, result.optimization_samples // 2)
    if max_samples is not None:
        pool_size = min(pool_size, max_samples)
    sampler = make_sampler(graph, model, seed=np.random.default_rng(result.samples), roots=None)
    pool = RRCollection(graph.n)
    pool.extend(sampler.sample_batch(pool_size))
    cover = max_coverage(pool, k_max)

    influence_at: dict[int, float] = {}
    running = 0
    marginals = cover.marginal_coverage
    for i, k in enumerate(range(1, k_max + 1)):
        running += marginals[i] if i < len(marginals) else 0
        if k in k_values:
            influence_at[k] = graph.n * running / len(pool)

    return SweepResult(
        seeds=cover.seeds,
        influence_at=influence_at,
        samples=result.samples + sampler.sets_generated,
        k_max=k_max,
    )
