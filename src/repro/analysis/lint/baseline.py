"""Committed baseline of grandfathered findings.

New checkers land on an existing tree; violations that predate them are
recorded here — each with a one-line justification — so CI can gate on
*new* findings from day one without a big-bang cleanup.  The contract:

* an entry matches a finding by ``(checker, path, context)`` — the
  stripped source line, not the line number, so unrelated edits that
  shift code do not invalidate entries;
* matching is by multiplicity: two identical findings need two entries;
* an entry that matches nothing is **stale** — the violation was fixed
  (or the line changed, which must re-justify the entry either way) —
  and is reported as "fixed — remove from baseline".

The file is plain JSON so diffs review well; entries should only ever
be removed (fixes) or added with a justification (new grandfathered
code, which should be rare — fix instead).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.lint.core import Finding

_FORMAT_VERSION = 1


class BaselineError(ValueError):
    """Raised for unreadable or malformed baseline files."""


@dataclass
class BaselineMatch:
    """Outcome of matching one report against one baseline."""

    new: "list[Finding]" = field(default_factory=list)
    baselined: "list[Finding]" = field(default_factory=list)
    stale: "list[dict]" = field(default_factory=list)


def load_baseline(path: "str | Path") -> "list[dict]":
    """Read baseline entries; raises :class:`BaselineError` loudly —
    a silently ignored baseline would gate nothing."""
    path = Path(path)
    try:
        payload = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise BaselineError(f"cannot read baseline {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise BaselineError(f"baseline {path} is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict) or payload.get("version") != _FORMAT_VERSION:
        raise BaselineError(
            f"baseline {path} has unsupported format "
            f"(expected a JSON object with version {_FORMAT_VERSION})"
        )
    entries = payload.get("entries")
    if not isinstance(entries, list):
        raise BaselineError(f"baseline {path} has no 'entries' list")
    for entry in entries:
        missing = {"checker", "path", "context"} - set(entry)
        if missing:
            raise BaselineError(
                f"baseline {path} entry {entry!r} is missing {sorted(missing)}"
            )
    return entries


def save_baseline(findings: "list[Finding]", path: "str | Path") -> None:
    """Write every finding as a baseline entry (justifications TODO).

    Used by ``--write-baseline`` when adopting the linter; each TODO is
    expected to be replaced by a real one-line justification in review.
    """
    entries = [
        {
            "checker": f.checker,
            "path": f.path,
            "line": f.line,
            "context": f.context,
            "justification": "TODO: justify or fix",
        }
        for f in findings
    ]
    payload = {"version": _FORMAT_VERSION, "entries": entries}
    Path(path).write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")


def entry_key(entry: dict) -> tuple:
    return (entry["checker"], entry["path"], entry["context"])


def match_baseline(findings: "list[Finding]", entries: "list[dict]") -> BaselineMatch:
    """Split findings into new/baselined and surface stale entries."""
    budget: "dict[tuple, int]" = {}
    for entry in entries:
        key = entry_key(entry)
        budget[key] = budget.get(key, 0) + 1
    outcome = BaselineMatch()
    for finding in findings:
        if budget.get(finding.key, 0) > 0:
            budget[finding.key] -= 1
            outcome.baselined.append(finding)
        else:
            outcome.new.append(finding)
    remaining = dict(budget)
    for entry in entries:
        key = entry_key(entry)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            outcome.stale.append(entry)
    return outcome
