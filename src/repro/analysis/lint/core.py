"""reprolint core: findings, the checker registry, and the lint runner.

The framework is deliberately small: a checker is one class with an
``id``, a ``description``, and a ``check(module)`` method returning
:class:`Finding` objects.  The runner parses each source file once,
hands the shared :class:`ModuleSource` (path, text, AST, pragma index)
to every applicable checker, filters findings through the inline
``# repro: allow[checker-id]`` pragma, and leaves baseline matching to
:mod:`repro.analysis.lint.baseline`.

Checkers are *project-specific by design*: they encode this repository's
load-bearing contracts (seed-pure streams, lock discipline, provenance
stamping, resource lifecycle — see ``docs/INVARIANTS.md``) rather than
generic style rules, so a finding is an invariant violation, not a
nit.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path

from repro.analysis.lint.pragmas import pragma_index

#: checker-id used for files the runner cannot parse at all.
PARSE_ERROR_ID = "parse-error"


@dataclass(frozen=True)
class Finding:
    """One invariant violation at one source location.

    ``context`` is the stripped source line the finding anchors to; the
    baseline keys on ``(checker, path, context)`` instead of the line
    number, so unrelated edits that shift code down a file do not
    invalidate grandfathered entries.
    """

    checker: str
    path: str
    line: int
    message: str
    context: str = ""

    @property
    def key(self) -> tuple:
        return (self.checker, self.path, self.context)

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.checker}] {self.message}"

    def to_dict(self) -> dict:
        return {
            "checker": self.checker,
            "path": self.path,
            "line": self.line,
            "message": self.message,
            "context": self.context,
        }


def normalize_path(path: "str | Path") -> str:
    """Stable display/baseline path: anchored at ``src/repro/`` (or
    ``repro/``) when the file lives under the package, else as given.

    Anchoring makes baseline entries and pragma-free fixture tests agree
    regardless of whether the linter was invoked with an absolute path,
    a relative path, or from a different working directory.
    """
    text = Path(path).as_posix()
    for anchor in ("src/repro/", "repro/"):
        index = text.find(anchor)
        if index != -1:
            return text[index:]
    return text


class ModuleSource:
    """One parsed source file shared by every checker."""

    def __init__(self, path: "str | Path", source: str) -> None:
        self.path = normalize_path(path)
        self.source = source
        self.lines = source.splitlines()
        self.tree = ast.parse(source)  # caller handles SyntaxError
        self.pragmas = pragma_index(source)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def finding(self, checker_id: str, node, message: str) -> Finding:
        """Build a finding anchored at ``node`` (AST node or line int)."""
        line = node if isinstance(node, int) else getattr(node, "lineno", 1)
        return Finding(
            checker=checker_id,
            path=self.path,
            line=int(line),
            message=message,
            context=self.line_text(int(line)),
        )


class Checker:
    """Base class: subclass, set ``id``/``description``, implement ``check``.

    ``applies_to`` scopes a checker to part of the tree (e.g. seed
    purity only polices stream-deriving code); the default is every
    file.
    """

    id: str = ""
    description: str = ""

    def applies_to(self, module: ModuleSource) -> bool:
        return True

    def check(self, module: ModuleSource) -> "list[Finding]":
        raise NotImplementedError

    def finding(self, module: ModuleSource, node, message: str) -> Finding:
        return module.finding(self.id, node, message)


#: id -> checker instance; populated by :func:`register`.
CHECKERS: "dict[str, Checker]" = {}


def register(cls: type) -> type:
    """Class decorator adding one checker instance to the registry."""
    checker = cls()
    if not checker.id:
        raise ValueError(f"checker {cls.__name__} has no id")
    if checker.id in CHECKERS:
        raise ValueError(f"duplicate checker id {checker.id!r}")
    CHECKERS[checker.id] = checker
    return cls


def load_checkers() -> "dict[str, Checker]":
    """Import every built-in checker module (idempotent) and return the
    registry.  Keeping the imports here avoids import cycles: checker
    modules import :mod:`core`, never the other way around."""
    from repro.analysis.lint import (  # noqa: F401 (imported for registration)
        lifecycle,
        lock_discipline,
        provenance,
        seed_purity,
    )

    return CHECKERS


@dataclass
class LintReport:
    """Everything one lint run produced, before baseline matching."""

    findings: "list[Finding]" = field(default_factory=list)
    suppressed: int = 0  # findings silenced by an inline pragma
    files: int = 0

    def sorted(self) -> "list[Finding]":
        return sorted(self.findings, key=lambda f: (f.path, f.line, f.checker))


def iter_python_files(paths) -> "list[Path]":
    """Expand files/directories into a sorted list of ``.py`` files."""
    out: "list[Path]" = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(sorted(p for p in path.rglob("*.py") if p.is_file()))
        elif path.is_file():
            out.append(path)
        else:
            raise FileNotFoundError(f"no such file or directory: {path}")
    return out


def lint_source(
    source: str,
    path: "str | Path" = "module.py",
    *,
    select: "set[str] | None" = None,
) -> LintReport:
    """Lint one in-memory source string (the fixture-test entry point)."""
    report = LintReport(files=1)
    checkers = _selected(select)
    try:
        module = ModuleSource(path, source)
    except SyntaxError as exc:
        report.findings.append(
            Finding(
                checker=PARSE_ERROR_ID,
                path=normalize_path(path),
                line=int(exc.lineno or 1),
                message=f"cannot parse: {exc.msg}",
            )
        )
        return report
    for checker in checkers:
        if not checker.applies_to(module):
            continue
        for finding in checker.check(module):
            if finding.checker in module.pragmas.get(finding.line, set()):
                report.suppressed += 1
            else:
                report.findings.append(finding)
    return report


def run_lint(paths, *, select: "set[str] | None" = None) -> LintReport:
    """Lint files/directories; returns the merged report."""
    report = LintReport()
    for path in iter_python_files(paths):
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            report.findings.append(
                Finding(
                    checker=PARSE_ERROR_ID,
                    path=normalize_path(path),
                    line=1,
                    message=f"cannot read: {exc}",
                )
            )
            continue
        sub = lint_source(source, path, select=select)
        report.findings.extend(sub.findings)
        report.suppressed += sub.suppressed
        report.files += 1
    report.findings = report.sorted()
    return report


def _selected(select: "set[str] | None") -> "list[Checker]":
    registry = load_checkers()
    if select is None:
        return list(registry.values())
    unknown = set(select) - set(registry)
    if unknown:
        raise ValueError(
            f"unknown checker id(s) {sorted(unknown)}; known: {sorted(registry)}"
        )
    return [registry[cid] for cid in sorted(select)]


# ----------------------------------------------------------------------
# Small AST helpers shared by checkers
# ----------------------------------------------------------------------
def dotted_name(node) -> "str | None":
    """``a.b.c`` for Name/Attribute chains, else ``None``."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        base = dotted_name(node.value)
        return f"{base}.{node.attr}" if base else None
    return None


def import_aliases(tree: ast.AST) -> "dict[str, str]":
    """Local name -> canonical dotted origin for every import.

    ``import numpy as np`` maps ``np -> numpy``; ``from numpy.random
    import default_rng as rng`` maps ``rng -> numpy.random.default_rng``.
    """
    aliases: "dict[str, str]" = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                aliases[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
                if alias.asname:
                    aliases[alias.asname] = alias.name
        elif isinstance(node, ast.ImportFrom):
            # Relative imports keep their leading dots; absolute names in
            # checker tables won't match them (correct — the origin is
            # unknown), but suffix-based rules still see the dotted path.
            prefix = "." * node.level + (node.module or "")
            for alias in node.names:
                aliases[alias.asname or alias.name] = (
                    f"{prefix}.{alias.name}" if prefix else alias.name
                )
    return aliases


def resolve_call_name(node: ast.Call, aliases: "dict[str, str]") -> "str | None":
    """The canonical dotted name of a call target, import-aliases applied."""
    name = dotted_name(node.func)
    if name is None:
        return None
    head, _, rest = name.partition(".")
    origin = aliases.get(head)
    if origin is not None:
        return f"{origin}.{rest}" if rest else origin
    return name
