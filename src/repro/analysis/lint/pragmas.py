"""Inline suppression pragmas: ``# repro: allow[checker-id]``.

A pragma suppresses findings of the named checker(s) **on its own line
only** — a pragma on the line above (or anywhere else) does nothing, so
suppressions stay glued to the code they excuse and survive reformatting
only when the excuse still points at the violation.  Several ids may be
listed comma-separated: ``# repro: allow[seed-purity, lock-discipline]``.

Suppressions are for violations that are *correct on purpose* (e.g. a
send-serialization lock that exists precisely to hold a lock across a
socket write); violations that are merely *old* belong in the committed
baseline file with a justification instead
(:mod:`repro.analysis.lint.baseline`).
"""

from __future__ import annotations

import io
import re
import tokenize

_PRAGMA_RE = re.compile(r"#\s*repro:\s*allow\[([^\]]*)\]")


def parse_pragma(comment: str) -> "set[str] | None":
    """Checker ids named by one comment, or ``None`` if not a pragma."""
    match = _PRAGMA_RE.search(comment)
    if match is None:
        return None
    return {tok.strip() for tok in match.group(1).split(",") if tok.strip()}


def pragma_index(source: str) -> "dict[int, set[str]]":
    """1-based line -> suppressed checker ids, from real COMMENT tokens.

    Tokenizing (instead of regexing raw lines) means a pragma-shaped
    substring inside a string literal never suppresses anything.
    Falls back to a line scan if tokenization fails — the linter still
    reports on files the tokenizer chokes on.
    """
    index: "dict[int, set[str]]" = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        for tok in tokens:
            if tok.type != tokenize.COMMENT:
                continue
            ids = parse_pragma(tok.string)
            if ids:
                index.setdefault(tok.start[0], set()).update(ids)
    except (tokenize.TokenError, IndentationError, SyntaxError):
        for lineno, line in enumerate(source.splitlines(), start=1):
            ids = parse_pragma(line)
            if ids:
                index.setdefault(lineno, set()).update(ids)
    return index
