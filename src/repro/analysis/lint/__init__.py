"""reprolint: project-specific invariant-enforcing static analysis.

Four checkers guard the contracts documented in ``docs/INVARIANTS.md``:

* ``seed-purity`` — no ambient RNG / wall clock / set order in
  stream-deriving code;
* ``lock-discipline`` — guarded attributes stay guarded, no blocking
  calls under a lock, no lock-order cycles;
* ``provenance-stamp`` — PoolKey / RunRecord / spill stamps / sampler
  ``state_dict`` always thread explicit stream provenance;
* ``resource-lifecycle`` — sockets, processes, shm and executors are
  released exception-safely or ownership-transferred.

Run as ``repro lint`` or ``python -m repro.analysis``; in tests, use
:func:`lint_source` on an in-memory snippet.
"""

from repro.analysis.lint.baseline import (
    BaselineError,
    BaselineMatch,
    load_baseline,
    match_baseline,
    save_baseline,
)
from repro.analysis.lint.core import (
    CHECKERS,
    Finding,
    LintReport,
    load_checkers,
    lint_source,
    run_lint,
)

__all__ = [
    "BaselineError",
    "BaselineMatch",
    "CHECKERS",
    "Finding",
    "LintReport",
    "lint_source",
    "load_baseline",
    "load_checkers",
    "match_baseline",
    "run_lint",
    "save_baseline",
]
