"""Command-line front end: ``repro lint`` / ``python -m repro.analysis``.

Exit codes: 0 — clean (every finding suppressed or baselined); 1 — new
findings (or, with ``--strict``, stale baseline entries); 2 — usage or
baseline-file errors.  A baseline named ``reprolint-baseline.json`` in
the current directory is picked up automatically so ``repro lint src/``
gates the same way locally and in CI; ``--no-baseline`` shows the
ungated picture.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.analysis.lint.baseline import (
    BaselineError,
    load_baseline,
    match_baseline,
    save_baseline,
)
from repro.analysis.lint.core import load_checkers, run_lint

DEFAULT_BASELINE = "reprolint-baseline.json"


def add_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "paths",
        nargs="*",
        default=["src"],
        help="files or directories to lint (default: src)",
    )
    parser.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        help="output format (default: text)",
    )
    parser.add_argument(
        "--output",
        metavar="FILE",
        help="also write the report (in the chosen format) to FILE",
    )
    parser.add_argument(
        "--baseline",
        metavar="FILE",
        help=f"baseline file of grandfathered findings "
        f"(default: ./{DEFAULT_BASELINE} when present)",
    )
    parser.add_argument(
        "--no-baseline",
        action="store_true",
        help="ignore any baseline; report every finding as new",
    )
    parser.add_argument(
        "--write-baseline",
        metavar="FILE",
        help="write current findings as a fresh baseline to FILE and exit",
    )
    parser.add_argument(
        "--select",
        metavar="IDS",
        help="comma-separated checker ids to run (default: all)",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail (exit 1) on stale baseline entries",
    )
    parser.add_argument(
        "--list-checkers",
        action="store_true",
        help="list registered checkers and exit",
    )


def run(args: argparse.Namespace) -> int:
    if args.list_checkers:
        for checker_id, checker in sorted(load_checkers().items()):
            print(f"{checker_id}: {checker.description}")
        return 0

    select = None
    if args.select:
        select = {tok.strip() for tok in args.select.split(",") if tok.strip()}

    try:
        report = run_lint(args.paths, select=select)
    except (FileNotFoundError, ValueError) as exc:
        print(f"reprolint: error: {exc}", file=sys.stderr)
        return 2

    if args.write_baseline:
        save_baseline(report.sorted(), args.write_baseline)
        print(
            f"reprolint: wrote {len(report.findings)} entr"
            f"{'y' if len(report.findings) == 1 else 'ies'} to "
            f"{args.write_baseline} (fill in the justifications)"
        )
        return 0

    entries: "list[dict]" = []
    baseline_path = None
    if not args.no_baseline:
        if args.baseline:
            baseline_path = Path(args.baseline)
        elif Path(DEFAULT_BASELINE).is_file():
            baseline_path = Path(DEFAULT_BASELINE)
        if baseline_path is not None:
            try:
                entries = load_baseline(baseline_path)
            except BaselineError as exc:
                print(f"reprolint: error: {exc}", file=sys.stderr)
                return 2

    outcome = match_baseline(report.sorted(), entries)

    payload = {
        "files": report.files,
        "suppressed": report.suppressed,
        "baseline": str(baseline_path) if baseline_path else None,
        "new": [f.to_dict() for f in outcome.new],
        "baselined": [f.to_dict() for f in outcome.baselined],
        "stale": outcome.stale,
    }
    text = _render(payload) if args.format == "text" else json.dumps(payload, indent=2)
    print(text)
    if args.output:
        Path(args.output).write_text(
            json.dumps(payload, indent=2) + "\n"
            if args.format == "json"
            else text + "\n",
            encoding="utf-8",
        )

    if outcome.new:
        return 1
    if args.strict and outcome.stale:
        return 1
    return 0


def _render(payload: dict) -> str:
    lines = []
    for finding in payload["new"]:
        lines.append(
            f"{finding['path']}:{finding['line']}: "
            f"[{finding['checker']}] {finding['message']}"
        )
    for entry in payload["stale"]:
        lines.append(
            f"{entry['path']}: [{entry['checker']}] baseline entry matches "
            f"nothing — fixed? remove from baseline "
            f"(context: {entry['context']!r})"
        )
    new = len(payload["new"])
    lines.append(
        f"reprolint: {payload['files']} file"
        f"{'' if payload['files'] == 1 else 's'}, "
        f"{new} new finding{'' if new == 1 else 's'}, "
        f"{len(payload['baselined'])} baselined, "
        f"{payload['suppressed']} suppressed, "
        f"{len(payload['stale'])} stale baseline entr"
        f"{'y' if len(payload['stale']) == 1 else 'ies'}"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="project-specific invariant linter (reprolint)",
    )
    add_arguments(parser)
    return run(parser.parse_args(argv))
