"""resource-lifecycle: acquire/release pairing for leak-prone handles.

The fleet layer holds sockets, worker subprocesses, shared-memory
segments and executors — resources the OS will not forgive leaking under
churn (PR 6's respawn loop can cycle workers for hours).  The rule: a
function that *acquires* such a resource into a local variable must, on
every path, either

* **release** it (``close``/``terminate``/``kill``/``shutdown``/
  ``unlink``/``detach``/``cleanup``) — exception-safely, i.e. from a
  ``finally`` or ``except`` block, or with no failure-prone call between
  acquisition and release;
* manage it with a ``with`` statement; or
* **transfer ownership** — return/yield it, store it on an object or
  container, or pass it to another callable (constructors like
  ``_HostLease(sock)`` take ownership).

Two findings come out of this:

* *leak* — no release and no transfer anywhere in the function;
* *not exception-safe* — a release exists, but it sits on the straight-
  line path with failure-prone calls before it, so an exception skips
  it.

Resources stored directly onto ``self`` at acquisition are the owning
object's problem (its ``close`` is a different checker's concern) and
are not tracked here.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.core import (
    Checker,
    ModuleSource,
    import_aliases,
    register,
    resolve_call_name,
)

#: resolved constructor name -> human label for messages.
_ACQUIRERS = {
    "socket.socket": "socket",
    "socket.create_connection": "socket",
    "open": "file handle",
    "tempfile.NamedTemporaryFile": "temp file",
    "tempfile.TemporaryFile": "temp file",
    "tempfile.TemporaryDirectory": "temp dir",
    "subprocess.Popen": "child process",
    "multiprocessing.shared_memory.SharedMemory": "shared-memory segment",
    "concurrent.futures.ThreadPoolExecutor": "executor",
    "concurrent.futures.ProcessPoolExecutor": "executor",
}

_RELEASE_METHODS = {
    "close", "terminate", "kill", "shutdown", "unlink", "detach", "cleanup",
}


class _Resource:
    def __init__(self, name: str, node: ast.AST, label: str, ctor: str) -> None:
        self.name = name
        self.node = node
        self.label = label
        self.ctor = ctor
        self.released_at: "list[tuple[int, bool]]" = []  # (lineno, safe?)
        self.transferred = False
        self.with_managed = False


@register
class LifecycleChecker(Checker):
    id = "resource-lifecycle"
    description = (
        "sockets/processes/shm/executors acquired in a function must be "
        "released exception-safely or have ownership transferred"
    )

    def check(self, module: ModuleSource) -> list:
        aliases = import_aliases(module.tree)
        findings = []
        for node in ast.walk(module.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                findings.extend(self._check_function(module, node, aliases))
        return findings

    def _check_function(self, module: ModuleSource, func, aliases) -> list:
        resources: "dict[str, _Resource]" = {}
        call_lines: "list[int]" = []

        def acquirer_label(call: ast.Call) -> "tuple[str, str] | None":
            name = resolve_call_name(call, aliases)
            label = _ACQUIRERS.get(name or "")
            return (label, name) if label else None

        def mentions(expr, name: str) -> bool:
            return any(
                isinstance(n, ast.Name) and n.id == name for n in ast.walk(expr)
            )

        def visit(node, safe: bool) -> None:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                return  # nested callables get their own pass
            if isinstance(node, ast.Try):
                for child in node.body:
                    visit(child, safe)
                for handler in node.handlers:
                    for child in handler.body:
                        visit(child, True)
                for child in node.orelse:
                    visit(child, safe)
                for child in node.finalbody:
                    visit(child, True)
                return
            if isinstance(node, (ast.With, ast.AsyncWith)):
                for item in node.items:
                    if isinstance(item.context_expr, ast.Call):
                        call_lines.append(item.context_expr.lineno)
                        # `with socket.socket() as s:` is inherently safe.
                    elif isinstance(item.context_expr, ast.Name):
                        res = resources.get(item.context_expr.id)
                        if res is not None:
                            res.with_managed = True
                    else:
                        # closing(x) / stack.enter_context(x): handled as a
                        # Call below (x transfers into the manager).
                        visit(item.context_expr, safe)
                for child in node.body:
                    visit(child, safe)
                return
            if isinstance(node, ast.Assign):
                if isinstance(node.value, ast.Call):
                    acquired = acquirer_label(node.value)
                    if (
                        acquired is not None
                        and len(node.targets) == 1
                        and isinstance(node.targets[0], ast.Name)
                    ):
                        label, ctor = acquired
                        name = node.targets[0].id
                        resources.setdefault(
                            name, _Resource(name, node.value, label, ctor)
                        )
                        visit(node.value, safe)  # nested calls in the args
                        return
                for res in resources.values():
                    if not isinstance(node.targets[0], ast.Name) and mentions(
                        node.value, res.name
                    ):
                        res.transferred = True  # self.x = res / d[k] = res
                visit(node.value, safe)
                return
            if isinstance(node, (ast.Return, ast.Yield, ast.YieldFrom)):
                if node.value is not None:
                    for res in resources.values():
                        if mentions(node.value, res.name):
                            res.transferred = True
                    visit(node.value, safe)
                return
            if isinstance(node, ast.Call):
                call_lines.append(node.lineno)
                func_expr = node.func
                if (
                    isinstance(func_expr, ast.Attribute)
                    and isinstance(func_expr.value, ast.Name)
                    and func_expr.value.id in resources
                ):
                    if func_expr.attr in _RELEASE_METHODS:
                        resources[func_expr.value.id].released_at.append(
                            (node.lineno, safe)
                        )
                for arg in list(node.args) + [kw.value for kw in node.keywords]:
                    for res in resources.values():
                        if mentions(arg, res.name):
                            res.transferred = True
            for child in ast.iter_child_nodes(node):
                visit(child, safe)

        for stmt in func.body:
            visit(stmt, False)

        findings = []
        for res in resources.values():
            if res.transferred or res.with_managed:
                continue
            if not res.released_at:
                findings.append(
                    self.finding(
                        module,
                        res.node,
                        f"{res.label} acquired by {res.ctor}() in "
                        f"{func.name}() is never released or transferred; "
                        "close it in a finally block, use a with statement, "
                        "or hand ownership to a longer-lived owner",
                    )
                )
                continue
            if any(safe for _line, safe in res.released_at):
                continue
            first_release = min(line for line, _safe in res.released_at)
            risky = [
                line
                for line in call_lines
                if res.node.lineno < line < first_release
            ]
            if risky:
                findings.append(
                    self.finding(
                        module,
                        res.node,
                        f"{res.label} acquired by {res.ctor}() in "
                        f"{func.name}() is released only on the straight-line "
                        f"path (line {first_release}); a raise from the calls "
                        "in between leaks it — release in a finally block or "
                        "use a with statement",
                    )
                )
        return findings
