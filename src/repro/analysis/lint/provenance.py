"""provenance-stamp: stream identity must be threaded, never defaulted.

Replayability rests on every artifact carrying its full stream
provenance: which kernel/derivation produced the RR sets (``stream_id``),
from which ``seed``, under which ``model``/``horizon``.  The dataclasses
involved give these fields defaults so old call sites keep importing —
but a *new* call site that silently inherits a default is exactly how a
pool gets keyed to the wrong stream or a results row becomes
unreplayable.  This checker makes the defaults unusable:

* ``PoolKey(...)`` must pass ``stream_id`` and ``graph_version``
  explicitly (or all six positionals) — pools cache RR sets per stream
  *per graph snapshot*, and a defaulted field would alias pools across
  kernels or across mutations;
* ``RunRecord(...)`` must pass every provenance field — ``seed``,
  ``backend``, ``workers``, ``kernel``, ``stream_id``,
  ``graph_version`` — explicitly; ``None`` is fine (it states "not
  replayable" / "pristine graph" on purpose), omission is not;
* ``make_stamp(...)`` must pass ``model``, ``stream``, ``horizon``,
  ``seed``, ``sampler`` and ``graph_version`` — a spill stamp missing
  any of them cannot be verified on reattach (``graph_version=None``
  states "pristine lineage" explicitly; see the stamp's nonzero-only
  embedding in :func:`repro.service.store.make_stamp`);
* a ``state_dict`` method in ``repro/sampling/`` that returns a dict
  literal must include ``"stream_id"`` and ``"graph_version"`` keys —
  resuming a stream without its kernel identity or graph lineage is how
  cross-kernel and cross-mutation resume bugs are born.

A call made with ``**kwargs`` is skipped: the checker cannot see the
keys, and forcing a rewrite there would be guessing.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.core import (
    Checker,
    ModuleSource,
    import_aliases,
    register,
    resolve_call_name,
)

#: constructor suffix -> (required keyword set, positional count that
#: also satisfies the requirement, human phrasing of why).
_REQUIRED = {
    "PoolKey": (
        {"stream_id", "graph_version"},
        6,
        "pools cache RR sets per kernel stream per graph snapshot; a "
        "defaulted stream_id or graph_version aliases pools across "
        "kernels or across mutations",
    ),
    "RunRecord": (
        {"seed", "backend", "workers", "kernel", "stream_id", "graph_version"},
        None,
        "results rows without execution provenance cannot be replayed; "
        "pass None explicitly where a field is genuinely unknown",
    ),
    "make_stamp": (
        {"model", "stream", "horizon", "seed", "sampler", "graph_version"},
        None,
        "a spill stamp missing stream provenance cannot be verified on "
        "reattach; graph_version=None states pristine lineage explicitly",
    ),
}


@register
class ProvenanceChecker(Checker):
    id = "provenance-stamp"
    description = (
        "PoolKey / RunRecord / make_stamp / sampler state_dict must carry "
        "explicit stream provenance (stream_id, seed, kernel, ...)"
    )

    def check(self, module: ModuleSource) -> list:
        aliases = import_aliases(module.tree)
        findings = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(module, node, aliases))
        if "repro/sampling/" in module.path:
            findings.extend(self._check_state_dicts(module))
        return findings

    def _check_call(self, module: ModuleSource, node: ast.Call, aliases) -> list:
        name = resolve_call_name(node, aliases)
        if name is None:
            return []
        suffix = name.rsplit(".", 1)[-1]
        spec = _REQUIRED.get(suffix)
        if spec is None:
            return []
        required, positional_ok, why = spec
        if any(kw.arg is None for kw in node.keywords):
            return []  # **kwargs: keys invisible, give the caller the benefit
        if any(isinstance(arg, ast.Starred) for arg in node.args):
            return []
        if positional_ok is not None and len(node.args) >= positional_ok:
            return []  # enough positionals to reach the provenance fields
        passed = {kw.arg for kw in node.keywords}
        missing = sorted(required - passed)
        if not missing:
            return []
        fields = ", ".join(missing)
        return [
            self.finding(
                module,
                node,
                f"{suffix}() call drops provenance field(s) {fields}: {why}",
            )
        ]

    def _check_state_dicts(self, module: ModuleSource) -> list:
        findings = []
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.FunctionDef) or node.name != "state_dict":
                continue
            for ret in ast.walk(node):
                if not isinstance(ret, ast.Return) or not isinstance(
                    ret.value, ast.Dict
                ):
                    continue
                if any(k is None for k in ret.value.keys):
                    continue  # dict literal with ** expansion: keys invisible
                keys = {
                    k.value
                    for k in ret.value.keys
                    if isinstance(k, ast.Constant) and isinstance(k.value, str)
                }
                for field, what in (
                    ("stream_id", "kernel identity"),
                    ("graph_version", "graph lineage"),
                ):
                    if field not in keys:
                        findings.append(
                            self.finding(
                                module,
                                ret,
                                f"state_dict() payload has no {field!r} key; "
                                f"a resumed stream must carry its {what} "
                                "(see RRSampler.state_dict)",
                            )
                        )
        return findings
