"""lock-discipline: guarded attributes, blocking-under-lock, lock cycles.

The concurrent layers (engine, service, network fleet) follow one
convention this checker mechanizes: a class that creates a
``threading.Lock``/``RLock``/``Condition`` on ``self`` guards some of
its attributes with it.  The checker *infers* the guarded set — the
``self.X`` attributes written while holding the lock outside
``__init__`` — and then enforces three rules:

1. **Unguarded access** — reading or writing an inferred-guarded
   attribute in a method that does not hold the lock is a race.
   Exempt: ``__init__``/``__del__`` (no concurrent aliases yet /
   anymore) and methods whose name ends in ``_locked`` (the repo's
   caller-holds-the-lock naming convention).
2. **Blocking under lock** — socket I/O (``recv``/``accept``/
   ``sendall``/``send``/``connect``, the project's ``send_frame``/
   ``recv_frame``), ``subprocess`` spawns, ``time.sleep``, thread
   ``join``, and ``wait`` on anything that is not the held condition
   itself must not run while a lock is held; this is the class of bug
   behind PR 6's ``shutdown()``/``start_background()`` deadlock.  The
   check follows ``self.method()`` calls transitively inside the class,
   so hiding the blocking call one helper down still fires.
3. **Lock-order cycles** — a ``with self.A`` region that (transitively)
   enters methods acquiring lock ``B`` adds edge ``A -> B`` to the
   module's lock graph; any cycle is a deadlock candidate, and a
   ``with``-reacquisition of a plain (non-reentrant) ``Lock`` is
   reported as a guaranteed self-deadlock.

``threading.Condition(self._lock)`` aliases the condition to the lock
it wraps: holding either counts as holding both.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

from repro.analysis.lint.core import (
    Checker,
    ModuleSource,
    dotted_name,
    import_aliases,
    register,
    resolve_call_name,
)

_LOCK_FACTORIES = {
    "threading.Lock": "Lock",
    "threading.RLock": "RLock",
    "threading.Condition": "Condition",
}

#: attribute-call suffixes that block (socket and wire-protocol I/O).
#: ``join``/``wait`` get receiver-sensitive handling below.
_BLOCKING_SUFFIXES = {
    "recv", "recv_into", "recvfrom", "accept", "connect", "sendall",
    "send", "send_frame", "recv_frame",
}

_SLEEP_NAMES = {"time.sleep"}

_SUBPROCESS_NAMES = {
    "subprocess.Popen", "subprocess.run", "subprocess.call",
    "subprocess.check_call", "subprocess.check_output",
}

#: ``X.join()`` receivers that look like threads/processes/workers; a
#: name-based heuristic keeps ``", ".join`` and ``os.path.join`` silent.
_JOINABLE_HINTS = ("thread", "proc", "worker", "host", "executor")

_EXEMPT_METHODS = {"__init__", "__del__"}


@dataclass
class _MethodInfo:
    name: str
    node: ast.AST
    acquires: "set[str]" = field(default_factory=set)  # canonical lock attrs
    #: blocking call made while a lock was held: direct findings
    held_blocking: "list[tuple[ast.AST, str]]" = field(default_factory=list)
    #: blocking call anywhere in the method: transitive-closure fuel
    any_blocking: "list[tuple[ast.AST, str]]" = field(default_factory=list)
    #: lock misuse independent of held state (wait without the lock)
    misuse: "list[tuple[ast.AST, str]]" = field(default_factory=list)
    self_calls: "set[str]" = field(default_factory=set)
    #: (held canonical lock, call node, callee descriptor)
    lock_calls: "list[tuple[str, ast.AST, tuple]]" = field(default_factory=list)


class _ClassModel:
    """Locks, guarded attributes, and per-method facts for one class."""

    def __init__(self, node: ast.ClassDef, aliases: dict) -> None:
        self.node = node
        self.name = node.name
        self.aliases = aliases
        self.locks: "dict[str, str]" = {}  # attr -> factory kind
        self.lock_groups: "dict[str, str]" = {}  # attr -> canonical attr
        self.methods: "dict[str, _MethodInfo]" = {}
        self.guarded: "set[str]" = set()
        self._find_locks()
        for item in node.body:
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.methods[item.name] = self._scan_method(item)
        self._infer_guarded()

    # -- lock discovery ------------------------------------------------
    def _find_locks(self) -> None:
        for stmt in ast.walk(self.node):
            if not isinstance(stmt, ast.Assign) or not isinstance(stmt.value, ast.Call):
                continue
            factory = resolve_call_name(stmt.value, self.aliases)
            kind = _LOCK_FACTORIES.get(factory or "")
            if kind is None:
                continue
            for target in stmt.targets:
                attr = _self_attr(target)
                if attr is None:
                    continue
                self.locks[attr] = kind
                self.lock_groups.setdefault(attr, attr)
                if kind == "Condition" and stmt.value.args:
                    wrapped = _self_attr(stmt.value.args[0])
                    if wrapped is not None:
                        # Condition(self._lock): one underlying mutex.
                        canonical = self.lock_groups.get(wrapped, wrapped)
                        self.lock_groups[attr] = canonical
                        self.lock_groups.setdefault(wrapped, canonical)

    def canonical(self, attr: str) -> str:
        return self.lock_groups.get(attr, attr)

    def with_acquires(self, node: ast.With) -> "set[str]":
        """Canonical lock attrs a ``with`` statement acquires."""
        out = set()
        for item in node.items:
            attr = _self_attr(item.context_expr)
            if attr is not None and attr in self.locks:
                out.add(self.canonical(attr))
        return out

    # -- per-method traversal ------------------------------------------
    def _scan_method(self, func) -> _MethodInfo:
        info = _MethodInfo(name=func.name, node=func)
        for stmt in func.body:
            self._visit(stmt, frozenset(), info)
        return info

    def _visit(self, node, held: frozenset, info: _MethodInfo) -> None:
        if isinstance(node, ast.With):
            acquired = self.with_acquires(node)
            for attr in acquired:
                info.acquires.add(attr)
                raw = [
                    a
                    for item in node.items
                    for a in [_self_attr(item.context_expr)]
                    if a is not None and self.canonical(a) == attr
                ]
                if attr in held and any(self.locks.get(a) == "Lock" for a in raw):
                    reason = (
                        f"re-acquires non-reentrant self.{raw[0]} already held "
                        "by this call path (guaranteed self-deadlock)"
                    )
                    info.held_blocking.append((node, reason))
                    info.any_blocking.append((node, reason))
            for item in node.items:
                self._visit(item.context_expr, held, info)
            for child in node.body:
                self._visit(child, held | frozenset(acquired), info)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return  # nested callables run later, not under this lock
        if isinstance(node, ast.Call):
            self._visit_call(node, held, info)
        for child in ast.iter_child_nodes(node):
            self._visit(child, held, info)

    def _visit_call(self, node: ast.Call, held: frozenset, info: _MethodInfo) -> None:
        name = resolve_call_name(node, self.aliases) or ""
        suffix = name.rsplit(".", 1)[-1]
        reason = None
        if name in _SUBPROCESS_NAMES:
            reason = f"spawns a subprocess ({name})"
        elif name in _SLEEP_NAMES:
            reason = "sleeps (time.sleep)"
        elif suffix == "join" and _receiver_hint(node, _JOINABLE_HINTS):
            reason = f"joins a thread/process ({name})"
        elif suffix == "wait":
            receiver = _self_attr_receiver(node)
            if receiver is not None and receiver in self.locks:
                if self.canonical(receiver) not in held:
                    info.misuse.append(
                        (
                            node,
                            f"calls self.{receiver}.wait() without holding "
                            f"self.{receiver} (Condition.wait requires its own "
                            "lock)",
                        )
                    )
                # wait on the held condition releases the lock: sanctioned.
            else:
                reason = f"waits on a foreign object ({name or 'wait'})"
        elif suffix in _BLOCKING_SUFFIXES and "." in name:
            reason = f"performs blocking I/O ({name})"
        if reason is not None:
            info.any_blocking.append((node, reason))
            if held:
                info.held_blocking.append((node, reason))
        callee = self._callee_descriptor(node)
        if callee is not None:
            if callee[0] == "self":
                info.self_calls.add(callee[1])
            for lock in held:
                info.lock_calls.append((lock, node, callee))

    @staticmethod
    def _callee_descriptor(node: ast.Call) -> "tuple | None":
        func = node.func
        if isinstance(func, ast.Attribute):
            if isinstance(func.value, ast.Name) and func.value.id == "self":
                return ("self", func.attr)
            return ("other", func.attr)
        if isinstance(func, ast.Name):
            return ("func", func.id)
        return None

    # -- guarded-attribute inference -----------------------------------
    def _infer_guarded(self) -> None:
        for info in self.methods.values():
            if info.name in _EXEMPT_METHODS:
                continue
            for _node, attr, held in _self_stores(info.node, self):
                if held and attr not in self.locks:
                    self.guarded.add(attr)
        self.guarded -= set(self.locks)


# ----------------------------------------------------------------------
# Shared store/load scanners
# ----------------------------------------------------------------------
def _self_attr(node) -> "str | None":
    """``self.X`` expression -> ``X``."""
    if (
        isinstance(node, ast.Attribute)
        and isinstance(node.value, ast.Name)
        and node.value.id == "self"
    ):
        return node.attr
    return None


def _store_base_attr(target) -> "str | None":
    """Innermost ``self.X`` of a store target (handles self.X.Y, self.X[k])."""
    node = target
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        ):
            return node.attr
        node = node.value
    return None


def _self_stores(func, model: _ClassModel):
    """``(node, attr, held?)`` for every ``self.X``-rooted store in ``func``."""
    out = []

    def visit(node, held):
        if isinstance(node, ast.With):
            inner = held | model.with_acquires(node)
            for child in node.body:
                visit(child, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        targets = []
        if isinstance(node, ast.Assign):
            targets = node.targets
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            attr = _store_base_attr(target)
            if attr is not None:
                out.append((node, attr, bool(held)))
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    for stmt in func.body:
        visit(stmt, frozenset())
    return out


def _self_loads(func, model: _ClassModel):
    """``(node, attr, held?)`` for every plain ``self.X`` read in ``func``."""
    out = []

    def visit(node, held):
        if isinstance(node, ast.With):
            inner = held | model.with_acquires(node)
            for item in node.items:
                visit(item.context_expr, held)
            for child in node.body:
                visit(child, inner)
            return
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            return
        if isinstance(node, ast.Attribute) and isinstance(node.ctx, ast.Load):
            attr = _self_attr(node)
            if attr is not None:
                out.append((node, attr, bool(held)))
        for child in ast.iter_child_nodes(node):
            visit(child, held)

    for stmt in func.body:
        visit(stmt, frozenset())
    return out


def _receiver_hint(node: ast.Call, hints) -> bool:
    func = node.func
    if not isinstance(func, ast.Attribute):
        return False
    name = dotted_name(func.value)
    if name is None:
        return False
    lowered = name.lower()
    return any(h in lowered for h in hints)


def _self_attr_receiver(node: ast.Call) -> "str | None":
    func = node.func
    if isinstance(func, ast.Attribute):
        return _self_attr(func.value)
    return None


def _find_cycles(edges: "dict[tuple, set[tuple]]") -> "list[list[tuple]]":
    """Elementary cycles of a small digraph, each reported once."""
    cycles: "list[list[tuple]]" = []
    seen: "set[tuple]" = set()

    def normalize(path: "list[tuple]") -> tuple:
        pivot = min(range(len(path)), key=lambda i: path[i])
        return tuple(path[pivot:] + path[:pivot])

    def dfs(start: tuple, node: tuple, path: "list[tuple]", visited: "set[tuple]"):
        for nxt in sorted(edges.get(node, ())):
            if nxt == start:
                key = normalize(path)
                if key not in seen:
                    seen.add(key)
                    cycles.append(list(key))
            elif nxt not in visited:
                dfs(start, nxt, path + [nxt], visited | {nxt})

    for start in sorted(edges):
        dfs(start, start, [start], {start})
    return cycles


@register
class LockDisciplineChecker(Checker):
    id = "lock-discipline"
    description = (
        "attributes written under a class's lock must always be accessed "
        "under it; no blocking calls while holding a lock; no cycles in "
        "the lock-acquisition graph"
    )

    def check(self, module: ModuleSource) -> list:
        aliases = import_aliases(module.tree)
        findings = []
        models = [
            _ClassModel(node, aliases)
            for node in ast.walk(module.tree)
            if isinstance(node, ast.ClassDef)
        ]
        for model in models:
            if not model.locks:
                continue
            findings.extend(self._unguarded_access(module, model))
            findings.extend(self._blocking_under_lock(module, model))
        findings.extend(self._lock_cycles(module, models))
        return findings

    # -- rule 1: unguarded access --------------------------------------
    def _unguarded_access(self, module: ModuleSource, model: _ClassModel) -> list:
        findings = []
        if not model.guarded:
            return findings
        lock_label = " / ".join(
            f"self.{n}" for n in sorted({model.canonical(a) for a in model.locks})
        )
        for info in model.methods.values():
            if info.name in _EXEMPT_METHODS or info.name.endswith("_locked"):
                continue
            seen: "set[str]" = set()
            accesses = [
                (node, attr, True)
                for node, attr, held in _self_stores(info.node, model)
                if not held
            ] + [
                (node, attr, False)
                for node, attr, held in _self_loads(info.node, model)
                if not held
            ]
            accesses.sort(key=lambda item: getattr(item[0], "lineno", 0))
            for node, attr, is_write in accesses:
                if attr not in model.guarded or attr in seen:
                    continue
                seen.add(attr)
                verb = "writes" if is_write else "reads"
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{model.name}.{info.name} {verb} self.{attr} without "
                        f"holding {lock_label}; the attribute is written under "
                        "the lock elsewhere, so this access races",
                    )
                )
        return findings

    # -- rule 2: blocking under lock -----------------------------------
    def _blocking_under_lock(self, module: ModuleSource, model: _ClassModel) -> list:
        findings = []
        reported: "set[int]" = set()
        # transitive closure: does calling self.m eventually block?
        blocks: "dict[str, str]" = {}
        changed = True
        while changed:
            changed = False
            for name, info in model.methods.items():
                if name in blocks:
                    continue
                if info.any_blocking:
                    blocks[name] = info.any_blocking[0][1]
                    changed = True
                    continue
                for callee in sorted(info.self_calls):
                    if callee in blocks:
                        blocks[name] = f"calls self.{callee}() which {blocks[callee]}"
                        changed = True
                        break
        for info in model.methods.values():
            for node, reason in info.held_blocking:
                if id(node) in reported:
                    continue
                reported.add(id(node))
                findings.append(
                    self.finding(
                        module,
                        node,
                        f"{model.name}.{info.name} {reason} while holding a "
                        "lock; move the call outside the critical section",
                    )
                )
            for node, reason in info.misuse:
                if id(node) in reported:
                    continue
                reported.add(id(node))
                findings.append(
                    self.finding(module, node, f"{model.name}.{info.name} {reason}")
                )
            for lock, node, callee in info.lock_calls:
                if id(node) in reported:
                    continue
                if callee[0] == "self" and callee[1] in blocks:
                    reported.add(id(node))
                    findings.append(
                        self.finding(
                            module,
                            node,
                            f"{model.name}.{info.name} holds self.{lock} while "
                            f"calling self.{callee[1]}(), which "
                            f"{blocks[callee[1]]}; move the blocking work "
                            "outside the critical section",
                        )
                    )
        return findings

    # -- rule 3: lock-acquisition cycles -------------------------------
    def _lock_cycles(self, module: ModuleSource, models: list) -> list:
        by_method: "dict[str, list]" = {}
        for model in models:
            for name, info in model.methods.items():
                by_method.setdefault(name, []).append((model, info))
        edges: "dict[tuple, set[tuple]]" = {}
        sites: "dict[tuple, tuple]" = {}
        for model in models:
            for info in model.methods.values():
                for lock, node, callee in info.lock_calls:
                    holder = (model.name, lock)
                    for target_model, target_info in self._resolve(
                        model, callee, by_method
                    ):
                        for acquired in target_info.acquires:
                            inner = (target_model.name, acquired)
                            if inner == holder:
                                continue
                            edges.setdefault(holder, set()).add(inner)
                            sites.setdefault((holder, inner), (node, info, model))
        findings = []
        for cycle in _find_cycles(edges):
            if len(cycle) < 2:
                continue
            holder, inner = cycle[0], cycle[1]
            node, info, model = sites[(holder, inner)]
            path = " -> ".join(f"{c}.{a}" for c, a in cycle + [cycle[0]])
            findings.append(
                self.finding(
                    module,
                    node,
                    f"lock-acquisition cycle {path} (entered here by "
                    f"{model.name}.{info.name}): threads entering the cycle at "
                    "different points can deadlock; impose a single "
                    "acquisition order or merge the locks",
                )
            )
        return findings

    @staticmethod
    def _resolve(model: _ClassModel, callee: tuple, by_method: dict) -> list:
        kind, name = callee
        if kind == "self":
            info = model.methods.get(name)
            return [(model, info)] if info else []
        if kind == "other":
            return [(m, i) for m, i in by_method.get(name, []) if m is not model]
        return []
