"""seed-purity: no ambient nondeterminism in stream-deriving code.

Scope: ``repro/sampling/`` and ``repro/diffusion/`` — the code that
defines the RR stream.  The contract (PR 5, ``docs/INVARIANTS.md``): the
merged RR stream is a **pure function of the seed alone**.  Anything
that injects entropy from outside the per-set SeedSequence derivation —
the process-global numpy RNG, the stdlib ``random`` module, fresh-
entropy ``default_rng()``, the wall clock, or the iteration order of a
``set`` — silently breaks byte-reproducibility across runs, backends,
and worker counts.

Flagged:

* module-level numpy convenience RNG: ``np.random.rand/choice/...``
  (the hidden global ``RandomState``);
* ``np.random.seed(...)`` — reseeding the global state is ambient
  mutation even with a constant;
* ``default_rng()`` / ``np.random.default_rng()`` **with no argument**
  (fresh OS entropy; with an argument the seed is the caller's
  explicit responsibility);
* any stdlib ``random`` module call;
* wall-clock reads: ``time.time``/``time.time_ns``/``datetime.now``/
  ``utcnow``/``date.today`` (``time.monotonic``/``perf_counter`` are
  fine — they time things, they never derive streams);
* iterating directly over a ``set`` literal, set comprehension, or
  ``set(...)``/``frozenset(...)`` call — set iteration order is not part
  of any reproducibility contract; wrap in ``sorted(...)``.
"""

from __future__ import annotations

import ast

from repro.analysis.lint.core import (
    Checker,
    ModuleSource,
    import_aliases,
    register,
    resolve_call_name,
)

#: numpy.random module-level functions backed by the global RandomState.
_NUMPY_AMBIENT = {
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "f", "gamma", "geometric", "gumbel", "hypergeometric",
    "laplace", "logistic", "lognormal", "logseries", "multinomial",
    "multivariate_normal", "negative_binomial", "noncentral_chisquare",
    "noncentral_f", "normal", "pareto", "permutation", "poisson", "power",
    "rand", "randint", "randn", "random", "random_integers",
    "random_sample", "ranf", "rayleigh", "sample", "seed", "shuffle",
    "standard_cauchy", "standard_exponential", "standard_gamma",
    "standard_normal", "standard_t", "triangular", "uniform", "vonmises",
    "wald", "weibull", "zipf",
}

_STDLIB_RANDOM = {
    "betavariate", "choice", "choices", "expovariate", "gammavariate",
    "gauss", "getrandbits", "lognormvariate", "normalvariate",
    "paretovariate", "randbytes", "randint", "random", "randrange",
    "sample", "seed", "shuffle", "triangular", "uniform",
    "vonmisesvariate", "weibullvariate",
}

_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register
class SeedPurityChecker(Checker):
    id = "seed-purity"
    description = (
        "stream-deriving code (repro/sampling, repro/diffusion) must not "
        "read ambient RNG state, fresh entropy, the wall clock, or "
        "set-iteration order"
    )

    def applies_to(self, module: ModuleSource) -> bool:
        return "repro/sampling/" in module.path or "repro/diffusion/" in module.path

    def check(self, module: ModuleSource) -> list:
        aliases = import_aliases(module.tree)
        findings = []
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Call):
                findings.extend(self._check_call(module, node, aliases))
            elif isinstance(node, (ast.For, ast.comprehension)):
                iter_expr = node.iter
                if self._is_set_expr(iter_expr, aliases):
                    anchor = node if isinstance(node, ast.For) else iter_expr
                    findings.append(
                        self.finding(
                            module,
                            anchor,
                            "iteration over a set has no guaranteed order in "
                            "stream-deriving code; iterate sorted(...) instead",
                        )
                    )
        return findings

    def _check_call(self, module: ModuleSource, node: ast.Call, aliases) -> list:
        name = resolve_call_name(node, aliases)
        if name is None:
            return []
        out = []
        parts = name.split(".")
        if name.startswith("numpy.random.") and parts[-1] in _NUMPY_AMBIENT:
            out.append(
                self.finding(
                    module,
                    node,
                    f"ambient numpy RNG call {name}() draws from the "
                    "process-global RandomState; derive a generator from the "
                    "stream's SeedSequence instead",
                )
            )
        elif name == "numpy.random.default_rng" and not node.args and not node.keywords:
            out.append(
                self.finding(
                    module,
                    node,
                    "default_rng() with no seed draws fresh OS entropy; feed "
                    "it a SeedSequence derived from the stream seed",
                )
            )
        elif (
            len(parts) == 2
            and parts[0] == "random"
            and aliases.get("random", "random") == "random"
            and parts[1] in _STDLIB_RANDOM
        ):
            out.append(
                self.finding(
                    module,
                    node,
                    f"stdlib random call {name}() uses the hidden global "
                    "Mersenne Twister; use the stream's numpy generator",
                )
            )
        elif name in _WALL_CLOCK:
            out.append(
                self.finding(
                    module,
                    node,
                    f"wall-clock read {name}() in stream-deriving code; "
                    "streams must be a pure function of the seed "
                    "(time.monotonic/perf_counter are fine for timing)",
                )
            )
        return out

    @staticmethod
    def _is_set_expr(node, aliases) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call):
            name = resolve_call_name(node, aliases)
            return name in ("set", "frozenset")
        return False
