"""Seed-set comparison metrics.

The quality figures show all guaranteed algorithms reach similar
*influence*; these metrics answer the finer question of whether they
reach it with the same *nodes*.  Useful when auditing a cheaper
algorithm as a drop-in replacement for an expensive one.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.exceptions import ParameterError


def jaccard_similarity(a: Sequence[int], b: Sequence[int]) -> float:
    """|A ∩ B| / |A ∪ B| of two seed sets.

    >>> jaccard_similarity([1, 2, 3], [2, 3, 4])
    0.5
    """
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    return len(set_a & set_b) / len(set_a | set_b)


def seed_overlap_matrix(
    seed_sets: "dict[str, Sequence[int]]",
) -> "dict[tuple[str, str], float]":
    """Pairwise Jaccard similarity between named seed sets.

    Returns every unordered pair once, keyed ``(name_a, name_b)`` with
    names in sorted order.
    """
    names = sorted(seed_sets)
    matrix: dict[tuple[str, str], float] = {}
    for i, a in enumerate(names):
        for b in names[i + 1 :]:
            matrix[(a, b)] = jaccard_similarity(seed_sets[a], seed_sets[b])
    return matrix


def rank_agreement(a: Sequence[int], b: Sequence[int], *, top: int | None = None) -> float:
    """Agreement of two greedy *orderings* (not just sets).

    Averages, over prefixes 1..top, the Jaccard similarity of the two
    orderings' prefixes — 1.0 for identical orderings, declining with
    both set and order divergence.  Greedy seed lists are ordered by
    marginal gain, so early agreement matters most and this weighting
    (every prefix counted) naturally emphasizes it.
    """
    if top is None:
        top = min(len(a), len(b))
    if top < 1:
        raise ParameterError(f"top must be at least 1, got {top}")
    if top > min(len(a), len(b)):
        raise ParameterError(
            f"top={top} exceeds the shorter ordering's length {min(len(a), len(b))}"
        )
    total = 0.0
    for prefix in range(1, top + 1):
        total += jaccard_similarity(a[:prefix], b[:prefix])
    return total / top
