"""Cascade-level statistics from forward simulation traces.

Campaign planners care about more than expected reach: how many rounds a
cascade takes (time-to-peak), how concentrated adoption is in the first
wave, and how variable outcomes are across runs.  These statistics are
computed from repeated :func:`simulate_ic_trace` / :func:`simulate_lt_trace`
runs.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import numpy as np

from repro.diffusion.independent_cascade import simulate_ic_trace
from repro.diffusion.linear_threshold import simulate_lt_trace
from repro.diffusion.models import DiffusionModel
from repro.exceptions import ParameterError
from repro.graph.digraph import CSRGraph
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class CascadeStats:
    """Aggregates over repeated cascades from a fixed seed set.

    ``mean_size``/``std_size`` — final cascade sizes;
    ``mean_rounds`` — rounds until the cascade dies out;
    ``mean_peak_round`` — round with the most new activations;
    ``first_wave_share`` — fraction of eventual adopters activated in
    round 1 (seeds are round 0);
    ``size_quantiles`` — (10%, 50%, 90%) of final size.
    """

    simulations: int
    mean_size: float
    std_size: float
    mean_rounds: float
    mean_peak_round: float
    first_wave_share: float
    size_quantiles: tuple[float, float, float]


def cascade_statistics(
    graph: CSRGraph,
    seeds: Sequence[int],
    model: "str | DiffusionModel",
    *,
    simulations: int = 200,
    seed: "int | np.random.Generator | None" = None,
) -> CascadeStats:
    """Run ``simulations`` cascades and aggregate their shapes."""
    if simulations <= 0:
        raise ParameterError(f"simulations must be positive, got {simulations}")
    parsed = DiffusionModel.parse(model)
    rng = ensure_rng(seed)
    tracer = simulate_ic_trace if parsed is DiffusionModel.IC else simulate_lt_trace

    sizes = np.empty(simulations)
    rounds = np.empty(simulations)
    peaks = np.empty(simulations)
    first_wave = np.empty(simulations)
    for i in range(simulations):
        trace = tracer(graph, seeds, rng)
        per_round = np.array([len(r) for r in trace], dtype=np.float64)
        total = per_round.sum()
        sizes[i] = total
        rounds[i] = len(trace) - 1
        peaks[i] = int(np.argmax(per_round))
        non_seed = total - per_round[0]
        first_wave[i] = (per_round[1] / non_seed) if len(trace) > 1 and non_seed > 0 else 0.0

    q10, q50, q90 = np.quantile(sizes, [0.1, 0.5, 0.9])
    return CascadeStats(
        simulations=simulations,
        mean_size=float(sizes.mean()),
        std_size=float(sizes.std(ddof=1)) if simulations > 1 else 0.0,
        mean_rounds=float(rounds.mean()),
        mean_peak_round=float(peaks.mean()),
        first_wave_share=float(first_wave.mean()),
        size_quantiles=(float(q10), float(q50), float(q90)),
    )
