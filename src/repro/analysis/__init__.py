"""Post-hoc analysis of seed sets and cascades."""

from repro.analysis.seeds import (
    jaccard_similarity,
    rank_agreement,
    seed_overlap_matrix,
)
from repro.analysis.cascades import CascadeStats, cascade_statistics

__all__ = [
    "jaccard_similarity",
    "seed_overlap_matrix",
    "rank_agreement",
    "CascadeStats",
    "cascade_statistics",
]
