"""``python -m repro.analysis`` — run reprolint (see ``repro lint --help``)."""

from repro.analysis.lint.cli import main

if __name__ == "__main__":
    raise SystemExit(main())
