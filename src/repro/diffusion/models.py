"""Diffusion model identifiers shared across the library."""

from __future__ import annotations

from enum import Enum

from repro.exceptions import ParameterError


class DiffusionModel(str, Enum):
    """The two propagation models of Section 2.1.

    ``IC`` — Independent Cascade: each newly active node gets one chance to
    activate each inactive out-neighbour ``v`` with probability ``w(u, v)``.

    ``LT`` — Linear Threshold: each node draws a uniform threshold λ_v and
    activates once the weight of its active in-neighbours reaches λ_v;
    requires Σ_u w(u, v) ≤ 1.
    """

    IC = "IC"
    LT = "LT"

    @classmethod
    def parse(cls, value: "str | DiffusionModel") -> "DiffusionModel":
        """Coerce user input (case-insensitive string) into a model."""
        if isinstance(value, cls):
            return value
        try:
            return cls(str(value).upper())
        except ValueError as exc:
            raise ParameterError(
                f"unknown diffusion model {value!r}; expected 'IC' or 'LT'"
            ) from exc
