"""Forward diffusion substrate: IC and LT cascade simulation."""

from repro.diffusion.models import DiffusionModel
from repro.diffusion.independent_cascade import simulate_ic, simulate_ic_trace
from repro.diffusion.linear_threshold import simulate_lt, simulate_lt_trace
from repro.diffusion.spread import SpreadEstimate, estimate_spread, simulate_cascade

__all__ = [
    "DiffusionModel",
    "simulate_ic",
    "simulate_ic_trace",
    "simulate_lt",
    "simulate_lt_trace",
    "simulate_cascade",
    "estimate_spread",
    "SpreadEstimate",
]
