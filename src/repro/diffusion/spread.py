"""Monte Carlo influence-spread estimation.

``I(S)`` — the expected cascade size from seed set S — is #P-hard to
compute exactly, so everything in the IM literature estimates it.  This
module provides the *forward* Monte Carlo estimator: average cascade size
over many independent simulations.  It is the ground truth for test
assertions, the quality metric in the figures (Figs. 2–3), and the inner
oracle of the CELF/CELF++ baselines.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass

import math

import numpy as np

from repro.diffusion.independent_cascade import simulate_ic
from repro.diffusion.linear_threshold import simulate_lt
from repro.diffusion.models import DiffusionModel
from repro.exceptions import ParameterError
from repro.graph.digraph import CSRGraph
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class SpreadEstimate:
    """Monte Carlo spread estimate with a normal-approximation CI."""

    mean: float
    std_error: float
    simulations: int

    def confidence_interval(self, z: float = 1.96) -> tuple[float, float]:
        """Normal-approximation confidence interval (default 95%)."""
        half = z * self.std_error
        return (self.mean - half, self.mean + half)


def simulate_cascade(
    graph: CSRGraph,
    seeds: Sequence[int],
    model: "str | DiffusionModel",
    seed: int | np.random.Generator | None = None,
    *,
    max_rounds: int | None = None,
) -> int:
    """Run a single cascade under the chosen model, returning its size."""
    parsed = DiffusionModel.parse(model)
    if parsed is DiffusionModel.IC:
        return simulate_ic(graph, seeds, seed, max_rounds=max_rounds)
    return simulate_lt(graph, seeds, seed, max_rounds=max_rounds)


def estimate_spread(
    graph: CSRGraph,
    seeds: Sequence[int],
    model: "str | DiffusionModel",
    *,
    simulations: int = 1000,
    seed: int | np.random.Generator | None = None,
    max_rounds: int | None = None,
) -> SpreadEstimate:
    """Estimate ``I(S)`` by averaging ``simulations`` independent cascades.

    The standard error shrinks as ``σ/√simulations``; with cascade sizes in
    ``[|S|, n]`` this converges quickly on the scales used in tests.
    ``max_rounds`` estimates the horizon-limited objective instead.
    """
    if simulations <= 0:
        raise ParameterError(f"simulations must be positive, got {simulations}")
    parsed = DiffusionModel.parse(model)
    rng = ensure_rng(seed)
    sizes = np.empty(simulations, dtype=np.float64)
    if parsed is DiffusionModel.IC:
        for i in range(simulations):
            sizes[i] = simulate_ic(graph, seeds, rng, max_rounds=max_rounds)
    else:
        for i in range(simulations):
            sizes[i] = simulate_lt(graph, seeds, rng, max_rounds=max_rounds)
    mean = float(sizes.mean())
    std_err = float(sizes.std(ddof=1) / math.sqrt(simulations)) if simulations > 1 else 0.0
    return SpreadEstimate(mean=mean, std_error=std_err, simulations=simulations)
