"""Forward Linear Threshold simulation.

Each node ``v`` draws a threshold λ_v ~ U[0, 1] at time 0 and activates in
round t once the total weight of its active in-neighbours reaches λ_v
(Section 2.1).  The implementation tracks accumulated incoming active
weight per node incrementally, so each round costs O(out-edges of newly
active nodes).
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.graph.digraph import CSRGraph
from repro.diffusion.independent_cascade import _check_seeds
from repro.utils.rng import ensure_rng


def simulate_lt(
    graph: CSRGraph,
    seeds: Sequence[int],
    seed: int | np.random.Generator | None = None,
    *,
    validate: bool = False,
    max_rounds: int | None = None,
) -> int:
    """Run one LT cascade and return the number of activated nodes.

    With ``validate=True`` the graph is first checked for LT admissibility
    (incoming weights summing to at most 1).  ``max_rounds`` caps the
    propagation horizon (time-critical IM; seeds are round 0).
    """
    if validate:
        graph.validate_lt_weights()
    rng = ensure_rng(seed)
    seed_list = _check_seeds(seeds, graph.n)

    thresholds = rng.random(graph.n)
    active = np.zeros(graph.n, dtype=bool)
    active[seed_list] = True
    accumulated = np.zeros(graph.n, dtype=np.float64)
    frontier = list(dict.fromkeys(seed_list))
    count = int(active.sum())
    rounds_left = max_rounds if max_rounds is not None else -1

    while frontier:
        if rounds_left == 0:
            break
        rounds_left -= 1
        next_frontier: list[int] = []
        for u in frontier:
            lo, hi = graph.out_indptr[u], graph.out_indptr[u + 1]
            targets = graph.out_indices[lo:hi].tolist()
            weights = graph.out_weights[lo:hi].tolist()
            for v, w in zip(targets, weights):
                if active[v]:
                    continue
                accumulated[v] += w
                if accumulated[v] >= thresholds[v]:
                    active[v] = True
                    count += 1
                    next_frontier.append(v)
        frontier = next_frontier
    return count


def simulate_lt_trace(
    graph: CSRGraph,
    seeds: Sequence[int],
    seed: int | np.random.Generator | None = None,
    *,
    max_rounds: int | None = None,
) -> list[list[int]]:
    """Run one LT cascade and return activation rounds (round 0 = seeds)."""
    rng = ensure_rng(seed)
    seed_list = _check_seeds(seeds, graph.n)

    thresholds = rng.random(graph.n)
    active = np.zeros(graph.n, dtype=bool)
    active[seed_list] = True
    accumulated = np.zeros(graph.n, dtype=np.float64)
    rounds: list[list[int]] = [sorted(dict.fromkeys(seed_list))]
    frontier = rounds[0]
    rounds_left = max_rounds if max_rounds is not None else -1

    while frontier:
        if rounds_left == 0:
            break
        rounds_left -= 1
        next_frontier: list[int] = []
        for u in frontier:
            lo, hi = graph.out_indptr[u], graph.out_indptr[u + 1]
            targets = graph.out_indices[lo:hi].tolist()
            weights = graph.out_weights[lo:hi].tolist()
            for v, w in zip(targets, weights):
                if active[v]:
                    continue
                accumulated[v] += w
                if accumulated[v] >= thresholds[v]:
                    active[v] = True
                    next_frontier.append(v)
        if next_frontier:
            rounds.append(sorted(next_frontier))
        frontier = next_frontier
    return rounds
