"""Forward Independent Cascade simulation.

A single IC cascade from seed set S proceeds in rounds: each node activated
in round t flips one coin per out-edge ``(u, v)`` with success probability
``w(u, v)``; successes activate ``v`` in round t+1.  A node stays active
forever once activated (Section 2.1).

The simulator is the ground-truth oracle for tests (comparing RIS-based
estimates against Monte Carlo spread) and powers the CELF/CELF++ baselines.
"""

from __future__ import annotations

from collections.abc import Sequence

import numpy as np

from repro.exceptions import ParameterError
from repro.graph.digraph import CSRGraph
from repro.utils.rng import ensure_rng


def _check_seeds(seeds: Sequence[int], n: int) -> list[int]:
    out = [int(s) for s in seeds]
    for s in out:
        if not 0 <= s < n:
            raise ParameterError(f"seed node {s} out of range for n={n}")
    return out


def simulate_ic(
    graph: CSRGraph,
    seeds: Sequence[int],
    seed: int | np.random.Generator | None = None,
    *,
    max_rounds: int | None = None,
) -> int:
    """Run one IC cascade and return the number of activated nodes.

    ``max_rounds`` caps the propagation horizon (time-critical IM: the
    campaign only counts adoptions within T rounds; seeds are round 0).

    >>> from repro.graph import star_graph, assign_constant_weights
    >>> g = assign_constant_weights(star_graph(5), 1.0)
    >>> simulate_ic(g, [0], seed=1)
    5
    """
    rng = ensure_rng(seed)
    seed_list = _check_seeds(seeds, graph.n)
    active = np.zeros(graph.n, dtype=bool)
    active[seed_list] = True
    frontier = list(dict.fromkeys(seed_list))
    count = int(active.sum())
    rounds_left = max_rounds if max_rounds is not None else -1

    while frontier:
        if rounds_left == 0:
            break
        rounds_left -= 1
        next_frontier: list[int] = []
        for u in frontier:
            lo, hi = graph.out_indptr[u], graph.out_indptr[u + 1]
            if lo == hi:
                continue
            targets = graph.out_indices[lo:hi]
            weights = graph.out_weights[lo:hi]
            coins = rng.random(hi - lo)
            hits = targets[coins < weights]
            for v in hits.tolist():
                if not active[v]:
                    active[v] = True
                    count += 1
                    next_frontier.append(v)
        frontier = next_frontier
    return count


def simulate_ic_trace(
    graph: CSRGraph,
    seeds: Sequence[int],
    seed: int | np.random.Generator | None = None,
    *,
    max_rounds: int | None = None,
) -> list[list[int]]:
    """Run one IC cascade and return the activation rounds.

    ``result[t]`` lists nodes first activated at round t (round 0 = seeds).
    Used by examples that animate campaign progress and by tests asserting
    monotone round structure.  ``max_rounds`` caps the horizon.
    """
    rng = ensure_rng(seed)
    seed_list = _check_seeds(seeds, graph.n)
    active = np.zeros(graph.n, dtype=bool)
    active[seed_list] = True
    rounds: list[list[int]] = [sorted(dict.fromkeys(seed_list))]
    frontier = rounds[0]
    rounds_left = max_rounds if max_rounds is not None else -1

    while frontier:
        if rounds_left == 0:
            break
        rounds_left -= 1
        next_frontier: list[int] = []
        for u in frontier:
            lo, hi = graph.out_indptr[u], graph.out_indptr[u + 1]
            if lo == hi:
                continue
            targets = graph.out_indices[lo:hi]
            weights = graph.out_weights[lo:hi]
            coins = rng.random(hi - lo)
            hits = targets[coins < weights]
            for v in hits.tolist():
                if not active[v]:
                    active[v] = True
                    next_frontier.append(v)
        if next_frontier:
            rounds.append(sorted(next_frontier))
        frontier = next_frontier
    return rounds
