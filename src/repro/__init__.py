"""repro — Stop-and-Stare (SSA / D-SSA) influence maximization.

A from-scratch reproduction of *Stop-and-Stare: Optimal Sampling
Algorithms for Viral Marketing in Billion-scale Networks* (Nguyen, Thai,
Dinh — SIGMOD 2016), including the RIS sampling substrate, the SSA and
D-SSA algorithms, the IMM/TIM+/CELF baselines they are evaluated against,
and the Targeted Viral Marketing (TVM) extension.

Quickstart — sessions first
---------------------------
The primary API is the session-oriented :class:`InfluenceEngine`: bind a
graph once, keep the execution backend warm, and answer many queries
against a shared RR-set pool:

>>> from repro import InfluenceEngine, load_dataset
>>> graph = load_dataset("nethept")
>>> with InfluenceEngine(graph, model="LT", seed=42) as engine:
...     result = engine.maximize(10, epsilon=0.2)          # algorithm="D-SSA"
...     curve = engine.sweep([1, 5, 10], epsilon=0.2)      # reuses the pool
...     spread = engine.estimate(result.seeds)
>>> len(result.seeds)
10

One-shot conveniences (``dssa(...)``, ``ssa(...)``, ``imm(...)``, ...)
remain for single queries; they are thin wrappers over a throwaway
session and return byte-identical results to engine queries at equal
seeds.  Every algorithm is described by the registry
(:func:`register_algorithm` / :func:`list_algorithms`); print
:func:`registry_table` or run ``repro-im algorithms`` for the
capability table.

Serving — many users, one pool
------------------------------
:class:`InfluenceService` scales the session model to concurrent
multi-user serving: named sessions share one thread-safe pool manager
with a global byte budget, LRU eviction, and cross-restart pool
persistence, and every query remains byte-identical to its sequential
one-shot counterpart:

>>> service = InfluenceService(pool_budget=64 << 20)
>>> _ = service.open_session("default", graph, model="LT", seed=42)
>>> futures = [service.submit("maximize", k=k, epsilon=0.2) for k in (5, 10)]
>>> [len(f.result().seeds) for f in futures]
[5, 10]
>>> service.close()

``repro-im serve`` exposes the same service over TCP (newline-delimited
JSON; :class:`ServiceClient` is the reference client) and ``repro-im
query --connect HOST:PORT`` turns the REPL into a network client.
"""

from repro.engine import (
    InfluenceEngine,
    SamplingContext,
    get_algorithm,
    list_algorithms,
    register_algorithm,
    registry_table,
)
from repro.service import (
    InfluenceServer,
    InfluenceService,
    PoolManager,
    ServiceClient,
)
from repro.dynamic import GraphDelta, MutableGraphView
from repro.core.dssa import dssa
from repro.core.ssa import ssa
from repro.core.result import IMResult
from repro.core.framework import static_ris
from repro.baselines.imm import imm
from repro.baselines.tim import tim, tim_plus
from repro.baselines.celf import celf
from repro.baselines.degree import degree_discount, degree_heuristic
from repro.baselines.irie import irie
from repro.extensions.budgeted import budgeted_dssa
from repro.extensions.sweep import influence_sweep
from repro.datasets.synthetic import load_dataset
from repro.datasets.twitter_topics import build_topic_group
from repro.diffusion.models import DiffusionModel
from repro.diffusion.spread import estimate_spread, simulate_cascade
from repro.graph.builder import GraphBuilder, from_edges
from repro.graph.digraph import CSRGraph
from repro.graph.io import load_edge_list, load_npz, save_edge_list, save_npz
from repro.graph.shm import attach_csr_graph, share_csr_graph
from repro.sampling.sharded import ShardedSampler, make_parallel_sampler
from repro.graph.weights import (
    assign_constant_weights,
    assign_trivalency_weights,
    assign_weighted_cascade,
)
from repro.tvm.algorithms import kb_tim, tvm_dssa, tvm_ssa, weighted_spread
from repro.tvm.targets import TargetedGroup

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # serving
    "InfluenceService",
    "InfluenceServer",
    "ServiceClient",
    "PoolManager",
    # query engine + registry
    "InfluenceEngine",
    "SamplingContext",
    "register_algorithm",
    "get_algorithm",
    "list_algorithms",
    "registry_table",
    # core algorithms
    "ssa",
    "dssa",
    "static_ris",
    "IMResult",
    # baselines
    "imm",
    "tim",
    "tim_plus",
    "celf",
    "degree_heuristic",
    "degree_discount",
    "irie",
    # extensions
    "budgeted_dssa",
    "influence_sweep",
    # dynamic graphs
    "GraphDelta",
    "MutableGraphView",
    # graph substrate
    "CSRGraph",
    "GraphBuilder",
    "from_edges",
    "assign_weighted_cascade",
    "assign_constant_weights",
    "assign_trivalency_weights",
    "load_edge_list",
    "save_edge_list",
    "load_npz",
    "save_npz",
    "share_csr_graph",
    "attach_csr_graph",
    # parallel sampling
    "ShardedSampler",
    "make_parallel_sampler",
    # diffusion
    "DiffusionModel",
    "estimate_spread",
    "simulate_cascade",
    # datasets
    "load_dataset",
    "build_topic_group",
    # TVM
    "TargetedGroup",
    "tvm_ssa",
    "tvm_dssa",
    "kb_tim",
    "weighted_spread",
]
