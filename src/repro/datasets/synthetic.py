"""Materialize deterministic synthetic stand-ins for the paper's datasets.

Each stand-in is a power-law configuration-model graph matching the
catalogued average degree, with the paper's undirected networks (Orkut,
Friendster) generated as undirected ties and then bidirected.  A fixed
per-dataset seed makes every materialization identical across runs, so
benchmark tables regenerate exactly.
"""

from __future__ import annotations

import numpy as np

from repro.datasets.catalog import DatasetSpec, get_spec
from repro.exceptions import DatasetError
from repro.graph.builder import GraphBuilder
from repro.graph.digraph import CSRGraph
from repro.graph.generators import powerlaw_configuration
from repro.graph.weights import (
    assign_constant_weights,
    assign_trivalency_weights,
    assign_weighted_cascade,
)

# Stable per-dataset base seeds: materializations are reproducible and
# distinct across datasets.
_DATASET_SEEDS = {
    "nethept": 101,
    "netphy": 202,
    "enron": 303,
    "epinions": 404,
    "dblp": 505,
    "orkut": 606,
    "twitter": 707,
    "friendster": 808,
}


def load_dataset(
    name: str,
    *,
    scale: float = 1.0,
    weights: str = "wc",
    seed: int | None = None,
) -> CSRGraph:
    """Build the synthetic stand-in for dataset ``name``.

    Parameters
    ----------
    name:
        One of the Table 2 dataset names (see
        :func:`repro.datasets.catalog.list_datasets`).
    scale:
        Multiplier on the stand-in's default node count (``scale=2`` makes
        a graph twice as large; useful for scaling studies).
    weights:
        ``"wc"`` (weighted cascade — the paper's setting), ``"const:p"``
        (uniform probability p), or ``"trivalency"``.
    seed:
        Override the dataset's fixed seed (changes the instance but keeps
        the statistics).
    """
    spec = get_spec(name)
    if scale <= 0:
        raise DatasetError(f"scale must be positive, got {scale}")
    n = max(50, int(round(spec.standin_nodes * scale)))
    base_seed = seed if seed is not None else _DATASET_SEEDS[spec.name]

    if spec.undirected:
        graph = _undirected_standin(spec, n, base_seed)
    else:
        graph = powerlaw_configuration(
            n,
            spec.standin_avg_degree,
            exponent=spec.powerlaw_exponent,
            seed=base_seed,
        )
    return _apply_weights(graph, weights, base_seed)


def _undirected_standin(spec: DatasetSpec, n: int, seed: int) -> CSRGraph:
    """Generate undirected ties, then bidirect (Section 7.1 Remark).

    We target half the average degree in ties, because bidirecting doubles
    each node's incident directed edges.
    """
    base = powerlaw_configuration(
        n,
        spec.standin_avg_degree / 2.0,
        exponent=spec.powerlaw_exponent,
        seed=seed,
    )
    builder = GraphBuilder(n)
    edge_array = base.edges()
    for u, v in edge_array.tolist():
        builder.add_edge(u, v)
        builder.add_edge(v, u)
    return builder.build()


def _apply_weights(graph: CSRGraph, weights: str, seed: int) -> CSRGraph:
    scheme = weights.lower().strip()
    if scheme == "wc":
        return assign_weighted_cascade(graph)
    if scheme.startswith("const:"):
        try:
            p = float(scheme.split(":", 1)[1])
        except ValueError as exc:
            raise DatasetError(f"bad constant weight spec {weights!r}") from exc
        return assign_constant_weights(graph, p)
    if scheme == "trivalency":
        return assign_trivalency_weights(graph, seed=np.random.default_rng(seed ^ 0xBEEF))
    raise DatasetError(
        f"unknown weight scheme {weights!r}; expected 'wc', 'const:p' or 'trivalency'"
    )
