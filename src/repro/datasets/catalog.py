"""Catalog of the paper's datasets (Table 2) and our stand-in parameters.

The paper evaluates on eight real networks up to Friendster (65.6M nodes,
3.6G directed edges after bidirecting).  Pure Python cannot hold
billion-edge graphs, so each dataset maps to a deterministic synthetic
stand-in that preserves the *shape* that drives the algorithms' relative
behaviour: node/edge ratio (average degree), heavy-tailed degree
distribution, and directed-vs-bidirected treatment.  The scale-down
factor per dataset is recorded here so EXPERIMENTS.md can report it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import DatasetError


@dataclass(frozen=True)
class DatasetSpec:
    """One row of Table 2 plus stand-in generation parameters.

    ``paper_nodes``/``paper_edges``/``paper_avg_degree`` are the published
    statistics; ``standin_nodes`` is our default synthetic size (the edge
    count follows from the preserved average degree).  ``undirected`` marks
    networks the paper bidirected (Orkut, Friendster — Section 7.1 Remark).
    """

    name: str
    category: str
    paper_nodes: int
    paper_edges: int
    paper_avg_degree: float
    undirected: bool
    standin_nodes: int
    powerlaw_exponent: float = 2.3

    @property
    def scale_factor(self) -> float:
        """How many times smaller the stand-in is than the real network."""
        return self.paper_nodes / self.standin_nodes

    @property
    def standin_avg_degree(self) -> float:
        """Average out-degree the stand-in generator targets.

        For bidirected networks the paper's average degree counts each
        undirected tie once; after bidirecting, every node's directed
        out-degree equals that number, so the target transfers directly.
        """
        return self.paper_avg_degree


# Published statistics from Table 2 (NetHELP in the paper is NetHEPT).
DATASETS: dict[str, DatasetSpec] = {
    spec.name: spec
    for spec in (
        DatasetSpec("nethept", "citation", 15_233, 59_000, 4.1, False, 1_500),
        DatasetSpec("netphy", "citation", 37_000, 181_000, 13.4, False, 1_800),
        DatasetSpec("enron", "communication", 37_000, 184_000, 5.0, False, 1_800),
        DatasetSpec("epinions", "social", 132_000, 841_000, 13.4, False, 2_200),
        DatasetSpec("dblp", "citation", 655_000, 2_000_000, 6.1, False, 2_600),
        DatasetSpec("orkut", "social", 3_000_000, 234_000_000, 78.0, True, 1_200),
        DatasetSpec("twitter", "social", 41_700_000, 1_500_000_000, 70.5, False, 2_000),
        DatasetSpec("friendster", "social", 65_600_000, 3_600_000_000, 54.8, True, 2_400),
    )
}


def list_datasets() -> list[str]:
    """Names of all catalogued datasets, in Table 2 order."""
    return list(DATASETS)


def get_spec(name: str) -> DatasetSpec:
    """Look up a dataset spec by (case-insensitive) name."""
    key = name.lower().strip()
    if key not in DATASETS:
        raise DatasetError(f"unknown dataset {name!r}; known: {', '.join(DATASETS)}")
    return DATASETS[key]
