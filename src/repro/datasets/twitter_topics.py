"""Synthetic tweet-keyword corpus standing in for the paper's Twitter data.

The paper mined actual tweets/retweets for keyword mentions to build two
targeted groups (Table 4): Topic 1 (politics: "bill clinton", "iran",
"north korea", "president obama", "obama") with 997,034 users and Topic 2
(celebrities: "senator ted kenedy", "oprah", "kayne west", "marvel",
"jackass") with 507,465 users, with per-user relevance proportional to
keyword frequency in their tweets.

We do not have the tweet corpus, so we *simulate the mining output*: each
topic selects the published fraction of the (stand-in) Twitter user base,
biased toward high-degree users (active users tweet more and follow more),
and assigns Zipf-distributed mention counts as relevance weights.  The
TVM algorithms only consume the resulting benefit vector, so this
preserves the code path the paper exercises (DESIGN.md §3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import DatasetError
from repro.graph.digraph import CSRGraph
from repro.tvm.targets import TargetedGroup
from repro.utils.rng import ensure_rng


@dataclass(frozen=True)
class TopicSpec:
    """One row of Table 4."""

    topic_id: int
    keywords: tuple[str, ...]
    paper_users: int
    paper_network_nodes: int = 41_700_000  # Twitter's node count in Table 2

    @property
    def user_fraction(self) -> float:
        """Fraction of the network the topic's group covers."""
        return self.paper_users / self.paper_network_nodes


TOPICS: dict[int, TopicSpec] = {
    1: TopicSpec(
        topic_id=1,
        keywords=("bill clinton", "iran", "north korea", "president obama", "obama"),
        paper_users=997_034,
    ),
    2: TopicSpec(
        topic_id=2,
        keywords=("senator ted kenedy", "oprah", "kayne west", "marvel", "jackass"),
        paper_users=507_465,
    ),
}


def build_topic_group(
    graph: CSRGraph,
    topic: int,
    *,
    seed: int | np.random.Generator | None = None,
    zipf_exponent: float = 2.0,
    activity_bias: float = 0.5,
) -> TargetedGroup:
    """Simulate keyword mining: a targeted group on ``graph`` for ``topic``.

    Group size is the paper's user fraction of ``graph.n`` (at least 1).
    Member selection mixes uniform choice with degree-proportional choice
    (``activity_bias`` interpolates), modelling that active users are more
    likely to mention any topic.  Relevance weights are Zipf mention
    counts, matching the heavy-tailed posting behaviour of real users.
    """
    if topic not in TOPICS:
        raise DatasetError(f"unknown topic {topic}; known: {sorted(TOPICS)}")
    if not 0.0 <= activity_bias <= 1.0:
        raise DatasetError(f"activity_bias must be in [0, 1], got {activity_bias}")
    spec = TOPICS[topic]
    rng = ensure_rng(seed if seed is not None else 9000 + topic)

    group_size = max(1, int(round(spec.user_fraction * graph.n)))
    degrees = np.diff(graph.out_indptr).astype(np.float64) + 1.0
    degree_probs = degrees / degrees.sum()
    uniform_probs = np.full(graph.n, 1.0 / graph.n)
    probs = activity_bias * degree_probs + (1.0 - activity_bias) * uniform_probs
    probs = probs / probs.sum()
    members = rng.choice(graph.n, size=group_size, replace=False, p=probs)

    # Zipf mention counts (clipped to keep the estimator's variance sane).
    mentions = rng.zipf(zipf_exponent, size=group_size).astype(np.float64)
    mentions = np.minimum(mentions, 1000.0)

    return TargetedGroup.from_members(
        name=f"topic-{topic}",
        n=graph.n,
        members=members,
        weights=mentions,
        keywords=spec.keywords,
    )
