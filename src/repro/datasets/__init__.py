"""Dataset stand-ins for the paper's eight networks and the TVM topics."""

from repro.datasets.catalog import DATASETS, DatasetSpec, get_spec, list_datasets
from repro.datasets.synthetic import load_dataset
from repro.datasets.twitter_topics import TOPICS, TopicSpec, build_topic_group

__all__ = [
    "DatasetSpec",
    "DATASETS",
    "get_spec",
    "list_datasets",
    "load_dataset",
    "TopicSpec",
    "TOPICS",
    "build_topic_group",
]
