"""Tests for the two-step RIS framework skeleton."""

import pytest

from repro.core.framework import ris_two_step, static_ris
from repro.exceptions import ParameterError
from repro.sampling.base import make_sampler
from repro.sampling.rr_collection import RRCollection


class TestRisTwoStep:
    def test_generates_exactly_theta(self, medium_wc_graph):
        sampler = make_sampler(medium_wc_graph, "LT", seed=1)
        cover, coll = ris_two_step(sampler, 5, 500)
        assert len(coll) == 500
        assert cover.num_sets == 500
        assert len(cover.seeds) == 5

    def test_tops_up_existing_collection(self, medium_wc_graph):
        sampler = make_sampler(medium_wc_graph, "LT", seed=2)
        coll = RRCollection(medium_wc_graph.n)
        coll.extend(sampler.sample_batch(100))
        _, coll2 = ris_two_step(sampler, 3, 250, collection=coll)
        assert coll2 is coll
        assert len(coll) == 250
        assert sampler.sets_generated == 250

    def test_no_regeneration_when_enough(self, medium_wc_graph):
        sampler = make_sampler(medium_wc_graph, "LT", seed=3)
        coll = RRCollection(medium_wc_graph.n)
        coll.extend(sampler.sample_batch(300))
        ris_two_step(sampler, 3, 200, collection=coll)
        assert sampler.sets_generated == 300  # nothing extra generated

    def test_invalid_theta(self, medium_wc_graph):
        sampler = make_sampler(medium_wc_graph, "LT", seed=4)
        with pytest.raises(ParameterError):
            ris_two_step(sampler, 3, 0)


class TestStaticRis:
    def test_result_fields(self, medium_wc_graph):
        sampler = make_sampler(medium_wc_graph, "LT", seed=5)
        result = static_ris(sampler, 4, 400)
        assert result.algorithm == "static-RIS"
        assert result.samples == 400
        assert result.stopped_by == "theta"
        assert len(result.seeds) == 4
        assert result.influence > 0

    def test_more_samples_stabler_estimates(self, medium_wc_graph):
        small = static_ris(make_sampler(medium_wc_graph, "LT", seed=6), 4, 50)
        large = static_ris(make_sampler(medium_wc_graph, "LT", seed=6), 4, 5000)
        # Estimates should be in the same ballpark; the large run is the
        # reference.  (Loose sanity bound, not a statistical assertion.)
        assert small.influence == pytest.approx(large.influence, rel=0.6)
