"""Edge-case and failure-injection tests for the core algorithms.

These cover the degenerate inputs a downstream user will eventually feed
the library: edgeless graphs, disconnected graphs, k = n, zero-weight
edges, isolated nodes, and pathological sample budgets.
"""

import numpy as np
import pytest

from repro.core.dssa import dssa
from repro.core.ssa import ssa
from repro.baselines.imm import imm
from repro.graph.builder import GraphBuilder, from_edges
from repro.graph.generators import cycle_graph, stochastic_block_model
from repro.graph.weights import assign_constant_weights, assign_weighted_cascade


@pytest.fixture
def edgeless_graph():
    return GraphBuilder(n=30).build()


@pytest.fixture
def disconnected_graph():
    """Two 4-cycles with no edges between them, weight 1."""
    edges = [(i, (i + 1) % 4, 1.0) for i in range(4)]
    edges += [(4 + i, 4 + (i + 1) % 4, 1.0) for i in range(4)]
    return from_edges(edges, n=8)


class TestEdgelessGraph:
    @pytest.mark.parametrize("algo", [ssa, dssa, imm])
    def test_returns_k_seeds_with_influence_k(self, edgeless_graph, algo):
        # With no edges, I(S) = |S| and every node is equivalent.
        result = algo(edgeless_graph, 3, epsilon=0.2, model="IC", seed=1, max_samples=50_000)
        assert len(result.seeds) == 3
        assert result.influence == pytest.approx(3.0, rel=0.3)


class TestZeroWeightEdges:
    @pytest.mark.parametrize("model", ["IC", "LT"])
    def test_zero_weights_behave_like_no_edges(self, model):
        g = assign_constant_weights(cycle_graph(20), 0.0)
        result = dssa(g, 2, epsilon=0.2, model=model, seed=2, max_samples=50_000)
        assert result.influence == pytest.approx(2.0, rel=0.3)


class TestDisconnectedGraph:
    @pytest.mark.parametrize("algo", [ssa, dssa])
    def test_k2_picks_one_seed_per_component(self, disconnected_graph, algo):
        # One seed activates its whole 4-cycle; the optimal pair covers
        # both components for influence 8.
        result = algo(disconnected_graph, 2, epsilon=0.2, delta=0.05, model="IC", seed=3)
        components = {s // 4 for s in result.seeds}
        assert components == {0, 1}
        assert result.influence == pytest.approx(8.0, rel=0.15)


class TestKEqualsN:
    def test_all_nodes_selected(self, tiny_graph):
        result = dssa(tiny_graph, tiny_graph.n, epsilon=0.2, model="IC", seed=4)
        assert sorted(result.seeds) == list(range(tiny_graph.n))
        assert result.influence == pytest.approx(tiny_graph.n, rel=0.1)


class TestIsolatedNodes:
    def test_isolated_nodes_dont_break_sampling(self):
        # Half the nodes are isolated; algorithms must still run and the
        # influential cycle must be found first.
        g = from_edges([(i, (i + 1) % 5, 1.0) for i in range(5)], n=10)
        result = dssa(g, 1, epsilon=0.2, delta=0.05, model="IC", seed=5)
        assert result.seeds[0] < 5  # a cycle node, not an isolated one


class TestExtremeBudgets:
    def test_max_samples_one(self, medium_wc_graph):
        result = dssa(medium_wc_graph, 2, epsilon=0.2, model="LT", seed=6, max_samples=1)
        assert result.stopped_by == "cap"
        assert len(result.seeds) == 2

    def test_huge_epsilon_with_valid_split_still_works(self, medium_wc_graph):
        result = dssa(medium_wc_graph, 2, epsilon=0.6, model="LT", seed=7)
        assert len(result.seeds) == 2


class TestCommunityGraphs:
    def test_seeds_spread_across_blocks(self):
        # On an SBM with weak bridges, greedy IM should not pile all
        # seeds into one community.
        g = assign_weighted_cascade(
            stochastic_block_model(4, 60, intra_degree=6.0, inter_degree=0.2, seed=8)
        )
        result = dssa(g, 4, epsilon=0.2, model="LT", seed=9)
        blocks = {s // 60 for s in result.seeds}
        assert len(blocks) >= 3


class TestDeltaExtremes:
    def test_tiny_delta_more_samples(self, medium_wc_graph):
        loose = dssa(medium_wc_graph, 3, epsilon=0.2, delta=0.2, model="LT", seed=10)
        tight = dssa(medium_wc_graph, 3, epsilon=0.2, delta=1e-9, model="LT", seed=10)
        assert tight.samples > loose.samples

    def test_invalid_delta_rejected(self, medium_wc_graph):
        from repro.exceptions import ParameterError

        with pytest.raises(ParameterError):
            dssa(medium_wc_graph, 3, epsilon=0.2, delta=0.0)
        with pytest.raises(ParameterError):
            ssa(medium_wc_graph, 3, epsilon=0.2, delta=1.0)
