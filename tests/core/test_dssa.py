"""Tests for D-SSA (Algorithm 4)."""

import numpy as np
import pytest

from repro.core.dssa import dssa
from repro.core.ssa import ssa
from repro.diffusion.spread import estimate_spread
from repro.exceptions import ParameterError

from tests.oracles import brute_force_opt


class TestBasicBehaviour:
    def test_returns_k_distinct_seeds(self, medium_wc_graph):
        result = dssa(medium_wc_graph, 7, epsilon=0.2, model="LT", seed=1)
        assert len(result.seeds) == 7
        assert len(set(result.seeds)) == 7

    def test_single_stream_no_extra_verification(self, medium_wc_graph):
        result = dssa(medium_wc_graph, 5, epsilon=0.2, model="LT", seed=2)
        assert result.verification_samples == 0
        assert result.samples == result.optimization_samples

    def test_stream_is_power_of_two_times_lambda(self, medium_wc_graph):
        result = dssa(medium_wc_graph, 5, epsilon=0.2, model="LT", seed=3)
        trace = result.extras["trace"]
        halves = [entry["find_half"] for entry in trace]
        assert all(b == 2 * a for a, b in zip(halves, halves[1:]))

    def test_works_under_ic(self, medium_wc_graph):
        result = dssa(medium_wc_graph, 5, epsilon=0.2, model="IC", seed=4)
        assert result.influence > 0

    def test_deterministic(self, medium_wc_graph):
        a = dssa(medium_wc_graph, 4, epsilon=0.2, model="LT", seed=5)
        b = dssa(medium_wc_graph, 4, epsilon=0.2, model="LT", seed=5)
        assert a.seeds == b.seeds
        assert a.samples == b.samples


class TestDynamicEpsilons:
    def test_final_epsilon_t_below_target(self, medium_wc_graph):
        result = dssa(medium_wc_graph, 5, epsilon=0.2, model="LT", seed=6)
        assert result.stopped_by == "conditions"
        final = result.extras["trace"][-1]
        assert final["epsilon_t"] <= 0.2
        assert final["epsilon_2"] > 0
        assert final["epsilon_3"] > 0

    def test_epsilons_shrink_across_iterations(self, medium_wc_graph):
        result = dssa(medium_wc_graph, 5, epsilon=0.1, model="LT", seed=7)
        eps2_values = [
            e["epsilon_2"] for e in result.extras["trace"] if "epsilon_2" in e
        ]
        if len(eps2_values) >= 2:
            assert eps2_values[-1] < eps2_values[0]


class TestApproximationQuality:
    def test_finds_hub_on_star(self, star_half):
        result = dssa(star_half, 1, epsilon=0.2, model="IC", seed=8)
        assert result.seeds == [0]

    def test_vs_brute_force_tiny(self, tiny_graph):
        _, opt_value = brute_force_opt(tiny_graph, 1, "LT")
        result = dssa(tiny_graph, 1, epsilon=0.2, delta=0.05, model="LT", seed=9)
        achieved = estimate_spread(
            tiny_graph, result.seeds, "LT", simulations=4000, seed=10
        ).mean
        assert achieved >= (1 - 1 / np.e - 0.2) * opt_value * 0.95

    def test_matches_ssa_quality(self, medium_wc_graph):
        d = dssa(medium_wc_graph, 8, epsilon=0.2, model="LT", seed=11)
        s = ssa(medium_wc_graph, 8, epsilon=0.2, model="LT", seed=11)
        quality_d = estimate_spread(
            medium_wc_graph, d.seeds, "LT", simulations=400, seed=12
        ).mean
        quality_s = estimate_spread(
            medium_wc_graph, s.seeds, "LT", simulations=400, seed=12
        ).mean
        assert quality_d == pytest.approx(quality_s, rel=0.15)


class TestSampleEfficiency:
    def test_fewer_samples_than_ssa_total(self, medium_wc_graph):
        # Type-2 vs type-1 optimality: D-SSA should generally use no more
        # samples than SSA at the same precision (paper Section 7.2.2).
        d = dssa(medium_wc_graph, 8, epsilon=0.15, model="LT", seed=13)
        s = ssa(medium_wc_graph, 8, epsilon=0.15, model="LT", seed=13)
        assert d.samples <= s.samples * 1.2

    def test_tighter_epsilon_needs_more(self, medium_wc_graph):
        loose = dssa(medium_wc_graph, 5, epsilon=0.24, model="LT", seed=14)
        tight = dssa(medium_wc_graph, 5, epsilon=0.08, model="LT", seed=14)
        assert tight.samples > loose.samples


class TestStoppingBehaviour:
    def test_cap_respected(self, medium_wc_graph):
        result = dssa(
            medium_wc_graph, 5, epsilon=0.2, model="LT", seed=15, max_samples=20
        )
        assert result.stopped_by == "cap"
        assert len(result.seeds) == 5


class TestValidation:
    def test_bad_k(self, tiny_graph):
        with pytest.raises(ParameterError):
            dssa(tiny_graph, 0, epsilon=0.2)

    def test_epsilon_above_limit_rejected(self, tiny_graph):
        with pytest.raises((ParameterError, ValueError)):
            dssa(tiny_graph, 1, epsilon=0.99)
