"""Tests for SSA (Algorithm 1)."""

import numpy as np
import pytest

from repro.core.ssa import ssa
from repro.core.thresholds import EpsilonSplit
from repro.diffusion.spread import estimate_spread
from repro.exceptions import ParameterError

from tests.oracles import brute_force_opt


class TestBasicBehaviour:
    def test_returns_k_distinct_seeds(self, medium_wc_graph):
        result = ssa(medium_wc_graph, 7, epsilon=0.2, model="LT", seed=1)
        assert len(result.seeds) == 7
        assert len(set(result.seeds)) == 7

    def test_result_metadata(self, medium_wc_graph):
        result = ssa(medium_wc_graph, 5, epsilon=0.2, model="LT", seed=2)
        assert result.algorithm == "SSA"
        assert result.samples == result.optimization_samples + result.verification_samples
        assert result.iterations >= 1
        assert result.stopped_by in ("conditions", "cap")
        assert result.elapsed_seconds > 0
        assert result.memory_bytes > 0

    def test_works_under_ic(self, medium_wc_graph):
        result = ssa(medium_wc_graph, 5, epsilon=0.2, model="IC", seed=3)
        assert len(result.seeds) == 5
        assert result.influence > 0

    def test_deterministic_given_seed(self, medium_wc_graph):
        a = ssa(medium_wc_graph, 4, epsilon=0.2, model="LT", seed=11)
        b = ssa(medium_wc_graph, 4, epsilon=0.2, model="LT", seed=11)
        assert a.seeds == b.seeds
        assert a.samples == b.samples

    def test_trace_records_iterations(self, medium_wc_graph):
        result = ssa(medium_wc_graph, 4, epsilon=0.2, model="LT", seed=4)
        trace = result.extras["trace"]
        assert len(trace) == result.iterations
        pools = [entry["pool"] for entry in trace]
        assert all(b == 2 * a for a, b in zip(pools, pools[1:]))  # doubling


class TestApproximationQuality:
    def test_near_optimal_on_star(self, star_half):
        # OPT_1 is the hub; SSA must find it.
        result = ssa(star_half, 1, epsilon=0.2, model="IC", seed=5)
        assert result.seeds == [0]

    def test_vs_brute_force_tiny(self, tiny_graph):
        opt_seeds, opt_value = brute_force_opt(tiny_graph, 1, "IC")
        result = ssa(tiny_graph, 1, epsilon=0.2, delta=0.05, model="IC", seed=6)
        achieved = estimate_spread(
            tiny_graph, result.seeds, "IC", simulations=4000, seed=7
        ).mean
        # (1 - 1/e - eps) guarantee with MC slack.
        assert achieved >= (1 - 1 / np.e - 0.2) * opt_value * 0.95

    def test_quality_close_to_exhaustive_k2(self, tiny_graph):
        _, opt_value = brute_force_opt(tiny_graph, 2, "LT")
        result = ssa(tiny_graph, 2, epsilon=0.2, delta=0.05, model="LT", seed=8)
        achieved = estimate_spread(
            tiny_graph, result.seeds, "LT", simulations=4000, seed=9
        ).mean
        assert achieved >= (1 - 1 / np.e - 0.2) * opt_value * 0.95


class TestStoppingBehaviour:
    def test_stops_by_conditions_normally(self, medium_wc_graph):
        result = ssa(medium_wc_graph, 5, epsilon=0.2, model="LT", seed=10)
        assert result.stopped_by == "conditions"

    def test_max_samples_forces_cap(self, medium_wc_graph):
        result = ssa(
            medium_wc_graph, 5, epsilon=0.2, model="LT", seed=10, max_samples=10
        )
        assert result.stopped_by == "cap"
        assert len(result.seeds) == 5  # still returns a usable answer

    def test_smaller_epsilon_needs_more_samples(self, medium_wc_graph):
        loose = ssa(medium_wc_graph, 5, epsilon=0.24, model="LT", seed=12)
        tight = ssa(medium_wc_graph, 5, epsilon=0.08, model="LT", seed=12)
        assert tight.samples > loose.samples


class TestCustomSplit:
    def test_custom_split_accepted(self, medium_wc_graph):
        split = EpsilonSplit(0.02, 0.1, 0.1)
        result = ssa(
            medium_wc_graph, 4, epsilon=0.25, model="LT", seed=13, split=split
        )
        assert result.extras["epsilon_split"] == (0.02, 0.1, 0.1)

    def test_invalid_split_rejected(self, medium_wc_graph):
        bad = EpsilonSplit(2.0, 0.9, 0.9)
        with pytest.raises(ParameterError):
            ssa(medium_wc_graph, 4, epsilon=0.1, model="LT", seed=13, split=bad)


class TestValidation:
    def test_bad_k(self, tiny_graph):
        with pytest.raises(ParameterError):
            ssa(tiny_graph, 0, epsilon=0.2)
        with pytest.raises(ParameterError):
            ssa(tiny_graph, 5, epsilon=0.2)

    def test_bad_epsilon(self, tiny_graph):
        with pytest.raises(ParameterError):
            ssa(tiny_graph, 1, epsilon=1.5)

    def test_default_delta_is_one_over_n(self, medium_wc_graph):
        result = ssa(medium_wc_graph, 3, epsilon=0.2, model="LT", seed=14)
        assert result.extras["n_max"] > 0
