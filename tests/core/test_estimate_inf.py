"""Tests for Estimate-Inf (Algorithm 3, stopping-rule estimator)."""

import numpy as np
import pytest

from repro.core.estimate_inf import (
    InfluenceEstimate,
    estimate_influence,
    required_successes,
)
from repro.exceptions import ParameterError
from repro.graph.generators import star_graph
from repro.graph.weights import assign_constant_weights, assign_weighted_cascade
from repro.sampling.base import make_sampler
from repro.utils.mathstats import upsilon

from tests.oracles import exact_ic_spread


class TestRequiredSuccesses:
    def test_formula(self):
        eps, delta = 0.1, 0.01
        assert required_successes(eps, delta) == pytest.approx(
            1 + (1 + eps) * upsilon(eps, delta)
        )

    def test_grows_as_eps_shrinks(self):
        assert required_successes(0.05, 0.1) > required_successes(0.2, 0.1)


class TestEstimation:
    def test_estimates_known_influence(self, star_half):
        # I({hub}) = 1 + 9 * 0.5 = 5.5 on the 10-node star with p = 0.5.
        sampler = make_sampler(star_half, "IC", seed=1)
        result = estimate_influence(sampler, [0], 0.1, 0.05, max_samples=200_000)
        assert not result.capped
        truth = exact_ic_spread(star_half, [0])
        assert result.influence == pytest.approx(truth, rel=0.12)

    def test_one_sided_guarantee(self, star_half):
        # Lemma 3: Pr[Ic > (1 + eps) I] <= delta.  With delta = 0.05 and 40
        # trials, overshoots beyond (1+eps)I should be rare.
        truth = exact_ic_spread(star_half, [0])
        eps, delta = 0.2, 0.05
        overshoots = 0
        rng = np.random.default_rng(2)
        for _ in range(40):
            sampler = make_sampler(star_half, "IC", rng.spawn(1)[0])
            result = estimate_influence(sampler, [0], eps, delta, max_samples=500_000)
            assert not result.capped
            if result.influence > (1 + eps) * truth:
                overshoots += 1
        assert overshoots <= 6  # ~3x the nominal delta as slack

    def test_cap_returns_none(self, star_half):
        sampler = make_sampler(star_half, "IC", seed=3)
        result = estimate_influence(sampler, [0], 0.1, 0.05, max_samples=5)
        assert result.capped
        assert result.influence is None
        assert result.samples_used == 5

    def test_full_coverage_seed_set(self, star_wc):
        # Seeding every node: every RR set is covered; influence ~ n.
        sampler = make_sampler(star_wc, "LT", seed=4)
        result = estimate_influence(
            sampler, list(range(10)), 0.2, 0.05, max_samples=100_000
        )
        assert not result.capped
        assert result.influence == pytest.approx(10.0, rel=0.25)

    def test_samples_used_counted(self, star_half):
        sampler = make_sampler(star_half, "IC", seed=5)
        result = estimate_influence(sampler, [0], 0.2, 0.1, max_samples=100_000)
        assert result.samples_used == sampler.sets_generated


class TestValidation:
    def test_bad_epsilon(self, star_half):
        sampler = make_sampler(star_half, "IC", seed=6)
        with pytest.raises(ParameterError):
            estimate_influence(sampler, [0], 0.0, 0.1, max_samples=10)

    def test_bad_delta(self, star_half):
        sampler = make_sampler(star_half, "IC", seed=6)
        with pytest.raises(ParameterError):
            estimate_influence(sampler, [0], 0.1, 1.5, max_samples=10)

    def test_empty_seed_set(self, star_half):
        sampler = make_sampler(star_half, "IC", seed=6)
        with pytest.raises(ParameterError):
            estimate_influence(sampler, [], 0.1, 0.1, max_samples=10)

    def test_out_of_range_seed(self, star_half):
        sampler = make_sampler(star_half, "IC", seed=6)
        with pytest.raises(ParameterError):
            estimate_influence(sampler, [99], 0.1, 0.1, max_samples=10)

    def test_zero_max_samples(self, star_half):
        sampler = make_sampler(star_half, "IC", seed=6)
        with pytest.raises(ParameterError):
            estimate_influence(sampler, [0], 0.1, 0.1, max_samples=0)
