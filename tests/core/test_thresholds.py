"""Tests for RIS thresholds and epsilon splits."""

import math

import pytest

from repro.core.thresholds import (
    EpsilonSplit,
    default_epsilon_split,
    imm_theta_exact,
    imm_threshold,
    max_iterations,
    sample_cap,
    tim_threshold,
    upsilon_ln,
)
from repro.exceptions import ParameterError
from repro.utils.mathstats import binomial_coefficient_ln, upsilon

_E = 1 - 1 / math.e


class TestUpsilonLn:
    def test_agrees_with_upsilon(self):
        assert upsilon_ln(0.1, math.log(1 / 0.01)) == pytest.approx(upsilon(0.1, 0.01))

    def test_handles_huge_log_terms(self):
        # ln C(1e9, 1000) style terms must not overflow.
        big = binomial_coefficient_ln(10**9, 1000)
        assert math.isfinite(upsilon_ln(0.1, big + 10))

    def test_validation(self):
        with pytest.raises(ParameterError):
            upsilon_ln(0, 5.0)
        with pytest.raises(ParameterError):
            upsilon_ln(0.1, -1.0)


class TestSampleCap:
    def test_formula(self):
        n, k, eps, delta = 1000, 10, 0.1, 0.001
        ln_term = math.log(6 / delta) + binomial_coefficient_ln(n, k)
        expected = 8 * _E / (2 + 2 * eps / 3) * upsilon_ln(eps, ln_term) * n / k
        assert sample_cap(n, k, eps, delta) == pytest.approx(expected)

    def test_decreases_with_k(self):
        assert sample_cap(1000, 50, 0.1, 0.001) < sample_cap(1000, 5, 0.1, 0.001)

    def test_grows_with_n(self):
        assert sample_cap(10_000, 10, 0.1, 0.001) > sample_cap(1000, 10, 0.1, 0.001)

    def test_rejects_bad_k(self):
        with pytest.raises(ParameterError):
            sample_cap(10, 11, 0.1, 0.01)


class TestMaxIterations:
    def test_logarithmic_in_n(self):
        # Lemma 10: t_max = O(log n) — concretely below 2 log2 n + 2.
        for n in (100, 10_000, 1_000_000):
            i_max = max_iterations(n, 10, 0.1, 1.0 / n)
            assert i_max <= 2 * math.log2(n) + 16

    def test_at_least_one(self):
        assert max_iterations(50, 1, 0.2, 0.02) >= 1


class TestDefaultEpsilonSplit:
    def test_satisfies_eq18_with_equality(self):
        for eps in (0.05, 0.1, 0.2):
            split = default_epsilon_split(eps)
            assert split.combined() == pytest.approx(eps, rel=1e-9)

    def test_paper_example_epsilon_01(self):
        # Paper quotes eps1 ~ 1/78, eps2 = eps3 ~ 2/25 for eps = 0.1.
        split = default_epsilon_split(0.1)
        assert split.epsilon_2 == pytest.approx(2 / 25, rel=0.02)
        assert split.epsilon_3 == split.epsilon_2
        assert split.epsilon_1 == pytest.approx(1 / 78, rel=0.15)

    def test_rejects_epsilon_above_1_minus_1_over_e(self):
        with pytest.raises(ParameterError):
            default_epsilon_split(0.7)

    def test_validate_rejects_violating_split(self):
        bad = EpsilonSplit(1.0, 0.5, 0.5)
        with pytest.raises(ParameterError):
            bad.validate(0.1)

    def test_validate_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            EpsilonSplit(0.0, 0.1, 0.1).validate(0.3)

    def test_validate_accepts_custom_valid_split(self):
        EpsilonSplit(0.01, 0.05, 0.05).validate(0.1)


class TestPublishedThresholds:
    def test_imm_below_tim(self):
        # Eq. 14 vs Eq. 12: IMM's threshold is roughly half of TIM's.
        n, k, eps, delta, opt = 10_000, 50, 0.1, 1e-4, 500.0
        assert imm_threshold(n, k, eps, delta, opt) < tim_threshold(n, k, eps, delta, opt)

    def test_thresholds_scale_inverse_opt(self):
        base = imm_threshold(1000, 10, 0.1, 0.001, 100.0)
        assert imm_threshold(1000, 10, 0.1, 0.001, 200.0) == pytest.approx(base / 2)

    def test_exact_theta_close_to_simplified(self):
        n, k, eps, delta, opt = 10_000, 50, 0.1, 1e-4, 500.0
        exact = imm_theta_exact(n, k, eps, delta, opt)
        simplified = imm_threshold(n, k, eps, delta, opt)
        # Simplification inflates by at most 2x (the (a+b)^2 <= 2(a^2+b^2) step).
        assert exact <= simplified * 1.01
        assert simplified <= 2.05 * exact

    def test_opt_validation(self):
        with pytest.raises(ParameterError):
            tim_threshold(100, 5, 0.1, 0.01, 0.0)
        with pytest.raises(ParameterError):
            imm_threshold(100, 5, 0.1, 0.01, -3.0)
        with pytest.raises(ParameterError):
            imm_theta_exact(100, 5, 0.1, 0.01, 0.0)
