"""Tests for greedy max-coverage (Algorithm 2)."""

import itertools

import numpy as np
import pytest

from repro.core.max_coverage import MaxCoverageResult, max_coverage
from repro.exceptions import ParameterError
from repro.sampling.rr_collection import RRCollection


def make_collection(n: int, sets: list[list[int]]) -> RRCollection:
    coll = RRCollection(n)
    coll.extend(np.asarray(s, dtype=np.int32) for s in sets)
    return coll


def brute_force_best_coverage(n: int, sets: list[list[int]], k: int) -> int:
    best = 0
    for combo in itertools.combinations(range(n), k):
        cov = sum(1 for s in sets if set(s) & set(combo))
        best = max(best, cov)
    return best


class TestGreedyChoices:
    def test_picks_dominating_node(self):
        sets = [[0, 1], [0, 2], [0, 3], [4]]
        result = max_coverage(make_collection(5, sets), 1)
        assert result.seeds == [0]
        assert result.coverage == 3

    def test_second_pick_is_marginal_best(self):
        sets = [[0], [0], [1, 2], [2], [2]]
        result = max_coverage(make_collection(3, sets), 2)
        assert result.seeds == [2, 0]
        assert result.coverage == 5

    def test_k_equals_n(self):
        sets = [[0], [1], [2]]
        result = max_coverage(make_collection(3, sets), 3)
        assert sorted(result.seeds) == [0, 1, 2]
        assert result.coverage == 3

    def test_exhausted_coverage_fills_with_unchosen(self):
        sets = [[0]]
        result = max_coverage(make_collection(4, sets), 3)
        assert len(result.seeds) == 3
        assert result.seeds[0] == 0
        assert len(set(result.seeds)) == 3

    def test_empty_collection_returns_k_nodes(self):
        result = max_coverage(make_collection(5, []), 2)
        assert len(result.seeds) == 2
        assert result.coverage == 0


class TestApproximationGuarantee:
    def test_at_least_1_minus_1e_of_optimum(self):
        # Nemhauser-Wolsey: greedy coverage >= (1 - 1/e) * optimum.
        rng = np.random.default_rng(3)
        for trial in range(10):
            n = 12
            sets = [
                rng.choice(n, size=rng.integers(1, 5), replace=False).tolist()
                for _ in range(25)
            ]
            k = 3
            greedy = max_coverage(make_collection(n, sets), k).coverage
            optimum = brute_force_best_coverage(n, sets, k)
            assert greedy >= (1 - 1 / np.e) * optimum - 1e-9, f"trial {trial}"


class TestMarginals:
    def test_marginals_non_increasing(self):
        rng = np.random.default_rng(4)
        sets = [
            rng.choice(30, size=rng.integers(1, 8), replace=False).tolist()
            for _ in range(80)
        ]
        result = max_coverage(make_collection(30, sets), 10)
        picked = result.marginal_coverage
        assert all(a >= b for a, b in zip(picked, picked[1:]))

    def test_marginals_sum_to_coverage(self):
        rng = np.random.default_rng(5)
        sets = [
            rng.choice(15, size=rng.integers(1, 4), replace=False).tolist()
            for _ in range(40)
        ]
        result = max_coverage(make_collection(15, sets), 5)
        assert sum(result.marginal_coverage) == result.coverage

    def test_coverage_matches_collection_query(self):
        rng = np.random.default_rng(6)
        sets = [
            rng.choice(15, size=rng.integers(1, 4), replace=False).tolist()
            for _ in range(40)
        ]
        coll = make_collection(15, sets)
        result = max_coverage(coll, 4)
        assert result.coverage == coll.coverage(result.seeds)


class TestRangeSupport:
    def test_restricts_to_range(self):
        sets = [[0], [0], [1], [1], [1]]
        coll = make_collection(2, sets)
        first = max_coverage(coll, 1, start=0, end=2)
        assert first.seeds == [0]
        second = max_coverage(coll, 1, start=2, end=5)
        assert second.seeds == [1]
        assert second.num_sets == 3


class TestInfluenceEstimate:
    def test_scaling(self):
        sets = [[0], [0], [1], [2]]
        result = max_coverage(make_collection(3, sets), 1)
        assert result.influence_estimate(scale=30.0) == pytest.approx(30.0 * 2 / 4)

    def test_zero_sets_rejected(self):
        result = MaxCoverageResult(seeds=[0], coverage=0, num_sets=0)
        with pytest.raises(ParameterError):
            result.influence_estimate(10.0)


class TestValidation:
    def test_k_out_of_range(self):
        coll = make_collection(3, [[0]])
        with pytest.raises(ParameterError):
            max_coverage(coll, 0)
        with pytest.raises(ParameterError):
            max_coverage(coll, 4)
