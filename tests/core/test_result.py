"""Tests for the IMResult record."""

from repro.core.result import IMResult


def make_result(**overrides):
    params = dict(
        algorithm="D-SSA",
        seeds=[3, 1, 4],
        influence=123.4,
        samples=1000,
        optimization_samples=800,
        verification_samples=200,
        iterations=3,
        stopped_by="conditions",
        elapsed_seconds=0.25,
        memory_bytes=4096,
    )
    params.update(overrides)
    return IMResult(**params)


class TestIMResult:
    def test_k_property(self):
        assert make_result().k == 3

    def test_summary_contains_headline_metrics(self):
        summary = make_result().summary()
        assert "D-SSA" in summary
        assert "k=3" in summary
        assert "samples=1000" in summary
        assert "conditions" in summary

    def test_extras_default_independent(self):
        a, b = make_result(), make_result()
        a.extras["x"] = 1
        assert "x" not in b.extras

    def test_sample_breakdown_consistent(self):
        result = make_result()
        assert result.samples == result.optimization_samples + result.verification_samples
