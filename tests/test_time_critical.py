"""Tests for the time-critical (bounded-horizon) extension.

The horizon-T objective counts activations within T rounds; its RIS dual
truncates RR sets at T reverse hops.  These tests pin the duality: the
horizon-limited RIS estimate must match horizon-limited forward Monte
Carlo, and horizon=∞ must reproduce the unbounded behaviour.
"""

import numpy as np
import pytest

from repro.core.dssa import dssa
from repro.core.ssa import ssa
from repro.diffusion.independent_cascade import simulate_ic, simulate_ic_trace
from repro.diffusion.linear_threshold import simulate_lt
from repro.diffusion.spread import estimate_spread
from repro.graph.builder import from_edges
from repro.graph.generators import cycle_graph, star_graph
from repro.graph.weights import assign_constant_weights, assign_weighted_cascade
from repro.sampling.base import make_sampler
from repro.sampling.rr_collection import RRCollection


@pytest.fixture
def path_graph():
    """Directed path 0 -> 1 -> 2 -> 3 -> 4 with weight 1."""
    return from_edges([(i, i + 1, 1.0) for i in range(4)], n=5)


class TestForwardHorizon:
    def test_path_truncation_exact(self, path_graph):
        # From node 0 with weight-1 edges: T rounds reach T+1 nodes.
        for horizon in range(5):
            assert simulate_ic(path_graph, [0], seed=1, max_rounds=horizon) == horizon + 1

    def test_horizon_zero_is_seed_count(self, path_graph):
        assert simulate_ic(path_graph, [0, 2], seed=2, max_rounds=0) == 2
        assert simulate_lt(path_graph, [0], seed=3, max_rounds=0) == 1

    def test_horizon_none_unbounded(self, path_graph):
        assert simulate_ic(path_graph, [0], seed=4) == 5

    def test_trace_respects_horizon(self, path_graph):
        trace = simulate_ic_trace(path_graph, [0], seed=5, max_rounds=2)
        assert len(trace) <= 3  # seeds + at most 2 rounds

    def test_lt_horizon_on_cycle(self, cycle_wc):
        # Weight-1 cycle: T rounds activate T+1 nodes (capped at n).
        assert simulate_lt(cycle_wc, [0], seed=6, max_rounds=3) == 4

    def test_estimate_spread_horizon(self, path_graph):
        estimate = estimate_spread(
            path_graph, [0], "IC", simulations=50, seed=7, max_rounds=2
        )
        assert estimate.mean == pytest.approx(3.0)


class TestSamplerHorizon:
    def test_rr_sets_bounded_by_hops(self, path_graph):
        sampler = make_sampler(path_graph, "IC", seed=8, max_hops=2)
        rr = sampler.sample(root=4)
        assert sorted(rr.tolist()) == [2, 3, 4]

    def test_lt_walk_bounded(self, cycle_wc):
        sampler = make_sampler(cycle_wc, "LT", seed=9, max_hops=3)
        rr = sampler.sample(root=0)
        assert len(rr) == 4

    def test_zero_hops_singleton(self, cycle_wc):
        sampler = make_sampler(cycle_wc, "IC", seed=10, max_hops=0)
        for root in range(4):
            assert sampler.sample(root=root).tolist() == [root]

    def test_negative_hops_rejected(self, cycle_wc):
        with pytest.raises(ValueError):
            make_sampler(cycle_wc, "IC", seed=11, max_hops=-1)

    def test_duality_ris_vs_forward(self, grid_graph):
        """Horizon-T RIS estimate == horizon-T forward MC (Lemma 1 dual)."""
        horizon = 2
        seeds = [0, 5]
        sampler = make_sampler(grid_graph, "IC", seed=12, max_hops=horizon)
        coll = RRCollection(grid_graph.n)
        coll.extend(sampler.sample_batch(30_000))
        ris = coll.estimate_influence(seeds, sampler.scale)
        forward = estimate_spread(
            grid_graph, seeds, "IC", simulations=6000, seed=13, max_rounds=horizon
        ).mean
        assert ris == pytest.approx(forward, rel=0.05)


class TestAlgorithmsWithHorizon:
    def test_dssa_horizon_changes_objective(self):
        # Star + long tail: unbounded IM prefers the chain head; with
        # horizon 1 the star hub wins (chain only pays off over rounds).
        edges = [(0, leaf, 1.0) for leaf in range(1, 6)]  # hub 0, 5 leaves
        chain = [(6 + i, 7 + i, 1.0) for i in range(7)]  # chain 6..13
        g = from_edges(edges + chain, n=14)
        unbounded = dssa(g, 1, epsilon=0.2, delta=0.05, model="IC", seed=14)
        bounded = dssa(g, 1, epsilon=0.2, delta=0.05, model="IC", seed=14, horizon=1)
        assert unbounded.seeds == [6]  # chain head reaches 8 nodes
        assert bounded.seeds == [0]  # hub reaches 6 nodes in one round

    def test_ssa_horizon_supported(self, medium_wc_graph):
        result = ssa(medium_wc_graph, 3, epsilon=0.2, model="LT", seed=15, horizon=2)
        assert len(result.seeds) == 3

    def test_horizon_influence_no_larger(self, medium_wc_graph):
        bounded = dssa(medium_wc_graph, 3, epsilon=0.2, model="LT", seed=16, horizon=1)
        unbounded = dssa(medium_wc_graph, 3, epsilon=0.2, model="LT", seed=16)
        assert bounded.influence <= unbounded.influence * 1.1
