"""Tests for the IRIE heuristic baseline."""

import pytest

from repro.baselines.irie import irie
from repro.exceptions import ParameterError
from repro.graph.builder import from_edges
from repro.graph.generators import star_graph
from repro.graph.weights import assign_constant_weights


class TestIrie:
    def test_finds_hub_on_star(self):
        g = assign_constant_weights(star_graph(10), 0.3)
        result = irie(g, 1)
        assert result.seeds == [0]
        assert result.algorithm == "IRIE"

    def test_returns_k_distinct(self, medium_wc_graph):
        result = irie(medium_wc_graph, 8)
        assert len(result.seeds) == 8
        assert len(set(result.seeds)) == 8

    def test_avoids_redundant_adjacent_hub(self):
        # Hub A -> {1..5}, hub B -> {1..5} (same audience), hub C -> {6..9}
        # (fresh audience).  After A, IRIE's activation-probability update
        # must devalue B and prefer C even though B's raw rank is higher.
        edges = [(10, leaf, 0.5) for leaf in range(1, 6)]
        edges += [(11, leaf, 0.5) for leaf in range(1, 6)]
        edges += [(12, leaf, 0.5) for leaf in range(6, 10)]
        g = from_edges(edges, n=13)
        result = irie(g, 2)
        assert result.seeds[0] in (10, 11)
        assert result.seeds[1] == 12

    def test_deterministic(self, medium_wc_graph):
        assert irie(medium_wc_graph, 4).seeds == irie(medium_wc_graph, 4).seeds

    def test_quality_reasonable_vs_dssa(self, medium_wc_graph):
        """Heuristic foil: close to, but not assuredly matching, D-SSA."""
        from repro.core.dssa import dssa
        from repro.diffusion.spread import estimate_spread

        h = irie(medium_wc_graph, 8)
        d = dssa(medium_wc_graph, 8, epsilon=0.2, model="IC", seed=1)
        q_h = estimate_spread(medium_wc_graph, h.seeds, "IC", simulations=300, seed=2).mean
        q_d = estimate_spread(medium_wc_graph, d.seeds, "IC", simulations=300, seed=2).mean
        assert q_h >= 0.6 * q_d  # in the ballpark
        assert q_h <= 1.2 * q_d  # but not magically better

    def test_validation(self, tiny_graph):
        with pytest.raises(ParameterError):
            irie(tiny_graph, 1, alpha=1.5)
        with pytest.raises(ParameterError):
            irie(tiny_graph, 1, iterations=0)
        with pytest.raises(ParameterError):
            irie(tiny_graph, 0)
