"""Tests for CELF / CELF++ lazy greedy."""

import pytest

from repro.baselines.celf import celf
from repro.exceptions import ParameterError

from tests.oracles import brute_force_opt


class TestCelf:
    def test_finds_hub_on_star(self, star_half):
        result = celf(star_half, 1, model="IC", simulations=300, seed=1)
        assert result.seeds == [0]
        assert result.algorithm == "CELF"

    def test_returns_k_distinct(self, grid_graph):
        result = celf(grid_graph, 3, model="IC", simulations=60, seed=2)
        assert len(result.seeds) == 3
        assert len(set(result.seeds)) == 3

    def test_matches_brute_force_tiny(self, tiny_graph):
        opt_seeds, _ = brute_force_opt(tiny_graph, 1, "IC")
        result = celf(tiny_graph, 1, model="IC", simulations=800, seed=3)
        assert result.seeds == opt_seeds

    def test_lazy_fewer_evaluations_than_naive(self, grid_graph):
        result = celf(grid_graph, 4, model="IC", simulations=50, seed=4)
        naive = grid_graph.n * 4  # evaluations naive greedy would need
        assert result.extras["spread_evaluations"] < naive

    def test_influence_positive_and_monotone_in_k(self, grid_graph):
        small = celf(grid_graph, 1, model="IC", simulations=80, seed=5)
        large = celf(grid_graph, 3, model="IC", simulations=80, seed=5)
        assert 0 < small.influence <= large.influence * 1.05

    def test_works_under_lt(self, star_wc):
        result = celf(star_wc, 1, model="LT", simulations=100, seed=6)
        assert result.seeds == [0]


class TestCelfPlusPlus:
    def test_label(self, star_half):
        result = celf(star_half, 1, model="IC", simulations=100, seed=7, plus_plus=True)
        assert result.algorithm == "CELF++"

    def test_same_first_seed_as_celf(self, grid_graph):
        plain = celf(grid_graph, 2, model="IC", simulations=120, seed=8)
        plus = celf(grid_graph, 2, model="IC", simulations=120, seed=8, plus_plus=True)
        assert plain.seeds[0] == plus.seeds[0]


class TestValidation:
    def test_bad_simulations(self, tiny_graph):
        with pytest.raises(ParameterError):
            celf(tiny_graph, 1, simulations=0)

    def test_bad_k(self, tiny_graph):
        with pytest.raises(ParameterError):
            celf(tiny_graph, 0)
