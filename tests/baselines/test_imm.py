"""Tests for the IMM baseline."""

import numpy as np
import pytest

from repro.baselines.imm import imm, imm_sample_requirement
from repro.core.dssa import dssa
from repro.diffusion.spread import estimate_spread
from repro.exceptions import ParameterError

from tests.oracles import brute_force_opt


class TestBasicBehaviour:
    def test_returns_k_seeds(self, medium_wc_graph):
        result = imm(medium_wc_graph, 6, epsilon=0.2, model="LT", seed=1)
        assert len(result.seeds) == 6
        assert len(set(result.seeds)) == 6
        assert result.algorithm == "IMM"

    def test_theta_recorded(self, medium_wc_graph):
        result = imm(medium_wc_graph, 5, epsilon=0.2, model="LT", seed=2)
        assert result.extras["theta"] >= 1
        assert result.extras["lower_bound"] >= 1.0
        assert result.samples >= result.extras["theta"]

    def test_deterministic(self, medium_wc_graph):
        a = imm(medium_wc_graph, 4, epsilon=0.2, model="LT", seed=3)
        b = imm(medium_wc_graph, 4, epsilon=0.2, model="LT", seed=3)
        assert a.seeds == b.seeds
        assert a.samples == b.samples

    def test_works_under_ic(self, medium_wc_graph):
        result = imm(medium_wc_graph, 4, epsilon=0.2, model="IC", seed=4)
        assert result.influence > 0


class TestQuality:
    def test_finds_hub_on_star(self, star_half):
        result = imm(star_half, 1, epsilon=0.2, model="IC", seed=5)
        assert result.seeds == [0]

    def test_approximation_tiny(self, tiny_graph):
        _, opt_value = brute_force_opt(tiny_graph, 1, "LT")
        result = imm(tiny_graph, 1, epsilon=0.2, delta=0.05, model="LT", seed=6)
        achieved = estimate_spread(
            tiny_graph, result.seeds, "LT", simulations=4000, seed=7
        ).mean
        assert achieved >= (1 - 1 / np.e - 0.2) * opt_value * 0.95

    def test_quality_matches_dssa(self, medium_wc_graph):
        a = imm(medium_wc_graph, 8, epsilon=0.2, model="LT", seed=8)
        b = dssa(medium_wc_graph, 8, epsilon=0.2, model="LT", seed=8)
        qa = estimate_spread(medium_wc_graph, a.seeds, "LT", simulations=400, seed=9).mean
        qb = estimate_spread(medium_wc_graph, b.seeds, "LT", simulations=400, seed=9).mean
        assert qa == pytest.approx(qb, rel=0.15)


class TestSampleComplexityStory:
    def test_uses_more_samples_than_dssa(self, medium_wc_graph):
        """The paper's headline: D-SSA needs several-fold fewer RR sets."""
        i = imm(medium_wc_graph, 8, epsilon=0.15, model="LT", seed=10)
        d = dssa(medium_wc_graph, 8, epsilon=0.15, model="LT", seed=10)
        assert i.samples > d.samples

    def test_max_samples_respected(self, medium_wc_graph):
        result = imm(
            medium_wc_graph, 4, epsilon=0.2, model="LT", seed=11, max_samples=100
        )
        assert result.samples <= 100


class TestAnalyticRequirement:
    def test_scales_with_parameters(self):
        base = imm_sample_requirement(10_000, 10, 0.1, 0.001, 500.0)
        assert imm_sample_requirement(10_000, 10, 0.05, 0.001, 500.0) > base
        assert imm_sample_requirement(10_000, 10, 0.1, 0.001, 1000.0) < base

    def test_rejects_bad_opt(self):
        with pytest.raises(ParameterError):
            imm_sample_requirement(100, 5, 0.1, 0.01, 0.0)
