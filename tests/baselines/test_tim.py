"""Tests for TIM and TIM+."""

import numpy as np
import pytest

from repro.baselines.tim import _rr_width, tim, tim_plus
from repro.core.dssa import dssa
from repro.diffusion.spread import estimate_spread

from tests.oracles import brute_force_opt


class TestRRWidth:
    def test_counts_in_edges(self, tiny_graph):
        # width({2, 3}) = in-deg(2) + in-deg(3) = 2 + 1.
        assert _rr_width(tiny_graph, np.asarray([2, 3])) == 3

    def test_empty(self, tiny_graph):
        assert _rr_width(tiny_graph, np.asarray([], dtype=np.int32)) == 0


class TestTim:
    def test_returns_k_seeds(self, medium_wc_graph):
        result = tim(medium_wc_graph, 5, epsilon=0.25, model="LT", seed=1, max_samples=50_000)
        assert len(result.seeds) == 5
        assert result.algorithm == "TIM"
        assert result.extras["kpt"] >= 1.0

    def test_finds_hub_on_star(self, star_half):
        result = tim(star_half, 1, epsilon=0.25, model="IC", seed=2, max_samples=50_000)
        assert result.seeds == [0]

    def test_approximation_tiny(self, tiny_graph):
        _, opt_value = brute_force_opt(tiny_graph, 1, "LT")
        result = tim(tiny_graph, 1, epsilon=0.25, delta=0.05, model="LT", seed=3, max_samples=50_000)
        achieved = estimate_spread(
            tiny_graph, result.seeds, "LT", simulations=4000, seed=4
        ).mean
        assert achieved >= (1 - 1 / np.e - 0.25) * opt_value * 0.95


class TestTimPlus:
    def test_refinement_never_hurts_kpt(self, medium_wc_graph):
        result = tim_plus(medium_wc_graph, 5, epsilon=0.25, model="LT", seed=5, max_samples=50_000)
        assert result.algorithm == "TIM+"
        assert result.extras["kpt_refined"] >= result.extras["kpt"]

    def test_refined_theta_at_most_unrefined(self, medium_wc_graph):
        plus = tim_plus(medium_wc_graph, 5, epsilon=0.25, model="LT", seed=6, max_samples=200_000)
        plain = tim(medium_wc_graph, 5, epsilon=0.25, model="LT", seed=6, max_samples=200_000)
        assert plus.extras["theta"] <= plain.extras["theta"]

    def test_deterministic(self, medium_wc_graph):
        a = tim_plus(medium_wc_graph, 4, epsilon=0.25, model="LT", seed=7, max_samples=50_000)
        b = tim_plus(medium_wc_graph, 4, epsilon=0.25, model="LT", seed=7, max_samples=50_000)
        assert a.seeds == b.seeds


class TestOvershootStory:
    def test_tim_overshoots_dssa_badly(self, medium_wc_graph):
        """Shortcoming (1) of prior art: theta = lambda/KPT overshoots
        because KPT underestimates OPT_k with no guarantee how much."""
        t = tim(medium_wc_graph, 8, epsilon=0.2, model="LT", seed=8, max_samples=500_000)
        d = dssa(medium_wc_graph, 8, epsilon=0.2, model="LT", seed=8)
        assert t.samples > 2 * d.samples

    def test_tim_plus_between_tim_and_dssa(self, medium_wc_graph):
        t = tim(medium_wc_graph, 8, epsilon=0.2, model="LT", seed=9, max_samples=500_000)
        tp = tim_plus(medium_wc_graph, 8, epsilon=0.2, model="LT", seed=9, max_samples=500_000)
        assert tp.samples <= t.samples
