"""Tests for degree heuristics."""

import pytest

from repro.baselines.degree import degree_discount, degree_heuristic
from repro.exceptions import ParameterError
from repro.graph.builder import from_edges
from repro.graph.generators import star_graph
from repro.graph.weights import assign_constant_weights


class TestDegreeHeuristic:
    def test_picks_highest_out_degree(self):
        g = from_edges([(0, 1), (0, 2), (0, 3), (1, 2), (4, 0)], n=5)
        result = degree_heuristic(g, 2)
        assert result.seeds[0] == 0  # out-degree 3
        assert result.seeds[1] == 1  # out-degree 1 (ties broken by index)

    def test_k_seeds(self, medium_wc_graph):
        result = degree_heuristic(medium_wc_graph, 10)
        assert len(result.seeds) == 10
        assert len(set(result.seeds)) == 10

    def test_validation(self, tiny_graph):
        with pytest.raises(ParameterError):
            degree_heuristic(tiny_graph, 0)


class TestDegreeDiscount:
    def test_first_pick_is_max_degree(self):
        g = assign_constant_weights(star_graph(8), 0.1)
        result = degree_discount(g, 1)
        assert result.seeds == [0]

    def test_discount_spreads_selection(self):
        # Two hubs sharing neighbours: after picking hub A, its neighbours
        # get discounted, so hub B (disjoint audience) wins next.
        edges = []
        for leaf in range(2, 8):
            edges.append((0, leaf))  # hub 0 -> leaves 2..7
        for leaf in range(8, 13):
            edges.append((1, leaf))  # hub 1 -> leaves 8..12
        edges.append((0, 1))
        g = assign_constant_weights(from_edges(edges, n=13), 0.2)
        result = degree_discount(g, 2)
        assert set(result.seeds) == {0, 1}

    def test_probability_default_is_mean_weight(self, medium_wc_graph):
        result = degree_discount(medium_wc_graph, 3)
        assert result.extras["probability"] == pytest.approx(
            float(medium_wc_graph.out_weights.mean())
        )

    def test_explicit_probability(self, grid_graph):
        result = degree_discount(grid_graph, 3, probability=0.05)
        assert result.extras["probability"] == 0.05
        assert len(result.seeds) == 3
