"""Algorithm-registry tests: metadata, resolution, table rendering."""

import pytest

from repro.engine.registry import (
    AlgorithmSpec,
    get_algorithm,
    list_algorithms,
    register_algorithm,
    registry_table,
)
from repro.exceptions import ParameterError


class TestResolution:
    def test_all_paper_algorithms_registered(self):
        names = set(list_algorithms())
        assert {
            "D-SSA", "SSA", "IMM", "TIM", "TIM+",
            "CELF", "CELF++", "IRIE", "degree", "degree-discount",
        } <= names

    def test_case_insensitive_and_aliases(self):
        assert get_algorithm("d-ssa").name == "D-SSA"
        assert get_algorithm("dssa").name == "D-SSA"
        assert get_algorithm("TIM+").name == "TIM+"
        assert get_algorithm("tim_plus").name == "TIM+"
        assert get_algorithm(" SSA ").name == "SSA"

    def test_unknown_name_rejected(self):
        with pytest.raises(ParameterError):
            get_algorithm("SimPath")


class TestMetadata:
    def test_ris_algorithms_have_engine_bodies(self):
        for name in ("D-SSA", "SSA", "IMM", "TIM", "TIM+"):
            spec = get_algorithm(name)
            assert spec.needs_rr_sets and spec.supports_backend
            assert spec.engine_func is not None

    def test_ris_algorithms_select_sampling_kernels(self):
        for name in ("D-SSA", "SSA", "IMM", "TIM", "TIM+"):
            assert get_algorithm(name).supports_kernel, name

    def test_heuristics_are_one_shot_only(self):
        for name in ("CELF", "CELF++", "degree", "degree-discount", "IRIE"):
            spec = get_algorithm(name)
            assert not spec.needs_rr_sets
            assert spec.engine_func is None
            assert not spec.supports_kernel

    def test_ssa_uses_split_stream(self):
        assert get_algorithm("SSA").stream == "split"
        assert get_algorithm("D-SSA").stream == "direct"

    def test_horizon_capability(self):
        assert get_algorithm("D-SSA").supports_horizon
        assert not get_algorithm("IMM").supports_horizon

    def test_celf_variants_share_one_function_with_bound_flag(self):
        celf = get_algorithm("CELF")
        celfpp = get_algorithm("CELF++")
        assert celf.func is celfpp.func
        assert dict(celf.extra_kwargs) == {"plus_plus": False}
        assert dict(celfpp.extra_kwargs) == {"plus_plus": True}


class TestRegistration:
    def test_duplicate_name_rejected(self):
        with pytest.raises(ParameterError):
            register_algorithm("D-SSA", description="dup")(lambda g, k: None)

    def test_alias_collision_rejected(self):
        with pytest.raises(ParameterError):
            register_algorithm(
                "brand-new", description="x", aliases=("dssa",)
            )(lambda g, k: None)

    def test_unknown_accepts_key_rejected_at_registration(self):
        with pytest.raises(ParameterError):
            register_algorithm(
                "brand-new-2", description="x", accepts=("not_a_knob",)
            )(lambda g, k: None)

    def test_option_filtering(self):
        spec = get_algorithm("degree")
        assert spec.one_shot_kwargs({"epsilon": 0.1, "seed": 3}) == {}
        spec = get_algorithm("CELF")
        kwargs = spec.one_shot_kwargs({"model": "IC", "simulations": 9, "epsilon": 0.1})
        assert kwargs == {"model": "IC", "simulations": 9, "plus_plus": False}


class TestTable:
    def test_registry_table_lists_every_algorithm(self):
        table = registry_table()
        for name in list_algorithms():
            assert name in table
        assert "engine reuse" in table
