"""Engine/one-shot equivalence: the PR's load-bearing property.

For every registered RIS algorithm, a warm engine query must return
byte-identical seeds/samples to the one-shot function at the same seed —
across serial, thread, and process execution backends — and a repeat
query with the same parameters must be served from the cached RR pool
without growing it.

Every test runs under both sampling kernels (module-level ``kernel``
fixture): byte-identity guarantees hold *within* a kernel, whichever
kernel it is.
"""

import pytest

from repro.baselines.imm import imm
from repro.baselines.tim import tim, tim_plus
from repro.core.dssa import dssa
from repro.core.ssa import ssa
from repro.engine import InfluenceEngine

ONE_SHOTS = {"D-SSA": dssa, "SSA": ssa, "IMM": imm, "TIM": tim, "TIM+": tim_plus}
EPS = 0.25
SEED = 2016


@pytest.fixture(params=["scalar", "vectorized"])
def kernel(request):
    return request.param


def _identical(a, b):
    assert a.seeds == b.seeds
    assert a.samples == b.samples
    assert a.optimization_samples == b.optimization_samples
    assert a.verification_samples == b.verification_samples
    assert a.iterations == b.iterations
    assert a.influence == b.influence
    assert a.stopped_by == b.stopped_by


class TestByteIdentity:
    @pytest.mark.parametrize("algorithm", sorted(ONE_SHOTS))
    @pytest.mark.parametrize("backend,workers", [(None, None), ("thread", 3)])
    def test_engine_equals_one_shot(
        self, small_wc_graph, algorithm, backend, workers, kernel
    ):
        cold = ONE_SHOTS[algorithm](
            small_wc_graph, 4, epsilon=EPS, model="LT", seed=SEED,
            backend=backend, workers=workers, kernel=kernel,
        )
        with InfluenceEngine(
            small_wc_graph, model="LT", seed=SEED, backend=backend, workers=workers,
            kernel=kernel,
        ) as engine:
            warm = engine.maximize(4, epsilon=EPS, algorithm=algorithm)
        _identical(warm, cold)

    @pytest.mark.parametrize("algorithm", ["D-SSA", "SSA"])
    def test_engine_equals_one_shot_process_backend(
        self, small_wc_graph, algorithm, kernel
    ):
        """The expensive backend: one representative per stream shape."""
        cold = ONE_SHOTS[algorithm](
            small_wc_graph, 3, epsilon=EPS, model="LT", seed=SEED,
            backend="process", workers=2, kernel=kernel,
        )
        with InfluenceEngine(
            small_wc_graph, model="LT", seed=SEED, backend="process", workers=2,
            kernel=kernel,
        ) as engine:
            warm = engine.maximize(3, epsilon=EPS, algorithm=algorithm)
        _identical(warm, cold)

    def test_workers_are_byte_invisible_across_sessions(self, small_wc_graph, kernel):
        """Seed-pure streams: sessions at different worker counts answer
        identically (workers used to be stream identity; no longer)."""
        cold = dssa(small_wc_graph, 4, epsilon=EPS, model="LT", seed=SEED, kernel=kernel)
        for backend, workers in ((None, None), ("serial", 2), ("thread", 4)):
            with InfluenceEngine(
                small_wc_graph, model="LT", seed=SEED, backend=backend,
                workers=workers, kernel=kernel,
            ) as engine:
                _identical(engine.maximize(4, epsilon=EPS), cold)

    def test_per_query_workers_and_session_resize(self, small_wc_graph, kernel):
        """workers= per query and engine.resize() mid-session: pure
        throughput, byte-identical answers throughout."""
        cold4 = dssa(small_wc_graph, 4, epsilon=EPS, model="LT", seed=SEED, kernel=kernel)
        cold6 = dssa(small_wc_graph, 6, epsilon=0.2, model="LT", seed=SEED, kernel=kernel)
        with InfluenceEngine(
            small_wc_graph, model="LT", seed=SEED, backend="thread", workers=2,
            kernel=kernel,
        ) as engine:
            a = engine.maximize(4, epsilon=EPS, workers=3)
            assert engine.resize(1) >= 1
            b = engine.maximize(6, epsilon=0.2)
        _identical(a, cold4)
        _identical(b, cold6)

    def test_equivalence_survives_earlier_queries(self, small_wc_graph, kernel):
        """Byte-identity holds for *warm* queries, not just the first."""
        cold = dssa(small_wc_graph, 7, epsilon=EPS, model="LT", seed=SEED, kernel=kernel)
        with InfluenceEngine(small_wc_graph, model="LT", seed=SEED, kernel=kernel) as engine:
            engine.maximize(2, epsilon=EPS)
            engine.maximize(4, epsilon=0.3)
            warm = engine.maximize(7, epsilon=EPS)
        _identical(warm, cold)


class TestCacheReuse:
    @pytest.mark.parametrize("algorithm", sorted(ONE_SHOTS))
    def test_repeat_query_reuses_pool(self, small_wc_graph, algorithm, kernel):
        with InfluenceEngine(
            small_wc_graph, model="LT", seed=SEED, kernel=kernel
        ) as engine:
            first = engine.maximize(4, epsilon=EPS, algorithm=algorithm)
            sampled_after_first = engine.stats.rr_sampled
            pool_after_first = dict(engine.pool_sizes())
            second = engine.maximize(4, epsilon=EPS, algorithm=algorithm)
            pool_after_second = dict(engine.pool_sizes())
        # The repeat query regrew nothing: same pools, zero new samples.
        assert engine.stats.rr_sampled == sampled_after_first
        assert pool_after_second == pool_after_first
        assert engine.stats.cache_hits >= first.optimization_samples
        _identical(second, first)

    def test_ris_algorithms_share_the_direct_pool(self, small_wc_graph):
        with InfluenceEngine(small_wc_graph, model="LT", seed=SEED) as engine:
            engine.maximize(4, epsilon=EPS, algorithm="D-SSA")
            assert len(engine.pool_sizes()) == 1
            engine.maximize(4, epsilon=EPS, algorithm="IMM")
            engine.maximize(4, epsilon=EPS, algorithm="TIM")
            # Still one direct-stream pool; SSA adds its split-stream one.
            assert len(engine.pool_sizes()) == 1
            engine.maximize(4, epsilon=EPS, algorithm="SSA")
            assert len(engine.pool_sizes()) == 2

    def test_sweep_samples_strictly_less_than_independent_calls(
        self, small_wc_graph, kernel
    ):
        """The acceptance criterion, as a tier-1 test."""
        ks = [2, 3, 4, 6, 8]
        cold_total = sum(
            dssa(small_wc_graph, k, epsilon=EPS, model="LT", seed=SEED, kernel=kernel).samples
            for k in ks
        )
        with InfluenceEngine(small_wc_graph, model="LT", seed=SEED, kernel=kernel) as engine:
            results = engine.sweep(ks, epsilon=EPS)
        assert [r.k for r in results] == ks
        assert engine.stats.rr_sampled < cold_total
        assert engine.stats.hit_rate > 0.0
        # ... and each sweep point is still byte-identical to its one-shot.
        for k, warm in zip(ks, results):
            _identical(
                warm,
                dssa(small_wc_graph, k, epsilon=EPS, model="LT", seed=SEED, kernel=kernel),
            )
