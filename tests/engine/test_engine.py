"""InfluenceEngine session behaviour: lifecycle, estimate, fallbacks."""

import numpy as np
import pytest

from repro.engine import InfluenceEngine, SamplingContext
from repro.exceptions import ParameterError, SamplingError

from tests.oracles import exact_ic_spread


class TestSessionLifecycle:
    def test_context_manager_closes_backends(self, small_wc_graph):
        with InfluenceEngine(small_wc_graph, model="LT", seed=1, backend="thread", workers=2) as engine:
            engine.maximize(3, epsilon=0.3)
            contexts = [e.ctx for e in engine.pool_manager._entries.values()]
            assert contexts and all(not ctx.closed for ctx in contexts)
        assert engine.closed
        assert all(ctx.closed for ctx in contexts)

    def test_closed_session_rejects_queries(self, small_wc_graph):
        engine = InfluenceEngine(small_wc_graph, model="LT", seed=1)
        engine.close()
        engine.close()  # idempotent
        with pytest.raises(ParameterError):
            engine.maximize(3)

    def test_generator_seed_rejected(self, small_wc_graph):
        with pytest.raises(ParameterError):
            InfluenceEngine(small_wc_graph, seed=np.random.default_rng(0))

    def test_seedless_session_draws_replayable_entropy(self, small_wc_graph):
        with InfluenceEngine(small_wc_graph, model="LT") as engine:
            assert isinstance(engine.seed, int)
            a = engine.maximize(3, epsilon=0.3)
            b = engine.maximize(3, epsilon=0.3)
        assert a.seeds == b.seeds

    def test_backend_released_even_when_query_raises(self, small_wc_graph):
        with pytest.raises(ParameterError):
            with InfluenceEngine(small_wc_graph, model="LT", seed=1, backend="thread", workers=2) as engine:
                engine.maximize(0)  # invalid k raises inside the body
        assert engine.closed


class TestQueries:
    def test_estimate_matches_oracle(self, tiny_graph):
        with InfluenceEngine(tiny_graph, model="IC", seed=3) as engine:
            estimate = engine.estimate([0], samples=20_000)
        assert estimate == pytest.approx(exact_ic_spread(tiny_graph, [0]), rel=0.06)

    def test_estimate_rides_the_query_pool(self, small_wc_graph):
        with InfluenceEngine(small_wc_graph, model="LT", seed=4) as engine:
            result = engine.maximize(4, epsilon=0.25)
            sampled = engine.stats.rr_sampled
            engine.estimate(result.seeds, samples=result.optimization_samples)
            assert engine.stats.rr_sampled == sampled  # pure cache hit

    def test_estimate_validates_samples(self, small_wc_graph):
        with InfluenceEngine(small_wc_graph, model="LT", seed=4) as engine:
            with pytest.raises(ParameterError):
                engine.estimate([0], samples=0)

    def test_horizon_rejected_for_unsupporting_algorithm(self, small_wc_graph):
        with InfluenceEngine(small_wc_graph, model="LT", seed=5) as engine:
            with pytest.raises(ParameterError):
                engine.maximize(3, algorithm="IMM", horizon=2)

    def test_horizon_queries_get_their_own_pool(self, small_wc_graph):
        with InfluenceEngine(small_wc_graph, model="LT", seed=5) as engine:
            engine.maximize(3, epsilon=0.3)
            engine.maximize(3, epsilon=0.3, horizon=2)
            assert len(engine.pool_sizes()) == 2

    def test_non_ris_algorithm_falls_back_to_one_shot(self, small_wc_graph):
        with InfluenceEngine(small_wc_graph, model="LT", seed=6) as engine:
            result = engine.maximize(3, algorithm="degree")
        assert result.algorithm == "degree"
        assert len(result.seeds) == 3
        assert engine.stats.rr_requested == 0

    def test_sweep_rejects_empty_ks(self, small_wc_graph):
        with InfluenceEngine(small_wc_graph, model="LT", seed=7) as engine:
            with pytest.raises(ParameterError):
                engine.sweep([])

    def test_model_override_opens_second_pool(self, small_wc_graph):
        with InfluenceEngine(small_wc_graph, model="LT", seed=8) as engine:
            engine.maximize(3, epsilon=0.3)
            engine.maximize(3, epsilon=0.3, model="IC")
            assert len(engine.pool_sizes()) == 2


class TestSamplingContext:
    def test_require_is_monotone_and_counts(self, small_wc_graph):
        with SamplingContext(small_wc_graph, "LT", seed=9) as ctx:
            pool = ctx.require(10)
            assert len(pool) == 10 and ctx.sampled == 10
            ctx.require(4)  # no shrink, no resample
            assert len(ctx.pool) == 10 and ctx.sampled == 10
            ctx.require(25)
            assert len(ctx.pool) == 25 and ctx.sampled == 25

    def test_closed_context_rejects_sampling(self, small_wc_graph):
        ctx = SamplingContext(small_wc_graph, "LT", seed=9)
        ctx.close()
        with pytest.raises(SamplingError):
            ctx.require(1)

    def test_verifier_requires_split_stream(self, small_wc_graph):
        with SamplingContext(small_wc_graph, "LT", seed=9) as ctx:
            with pytest.raises(SamplingError):
                ctx.fresh_verifier()

    def test_split_verifier_rederivation_is_stable(self, small_wc_graph):
        """Int-seeded contexts re-derive the same verification stream."""
        with SamplingContext(small_wc_graph, "LT", seed=11, split_verify=True) as ctx:
            a = ctx.fresh_verifier().sample_batch(5)
            b = ctx.fresh_verifier().sample_batch(5)
        for x, y in zip(a, b):
            assert np.array_equal(x, y)
