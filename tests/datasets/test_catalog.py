"""Tests for the dataset catalog (Table 2 bookkeeping)."""

import pytest

from repro.datasets.catalog import DATASETS, get_spec, list_datasets
from repro.exceptions import DatasetError


class TestCatalogContents:
    def test_all_eight_datasets_present(self):
        assert list_datasets() == [
            "nethept",
            "netphy",
            "enron",
            "epinions",
            "dblp",
            "orkut",
            "twitter",
            "friendster",
        ]

    def test_paper_statistics_recorded(self):
        spec = get_spec("friendster")
        assert spec.paper_nodes == 65_600_000
        assert spec.paper_edges == 3_600_000_000
        assert spec.paper_avg_degree == 54.8

    def test_undirected_flags(self):
        assert get_spec("orkut").undirected
        assert get_spec("friendster").undirected
        assert not get_spec("twitter").undirected

    def test_scale_factors_substantial(self):
        # Stand-ins must be drastically smaller than billion-edge originals.
        assert get_spec("twitter").scale_factor > 1000
        assert get_spec("nethept").scale_factor > 5

    def test_case_insensitive_lookup(self):
        assert get_spec("NetHEPT").name == "nethept"
        assert get_spec(" Enron ").name == "enron"

    def test_unknown_rejected(self):
        with pytest.raises(DatasetError):
            get_spec("facebook")

    def test_specs_frozen(self):
        spec = get_spec("dblp")
        with pytest.raises(AttributeError):
            spec.paper_nodes = 1
