"""Tests for the synthetic tweet-topic groups (Table 4 stand-in)."""

import numpy as np
import pytest

from repro.datasets.synthetic import load_dataset
from repro.datasets.twitter_topics import TOPICS, build_topic_group
from repro.exceptions import DatasetError


@pytest.fixture(scope="module")
def twitter_graph():
    return load_dataset("twitter", scale=0.5)


class TestTopicSpecs:
    def test_paper_user_counts(self):
        assert TOPICS[1].paper_users == 997_034
        assert TOPICS[2].paper_users == 507_465

    def test_keywords_match_table4(self):
        assert "obama" in TOPICS[1].keywords
        assert "oprah" in TOPICS[2].keywords
        assert len(TOPICS[1].keywords) == 5
        assert len(TOPICS[2].keywords) == 5

    def test_fractions(self):
        assert TOPICS[1].user_fraction == pytest.approx(997_034 / 41_700_000)


class TestGroupConstruction:
    def test_group_size_scales_with_fraction(self, twitter_graph):
        g1 = build_topic_group(twitter_graph, 1, seed=1)
        g2 = build_topic_group(twitter_graph, 2, seed=1)
        expected_1 = TOPICS[1].user_fraction * twitter_graph.n
        assert g1.size == pytest.approx(expected_1, abs=2)
        # Topic 1 has ~2x the users of topic 2, mirroring Table 4.
        assert g1.size > g2.size

    def test_weights_heavy_tailed(self, twitter_graph):
        group = build_topic_group(twitter_graph, 1, seed=2)
        weights = group.benefits[group.benefits > 0]
        assert weights.min() >= 1.0
        assert weights.max() > weights.min()  # Zipf gives spread

    def test_deterministic_default_seed(self, twitter_graph):
        a = build_topic_group(twitter_graph, 1)
        b = build_topic_group(twitter_graph, 1)
        assert np.array_equal(a.benefits, b.benefits)

    def test_keywords_attached(self, twitter_graph):
        group = build_topic_group(twitter_graph, 2, seed=3)
        assert group.keywords == TOPICS[2].keywords

    def test_unknown_topic(self, twitter_graph):
        with pytest.raises(DatasetError):
            build_topic_group(twitter_graph, 99)

    def test_bad_activity_bias(self, twitter_graph):
        with pytest.raises(DatasetError):
            build_topic_group(twitter_graph, 1, activity_bias=1.5)

    def test_activity_bias_prefers_active_users(self, twitter_graph):
        degrees = np.diff(twitter_graph.out_indptr)
        biased = build_topic_group(twitter_graph, 1, seed=4, activity_bias=1.0)
        uniform = build_topic_group(twitter_graph, 1, seed=4, activity_bias=0.0)
        mean_deg_biased = degrees[biased.members()].mean()
        mean_deg_uniform = degrees[uniform.members()].mean()
        assert mean_deg_biased > mean_deg_uniform
