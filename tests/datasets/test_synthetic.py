"""Tests for synthetic dataset stand-ins."""

import numpy as np
import pytest

from repro.datasets.catalog import get_spec
from repro.datasets.synthetic import load_dataset
from repro.exceptions import DatasetError
from repro.graph.statistics import compute_stats, powerlaw_tail_ratio


class TestMaterialization:
    def test_default_size_matches_spec(self):
        g = load_dataset("nethept")
        assert g.n == get_spec("nethept").standin_nodes

    def test_scale_parameter(self):
        g = load_dataset("nethept", scale=0.5)
        assert g.n == get_spec("nethept").standin_nodes // 2

    def test_deterministic(self):
        a = load_dataset("enron", scale=0.3)
        b = load_dataset("enron", scale=0.3)
        assert a == b

    def test_datasets_distinct(self):
        a = load_dataset("enron", scale=0.3)
        b = load_dataset("netphy", scale=0.3)
        assert a != b

    def test_seed_override_changes_instance(self):
        a = load_dataset("enron", scale=0.3)
        b = load_dataset("enron", scale=0.3, seed=999)
        assert a != b

    def test_invalid_scale(self):
        with pytest.raises(DatasetError):
            load_dataset("enron", scale=0.0)


class TestShapePreservation:
    @pytest.mark.parametrize("name", ["nethept", "epinions", "dblp"])
    def test_average_degree_close_to_paper(self, name):
        g = load_dataset(name, scale=0.5)
        spec = get_spec(name)
        avg = g.m / g.n
        assert avg == pytest.approx(spec.paper_avg_degree, rel=0.35)

    def test_heavy_tail(self):
        g = load_dataset("twitter", scale=0.5)
        assert powerlaw_tail_ratio(g) > 0.05

    def test_undirected_standins_symmetric(self):
        g = load_dataset("orkut", scale=0.5)
        # Every edge must exist in both directions (Section 7.1 Remark).
        for u, v in g.edges().tolist()[:500]:
            assert g.has_edge(v, u)

    def test_reciprocity_separates_directed_from_bidirected(self):
        from repro.graph.metrics import reciprocity

        assert reciprocity(load_dataset("friendster", scale=0.3)) == 1.0
        assert reciprocity(load_dataset("twitter", scale=0.3)) < 0.5


class TestWeightSchemes:
    def test_wc_default(self):
        g = load_dataset("nethept", scale=0.3)
        stats = compute_stats(g)
        assert stats.lt_admissible

    def test_constant(self):
        g = load_dataset("nethept", scale=0.3, weights="const:0.05")
        assert np.allclose(g.out_weights, 0.05)

    def test_trivalency(self):
        g = load_dataset("nethept", scale=0.3, weights="trivalency")
        assert set(np.round(np.unique(g.out_weights), 6)) <= {0.1, 0.01, 0.001}

    def test_bad_scheme(self):
        with pytest.raises(DatasetError):
            load_dataset("nethept", weights="quadvalency")

    def test_bad_constant(self):
        with pytest.raises(DatasetError):
            load_dataset("nethept", weights="const:abc")
