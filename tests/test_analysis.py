"""Tests for seed-set and cascade analysis utilities."""

import pytest

from repro.analysis.cascades import cascade_statistics
from repro.analysis.seeds import (
    jaccard_similarity,
    rank_agreement,
    seed_overlap_matrix,
)
from repro.exceptions import ParameterError


class TestJaccard:
    def test_basic(self):
        assert jaccard_similarity([1, 2, 3], [2, 3, 4]) == pytest.approx(0.5)

    def test_identical(self):
        assert jaccard_similarity([1, 2], [2, 1]) == 1.0

    def test_disjoint(self):
        assert jaccard_similarity([1], [2]) == 0.0

    def test_both_empty(self):
        assert jaccard_similarity([], []) == 1.0

    def test_duplicates_collapse(self):
        assert jaccard_similarity([1, 1, 2], [1, 2, 2]) == 1.0


class TestOverlapMatrix:
    def test_pairs_once_sorted(self):
        matrix = seed_overlap_matrix({"b": [1, 2], "a": [1, 2], "c": [9]})
        assert set(matrix) == {("a", "b"), ("a", "c"), ("b", "c")}
        assert matrix[("a", "b")] == 1.0
        assert matrix[("a", "c")] == 0.0

    def test_empty_input(self):
        assert seed_overlap_matrix({}) == {}


class TestRankAgreement:
    def test_identical_orderings(self):
        assert rank_agreement([1, 2, 3], [1, 2, 3]) == 1.0

    def test_same_set_different_order_below_one(self):
        value = rank_agreement([1, 2, 3], [3, 2, 1])
        assert 0.0 < value < 1.0

    def test_prefix_weighting(self):
        # Disagreement only at the tail scores higher than at the head.
        tail_diff = rank_agreement([1, 2, 3, 4], [1, 2, 3, 9])
        head_diff = rank_agreement([1, 2, 3, 4], [9, 2, 3, 4])
        assert tail_diff > head_diff

    def test_top_parameter(self):
        assert rank_agreement([1, 2, 9], [1, 2, 8], top=2) == 1.0

    def test_validation(self):
        with pytest.raises(ParameterError):
            rank_agreement([1], [1], top=0)
        with pytest.raises(ParameterError):
            rank_agreement([1], [1, 2], top=2)


class TestCascadeStats:
    def test_deterministic_star(self, star_wc):
        stats = cascade_statistics(star_wc, [0], "LT", simulations=20, seed=1)
        assert stats.mean_size == 10.0
        assert stats.std_size == 0.0
        assert stats.mean_rounds == 1.0
        assert stats.first_wave_share == 1.0
        assert stats.size_quantiles == (10.0, 10.0, 10.0)

    def test_leaf_seed_no_spread(self, star_wc):
        stats = cascade_statistics(star_wc, [3], "LT", simulations=10, seed=2)
        assert stats.mean_size == 1.0
        assert stats.mean_rounds == 0.0
        assert stats.first_wave_share == 0.0

    def test_ic_statistics_consistent_with_spread(self, grid_graph):
        from repro.diffusion.spread import estimate_spread

        stats = cascade_statistics(grid_graph, [5], "IC", simulations=600, seed=3)
        reference = estimate_spread(grid_graph, [5], "IC", simulations=600, seed=4)
        assert stats.mean_size == pytest.approx(reference.mean, rel=0.15)

    def test_quantiles_ordered(self, small_wc_graph):
        stats = cascade_statistics(small_wc_graph, [0, 1], "IC", simulations=100, seed=5)
        q10, q50, q90 = stats.size_quantiles
        assert q10 <= q50 <= q90

    def test_validation(self, star_wc):
        with pytest.raises(ParameterError):
            cascade_statistics(star_wc, [0], "LT", simulations=0)
