"""Tests for figure/table series builders."""

import pytest

from repro.datasets.synthetic import load_dataset
from repro.experiments.figures import (
    influence_vs_k,
    memory_vs_k,
    runtime_vs_k,
    table3_rows,
    tvm_runtime_vs_k,
)


@pytest.fixture(scope="module")
def small_graph():
    return load_dataset("nethept", scale=0.15)


class TestInfluenceVsK:
    def test_produces_record_per_algo_per_k(self, small_graph):
        records = influence_vs_k(
            small_graph,
            [2, 5],
            algorithms=("D-SSA", "SSA"),
            epsilon=0.25,
            quality_simulations=50,
            dataset="nethept",
        )
        assert len(records) == 4
        assert all(r.quality is not None for r in records)

    def test_quality_grows_with_k(self, small_graph):
        records = influence_vs_k(
            small_graph,
            [1, 10],
            algorithms=("D-SSA",),
            epsilon=0.25,
            quality_simulations=150,
        )
        by_k = {r.k: r.quality for r in records}
        assert by_k[10] > by_k[1]


class TestRuntimeAndMemory:
    def test_runtime_records(self, small_graph):
        records = runtime_vs_k(
            small_graph, [3], algorithms=("D-SSA", "IMM"), epsilon=0.25
        )
        assert {r.algorithm for r in records} == {"D-SSA", "IMM"}
        assert all(r.seconds > 0 for r in records)

    def test_memory_is_runtime_alias_with_memory_field(self, small_graph):
        records = memory_vs_k(
            small_graph, [3], algorithms=("D-SSA",), epsilon=0.25
        )
        assert all(r.memory_bytes > 0 for r in records)


class TestTable3:
    def test_rows_cover_grid(self):
        records = table3_rows(
            ["enron"],
            k_values=(1, 5),
            algorithms=("D-SSA", "IMM"),
            scale=0.1,
            epsilon=0.25,
            max_samples=100_000,
        )
        assert len(records) == 4
        ks = {r.k for r in records}
        assert ks == {1, 5}

    def test_k_clamped_to_graph(self):
        # nominal k = 1000 on a tiny stand-in must not crash.
        records = table3_rows(
            ["enron"],
            k_values=(1000,),
            algorithms=("D-SSA",),
            scale=0.05,
            epsilon=0.25,
            max_samples=50_000,
        )
        assert records[0].k == 1000  # reported nominally
        assert len(records[0].seeds) < 1000  # actually clamped


class TestTvmRuntime:
    def test_three_algorithms_per_k(self):
        graph = load_dataset("twitter", scale=0.1)
        records = tvm_runtime_vs_k(
            graph, 1, [2], epsilon=0.25, max_samples=100_000
        )
        assert {r.algorithm for r in records} == {"TVM-D-SSA", "TVM-SSA", "KB-TIM"}
        assert all(r.seconds > 0 for r in records)
