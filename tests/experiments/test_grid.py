"""Tests for declarative experiment grids."""

import pytest

from repro.exceptions import ParameterError
from repro.experiments.grid import ExperimentGrid, run_grid


def small_grid(**overrides):
    params = dict(
        datasets=("nethept",),
        algorithms=("D-SSA", "degree"),
        k_values=(2, 4),
        models=("LT",),
        epsilon=0.25,
        scale=0.1,
        seed=5,
        max_samples=50_000,
    )
    params.update(overrides)
    return ExperimentGrid(**params)


class TestGridDefinition:
    def test_cells_cartesian_product(self):
        grid = small_grid()
        assert grid.size() == 4
        assert ("nethept", "D-SSA", 2, "LT") in grid.cells()

    def test_cell_seed_deterministic_and_distinct(self):
        grid = small_grid()
        a = grid.cell_seed("nethept", "D-SSA", 2, "LT")
        b = grid.cell_seed("nethept", "D-SSA", 2, "LT")
        c = grid.cell_seed("nethept", "D-SSA", 4, "LT")
        assert a == b
        assert a != c

    def test_validation(self):
        with pytest.raises(ParameterError):
            small_grid(algorithms=("SimPath",))
        with pytest.raises(ParameterError):
            small_grid(k_values=())
        with pytest.raises(ParameterError):
            small_grid(models=("SIR",))


class TestGridExecution:
    def test_runs_every_cell(self):
        records = run_grid(small_grid())
        assert len(records) == 4
        assert {(r.algorithm, r.k) for r in records} == {
            ("D-SSA", 2),
            ("D-SSA", 4),
            ("degree", 2),
            ("degree", 4),
        }

    def test_quality_evaluation_optional(self):
        records = run_grid(small_grid(quality_simulations=20, k_values=(2,)))
        assert all(r.quality is not None for r in records)

    def test_progress_callback(self):
        seen = []
        run_grid(small_grid(k_values=(2,)), progress=seen.append)
        assert len(seen) == 2

    def test_resume_skips_existing(self, tmp_path):
        path = tmp_path / "sweep.json"
        first = run_grid(small_grid(k_values=(2,)), resume_path=path)
        assert len(first) == 2

        calls = []
        resumed = run_grid(
            small_grid(k_values=(2, 4)), resume_path=path, progress=calls.append
        )
        assert len(resumed) == 4
        assert len(calls) == 2  # only the new k=4 cells executed

    def test_resume_reproduces_fresh_run(self, tmp_path):
        path = tmp_path / "sweep.json"
        run_grid(small_grid(k_values=(2,), algorithms=("D-SSA",)), resume_path=path)
        resumed = run_grid(
            small_grid(k_values=(2, 4), algorithms=("D-SSA",)), resume_path=path
        )
        fresh = run_grid(small_grid(k_values=(2, 4), algorithms=("D-SSA",)))
        by_k_resumed = {r.k: r.seeds for r in resumed}
        by_k_fresh = {r.k: r.seeds for r in fresh}
        assert by_k_resumed == by_k_fresh  # order-independent determinism
