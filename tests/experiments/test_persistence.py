"""Tests for experiment record persistence."""

import json

import pytest

from repro.experiments.persistence import (
    PersistenceError,
    load_records,
    merge_record_files,
    save_records,
)
from repro.experiments.runner import RunRecord


def record(algo="D-SSA", k=5, quality=None):
    return RunRecord(
        algorithm=algo,
        dataset="enron",
        model="LT",
        k=k,
        epsilon=0.1,
        seconds=0.5,
        rr_sets=1234,
        memory_bytes=5678,
        influence_estimate=42.5,
        seeds=[1, 2, 3],
        iterations=2,
        stopped_by="conditions",
        quality=quality,
    )


class TestRoundtrip:
    def test_save_and_load(self, tmp_path):
        originals = [record("D-SSA"), record("IMM", k=10, quality=41.0)]
        path = save_records(originals, tmp_path / "runs.json")
        loaded = load_records(path)
        assert len(loaded) == 2
        assert loaded[0].as_dict() == originals[0].as_dict()
        assert loaded[1].quality == 41.0

    def test_creates_parent_dirs(self, tmp_path):
        path = save_records([record()], tmp_path / "deep" / "dir" / "runs.json")
        assert path.exists()

    def test_empty_list(self, tmp_path):
        path = save_records([], tmp_path / "empty.json")
        assert load_records(path) == []

    def test_unknown_keys_ignored(self, tmp_path):
        path = save_records([record()], tmp_path / "runs.json")
        payload = json.loads(path.read_text())
        payload["records"][0]["future_field"] = "whatever"
        path.write_text(json.dumps(payload))
        loaded = load_records(path)
        assert loaded[0].algorithm == "D-SSA"


class TestProvenanceRoundtrip:
    """``seed``/``backend``/``workers`` survive persistence byte-exactly
    and default cleanly when reloading pre-provenance record files."""

    def test_provenance_fields_roundtrip_byte_exact(self, tmp_path):
        original = record("D-SSA")
        original.seed = 2016
        original.backend = "process"
        original.workers = 4
        original.kernel = "vectorized"
        path = save_records([original], tmp_path / "runs.json")
        loaded = load_records(path)[0]
        assert loaded.seed == 2016
        assert loaded.backend == "process"
        assert loaded.workers == 4
        assert loaded.kernel == "vectorized"
        assert loaded.as_dict() == original.as_dict()
        # byte-exact: a second save of the loaded records equals the file
        repath = save_records([loaded], tmp_path / "runs2.json")
        assert repath.read_bytes() == path.read_bytes()

    def test_legacy_records_without_provenance_load_with_defaults(self, tmp_path):
        path = save_records([record("SSA")], tmp_path / "legacy.json")
        payload = json.loads(path.read_text())
        for field in ("seed", "backend", "workers", "kernel"):
            del payload["records"][0][field]
        path.write_text(json.dumps(payload))
        loaded = load_records(path)[0]
        assert loaded.seed is None
        assert loaded.backend is None
        assert loaded.workers is None
        assert loaded.kernel is None
        assert loaded.algorithm == "SSA"

    def test_null_provenance_distinct_from_absent(self, tmp_path):
        original = record()
        assert original.seed is None  # explicit null round-trips too
        path = save_records([original], tmp_path / "runs.json")
        raw = json.loads(path.read_text())["records"][0]
        assert raw["seed"] is None and "seed" in raw
        assert load_records(path)[0].seed is None


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(PersistenceError):
            load_records(tmp_path / "nope.json")

    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(PersistenceError):
            load_records(path)

    def test_wrong_shape(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('["just", "a", "list"]')
        with pytest.raises(PersistenceError):
            load_records(path)

    def test_wrong_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"format_version": 99, "records": []}))
        with pytest.raises(PersistenceError):
            load_records(path)

    def test_missing_required_field(self, tmp_path):
        path = save_records([record()], tmp_path / "runs.json")
        payload = json.loads(path.read_text())
        del payload["records"][0]["rr_sets"]
        path.write_text(json.dumps(payload))
        with pytest.raises(PersistenceError, match="rr_sets"):
            load_records(path)


class TestMerge:
    def test_merges_in_order(self, tmp_path):
        a = save_records([record("D-SSA")], tmp_path / "a.json")
        b = save_records([record("IMM"), record("SSA")], tmp_path / "b.json")
        merged = merge_record_files([a, b])
        assert [r.algorithm for r in merged] == ["D-SSA", "IMM", "SSA"]
