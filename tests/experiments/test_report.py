"""Tests for report rendering."""

from repro.experiments.report import (
    render_comparison,
    render_series,
    render_table3,
    speedup_summary,
)
from repro.experiments.runner import RunRecord


def record(algo="D-SSA", dataset="enron", k=5, seconds=1.0, rr=1000, quality=None):
    return RunRecord(
        algorithm=algo,
        dataset=dataset,
        model="LT",
        k=k,
        epsilon=0.1,
        seconds=seconds,
        rr_sets=rr,
        memory_bytes=10_000,
        influence_estimate=42.0,
        seeds=[1, 2],
        quality=quality,
    )


class TestRenderSeries:
    def test_groups_by_algorithm(self):
        records = [record(k=1, seconds=0.1), record(k=2, seconds=0.2), record("IMM", k=1, seconds=1.0)]
        out = render_series(records, "seconds", title="Fig 4")
        assert "Fig 4" in out
        assert "D-SSA" in out and "IMM" in out

    def test_skips_none_quality(self):
        out = render_series([record(quality=None)], "quality")
        assert "(no data)" in out

    def test_quality_axis(self):
        out = render_series([record(quality=12.5)], "quality")
        assert "12.5" in out


class TestRenderTable3:
    def test_has_time_and_rr_columns(self):
        records = [
            record("D-SSA", seconds=0.5, rr=100),
            record("IMM", seconds=5.0, rr=2000),
        ]
        out = render_table3(records)
        assert "D-SSA time(s)" in out
        assert "IMM #RR" in out
        assert "2000" in out

    def test_missing_combination_na(self):
        records = [record("D-SSA", k=1), record("IMM", k=2)]
        out = render_table3(records)
        assert "n/a" in out


class TestRenderComparison:
    def test_columns(self):
        out = render_comparison([record(quality=40.0)], title="cmp")
        assert "cmp" in out
        assert "influence" in out
        assert "40" in out


class TestSpeedupSummary:
    def test_computes_ratio(self):
        records = [record("IMM", seconds=10.0), record("D-SSA", seconds=0.1)]
        out = speedup_summary(records, baseline="IMM")
        assert "100" in out  # 10 / 0.1

    def test_missing_baseline_skipped(self):
        out = speedup_summary([record("D-SSA")], baseline="IMM")
        assert "D-SSA" not in out.splitlines()[-1] or "speedup" in out
