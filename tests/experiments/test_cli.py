"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "D-SSA"])
        args_dict = vars(args)
        assert args_dict["algorithm"] == "D-SSA"
        assert args_dict["dataset"] == "nethept"
        assert args_dict["model"] == "LT"

    def test_compare_algorithms_list(self):
        args = build_parser().parse_args(
            ["compare", "--algorithms", "D-SSA", "IMM", "-k", "3"]
        )
        assert args.algorithms == ["D-SSA", "IMM"]
        assert args.k == 3

    def test_rejects_unknown_algorithm(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "SimPath"])

    def test_tvm_topic_choices(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["tvm", "--topic", "3"])


class TestExecution:
    def test_datasets_command(self, capsys):
        assert main(["datasets"]) == 0
        out = capsys.readouterr().out
        assert "friendster" in out
        assert "65600000" in out

    def test_stats_command(self, capsys):
        assert main(["stats", "nethept", "--scale", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "nethept" in out
        assert "LT admissible=True" in out

    def test_run_command(self, capsys):
        code = main(
            ["run", "D-SSA", "--dataset", "nethept", "--scale", "0.1",
             "-k", "2", "--epsilon", "0.25", "--model", "LT"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "D-SSA" in out

    def test_run_command_with_vectorized_kernel(self, capsys):
        code = main(
            ["run", "D-SSA", "--dataset", "nethept", "--scale", "0.1",
             "-k", "2", "--epsilon", "0.25", "--model", "IC",
             "--kernel", "vectorized"]
        )
        assert code == 0
        assert "D-SSA" in capsys.readouterr().out

    def test_rejects_unknown_kernel(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "D-SSA", "--kernel", "simd"])

    def test_algorithms_table_has_kernel_column(self, capsys):
        assert main(["algorithms"]) == 0
        out = capsys.readouterr().out
        assert "kernels" in out

    def test_sweep_command(self, capsys):
        code = main(
            ["sweep", "--dataset", "nethept", "--scale", "0.1",
             "--k-values", "1", "3", "--epsilon", "0.25"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Influence sweep" in out
        assert "estimated influence" in out

    def test_compare_command_with_quality(self, capsys):
        code = main(
            ["compare", "--algorithms", "D-SSA", "degree",
             "--dataset", "nethept", "--scale", "0.1", "-k", "2",
             "--epsilon", "0.25", "--quality", "--quality-sims", "30"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "degree" in out
