"""Tests for the experiment runner."""

import pytest

from repro.exceptions import ParameterError
from repro.experiments.runner import ALGORITHMS, evaluate_quality, run_algorithm


class TestRunAlgorithm:
    @pytest.mark.parametrize("algo", ["D-SSA", "SSA", "IMM", "degree", "degree-discount"])
    def test_each_algorithm_runs(self, medium_wc_graph, algo):
        record = run_algorithm(
            algo, medium_wc_graph, 3, model="LT", epsilon=0.2, seed=1, dataset="test"
        )
        assert record.dataset == "test"
        assert record.k == 3
        assert len(record.seeds) == 3
        assert record.seconds >= 0

    def test_tim_with_budget(self, medium_wc_graph):
        record = run_algorithm(
            "TIM+", medium_wc_graph, 3, model="LT", epsilon=0.25, seed=2,
            max_samples=30_000,
        )
        assert record.rr_sets <= 30_000 + 10_000  # KPT phase may add a little

    def test_celf_uses_simulation_knob(self, grid_graph):
        record = run_algorithm(
            "CELF", grid_graph, 2, model="IC", seed=3, celf_simulations=20
        )
        assert record.algorithm == "CELF"
        assert record.rr_sets == 0

    def test_unknown_algorithm(self, medium_wc_graph):
        with pytest.raises(ParameterError):
            run_algorithm("SimPath", medium_wc_graph, 3)

    def test_algorithm_registry_complete(self):
        assert "D-SSA" in ALGORITHMS
        assert "CELF++" in ALGORITHMS


class TestEvaluateQuality:
    def test_fills_quality(self, medium_wc_graph):
        record = run_algorithm(
            "D-SSA", medium_wc_graph, 5, model="LT", epsilon=0.2, seed=4
        )
        assert record.quality is None
        evaluate_quality(record, medium_wc_graph, simulations=100, seed=5)
        assert record.quality is not None
        assert record.quality >= 5  # at least the seeds themselves

    def test_quality_close_to_algorithm_estimate(self, medium_wc_graph):
        record = run_algorithm(
            "D-SSA", medium_wc_graph, 5, model="LT", epsilon=0.2, seed=6
        )
        evaluate_quality(record, medium_wc_graph, simulations=400, seed=7)
        assert record.quality == pytest.approx(record.influence_estimate, rel=0.25)

    def test_as_dict_roundtrip(self, medium_wc_graph):
        record = run_algorithm("degree", medium_wc_graph, 2, dataset="x")
        d = record.as_dict()
        assert d["algorithm"] == "degree"
        assert d["dataset"] == "x"
