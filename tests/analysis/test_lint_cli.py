"""CLI surface: exit codes, formats, baseline workflow, repro subcommand."""

import json

import pytest

from repro.analysis.lint.cli import main
from repro.cli import main as repro_main

CLEAN = "x = 1\n"
DIRTY = "import numpy as np\nv = np.random.rand(3)\n"


@pytest.fixture()
def workdir(tmp_path, monkeypatch):
    """Run the CLI from an empty directory so no baseline is discovered."""
    monkeypatch.chdir(tmp_path)
    return tmp_path


def _write(workdir, name: str, source: str):
    # a sampling-scoped path so seed-purity applies
    path = workdir / "repro" / "sampling" / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(source, encoding="utf-8")
    return path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, workdir, capsys):
        path = _write(workdir, "ok.py", CLEAN)
        assert main([str(path)]) == 0
        assert "0 new findings" in capsys.readouterr().out

    def test_new_findings_exit_one(self, workdir, capsys):
        path = _write(workdir, "bad.py", DIRTY)
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "[seed-purity]" in out
        assert "bad.py:2:" in out

    def test_missing_path_exits_two(self, workdir, capsys):
        assert main([str(workdir / "nope.py")]) == 2
        assert "error" in capsys.readouterr().err

    def test_unknown_select_exits_two(self, workdir, capsys):
        path = _write(workdir, "ok.py", CLEAN)
        assert main([str(path), "--select", "bogus"]) == 2
        assert "unknown checker" in capsys.readouterr().err

    def test_malformed_baseline_exits_two(self, workdir, capsys):
        path = _write(workdir, "ok.py", CLEAN)
        (workdir / "broken.json").write_text("{}", encoding="utf-8")
        assert main([str(path), "--baseline", str(workdir / "broken.json")]) == 2
        assert "baseline" in capsys.readouterr().err


class TestBaselineWorkflow:
    def test_write_baseline_then_lint_is_clean(self, workdir, capsys):
        path = _write(workdir, "bad.py", DIRTY)
        baseline = workdir / "baseline.json"
        assert main([str(path), "--write-baseline", str(baseline)]) == 0
        assert main([str(path), "--baseline", str(baseline)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_default_baseline_is_discovered_in_cwd(self, workdir, capsys):
        path = _write(workdir, "bad.py", DIRTY)
        assert main([str(path), "--write-baseline", "reprolint-baseline.json"]) == 0
        assert main([str(path)]) == 0
        assert main([str(path), "--no-baseline"]) == 1

    def test_fixed_finding_reports_stale_entry(self, workdir, capsys):
        path = _write(workdir, "bad.py", DIRTY)
        baseline = workdir / "baseline.json"
        main([str(path), "--write-baseline", str(baseline)])
        path.write_text(CLEAN, encoding="utf-8")  # fix the violation
        capsys.readouterr()
        assert main([str(path), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "fixed? remove from baseline" in out
        assert "1 stale baseline entry" in out

    def test_strict_fails_on_stale_entries(self, workdir):
        path = _write(workdir, "bad.py", DIRTY)
        baseline = workdir / "baseline.json"
        main([str(path), "--write-baseline", str(baseline)])
        path.write_text(CLEAN, encoding="utf-8")
        assert main([str(path), "--baseline", str(baseline), "--strict"]) == 1


class TestOutput:
    def test_json_format(self, workdir, capsys):
        path = _write(workdir, "bad.py", DIRTY)
        assert main([str(path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["files"] == 1
        assert payload["new"][0]["checker"] == "seed-purity"
        assert payload["new"][0]["context"] == "v = np.random.rand(3)"

    def test_output_file_always_gets_json_when_asked(self, workdir, capsys):
        path = _write(workdir, "bad.py", DIRTY)
        report = workdir / "findings.json"
        main([str(path), "--format", "json", "--output", str(report)])
        capsys.readouterr()
        payload = json.loads(report.read_text(encoding="utf-8"))
        assert len(payload["new"]) == 1

    def test_list_checkers(self, workdir, capsys):
        assert main(["--list-checkers"]) == 0
        out = capsys.readouterr().out
        for checker_id in (
            "seed-purity",
            "lock-discipline",
            "provenance-stamp",
            "resource-lifecycle",
        ):
            assert checker_id in out


class TestReproSubcommand:
    def test_repro_lint_wires_through(self, workdir, capsys):
        path = _write(workdir, "bad.py", DIRTY)
        assert repro_main(["lint", str(path)]) == 1
        assert "[seed-purity]" in capsys.readouterr().out

    def test_repro_lint_clean_exits_zero(self, workdir, capsys):
        path = _write(workdir, "ok.py", CLEAN)
        assert repro_main(["lint", str(path)]) == 0
