"""reprolint framework mechanics: pragmas, baseline, registry, paths."""

import pytest

from repro.analysis.lint import (
    BaselineError,
    Finding,
    lint_source,
    load_baseline,
    load_checkers,
    match_baseline,
    save_baseline,
)
from repro.analysis.lint.core import normalize_path
from repro.analysis.lint.pragmas import parse_pragma, pragma_index

#: one-line seed-purity violation, reused across fixtures.
AMBIENT = "v = np.random.rand(3)"


def _sampling(src: str):
    """Lint ``src`` as if it lived in stream-deriving code."""
    return lint_source(src, "repro/sampling/mod.py", select={"seed-purity"})


class TestRegistry:
    def test_all_four_checkers_registered(self):
        registry = load_checkers()
        assert set(registry) >= {
            "seed-purity",
            "lock-discipline",
            "provenance-stamp",
            "resource-lifecycle",
        }
        for checker_id, checker in registry.items():
            assert checker.id == checker_id
            assert checker.description

    def test_unknown_select_rejected(self):
        with pytest.raises(ValueError, match="unknown checker"):
            lint_source("x = 1", select={"no-such-checker"})


class TestPaths:
    def test_normalize_anchors_at_package(self):
        assert (
            normalize_path("/home/u/repo/src/repro/service/pool.py")
            == "src/repro/service/pool.py"
        )
        assert normalize_path("repro/sampling/base.py") == "repro/sampling/base.py"
        assert normalize_path("scratch/tool.py") == "scratch/tool.py"

    def test_parse_error_is_a_finding(self):
        report = lint_source("def broken(:\n", "repro/sampling/bad.py")
        assert [f.checker for f in report.findings] == ["parse-error"]


class TestPragmas:
    def test_parse_pragma(self):
        assert parse_pragma("# repro: allow[seed-purity]") == {"seed-purity"}
        assert parse_pragma("#repro: allow[a, b]") == {"a", "b"}
        assert parse_pragma("# a plain comment") is None

    def test_same_line_suppresses(self):
        report = _sampling(
            f"import numpy as np\n{AMBIENT}  # repro: allow[seed-purity]\n"
        )
        assert report.findings == []
        assert report.suppressed == 1

    def test_wrong_line_does_not_suppress(self):
        report = _sampling(
            f"import numpy as np\n# repro: allow[seed-purity]\n{AMBIENT}\n"
        )
        assert [f.checker for f in report.findings] == ["seed-purity"]
        assert report.suppressed == 0

    def test_wrong_checker_id_does_not_suppress(self):
        report = _sampling(
            f"import numpy as np\n{AMBIENT}  # repro: allow[lock-discipline]\n"
        )
        assert len(report.findings) == 1

    def test_pragma_inside_string_literal_is_inert(self):
        report = _sampling(
            f'import numpy as np\nv = (np.random.rand(3), "# repro: allow[seed-purity]")\n'
        )
        assert len(report.findings) == 1

    def test_pragma_index_is_tokenizer_based(self):
        index = pragma_index('s = "# repro: allow[x]"\n# repro: allow[y]\n')
        assert index == {2: {"y"}}


def _finding(context: str = AMBIENT, line: int = 2) -> Finding:
    return Finding(
        checker="seed-purity",
        path="repro/sampling/mod.py",
        line=line,
        message="ambient RNG",
        context=context,
    )


def _entry(context: str = AMBIENT) -> dict:
    return {
        "checker": "seed-purity",
        "path": "repro/sampling/mod.py",
        "context": context,
        "justification": "grandfathered",
    }


class TestBaseline:
    def test_match_splits_new_and_baselined(self):
        outcome = match_baseline([_finding(), _finding("other = 1")], [_entry()])
        assert [f.context for f in outcome.new] == ["other = 1"]
        assert [f.context for f in outcome.baselined] == [AMBIENT]
        assert outcome.stale == []

    def test_matching_is_by_multiplicity(self):
        # two identical findings, one entry: the second finding is new.
        outcome = match_baseline([_finding(line=2), _finding(line=9)], [_entry()])
        assert len(outcome.baselined) == 1
        assert len(outcome.new) == 1

    def test_line_number_changes_do_not_go_stale(self):
        # the baseline keys on context, not line numbers.
        outcome = match_baseline([_finding(line=77)], [_entry()])
        assert outcome.new == [] and outcome.stale == []

    def test_stale_entry_surfaces_for_removal(self):
        outcome = match_baseline([], [_entry()])
        assert outcome.stale == [_entry()]

    def test_save_load_round_trip(self, tmp_path):
        path = tmp_path / "baseline.json"
        save_baseline([_finding()], path)
        entries = load_baseline(path)
        assert len(entries) == 1
        assert entries[0]["context"] == AMBIENT
        assert "justification" in entries[0]

    def test_malformed_baseline_raises_loudly(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("[]", encoding="utf-8")
        with pytest.raises(BaselineError, match="unsupported format"):
            load_baseline(path)
        path.write_text('{"version": 1, "entries": [{"checker": "x"}]}')
        with pytest.raises(BaselineError, match="missing"):
            load_baseline(path)
        with pytest.raises(BaselineError, match="cannot read"):
            load_baseline(tmp_path / "absent.json")
