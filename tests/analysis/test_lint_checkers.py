"""Per-checker fixtures: each rule fires on a violation and stays silent
on the sanctioned pattern."""

import textwrap

import pytest

from repro.analysis.lint import lint_source


def lint(src: str, path: str, checker: str):
    report = lint_source(textwrap.dedent(src), path, select={checker})
    return report.findings


def seed(src: str, path: str = "repro/sampling/mod.py"):
    return lint(src, path, "seed-purity")


def locks(src: str, path: str = "repro/service/mod.py"):
    return lint(src, path, "lock-discipline")


def prov(src: str, path: str = "repro/service/mod.py"):
    return lint(src, path, "provenance-stamp")


def life(src: str, path: str = "repro/service/mod.py"):
    return lint(src, path, "resource-lifecycle")


class TestSeedPurity:
    def test_ambient_numpy_rng_fires(self):
        findings = seed("import numpy as np\nv = np.random.rand(3)\n")
        assert len(findings) == 1
        assert "global RandomState" in findings[0].message

    def test_np_random_seed_fires_even_with_constant(self):
        assert len(seed("import numpy as np\nnp.random.seed(42)\n")) == 1

    def test_out_of_scope_paths_are_ignored(self):
        findings = seed(
            "import numpy as np\nv = np.random.rand(3)\n",
            path="repro/experiments/mod.py",
        )
        assert findings == []

    def test_unseeded_default_rng_fires_seeded_does_not(self):
        src = "import numpy as np\nrng = np.random.default_rng({})\n"
        assert len(seed(src.format(""))) == 1
        assert seed(src.format("ss")) == []

    def test_import_alias_is_resolved(self):
        findings = seed(
            "from numpy.random import default_rng as mk\ng = mk()\n"
        )
        assert len(findings) == 1
        assert "fresh OS entropy" in findings[0].message

    def test_stdlib_random_fires(self):
        findings = seed("import random\nx = random.choice(items)\n")
        assert len(findings) == 1
        assert "Mersenne Twister" in findings[0].message

    def test_wall_clock_fires_monotonic_does_not(self):
        assert len(seed("import time\nt = time.time()\n")) == 1
        assert seed("import time\nt = time.monotonic()\n") == []

    def test_set_iteration_fires_sorted_does_not(self):
        src = """
        def spread(nodes):
            for n in set(nodes):
                yield n
        """
        findings = seed(src)
        assert len(findings) == 1
        assert "sorted" in findings[0].message
        assert seed(src.replace("set(nodes)", "sorted(set(nodes))")) == []


LOCKED_CLASS = """
import threading

class Counter:
    def __init__(self):
        self._lock = threading.Lock()
        self.total = 0

    def add(self, n):
        with self._lock:
            self.total += n

    def {reader}
"""


class TestLockDiscipline:
    def test_unguarded_read_fires(self):
        findings = locks(LOCKED_CLASS.format(reader="peek(self):\n        return self.total"))
        assert len(findings) == 1
        assert "reads self.total" in findings[0].message

    def test_guarded_read_is_clean(self):
        reader = "peek(self):\n        with self._lock:\n            return self.total"
        assert locks(LOCKED_CLASS.format(reader=reader)) == []

    def test_locked_suffix_convention_is_exempt(self):
        reader = "peek_locked(self):\n        return self.total"
        assert locks(LOCKED_CLASS.format(reader=reader)) == []

    def test_direct_blocking_under_lock_fires(self):
        src = """
        import threading, time

        class Poller:
            def __init__(self):
                self._lock = threading.Lock()

            def poll(self):
                with self._lock:
                    time.sleep(0.1)
        """
        findings = locks(src)
        assert len(findings) == 1
        assert "sleeps" in findings[0].message

    def test_transitive_blocking_through_self_call_fires(self):
        src = """
        import threading, subprocess

        class Fleet:
            def __init__(self):
                self._lock = threading.Lock()

            def _respawn(self):
                subprocess.Popen(["worker"])

            def ensure(self):
                with self._lock:
                    self._respawn()
        """
        findings = locks(src)
        assert any("self._respawn()" in f.message for f in findings)

    def test_blocking_outside_lock_is_clean(self):
        src = """
        import threading, time

        class Poller:
            def __init__(self):
                self._lock = threading.Lock()

            def poll(self):
                with self._lock:
                    pass
                time.sleep(0.1)
        """
        assert locks(src) == []

    def test_condition_wait_requires_its_lock(self):
        src = """
        import threading

        class Q:
            def __init__(self):
                self._lock = threading.Lock()
                self._cond = threading.Condition(self._lock)

            def bad(self):
                self._cond.wait()

            def good(self):
                with self._cond:
                    self._cond.wait()
        """
        findings = locks(src)
        assert len(findings) == 1
        assert "without holding" in findings[0].message
        assert findings[0].line < 12  # anchored at bad(), not good()

    def test_holding_the_wrapped_lock_counts_for_the_condition(self):
        src = """
        import threading

        class Q:
            def __init__(self):
                self._lock = threading.Lock()
                self._cond = threading.Condition(self._lock)

            def good(self):
                with self._lock:
                    self._cond.wait()
        """
        assert locks(src) == []

    def test_lock_reacquisition_fires(self):
        src = """
        import threading

        class R:
            def __init__(self):
                self._lock = threading.Lock()

            def outer(self):
                with self._lock:
                    with self._lock:
                        pass
        """
        findings = locks(src)
        assert len(findings) == 1
        assert "self-deadlock" in findings[0].message

    def test_lock_order_cycle_fires(self):
        src = """
        import threading

        class A:
            def __init__(self):
                self._lock = threading.Lock()
                self.x = 0

            def foo(self, b):
                with self._lock:
                    self.x = 1
                    b.bar()

        class B:
            def __init__(self):
                self._lock = threading.Lock()
                self.y = 0

            def bar(self):
                with self._lock:
                    self.y = 2

            def back(self, a):
                with self._lock:
                    self.y = 3
                    a.foo(self)
        """
        findings = locks(src)
        assert any("lock-acquisition cycle" in f.message for f in findings)


class TestProvenance:
    def test_poolkey_without_stream_id_fires(self):
        findings = prov('key = PoolKey("ns", "s", "LT", 10)\n')
        assert len(findings) == 1
        assert "stream_id" in findings[0].message

    def test_poolkey_keyword_or_full_positional_is_clean(self):
        assert (
            prov(
                'key = PoolKey("ns", "s", "LT", 10, stream_id="scalar-v2",'
                " graph_version=0)\n"
            )
            == []
        )
        assert prov('key = PoolKey("ns", "s", "LT", 10, "scalar-v2", 0)\n') == []

    def test_poolkey_without_graph_version_fires(self):
        findings = prov('key = PoolKey("ns", "s", "LT", 10, "scalar-v2")\n')
        assert len(findings) == 1
        assert "graph_version" in findings[0].message

    def test_star_kwargs_is_skipped(self):
        assert prov('key = PoolKey("ns", "s", "LT", 10, **extra)\n') == []

    def test_runrecord_missing_provenance_fires_with_field_names(self):
        findings = prov('rec = RunRecord(algorithm="SSA", k=5, seed=3)\n')
        assert len(findings) == 1
        for field in ("backend", "kernel", "stream_id", "workers"):
            assert field in findings[0].message

    def test_runrecord_explicit_nones_are_clean(self):
        assert (
            prov(
                "rec = RunRecord(algorithm='SSA', k=5, seed=None, backend=None,"
                " workers=None, kernel=None, stream_id=None, graph_version=None)\n"
            )
            == []
        )

    def test_runrecord_without_graph_version_fires(self):
        findings = prov(
            "rec = RunRecord(algorithm='SSA', k=5, seed=None, backend=None,"
            " workers=None, kernel=None, stream_id=None)\n"
        )
        assert len(findings) == 1
        assert "graph_version" in findings[0].message

    def test_make_stamp_requires_full_provenance(self):
        findings = prov('s = make_stamp(graph, model="LT", stream="rr", seed=1)\n')
        assert len(findings) == 1
        assert "horizon" in findings[0].message and "sampler" in findings[0].message
        assert "graph_version" in findings[0].message

    def test_state_dict_without_stream_id_fires_in_sampling(self):
        src = """
        class S:
            def state_dict(self):
                return {"cursor": self.cursor}
        """
        findings = prov(src, path="repro/sampling/stream.py")
        assert len(findings) == 2
        assert "stream_id" in findings[0].message
        assert "graph_version" in findings[1].message

    def test_state_dict_with_full_identity_is_clean(self):
        src = """
        class S:
            def state_dict(self):
                return {
                    "cursor": self.cursor,
                    "stream_id": self.stream_id,
                    "graph_version": self.graph_version,
                }
        """
        assert prov(src, path="repro/sampling/stream.py") == []

    def test_state_dict_without_graph_version_fires_in_sampling(self):
        src = """
        class S:
            def state_dict(self):
                return {"cursor": self.cursor, "stream_id": self.stream_id}
        """
        findings = prov(src, path="repro/sampling/stream.py")
        assert len(findings) == 1
        assert "graph_version" in findings[0].message

    def test_state_dict_rule_scoped_to_sampling(self):
        src = """
        class S:
            def state_dict(self):
                return {"cursor": self.cursor}
        """
        assert prov(src, path="repro/service/stream.py") == []


class TestLifecycle:
    def test_leaked_socket_fires(self):
        src = """
        import socket

        def ping(addr):
            sock = socket.create_connection(addr)
            sock.sendall(b"hi")
        """
        findings = life(src)
        assert len(findings) == 1
        assert "never released" in findings[0].message

    def test_finally_release_is_clean(self):
        src = """
        import socket

        def ping(addr):
            sock = socket.create_connection(addr)
            try:
                sock.sendall(b"hi")
            finally:
                sock.close()
        """
        assert life(src) == []

    def test_with_statement_is_clean(self):
        src = """
        import socket

        def ping(addr):
            with socket.create_connection(addr) as sock:
                sock.sendall(b"hi")
        """
        assert life(src) == []

    def test_ownership_transfer_by_return_is_clean(self):
        src = """
        import socket

        def dial(addr):
            sock = socket.create_connection(addr)
            return sock
        """
        assert life(src) == []

    def test_ownership_transfer_by_constructor_is_clean(self):
        src = """
        import socket

        def lease(addr):
            sock = socket.create_connection(addr)
            return HostLease(sock)
        """
        assert life(src) == []

    def test_ownership_transfer_by_attribute_store_is_clean(self):
        src = """
        import subprocess

        class Spawner:
            def spawn(self):
                proc = subprocess.Popen(["worker"])
                self.procs[proc.pid] = proc
        """
        assert life(src) == []

    def test_straight_line_release_fires(self):
        src = """
        import socket

        def ping(addr):
            sock = socket.create_connection(addr)
            sock.sendall(b"hi")
            sock.close()
        """
        findings = life(src)
        assert len(findings) == 1
        assert "leaks it" in findings[0].message

    def test_immediate_release_is_clean(self):
        src = """
        import socket

        def probe(addr):
            sock = socket.create_connection(addr)
            sock.close()
        """
        assert life(src) == []


SUPPRESSIBLE = {
    "seed-purity": (
        "repro/sampling/mod.py",
        "import numpy as np\n"
        "v = np.random.rand(3){pragma}\n",
    ),
    "lock-discipline": (
        "repro/service/mod.py",
        "import threading\n"
        "class C:\n"
        "    def __init__(self):\n"
        "        self._lock = threading.Lock()\n"
        "        self.total = 0\n"
        "    def add(self):\n"
        "        with self._lock:\n"
        "            self.total += 1\n"
        "    def peek(self):\n"
        "        return self.total{pragma}\n",
    ),
    "provenance-stamp": (
        "repro/service/mod.py",
        'key = PoolKey("ns", "s", "LT", 10){pragma}\n',
    ),
    "resource-lifecycle": (
        "repro/service/mod.py",
        "import socket\n"
        "def ping(addr):\n"
        "    sock = socket.create_connection(addr){pragma}\n"
        '    sock.sendall(b"hi")\n',
    ),
}


class TestEveryCheckerIsSuppressible:
    """Each checker both fires and is silenced by its own pragma."""

    @pytest.mark.parametrize("checker", sorted(SUPPRESSIBLE))
    def test_fires_without_pragma(self, checker):
        path, template = SUPPRESSIBLE[checker]
        report = lint_source(template.format(pragma=""), path, select={checker})
        assert len(report.findings) == 1
        assert report.findings[0].checker == checker

    @pytest.mark.parametrize("checker", sorted(SUPPRESSIBLE))
    def test_pragma_on_the_finding_line_silences(self, checker):
        path, template = SUPPRESSIBLE[checker]
        pragma = f"  # repro: allow[{checker}]"
        report = lint_source(template.format(pragma=pragma), path, select={checker})
        assert report.findings == []
        assert report.suppressed == 1
