"""The shipped tree is lint-clean modulo the committed baseline.

This is the same gate CI's ``lint`` job applies; keeping it in tier-1
means a change that introduces an invariant violation — or fixes one
without pruning its baseline entry — fails locally before it fails in
CI.
"""

from pathlib import Path

from repro.analysis.lint import load_baseline, match_baseline, run_lint

REPO = Path(__file__).resolve().parents[2]


def test_src_tree_is_clean_modulo_baseline():
    report = run_lint([REPO / "src"])
    entries = load_baseline(REPO / "reprolint-baseline.json")
    outcome = match_baseline(report.sorted(), entries)
    assert not outcome.new, "new findings:\n" + "\n".join(
        f.render() for f in outcome.new
    )
    assert not outcome.stale, (
        "stale baseline entries (fixed? remove from reprolint-baseline.json):\n"
        + "\n".join(str(e) for e in outcome.stale)
    )


def test_baseline_entries_carry_justifications():
    for entry in load_baseline(REPO / "reprolint-baseline.json"):
        justification = entry.get("justification", "")
        assert justification and "TODO" not in justification, entry
