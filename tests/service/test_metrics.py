"""Service observability (latency histograms + the metrics op) and the
runtime resize op, in-process and over the wire."""

import pytest

from repro.core.dssa import dssa
from repro.service import InfluenceServer, InfluenceService, ServiceError
from repro.service.metrics import BUCKET_BOUNDS, LatencyHistogram, MetricsRegistry

SEED = 2016
EPS = 0.25


class TestLatencyHistogram:
    def test_counts_and_aggregates(self):
        hist = LatencyHistogram()
        for seconds in (0.0005, 0.002, 0.002, 0.3, 2.0):
            hist.observe(seconds)
        snap = hist.snapshot()
        assert snap["count"] == 5
        assert snap["total_seconds"] == pytest.approx(2.3045)
        assert snap["max_seconds"] == 2.0
        assert len(snap["buckets"]) == len(BUCKET_BOUNDS) + 1
        assert sum(b["count"] for b in snap["buckets"]) == 5

    def test_quantiles_are_bucket_bounds(self):
        hist = LatencyHistogram()
        for _ in range(99):
            hist.observe(0.004)  # lands in the le=0.005 bucket
        hist.observe(8.0)
        assert hist.quantile(0.50) == 0.005
        assert hist.quantile(0.99) == 0.005
        snap = hist.snapshot()
        assert snap["p50_seconds"] == 0.005
        assert snap["max_seconds"] == 8.0

    def test_empty_histogram(self):
        snap = LatencyHistogram().snapshot()
        assert snap["count"] == 0 and snap["p99_seconds"] == 0.0

    def test_overflow_bucket(self):
        hist = LatencyHistogram()
        hist.observe(60.0)
        assert hist.snapshot()["buckets"][-1] == {"le": "inf", "count": 1}
        assert hist.quantile(0.5) == 60.0

    def test_registry_keys_per_op(self):
        registry = MetricsRegistry()
        registry.observe("maximize", 0.1)
        registry.observe("maximize", 0.2)
        registry.observe("ping", 0.001)
        snap = registry.snapshot()
        assert snap["maximize"]["count"] == 2 and snap["ping"]["count"] == 1


class TestServiceMetricsOp:
    def test_every_call_is_timed(self, small_wc_graph):
        with InfluenceService() as service:
            service.open_session("default", small_wc_graph, model="LT", seed=SEED)
            service.call("maximize", k=3, epsilon=EPS)
            service.call("ping")
            with pytest.raises(ServiceError):
                service.call("maximize")  # failures are latency too
            metrics = service.call("metrics")
            assert metrics["maximize"]["count"] == 2
            assert metrics["ping"]["count"] == 1
            assert metrics["maximize"]["max_seconds"] > 0

    def test_stats_carries_workers_and_truncations(self, small_wc_graph):
        with InfluenceService() as service:
            service.open_session(
                "default", small_wc_graph, model="LT", seed=SEED, workers=2,
                backend="thread",
            )
            service.call("maximize", k=3, epsilon=EPS)
            stats = service.call("stats")
            assert stats["workers"] == 2
            assert stats["pool_truncations"] == 0


class TestResizeOp:
    def test_resize_is_byte_invisible(self, small_wc_graph):
        cold_small = dssa(small_wc_graph, 3, epsilon=EPS, model="LT", seed=SEED)
        cold_big = dssa(small_wc_graph, 6, epsilon=0.2, model="LT", seed=SEED)
        with InfluenceService() as service:
            service.open_session(
                "default", small_wc_graph, model="LT", seed=SEED,
                backend="thread", workers=2,
            )
            first = service.call("maximize", k=3, epsilon=EPS)
            outcome = service.call("resize", workers=4)
            assert outcome["workers"] == 4 and outcome["pools_resized"] >= 1
            second = service.call("maximize", k=6, epsilon=0.2)
        assert list(first.seeds) == list(cold_small.seeds)
        assert list(second.seeds) == list(cold_big.seeds)
        assert second.samples == cold_big.samples

    def test_resize_upgrades_a_plain_session(self, small_wc_graph):
        """A session opened without parallelism accepts a resize: the
        context upgrades to a sharded sampler on a *parallel* (thread)
        backend — not a silently serial fleet — same stream."""
        cold = dssa(small_wc_graph, 4, epsilon=EPS, model="LT", seed=SEED)
        with InfluenceService() as service:
            engine = service.open_session(
                "default", small_wc_graph, model="LT", seed=SEED
            )
            service.call("maximize", k=2, epsilon=EPS)
            service.call("resize", workers=3)
            result = service.call("maximize", k=4, epsilon=EPS)
            stats = service.call("stats")
            assert stats["workers"] == 3
            (entry,) = engine.pool_manager._entries.values()
            assert entry.ctx.sampler.backend.name == "thread"
        assert list(result.seeds) == list(cold.seeds)
        assert result.samples == cold.samples

    def test_stats_reports_the_live_fleet_after_per_query_override(
        self, small_wc_graph
    ):
        """Per-query workers= persists on the pool sampler; stats must
        report the real fleet, not the stale session default."""
        with InfluenceService() as service:
            service.open_session(
                "default", small_wc_graph, model="LT", seed=SEED,
                backend="thread", workers=2,
            )
            service.call("maximize", k=3, epsilon=EPS, workers=5)
            assert service.call("stats")["workers"] == 5
            assert service.call("sessions")["default"]["workers"] == 5

    def test_resize_validation(self, small_wc_graph):
        with InfluenceService() as service:
            service.open_session("default", small_wc_graph, model="LT", seed=SEED)
            with pytest.raises(ServiceError, match="resize needs workers"):
                service.call("resize")
            with pytest.raises(Exception, match="workers"):
                service.call("resize", workers=0)


class TestOverTheWire:
    def test_metrics_and_resize_over_tcp(self, small_wc_graph):
        from repro.service import ServiceClient

        service = InfluenceService(max_workers=2)
        service.open_session("default", small_wc_graph, model="LT", seed=SEED)
        server = InfluenceServer(service, port=0)
        server.start_background()
        try:
            host, port = server.address
            with ServiceClient(host, port) as client:
                client.call("maximize", k=3, epsilon=EPS)
                outcome = client.call("resize", workers=2)
                assert outcome["workers"] == 2
                metrics = client.call("metrics")
                assert metrics["maximize"]["count"] == 1
                assert metrics["resize"]["count"] == 1
                stats = client.call("stats")
                assert stats["workers"] == 2
        finally:
            server.shutdown()
            service.close()


class TestPrometheusText:
    """The text exposition (format 0.0.4) that ``GET /metrics`` serves."""

    @pytest.fixture
    def exposed(self, small_wc_graph):
        from repro.service import prometheus_text

        service = InfluenceService(pool_budget=1 << 20, max_workers=2)
        service.open_session(
            "default", small_wc_graph, model="LT", seed=SEED, quota_bytes=1 << 19
        )
        service.call("maximize", k=3, epsilon=EPS)
        try:
            yield service, prometheus_text(service, connections=3)
        finally:
            service.close()

    def test_every_family_has_help_and_type(self, exposed):
        _, text = exposed
        families = set()
        for line in text.splitlines():
            if line.startswith("# HELP "):
                families.add(("HELP", line.split(" ", 3)[2]))
            elif line.startswith("# TYPE "):
                families.add(("TYPE", line.split(" ", 3)[2]))
        names = {name for _, name in families}
        for name in names:
            assert ("HELP", name) in families, f"{name} lacks # HELP"
            assert ("TYPE", name) in families, f"{name} lacks # TYPE"

    def test_gauges_mirror_pool_state(self, exposed):
        service, text = exposed
        samples = {}
        for line in text.splitlines():
            if line and not line.startswith("#"):
                name_labels, _, value = line.rpartition(" ")
                samples[name_labels] = float(value)
        assert samples["repro_pool_bytes"] == service.pools.total_bytes()
        assert samples["repro_pool_budget_bytes"] == 1 << 20
        assert samples['repro_session_quota_bytes{session="default"}'] == 1 << 19
        usage = service.pools.namespace_usage()["default"]
        assert samples['repro_session_pool_bytes{session="default"}'] == usage["bytes"]
        assert samples['repro_session_pool_sets{session="default"}'] == usage["sets"]
        assert samples["repro_connections_open"] == 3
        accepted = 'repro_admission_decisions_total{session="default",outcome="accepted"}'
        assert samples[accepted] == 1

    def test_histogram_buckets_are_cumulative_to_inf(self, exposed):
        _, text = exposed
        buckets = []
        count = None
        for line in text.splitlines():
            if line.startswith("repro_request_latency_seconds_bucket"):
                buckets.append(float(line.rpartition(" ")[2]))
            elif line.startswith("repro_request_latency_seconds_count"):
                count = float(line.rpartition(" ")[2])
        assert buckets, "histogram family missing"
        assert buckets == sorted(buckets), "bucket counts must be cumulative"
        assert 'le="+Inf"' in text
        assert buckets[-1] == count, "+Inf bucket must equal _count"

    def test_sample_lines_are_well_formed(self, exposed):
        import re

        _, text = exposed
        pattern = re.compile(
            r'^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'
            r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})? [0-9.eE+-]+$'
        )
        for line in text.splitlines():
            if line and not line.startswith("#"):
                assert pattern.match(line), f"malformed sample line: {line!r}"
