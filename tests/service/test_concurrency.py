"""Acceptance: concurrent service queries are byte-identical to sequential.

N threads issuing interleaved ``maximize``/``sweep``/``estimate`` queries
against one service must return byte-identical seeds/samples to the same
queries run sequentially on a fresh engine at the same seed — for
SSA/D-SSA/IMM across the serial and process execution backends, and
under both sampling kernels (the guarantee is per-kernel; the
interleaving tests re-run on each).
"""

from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.engine import InfluenceEngine
from repro.service import InfluenceService

SEED = 2016
EPS = 0.25


def _query_mix(algorithm):
    """Interleavable query set: two budgets, a sweep, and an estimate."""
    return [
        ("maximize", dict(k=3, epsilon=EPS, algorithm=algorithm)),
        ("maximize", dict(k=5, epsilon=EPS, algorithm=algorithm)),
        ("sweep", dict(ks=[2, 4], epsilon=EPS, algorithm=algorithm)),
        ("maximize", dict(k=3, epsilon=EPS, algorithm=algorithm)),  # repeat: pure hit
        ("estimate", dict(seeds=[1, 2, 3], samples=512)),
    ]


def _run_sequential(graph, queries, **engine_kwargs):
    with InfluenceEngine(graph, model="LT", seed=SEED, **engine_kwargs) as engine:
        return [getattr(engine, op)(**params) for op, params in queries]


def _run_concurrent(graph, queries, threads, **engine_kwargs):
    with InfluenceService(max_workers=threads) as service:
        service.open_session("default", graph, model="LT", seed=SEED, **engine_kwargs)
        engine = service.session("default")
        with ThreadPoolExecutor(max_workers=threads) as pool:
            futures = [
                pool.submit(getattr(engine, op), **params) for op, params in queries
            ]
            results = [f.result() for f in futures]
        stats = engine.stats
        return results, stats


def _assert_identical(concurrent, sequential):
    for got, want in zip(concurrent, sequential):
        if isinstance(want, float):  # estimate
            assert got == want
            continue
        if isinstance(want, list):  # sweep
            _assert_identical(got, want)
            continue
        assert got.seeds == want.seeds
        assert got.samples == want.samples
        assert got.optimization_samples == want.optimization_samples
        assert got.influence == want.influence
        assert got.stopped_by == want.stopped_by


class TestConcurrentExactness:
    @pytest.mark.parametrize("kernel", ["scalar", "vectorized"])
    @pytest.mark.parametrize("algorithm", ["D-SSA", "SSA", "IMM"])
    def test_interleaved_queries_match_sequential_serial_backend(
        self, small_wc_graph, algorithm, kernel
    ):
        queries = _query_mix(algorithm)
        sequential = _run_sequential(small_wc_graph, queries, kernel=kernel)
        concurrent, stats = _run_concurrent(
            small_wc_graph, queries, threads=4, kernel=kernel
        )
        _assert_identical(concurrent, sequential)
        assert stats.hit_rate > 0.0  # sharing actually happened

    @pytest.mark.parametrize("kernel", ["scalar", "vectorized"])
    @pytest.mark.parametrize("algorithm", ["D-SSA", "SSA"])
    def test_interleaved_queries_match_sequential_process_backend(
        self, small_wc_graph, algorithm, kernel
    ):
        queries = _query_mix(algorithm)[:3]  # keep the expensive backend short
        sequential = _run_sequential(
            small_wc_graph, queries, backend="process", workers=2, kernel=kernel
        )
        concurrent, _ = _run_concurrent(
            small_wc_graph, queries, threads=3, backend="process", workers=2,
            kernel=kernel,
        )
        _assert_identical(concurrent, sequential)

    def test_many_threads_hammering_one_query(self, small_wc_graph):
        """The repeat-query stampede: every thread gets the same answer."""
        with InfluenceService(max_workers=8) as service:
            engine = service.open_session("default", small_wc_graph, model="LT", seed=SEED)
            futures = [
                service.submit("maximize", k=4, epsilon=EPS) for _ in range(16)
            ]
            results = [f.result() for f in futures]
            sampled = engine.stats.rr_sampled
        cold = _run_sequential(small_wc_graph, [("maximize", dict(k=4, epsilon=EPS))])[0]
        for r in results:
            assert r.seeds == cold.seeds and r.samples == cold.samples
        # one cold fill, everyone else rode the pool
        assert sampled == cold.optimization_samples

    def test_concurrent_sessions_do_not_cross_talk(self, small_wc_graph, er_graph):
        with InfluenceService(max_workers=4) as service:
            service.open_session("a", small_wc_graph, model="LT", seed=SEED)
            service.open_session("b", er_graph, model="IC", seed=7)
            fa = [service.submit("maximize", session="a", k=3, epsilon=EPS) for _ in range(2)]
            fb = [service.submit("maximize", session="b", k=3, epsilon=EPS) for _ in range(2)]
            ra = [f.result() for f in fa]
            rb = [f.result() for f in fb]
        cold_a = _run_sequential(small_wc_graph, [("maximize", dict(k=3, epsilon=EPS))])[0]
        with InfluenceEngine(er_graph, model="IC", seed=7) as engine:
            cold_b = engine.maximize(3, epsilon=EPS)
        assert all(r.seeds == cold_a.seeds for r in ra)
        assert all(r.seeds == cold_b.seeds for r in rb)
