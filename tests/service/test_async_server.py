"""Asyncio serving tier: pipelining, version negotiation, typed errors,
disconnect hygiene, and the Prometheus metrics endpoint.

The determinism bar is the same as everywhere else in the repo: any
number of connections, any pipelining depth, any interleaving — every
answer is byte-identical to a sequential cold run at the same seed.
"""

import json
import socket
import time

import pytest

from repro.core.dssa import dssa
from repro.service import (
    InfluenceServer,
    InfluenceService,
    OverBudgetError,
    ServiceClient,
    ServiceError,
    UnknownSessionError,
)
from repro.service.protocol import PROTO_VERSION, decode_line, encode_line

SEED = 2016
EPS = 0.25


@pytest.fixture
def served(small_wc_graph):
    """A service with one session, served on an ephemeral port."""
    service = InfluenceService(max_workers=4)
    service.open_session("default", small_wc_graph, model="LT", seed=SEED)
    server = InfluenceServer(service, port=0)
    server.start_background()
    try:
        yield server
    finally:
        server.shutdown()
        service.close()


@pytest.fixture
def served_with_metrics(small_wc_graph):
    """Same, plus the Prometheus exposition endpoint on its own port."""
    service = InfluenceService(max_workers=4)
    service.open_session("default", small_wc_graph, model="LT", seed=SEED)
    server = InfluenceServer(service, port=0, metrics_port=0)
    server.start_background()
    try:
        yield server
    finally:
        server.shutdown()
        service.close()


def _raw_roundtrip(address, *messages, reads=None):
    """Send raw frames on one socket; return the decoded response lines."""
    host, port = address
    with socket.create_connection((host, port), timeout=30) as sock:
        wfile = sock.makefile("wb")
        rfile = sock.makefile("rb")
        for message in messages:
            wfile.write(encode_line(message))
        wfile.flush()
        count = len(messages) if reads is None else reads
        return [decode_line(rfile.readline()) for _ in range(count)]


class TestPipelining:
    def test_64_pipelined_connections_byte_identical(self, served, small_wc_graph):
        """64 concurrent sockets, two requests in flight on each, no
        client threads: connection count is decoupled from the service's
        4 worker threads, and every answer matches the cold run."""
        cold = dssa(small_wc_graph, 4, epsilon=EPS, model="LT", seed=SEED)
        host, port = served.address
        sockets = []
        try:
            for i in range(64):
                sock = socket.create_connection((host, port), timeout=60)
                wfile = sock.makefile("wb")
                wfile.write(
                    encode_line(
                        {
                            "id": 1,
                            "op": "maximize",
                            "session": "default",
                            "params": {"k": 4, "epsilon": EPS},
                            "proto": PROTO_VERSION,
                        }
                    )
                )
                wfile.write(
                    encode_line({"id": 2, "op": "ping", "session": "default",
                                 "params": {}, "proto": PROTO_VERSION})
                )
                wfile.flush()
                sockets.append((sock, sock.makefile("rb")))
            for sock, rfile in sockets:
                responses = {}
                for _ in range(2):
                    frame = decode_line(rfile.readline())
                    responses[frame["id"]] = frame
                assert responses[2]["ok"] and responses[2]["result"]["pong"]
                answer = responses[1]
                assert answer["ok"], answer
                assert answer["result"]["seeds"] == cold.seeds
                assert answer["result"]["samples"] == cold.samples
        finally:
            for sock, rfile in sockets:
                rfile.close()
                sock.close()

    def test_pipelined_responses_arrive_out_of_order(self, served):
        """A slow maximize does not head-of-line block the ping queued
        behind it on the same connection."""
        slow = {"id": "slow", "op": "maximize", "session": "default",
                "params": {"k": 4, "epsilon": 0.1}, "proto": PROTO_VERSION}
        fast = {"id": "fast", "op": "ping", "session": "default",
                "params": {}, "proto": PROTO_VERSION}
        first, second = _raw_roundtrip(served.address, slow, fast)
        assert first["id"] == "fast" and first["ok"]
        assert second["id"] == "slow" and second["ok"]

    def test_call_pipelined_matches_sequential(self, served, small_wc_graph):
        cold = dssa(small_wc_graph, 4, epsilon=EPS, model="LT", seed=SEED)
        host, port = served.address
        with ServiceClient(host, port) as client:
            results = client.call_pipelined(
                [
                    ("maximize", {"k": 4, "epsilon": EPS}),
                    ("ping", {}),
                    ("maximize", {"k": 4, "epsilon": EPS}),
                ]
            )
        assert results[0]["seeds"] == cold.seeds
        assert results[1]["pong"] is True
        # identical up to wall-clock timing
        for field in ("seeds", "samples", "influence", "algorithm", "iterations"):
            assert results[2][field] == results[0][field]

    def test_call_pipelined_isolates_failures(self, served):
        host, port = served.address
        with ServiceClient(host, port) as client:
            results = client.call_pipelined(
                [("ping", {}), ("no-such-op", {}), ("ping", {})]
            )
        assert results[0]["pong"] and results[2]["pong"]
        assert isinstance(results[1], ServiceError)


class TestNegotiation:
    def test_hello_advertises_revision_and_ops(self, served):
        host, port = served.address
        with ServiceClient(host, port) as client:
            hello = client.hello()
        assert hello["proto"] == PROTO_VERSION == 1
        assert {"maximize", "mutate", "quota", "metrics_text",
                "hello", "shutdown"} <= set(hello["ops"])

    def test_v0_frames_get_v0_shaped_responses(self, served):
        """Pinned compatibility: a request without ``proto`` is an
        implicit version-0 client and its responses carry no ``proto``
        key — the pre-typed wire shape, byte for byte (the error
        ``code`` field is the one sanctioned additive extension)."""
        ok, err = _raw_roundtrip(
            served.address,
            {"id": 7, "op": "ping", "session": "default", "params": {}},
            {"id": 8, "op": "no-such-op", "session": "default", "params": {}},
        )
        assert ok == {"id": 7, "ok": True, "result": {"pong": True}}
        assert "proto" not in err
        assert err["ok"] is False and err["id"] == 8
        assert set(err["error"]) == {"type", "message", "code"}
        assert err["error"]["code"] == "bad_request"

    def test_proto_is_echoed_for_v1_clients(self, served):
        (frame,) = _raw_roundtrip(
            served.address,
            {"id": 1, "op": "ping", "session": "default", "params": {},
             "proto": 1},
        )
        assert frame["proto"] == 1 and frame["ok"]

    def test_future_revision_is_rejected_not_guessed(self, served):
        (frame,) = _raw_roundtrip(
            served.address,
            {"id": 1, "op": "ping", "session": "default", "params": {},
             "proto": 99},
        )
        assert frame["ok"] is False
        assert frame["error"]["code"] == "bad_request"
        assert "revision 99" in frame["error"]["message"]


class TestTypedErrors:
    def test_unknown_session_raises_typed_exception(self, served):
        host, port = served.address
        with ServiceClient(host, port) as client:
            with pytest.raises(UnknownSessionError) as excinfo:
                client.call("maximize", session="nope", k=2)
        assert excinfo.value.code == "no_such_session"

    def test_over_budget_carries_the_estimate(self, served):
        host, port = served.address
        with ServiceClient(host, port) as client:
            client.call("quota", quota_bytes=128)
            with pytest.raises(OverBudgetError) as excinfo:
                client.call("maximize", k=4, epsilon=EPS)
        exc = excinfo.value
        assert exc.code == "over_budget"
        assert exc.estimate is not None
        assert exc.estimate["quota_bytes"] == 128
        assert exc.estimate["bytes_to_sample"] > 128

    def test_bad_params_stay_bad_request(self, served):
        host, port = served.address
        with ServiceClient(host, port) as client:
            with pytest.raises(ServiceError) as excinfo:
                client.call("maximize", k=-1)
            assert excinfo.value.code == "bad_request"
            assert client.ping()  # connection survived the error


class TestDisconnectCleanup:
    def test_abrupt_disconnect_releases_inflight_state(
        self, served, small_wc_graph
    ):
        """Kill the socket mid-query: the orphaned task still runs to
        completion, releases its pool snapshot, and later queries on
        healthy connections stay byte-identical."""
        host, port = served.address
        sock = socket.create_connection((host, port), timeout=30)
        sock.sendall(
            encode_line(
                {"id": 1, "op": "maximize", "session": "default",
                 "params": {"k": 4, "epsilon": 0.1}, "proto": PROTO_VERSION}
            )
        )
        sock.close()  # walk away without reading the response
        service = served.service
        deadline = time.monotonic() + 60
        while time.monotonic() < deadline:
            usage = service.pools.namespace_usage().get("default")
            if usage is not None and usage["inflight"] == 0 and usage["sets"] > 0:
                break
            time.sleep(0.05)
        else:
            pytest.fail("in-flight pool state never drained after disconnect")
        cold = dssa(small_wc_graph, 4, epsilon=EPS, model="LT", seed=SEED)
        with ServiceClient(host, port) as client:
            wire = client.call("maximize", k=4, epsilon=EPS)
        assert wire["seeds"] == cold.seeds
        assert wire["samples"] == cold.samples


def _http_get(address, path, method="GET"):
    host, port = address
    with socket.create_connection((host, port), timeout=30) as sock:
        sock.sendall(
            f"{method} {path} HTTP/1.1\r\nHost: {host}\r\n"
            "Connection: close\r\n\r\n".encode("ascii")
        )
        payload = b""
        while True:
            chunk = sock.recv(65536)
            if not chunk:
                break
            payload += chunk
    head, _, body = payload.partition(b"\r\n\r\n")
    status = int(head.split(b" ", 2)[1])
    headers = {}
    for line in head.split(b"\r\n")[1:]:
        name, _, value = line.decode("latin-1").partition(":")
        headers[name.strip().lower()] = value.strip()
    return status, headers, body.decode("utf-8")


class TestMetricsEndpoint:
    def test_scrape_exposes_required_families(self, served_with_metrics):
        host, port = served_with_metrics.address
        with ServiceClient(host, port) as client:
            client.call("maximize", k=4, epsilon=EPS)
        status, headers, body = _http_get(
            served_with_metrics.metrics_address, "/metrics"
        )
        assert status == 200
        assert headers["content-type"].startswith("text/plain; version=0.0.4")
        for family in (
            "repro_pool_bytes",
            "repro_session_pool_bytes",
            "repro_admission_decisions_total",
            "repro_requests_total",
            "repro_request_latency_seconds_bucket",
            "repro_connections_open",
        ):
            assert family in body, f"missing metric family {family}"
        assert 'repro_session_pool_bytes{session="default"}' in body

    def test_unknown_path_and_method_are_refused(self, served_with_metrics):
        address = served_with_metrics.metrics_address
        status, _, _ = _http_get(address, "/nope")
        assert status == 404
        status, _, _ = _http_get(address, "/metrics", method="POST")
        assert status == 405

    def test_metrics_text_op_matches_exposition(self, served_with_metrics):
        host, port = served_with_metrics.address
        with ServiceClient(host, port) as client:
            payload = client.call("metrics_text")
        assert payload["content_type"].startswith("text/plain; version=0.0.4")
        assert "repro_pool_bytes" in payload["text"]
        # op-level exposition omits only the transport-owned connection
        # gauge; every service-side family is identical in kind
        assert "repro_connections_open" not in payload["text"]

    def test_scrape_is_valid_exposition_syntax(self, served_with_metrics):
        _, _, body = _http_get(served_with_metrics.metrics_address, "/metrics")
        for line in body.splitlines():
            if not line or line.startswith("#"):
                continue
            name_and_labels, _, value = line.rpartition(" ")
            assert name_and_labels, line
            float(value)  # every sample value parses as a number
